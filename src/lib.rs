//! # lobstore
//!
//! A from-scratch Rust reproduction of **Biliris, "The Performance of
//! Three Database Storage Structures for Managing Large Objects"
//! (SIGMOD 1992)** — the comparative study of the EXODUS (ESM),
//! Starburst, and EOS large-object ("BLOB") storage structures.
//!
//! The workspace contains the full stack the paper's prototype was built
//! on, reimplemented as independent crates and re-exported here:
//!
//! * [`simdisk`] — simulated multi-area disk with the paper's analytical
//!   seek/transfer cost model (33 ms seek, 1 KB/ms transfer, 4 KB pages);
//! * [`buddy`] — binary buddy disk-space manager with buddy spaces,
//!   on-disk directory pages and an in-memory superdirectory;
//! * [`bufpool`] — 12-page buffer manager with hybrid multi-page segment
//!   buffering and 3-step I/O on page-boundary mismatch;
//! * [`core`] — the three large-object managers over a shared positional
//!   count tree, with shadow-based update costing;
//! * [`workload`] — the paper's workload generators and experiment
//!   drivers (append builds, sequential scans, the 40/30/30 update mix);
//! * [`obs`] — zero-dependency metrics registry and structured event
//!   tracing every layer reports into (see DESIGN.md, "Observability").
//!
//! ## Quick start
//!
//! ```
//! use lobstore::{Db, EosObject, EosParams, LargeObject};
//!
//! let mut db = Db::paper_default();
//! let mut blob = EosObject::create(&mut db, EosParams::default()).unwrap();
//! blob.append(&mut db, b"first, some video frames...").unwrap();
//! blob.insert(&mut db, 7, b"hold on, ").unwrap();
//! blob.delete(&mut db, 0, 7).unwrap();
//!
//! let mut out = vec![0u8; blob.size(&mut db) as usize];
//! blob.read(&mut db, 0, &mut out).unwrap();
//! assert_eq!(&out, b"hold on, some video frames...");
//!
//! // Every byte moved through the simulated disk; the cost is recorded:
//! println!("simulated I/O: {}", db.io_stats());
//! ```
//!
//! See `DESIGN.md` for the system inventory, `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure, and
//! `crates/bench/src/bin/` for the binaries that regenerate them.

pub use lobstore_buddy as buddy;
pub use lobstore_bufpool as bufpool;
pub use lobstore_core as core;
pub use lobstore_obs as obs;
pub use lobstore_record as record;
pub use lobstore_simdisk as simdisk;
pub use lobstore_workload as workload;

pub use lobstore_core::{
    object_health, open_object, publish_object_health, Catalog, CatalogEntry, Db, DbConfig,
    EosObject, EosParams, EsmInsertAlgo, EsmObject, EsmParams, FragStats, HealthSample,
    LargeObject, LobError, ManagerSpec, ObjectHealth, ObjectReader, ObjectWriter, Result,
    SegmentInfo, SharedDb, SharedSnapshotReader, Snapshot, SnapshotReader, StarburstObject,
    StarburstParams, StorageKind, TreeConfig, Utilization,
};
pub use lobstore_record::{FieldInput, LongHandle, RecordId, RecordStore, Value};
pub use lobstore_simdisk::{AreaId, CostModel, IoStats, PageId, PAGE_SIZE};
pub use lobstore_workload::{
    build_by_appends, build_object, random_reads, sequential_scan, MixedConfig, MixedWorkload,
};
