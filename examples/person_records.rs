//! The §2 example, end to end: *"a person object with attributes name,
//! picture, and voice ... can be mapped to a small database object that
//! contains the short field name and two long field descriptors"* — with
//! each long field choosing the storage structure that suits it:
//!
//! * pictures are write-once and read whole → Starburst;
//! * voice notes get trimmed and spliced → EOS;
//! * the name is a short field inline in the record.
//!
//! The example also saves the database to an image file and reloads it,
//! showing that records, descriptors, and long-field bytes all persist.
//!
//! ```sh
//! cargo run --release --example person_records
//! ```

use lobstore::{Db, FieldInput, ManagerSpec, RecordStore, Value};

fn synth(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64 * 31 + seed * 7) % 251) as u8)
        .collect()
}

fn main() {
    let mut db = Db::paper_default();
    let mut people = RecordStore::create(&mut db).expect("create store");
    let store_root = people.root_page();

    println!("person records: short name + picture (Starburst) + voice (EOS)\n");

    // Ingest a few people.
    let mut ids = Vec::new();
    for (i, name) in ["Ada Lovelace", "Edgar Codd", "Grace Hopper"]
        .iter()
        .enumerate()
    {
        let picture = synth(300_000 + i * 50_000, i as u64); // ~0.3 MB portrait
        let voice = synth(120_000, 100 + i as u64); // ~0.12 MB voice note
        let id = people
            .insert(
                &mut db,
                &[
                    FieldInput::Short(name.as_bytes()),
                    FieldInput::Long {
                        spec: ManagerSpec::starburst(),
                        content: &picture,
                    },
                    FieldInput::Long {
                        spec: ManagerSpec::eos(16),
                        content: &voice,
                    },
                ],
            )
            .expect("insert person");
        ids.push(id);
        println!(
            "  stored {name:<14} as {id}  (picture {} B, voice {} B)",
            picture.len(),
            voice.len()
        );
    }

    // Edit one voice note in place: trim silence at the front, splice an
    // intro — the length-changing updates EOS is built for.
    let fields = people.get(&mut db, ids[2]).expect("get");
    let voice = fields[2].as_long().expect("voice descriptor");
    let mut note = people.read_long(&mut db, voice).expect("open voice");
    note.delete(&mut db, 0, 10_000).expect("trim silence");
    note.insert(&mut db, 0, &synth(2_000, 999))
        .expect("splice intro");
    println!("\n  edited Grace Hopper's voice note: -10000 bytes silence, +2000 bytes intro");
    println!("  new length: {} bytes", note.size(&mut db));

    // Persist the whole database to an image and reload it.
    let path = std::env::temp_dir().join("person_records.lob");
    db.save_to_path(&path).expect("save image");
    println!(
        "\nsaved database image: {} ({} KB)",
        path.display(),
        std::fs::metadata(&path)
            .map(|m| m.len() / 1024)
            .unwrap_or(0)
    );

    let mut db2 = Db::load_from_path(&path, lobstore::DbConfig::default()).expect("reload");
    let people2 = RecordStore::open(&mut db2, store_root).expect("reopen store");
    println!("reloaded; verifying every record...");
    for (i, id) in ids.iter().enumerate() {
        let fields = people2.get(&mut db2, *id).expect("get after reload");
        let name = String::from_utf8_lossy(match &fields[0] {
            Value::Short(b) => b,
            _ => unreachable!(),
        })
        .into_owned();
        let pic = people2
            .read_long(&mut db2, fields[1].as_long().expect("pic"))
            .expect("open pic");
        let expected = synth(300_000 + i * 50_000, i as u64);
        assert_eq!(pic.snapshot(&db2), expected, "picture bytes survived");
        let u = pic.utilization(&db2);
        println!(
            "  {name:<14} picture {:>7} B on {:>3} pages ({:}), util {:.1}%",
            expected.len(),
            u.data_pages,
            fields[1].as_long().unwrap().kind,
            u.ratio() * 100.0
        );
    }
    println!("\nall records intact across the image round-trip.");
}
