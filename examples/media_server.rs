//! Media server scenario — the workload the Starburst long-field manager
//! was designed for (§1, §2.2 of the paper): large, mostly read-only
//! objects (digitized video and sound), written once by streaming
//! appends and consumed by sequential frame-sized reads.
//!
//! A "video" is ingested in camera-buffer-sized appends, then played
//! back at frame granularity; we also simulate a few users seeking to
//! random timestamps. Starburst and EOS shine here; ESM's fixed leaves
//! only keep up when their size matches the access pattern.
//!
//! ```sh
//! cargo run --release --example media_server
//! ```

use lobstore::{Db, ManagerSpec};

/// One 640x480x8bit "frame" — ~300 KB of pixels.
const FRAME: usize = 640 * 480;
/// Ingest buffer: 16 frames per append.
const INGEST_CHUNK: usize = 16 * FRAME;
/// A 12-second clip at 25 fps.
const FRAMES: usize = 300;

fn main() {
    println!(
        "media server: ingest a {} MB clip, play it back, then seek around\n",
        (FRAMES * FRAME) >> 20
    );

    for spec in [
        ManagerSpec::starburst(),
        ManagerSpec::eos(64),
        ManagerSpec::esm(64),
        ManagerSpec::esm(1),
    ] {
        let mut db = Db::paper_default();
        let mut clip = spec.create(&mut db).expect("create");

        // --- ingest: streaming appends of camera buffers -------------
        let mut frame_no = 0u32;
        let mut buf = vec![0u8; INGEST_CHUNK];
        while (frame_no as usize) < FRAMES {
            let frames_now = 16.min(FRAMES - frame_no as usize);
            for f in 0..frames_now {
                // Stamp each frame so playback can verify it.
                let at = f * FRAME;
                buf[at..at + 4].copy_from_slice(&(frame_no + f as u32).to_le_bytes());
            }
            clip.append(&mut db, &buf[..frames_now * FRAME])
                .expect("append");
            frame_no += frames_now as u32;
        }
        clip.trim(&mut db).expect("trim");
        let ingest = db.io_stats();

        // --- playback: sequential frame reads -------------------------
        let mut frame = vec![0u8; FRAME];
        for f in 0..FRAMES as u64 {
            clip.read(&mut db, f * FRAME as u64, &mut frame)
                .expect("frame read");
            let stamp = u32::from_le_bytes(frame[..4].try_into().unwrap());
            assert_eq!(stamp, f as u32, "frame corrupted during storage");
        }
        let playback = db.io_stats() - ingest;

        // --- seeking: 40 random-timestamp frame fetches ---------------
        let mut state = 88_172_645_463_325_252u64;
        for _ in 0..40 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let f = state % FRAMES as u64;
            clip.read(&mut db, f * FRAME as u64, &mut frame)
                .expect("seek read");
        }
        let seeks = db.io_stats() - ingest - playback;

        println!(
            "{:<10}  ingest {:>7.1}s   playback {:>7.1}s ({:.1}x realtime)   40 seeks {:>6.0} ms   util {:>5.1}%",
            spec.label(),
            ingest.time_s(),
            playback.time_s(),
            (FRAMES as f64 / 25.0) / playback.time_s(),
            seeks.time_ms(),
            clip.utilization(&db).ratio() * 100.0,
        );
    }

    println!("\nSequential playback approaches the 1 KB/ms transfer floor for");
    println!("Starburst/EOS and large ESM leaves; 1-page ESM leaves pay one");
    println!("seek per page and cannot stream (§4.3 / Figure 6).");
}
