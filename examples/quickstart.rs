//! Quickstart: create one object under each of the three storage
//! structures, run the same byte operations against all of them, and
//! compare their simulated I/O costs.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lobstore::{Db, IoStats, ManagerSpec};

fn main() {
    println!("lobstore quickstart — ESM vs Starburst vs EOS\n");

    let specs = [
        ManagerSpec::esm(4),
        ManagerSpec::starburst(),
        ManagerSpec::eos(16),
    ];

    for spec in specs {
        let mut db = Db::paper_default();
        let mut obj = spec.create(&mut db).expect("create object");

        // Build a 2 MB object by 64 KB appends — "the expected way of
        // creating large objects" (§1 of the paper).
        let chunk = vec![0xC0u8; 64 * 1024];
        for _ in 0..32 {
            obj.append(&mut db, &chunk).expect("append");
        }
        obj.trim(&mut db).expect("trim");
        let build = db.io_stats();

        // A byte-range read somewhere in the middle.
        let mut buf = vec![0u8; 10_000];
        obj.read(&mut db, 1_000_000, &mut buf).expect("read");
        let read = db.io_stats() - build;

        // Insert and delete in the middle — the operation Starburst hates.
        // One warm-up edit first, so we measure the steady-state cost and
        // not the one-off split of a large freshly-built segment.
        obj.insert(&mut db, 700_000, b"warm-up edit")
            .expect("warm-up");
        obj.delete(&mut db, 700_000, 12).expect("warm-up delete");
        let warm = db.io_stats();
        obj.insert(&mut db, 500_000, b"spliced right in")
            .expect("insert");
        let insert = db.io_stats() - warm;
        obj.delete(&mut db, 500_000, 16).expect("delete");

        // Verify the content survived all of that.
        let mut out = vec![0u8; 64];
        obj.read(&mut db, 1_500_000, &mut out).expect("verify read");
        assert!(out.iter().all(|&b| b == 0xC0), "content corrupted!");
        obj.check_invariants(&db).expect("invariants");

        let u = obj.utilization(&db);
        println!(
            "{:<12} build {:>8}  |  10K read {:>7}  |  insert {:>8}  |  util {:>6.1}%",
            spec.label(),
            fmt(build),
            fmt(read),
            fmt(insert),
            u.ratio() * 100.0,
        );
    }

    println!("\nNote how the insert column explodes for Starburst: every");
    println!("length-changing update copies the object tail (§2.2 / Table 3),");
    println!("while ESM and EOS touch only one leaf's neighbourhood.");
}

fn fmt(io: IoStats) -> String {
    if io.time_ms() >= 1_000.0 {
        format!("{:.2} s", io.time_s())
    } else {
        format!("{:.0} ms", io.time_ms())
    }
}
