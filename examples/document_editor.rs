//! Document editor scenario — the general-purpose, update-heavy workload
//! the paper's intro motivates: a long document (or "insertable array")
//! stored as one large object, edited by inserting and deleting byte
//! ranges at arbitrary positions.
//!
//! A 4 MB manuscript receives 400 edits: paragraph insertions, cuts, and
//! in-place corrections. This is exactly where Starburst collapses (every
//! edit copies the tail of the document) while ESM and EOS stay flat.
//!
//! ```sh
//! cargo run --release --example document_editor
//! ```

use lobstore::{Db, ManagerSpec};

const DOC: u64 = 4 << 20;
const EDITS: usize = 400;

struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        self.0 >> 11
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn main() {
    println!("document editor: 4 MB manuscript, {EDITS} mixed edits\n");

    for spec in [
        ManagerSpec::esm(4),
        ManagerSpec::eos(16),
        ManagerSpec::starburst(),
    ] {
        let mut db = Db::paper_default();
        let mut doc = spec.create(&mut db).expect("create");

        // Import the manuscript (page-by-page paste, 32 KB at a time).
        let paste = vec![b'x'; 32 * 1024];
        let mut imported = 0u64;
        while imported < DOC {
            doc.append(&mut db, &paste).expect("import");
            imported += paste.len() as u64;
        }
        doc.trim(&mut db).expect("trim");
        let import_io = db.io_stats();

        // Edit session. Starburst gets a shorter one (it would take all
        // day — which is the point), scaled up in the report.
        let edits = if matches!(spec, ManagerSpec::Starburst { .. }) {
            EDITS / 20
        } else {
            EDITS
        };
        let mut rng = Lcg(42);
        let paragraph = vec![b'p'; 800];
        let correction = vec![b'c'; 60];
        for i in 0..edits {
            let size = doc.size(&mut db);
            match i % 4 {
                // Insert a paragraph.
                0 | 1 => {
                    let at = rng.below(size + 1);
                    doc.insert(&mut db, at, &paragraph).expect("insert");
                }
                // Cut a sentence or two.
                2 => {
                    let len = 400.min(size);
                    let at = rng.below(size - len + 1);
                    doc.delete(&mut db, at, len).expect("cut");
                }
                // Fix a typo in place.
                _ => {
                    let at = rng.below(size - correction.len() as u64);
                    doc.replace(&mut db, at, &correction).expect("fix");
                }
            }
        }
        let edit_io = db.io_stats() - import_io;
        doc.check_invariants(&db).expect("invariants");

        let per_edit_ms = edit_io.time_ms() / edits as f64;
        println!(
            "{:<10}  import {:>6.1}s   {:>4} edits: {:>8.1}s total, {:>8.0} ms/edit   util {:>5.1}%",
            spec.label(),
            import_io.time_s(),
            edits,
            edit_io.time_s(),
            per_edit_ms,
            doc.utilization(&db).ratio() * 100.0,
        );
    }

    println!("\nPer-edit cost: ESM/EOS touch one leaf's neighbourhood; Starburst");
    println!("copies the manuscript tail on every length-changing edit (§4.4.3).");
    println!("That is why §2.2 calls it a manager for 'large mostly read-only objects'.");
}
