//! Tuning advisor — operationalizes §4.6's parameter-selection guidance.
//!
//! Given an expected access profile (typical read size, update rate), the
//! advisor sweeps ESM leaf sizes and EOS thresholds on a miniature
//! version of the workload and prints measured read cost, update cost,
//! and utilization, plus the §4.6 rules of thumb:
//!
//! * never pick an EOS threshold below 4 pages — better utilization and
//!   reads come for free up to there;
//! * for often-updated objects, set T a bit above the expected read size;
//! * for mostly-static objects, the bigger the better;
//! * for ESM there is no free lunch: leaf size trades reads against
//!   utilization and cannot optimize both.
//!
//! ```sh
//! cargo run --release --example tuning_advisor
//! ```

use lobstore::workload::OpKind;
use lobstore::{Db, ManagerSpec, MixedConfig, MixedWorkload};

const OBJECT: u64 = 2 << 20;
const READ_SIZE: u64 = 10_000; // the profile we advise for

fn main() {
    println!("tuning advisor — expected read size {READ_SIZE} B, update-heavy profile\n");

    let sweep: Vec<ManagerSpec> = [1u32, 4, 16, 64]
        .iter()
        .flat_map(|&n| [ManagerSpec::esm(n), ManagerSpec::eos(n)])
        .collect();

    println!(
        "{:<8} {:>14} {:>16} {:>13}",
        "config", "avg read (ms)", "avg update (ms)", "utilization"
    );
    println!("{}", "-".repeat(55));

    let mut best: Option<(f64, String)> = None;
    for spec in sweep {
        let mut db = Db::paper_default();
        let mut obj = spec.create(&mut db).expect("create");
        let chunk = vec![7u8; 64 * 1024];
        let mut built = 0;
        while built < OBJECT {
            obj.append(&mut db, &chunk).expect("build");
            built += chunk.len() as u64;
        }
        obj.trim(&mut db).expect("trim");

        let mut w = MixedWorkload::new(MixedConfig {
            ops: 1_500,
            mark_every: 500,
            mean_op_bytes: READ_SIZE,
            ..MixedConfig::default()
        });
        let rep = w.run(&mut db, obj.as_mut()).expect("workload");
        let read = rep.avg_ms(OpKind::Read, &rep.marks).unwrap_or(f64::NAN);
        let ins = rep.avg_ms(OpKind::Insert, &rep.marks).unwrap_or(0.0);
        let del = rep.avg_ms(OpKind::Delete, &rep.marks).unwrap_or(0.0);
        let update = (ins + del) / 2.0;
        let util = rep.marks.last().expect("marks").utilization;

        println!(
            "{:<8} {:>14.1} {:>16.1} {:>12.1}%",
            spec.label(),
            read,
            update,
            util * 100.0
        );

        // Simple combined score for an update-heavy profile: reads and
        // updates weighted equally; wasted space priced at 5 ms per
        // percentage point (disk space is what the DBA is paying for).
        let score = read + update + (1.0 - util) * 500.0;
        if best.as_ref().is_none_or(|(s, _)| score < *s) {
            best = Some((score, spec.label()));
        }
    }

    let (_, winner) = best.expect("at least one config");
    println!("\nAdvisor pick for this profile: {winner}");
    println!("\n§4.6 rules of thumb:");
    println!("  - EOS: never set T below 4 pages; above that, pick T slightly larger");
    println!(
        "    than your typical read ({} pages here), larger still if updates are rare.",
        READ_SIZE.div_ceil(4096)
    );
    println!("  - ESM: small leaves favour utilization, large leaves favour reads —");
    println!("    you cannot have both (§4.6), so EOS dominates when in doubt.");
}
