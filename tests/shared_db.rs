//! Multi-thread hammer test for [`SharedDb`]: the runtime counterpart
//! of loblint's `lock-order`/`panic-while-locked` static rules.
//!
//! N threads drive mixed create/append/read/delete/destroy traffic
//! through one shared database. Each thread measures the I/O cost of
//! every operation it issues (an `io_stats` delta taken *inside* the
//! critical section, so the delta is attributable to exactly that
//! operation), and the test asserts I/O-accounting closure: the sum of
//! all per-operation deltas equals the database's total I/O. Any I/O
//! escaping the cost-counted wrappers — or any interleaving splicing
//! one thread's I/O into another's measurement — breaks the equation.
//!
//! The hammer also exercises the obs registry from every thread:
//! counters, histograms, and periodic `snapshot()` calls race the
//! storage traffic. The registry is thread-local by design, so each
//! thread's metrics must be exact (no cross-thread bleed) and
//! snapshotting while other threads mutate their registries must never
//! panic or tear.

use lobstore::{Db, ManagerSpec, SharedDb};
use lobstore_simdisk::IoStats;

const THREADS: u8 = 6;
const OPS_PER_THREAD: usize = 25;

fn pattern(t: u8, i: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|k| (t as usize).wrapping_mul(97).wrapping_add(i * 31 + k) as u8)
        .collect()
}

#[test]
fn mixed_traffic_from_many_threads_keeps_io_accounting_closed() {
    let shared = SharedDb::new(Db::paper_default());
    let initial = shared.with(|db| db.io_stats());

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let shared = shared.clone();
        handles.push(std::thread::spawn(move || {
            // Fresh per-thread registry; this thread's metrics count
            // only its own operations.
            lobstore_obs::reset();
            let mut ops_counted = 0u64;
            // One op = one critical section; the delta is measured with
            // the lock held so no other thread's I/O can leak into it.
            let mut spent = IoStats::default();
            let mut op = |f: &mut dyn FnMut(&mut Db)| {
                let delta = shared.with(|db| {
                    let before = db.io_stats();
                    f(db);
                    db.io_stats() - before
                });
                spent = spent + delta;
                lobstore_obs::counter_add("hammer.ops", 1);
                lobstore_obs::histogram_record("hammer.op_pages", delta.pages());
                ops_counted += 1;
                // Snapshot while every other thread mutates its own
                // registry: must never panic, and must reflect exactly
                // this thread's activity.
                if ops_counted.is_multiple_of(8) {
                    let snap = lobstore_obs::snapshot();
                    let (_, count) = snap
                        .counters
                        .iter()
                        .find(|(name, _)| name == "hammer.ops")
                        .expect("own counter visible");
                    assert_eq!(*count, ops_counted, "thread {t} counter bleed");
                    let h = snap
                        .histograms
                        .iter()
                        .find(|h| h.name == "hammer.op_pages")
                        .expect("own histogram visible");
                    assert_eq!(h.count, ops_counted, "thread {t} histogram bleed");
                    assert!(h.p99().is_some(), "quantiles available mid-run");
                }
            };
            let spec = match t % 3 {
                0 => ManagerSpec::esm(4),
                1 => ManagerSpec::eos(8),
                _ => ManagerSpec::starburst(),
            };
            let mut obj = None;
            op(&mut |db| obj = Some(spec.create(db).expect("create")));
            let mut obj = obj.expect("created");
            let mut model: Vec<u8> = Vec::new();
            for i in 0..OPS_PER_THREAD {
                match i % 5 {
                    // Mostly appends, so the object keeps growing.
                    0..=2 => {
                        let chunk = pattern(t, i, 4_000 + 128 * i);
                        op(&mut |db| obj.append(db, &chunk).expect("append"));
                        model.extend_from_slice(&chunk);
                    }
                    3 => {
                        let len = (model.len() / 3).clamp(1, 2_500) as u64;
                        op(&mut |db| obj.delete(db, 0, len).expect("delete"));
                        model.drain(0..len as usize);
                    }
                    _ => {
                        let off = (model.len() / 4) as u64;
                        let len = (model.len() - off as usize).min(3_000);
                        let mut out = vec![0u8; len];
                        op(&mut |db| obj.read(db, off, &mut out).expect("read"));
                        assert_eq!(
                            out,
                            model[off as usize..off as usize + len],
                            "thread {t} read back wrong bytes at op {i}"
                        );
                    }
                }
            }
            shared.with(|db| obj.check_invariants(db).expect("invariants"));
            let snap = shared.with(|db| obj.snapshot(db));
            assert_eq!(snap, model, "thread {t} content diverged");
            // Half the threads destroy their object, freeing storage
            // while the others are still appending.
            if t % 2 == 0 {
                op(&mut |db| obj.destroy(db).expect("destroy"));
            }
            // Final per-thread metric closure: the registry counted
            // every op this thread issued, nothing more.
            let snap = lobstore_obs::snapshot();
            let (_, count) = snap
                .counters
                .iter()
                .find(|(name, _)| name == "hammer.ops")
                .unwrap();
            assert_eq!(*count, ops_counted, "thread {t} final counter");
            // Histogram I/O accounting matches the io_stats closure sum:
            // total recorded pages equals the pages this thread spent.
            let h = snap
                .histograms
                .iter()
                .find(|h| h.name == "hammer.op_pages")
                .unwrap();
            assert_eq!(h.sum, spent.pages(), "thread {t} pages bleed");
            // Reset-then-snapshot stays empty even while neighbors are
            // mid-traffic (the snapshot-after-reset contract).
            lobstore_obs::reset();
            assert!(lobstore_obs::snapshot().counters.is_empty());
            spent
        }));
    }

    let spent_total = handles
        .into_iter()
        .map(|h| h.join().expect("worker thread"))
        .fold(IoStats::default(), |acc, s| acc + s);

    // Closure: everything the database's disk did is accounted to
    // exactly one thread's operation measurements.
    let final_stats = shared.with(|db| db.io_stats());
    assert_eq!(
        spent_total,
        final_stats - initial,
        "per-thread io_stats deltas must sum to the database total"
    );
    assert!(spent_total.calls() > 0, "the workload must do real I/O");

    let mut db = shared.try_unwrap().ok().expect("last handle");
    db.checkpoint();
}
