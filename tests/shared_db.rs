//! Multi-thread hammer tests for [`SharedDb`]: the runtime counterpart
//! of loblint's `lock-order`/`panic-while-locked` static rules.
//!
//! Two storms:
//!
//! * `mixed_traffic_…` — N threads drive mixed create/append/read/
//!   delete/destroy traffic through the write tier. Each thread measures
//!   the I/O cost of every operation it issues (an `io_stats` delta
//!   taken *inside* the critical section, so the delta is attributable
//!   to exactly that operation), and the test asserts I/O-accounting
//!   closure: the sum of all per-operation deltas equals the database's
//!   total I/O. Any I/O escaping the cost-counted wrappers — or any
//!   interleaving splicing one thread's I/O into another's measurement —
//!   breaks the equation.
//!
//! * `snapshot_scans_race_writers_…` — N scanner threads stream pinned
//!   snapshots on the **read** tier while M writer threads churn all
//!   three schemes on the write tier. Every scan pass must return the
//!   exact bytes pinned at setup (byte stability under churn), the
//!   closure equation must still hold with reader and writer I/O
//!   interleaved (scanner deltas are measured inside an aux-mutex +
//!   read-lock region, so no writer I/O can splice in), and an offline
//!   fsck of the settled database must come back clean.
//!
//! Both storms exercise the obs registry from every thread: the
//! registry is thread-local by design, so each thread's metrics must be
//! exact (no cross-thread bleed), and the coordinator folds worker
//! snapshots together with [`lobstore_obs::merge_thread_registry`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use lobstore::{Catalog, Db, ManagerSpec, SharedDb, SnapshotReader};
use lobstore_cli::check_database;
use lobstore_simdisk::IoStats;

const THREADS: u8 = 6;
const OPS_PER_THREAD: usize = 25;

fn pattern(t: u8, i: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|k| (t as usize).wrapping_mul(97).wrapping_add(i * 31 + k) as u8)
        .collect()
}

#[test]
fn mixed_traffic_from_many_threads_keeps_io_accounting_closed() {
    let shared = SharedDb::new(Db::paper_default());
    let initial = shared.with(|db| db.io_stats());

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let shared = shared.clone();
        handles.push(std::thread::spawn(move || {
            // Fresh per-thread registry; this thread's metrics count
            // only its own operations.
            lobstore_obs::reset();
            let mut ops_counted = 0u64;
            // One op = one critical section; the delta is measured with
            // the lock held so no other thread's I/O can leak into it.
            let mut spent = IoStats::default();
            let mut op = |f: &mut dyn FnMut(&mut Db)| {
                let delta = shared.with(|db| {
                    let before = db.io_stats();
                    f(db);
                    db.io_stats() - before
                });
                spent = spent + delta;
                lobstore_obs::counter_add("hammer.ops", 1);
                lobstore_obs::histogram_record("hammer.op_pages", delta.pages());
                ops_counted += 1;
                // Snapshot while every other thread mutates its own
                // registry: must never panic, and must reflect exactly
                // this thread's activity.
                if ops_counted.is_multiple_of(8) {
                    let snap = lobstore_obs::snapshot();
                    let (_, count) = snap
                        .counters
                        .iter()
                        .find(|(name, _)| name == "hammer.ops")
                        .expect("own counter visible");
                    assert_eq!(*count, ops_counted, "thread {t} counter bleed");
                    let h = snap
                        .histograms
                        .iter()
                        .find(|h| h.name == "hammer.op_pages")
                        .expect("own histogram visible");
                    assert_eq!(h.count, ops_counted, "thread {t} histogram bleed");
                    assert!(h.p99().is_some(), "quantiles available mid-run");
                }
            };
            let spec = match t % 3 {
                0 => ManagerSpec::esm(4),
                1 => ManagerSpec::eos(8),
                _ => ManagerSpec::starburst(),
            };
            let mut obj = None;
            op(&mut |db| obj = Some(spec.create(db).expect("create")));
            let mut obj = obj.expect("created");
            let mut model: Vec<u8> = Vec::new();
            for i in 0..OPS_PER_THREAD {
                match i % 5 {
                    // Mostly appends, so the object keeps growing.
                    0..=2 => {
                        let chunk = pattern(t, i, 4_000 + 128 * i);
                        op(&mut |db| obj.append(db, &chunk).expect("append"));
                        model.extend_from_slice(&chunk);
                    }
                    3 => {
                        let len = (model.len() / 3).clamp(1, 2_500) as u64;
                        op(&mut |db| obj.delete(db, 0, len).expect("delete"));
                        model.drain(0..len as usize);
                    }
                    _ => {
                        let off = (model.len() / 4) as u64;
                        let len = (model.len() - off as usize).min(3_000);
                        let mut out = vec![0u8; len];
                        op(&mut |db| obj.read(db, off, &mut out).expect("read"));
                        assert_eq!(
                            out,
                            model[off as usize..off as usize + len],
                            "thread {t} read back wrong bytes at op {i}"
                        );
                    }
                }
            }
            shared.with(|db| obj.check_invariants(db).expect("invariants"));
            let snap = shared.with(|db| obj.snapshot(db));
            assert_eq!(snap, model, "thread {t} content diverged");
            // Half the threads destroy their object, freeing storage
            // while the others are still appending.
            if t % 2 == 0 {
                op(&mut |db| obj.destroy(db).expect("destroy"));
            }
            // Final per-thread metric closure: the registry counted
            // every op this thread issued, nothing more.
            let snap = lobstore_obs::snapshot();
            let (_, count) = snap
                .counters
                .iter()
                .find(|(name, _)| name == "hammer.ops")
                .unwrap();
            assert_eq!(*count, ops_counted, "thread {t} final counter");
            // Histogram I/O accounting matches the io_stats closure sum:
            // total recorded pages equals the pages this thread spent.
            let h = snap
                .histograms
                .iter()
                .find(|h| h.name == "hammer.op_pages")
                .unwrap();
            assert_eq!(h.sum, spent.pages(), "thread {t} pages bleed");
            // Reset-then-snapshot stays empty even while neighbors are
            // mid-traffic (the snapshot-after-reset contract).
            let mine = lobstore_obs::snapshot();
            lobstore_obs::reset();
            assert!(lobstore_obs::snapshot().counters.is_empty());
            (spent, ops_counted, mine)
        }));
    }

    lobstore_obs::reset();
    let mut spent_total = IoStats::default();
    let mut ops_total = 0u64;
    for h in handles {
        let (spent, ops, mine) = h.join().expect("worker thread");
        spent_total = spent_total + spent;
        ops_total += ops;
        // Fold each worker's thread-local registry into this thread's.
        lobstore_obs::merge_thread_registry(&mine);
    }
    // The merged registry holds the fleet-wide totals: every op from
    // every thread, and histogram page totals matching the I/O closure.
    let merged = lobstore_obs::snapshot();
    assert_eq!(merged.counter("hammer.ops"), ops_total, "merged op count");
    let h = merged
        .histogram("hammer.op_pages")
        .expect("merged histogram");
    assert_eq!(h.count, ops_total);
    assert_eq!(h.sum, spent_total.pages(), "merged histogram page total");

    // Closure: everything the database's disk did is accounted to
    // exactly one thread's operation measurements.
    let final_stats = shared.with(|db| db.io_stats());
    assert_eq!(
        spent_total,
        final_stats - initial,
        "per-thread io_stats deltas must sum to the database total"
    );
    assert!(spent_total.calls() > 0, "the workload must do real I/O");

    let mut db = shared.try_unwrap().ok().expect("last handle");
    db.checkpoint();
}

const SCANNERS: usize = 4;
const WRITER_OPS: usize = 40;
const SEED_BYTES: usize = 150_000;
const SCAN_CHUNK: usize = 8 * 1024;

/// N pinned-snapshot scanners on the read tier race M writers on the
/// write tier across all three schemes; byte stability, I/O-accounting
/// closure, and a clean offline fsck must all survive the storm.
#[test]
fn snapshot_scans_race_writers_with_closed_accounting_and_clean_fsck() {
    let shared = SharedDb::new(Db::paper_default());

    // Setup: one object per scheme, registered in a catalog for fsck,
    // seeded with a known pattern. Committed (checkpointed) before any
    // pin, so every scanner's expected bytes are exactly the seed.
    let specs = [
        ("esm", ManagerSpec::esm(8)),
        ("eos", ManagerSpec::eos(8)),
        ("star", ManagerSpec::starburst()),
    ];
    let cat_root = shared.with(|db| Catalog::create(db).unwrap().root_page());
    let mut objs = Vec::new();
    for (i, (name, spec)) in specs.iter().enumerate() {
        let (kind, root, model) = shared.with(|db| {
            let mut obj = spec.create(db).unwrap();
            let seed = pattern(i as u8, 7, SEED_BYTES);
            obj.append(db, &seed).unwrap();
            let mut cat = Catalog::open(db, cat_root).unwrap();
            cat.put(db, name, obj.kind(), obj.root_page()).unwrap();
            (obj.kind(), obj.root_page(), seed)
        });
        objs.push((kind, root, model));
    }
    shared.with(|db| db.checkpoint());

    // Pin the scanners *before* the churn begins: each holds a snapshot
    // of the seeded state, so "byte-stable" has ground truth.
    let mut scan_handles = Vec::new();
    let mut pinned = Vec::new();
    for s in 0..SCANNERS {
        let (_, root, expect) = &objs[s % objs.len()];
        let (snap, reader) = shared.with(|db| {
            let snap = db.snapshot();
            let r = SnapshotReader::new(db, &snap, *root).unwrap();
            (snap, r)
        });
        pinned.push((snap, reader, expect.clone()));
    }

    // Baseline after all setup I/O (object creation, catalog, reader
    // construction): the closure equation covers exactly the storm.
    let initial = shared.with(|db| db.io_stats());
    let done = Arc::new(AtomicBool::new(false));
    // Serializes scanners against each other (but not against writers —
    // the read lock inside excludes those) so each scanner's io_stats
    // delta is attributable to its own refills.
    let aux = Arc::new(Mutex::new(()));

    // Writers: one per scheme, churning the *same cataloged objects the
    // scanners pinned* — the hardest case for byte stability, because
    // every shadowed page a writer replaces is one a pinned snapshot
    // still needs. Per-op deltas are measured inside the write critical
    // section.
    let mut write_handles = Vec::new();
    for (w, (kind, root, seed)) in objs.into_iter().enumerate() {
        let shared = shared.clone();
        write_handles.push(std::thread::spawn(move || {
            lobstore_obs::reset();
            let mut spent = IoStats::default();
            let mut obj = None;
            let delta = shared.with(|db| {
                let before = db.io_stats();
                obj = Some(lobstore::open_object(db, kind, root).expect("open"));
                db.io_stats() - before
            });
            spent = spent + delta;
            let mut obj = obj.expect("opened");
            let mut model: Vec<u8> = seed;
            for i in 0..WRITER_OPS {
                let delta = shared.with(|db| {
                    let before = db.io_stats();
                    if i % 4 == 3 && model.len() > 4_000 {
                        obj.delete(db, 0, 2_000).expect("delete");
                        model.drain(0..2_000);
                    } else {
                        let chunk = pattern(w as u8 + 16, i, 4_000 + 64 * i);
                        obj.append(db, &chunk).expect("append");
                        model.extend_from_slice(&chunk);
                    }
                    db.io_stats() - before
                });
                spent = spent + delta;
                lobstore_obs::counter_add("storm.writer_ops", 1);
            }
            let delta = shared.with(|db| {
                let before = db.io_stats();
                obj.check_invariants(db).expect("invariants");
                let got = obj.snapshot(db);
                assert_eq!(got, model, "writer {w} content diverged");
                db.io_stats() - before
            });
            spent = spent + delta;
            (spent, lobstore_obs::snapshot())
        }));
    }

    // Scanners: stream the pinned snapshot end-to-end, repeatedly, on
    // the read tier. Each refill's I/O delta is measured inside one
    // (aux mutex + read lock) region: the read lock keeps writer I/O
    // out, the aux mutex keeps sibling scanners out.
    for (s, (snap, mut reader, expect)) in pinned.into_iter().enumerate() {
        let shared = shared.clone();
        let done = done.clone();
        let aux = aux.clone();
        scan_handles.push(std::thread::spawn(move || {
            lobstore_obs::reset();
            let mut spent = IoStats::default();
            let mut passes = 0u64;
            let mut buf = vec![0u8; SCAN_CHUNK];
            while !done.load(Ordering::Acquire) || passes < 2 {
                reader.seek(0);
                let mut got = Vec::with_capacity(expect.len());
                loop {
                    let guard = aux.lock().unwrap();
                    let (n, delta) = shared.with_read(|db| {
                        let before = db.io_stats();
                        let n = reader.read_ref(db, &mut buf);
                        (n, db.io_stats() - before)
                    });
                    drop(guard);
                    if n == 0 {
                        break;
                    }
                    got.extend_from_slice(&buf[..n]);
                    spent = spent + delta;
                }
                assert_eq!(
                    got, expect,
                    "scanner {s} pass {passes}: pinned bytes changed under churn"
                );
                passes += 1;
                lobstore_obs::counter_add("storm.scan_passes", 1);
            }
            (spent, passes, snap, lobstore_obs::snapshot())
        }));
    }

    lobstore_obs::reset();
    let mut spent_total = IoStats::default();
    for h in write_handles {
        let (spent, mine) = h.join().expect("writer thread");
        spent_total = spent_total + spent;
        lobstore_obs::merge_thread_registry(&mine);
    }
    done.store(true, Ordering::Release);
    let mut total_passes = 0u64;
    let mut snaps = Vec::new();
    for h in scan_handles {
        let (spent, passes, snap, mine) = h.join().expect("scanner thread");
        spent_total = spent_total + spent;
        total_passes += passes;
        snaps.push(snap);
        lobstore_obs::merge_thread_registry(&mine);
    }

    // Closure: every page the disk moved during the storm is accounted
    // to exactly one writer op or one scanner refill.
    let final_stats = shared.with(|db| db.io_stats());
    assert_eq!(
        spent_total,
        final_stats - initial,
        "writer + scanner io_stats deltas must sum to the database total"
    );
    assert!(spent_total.calls() > 0, "the storm must do real I/O");

    // Fleet-wide metrics via the merged registries.
    let merged = lobstore_obs::snapshot();
    assert_eq!(merged.counter("storm.scan_passes"), total_passes);
    assert_eq!(
        merged.counter("storm.writer_ops"),
        (specs.len() * WRITER_OPS) as u64
    );
    assert!(total_passes >= 2 * SCANNERS as u64, "every scanner scanned");

    // Settle: release every pin (running the deferred frees), then an
    // offline fsck across all three schemes must come back clean.
    for snap in snaps {
        shared.with(|db| db.release_snapshot(snap));
    }
    let mut db = shared.try_unwrap().ok().expect("last handle");
    assert_eq!(db.pinned_snapshots(), 0);
    db.checkpoint();
    let mut cat = Catalog::open(&mut db, cat_root).unwrap();
    let findings = check_database(&mut db, &mut cat);
    assert!(findings.is_empty(), "fsck after the storm: {findings:?}");
}
