//! MVCC integration: snapshot isolation, atomic transactions, and
//! allocation-log crash recovery (DESIGN.md §16), exercised across all
//! three storage structures.

use lobstore::{Db, DbConfig, LobError, ManagerSpec, SnapshotReader};

fn mvcc_db() -> Db {
    Db::new(DbConfig {
        alloc_log: true,
        ..DbConfig::default()
    })
}

fn specs() -> [ManagerSpec; 3] {
    [
        ManagerSpec::esm(4),
        ManagerSpec::eos(16),
        ManagerSpec::starburst(),
    ]
}

fn fill(len: usize, seed: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 37 + seed * 7 + 13) % 251) as u8)
        .collect()
}

/// A reader holding a snapshot sees exactly the bytes that were
/// committed when the snapshot was taken, no matter how much a writer
/// churns the object afterwards.
#[test]
fn snapshot_readers_are_byte_stable_under_writer_churn() {
    for spec in specs() {
        let mut db = mvcc_db();
        let mut obj = spec.create(&mut db).unwrap();
        let before = fill(150_000, 1);
        obj.append(&mut db, &before).unwrap();

        let snap = db.snapshot();
        let mut reader = SnapshotReader::new(&mut db, &snap, obj.root_page()).unwrap();
        assert_eq!(reader.size(), before.len() as u64);

        // Read the first third while the object is still unchanged.
        let mut first = vec![0u8; 50_000];
        let mut got = 0;
        while got < first.len() {
            let n = reader.read(&mut db, &mut first[got..]);
            assert!(n > 0, "premature EOF at {got}");
            got += n;
        }
        assert_eq!(first, before[..50_000], "{spec:?}");

        // Writer churn: every op commits a new version.
        obj.insert(&mut db, 10_000, &fill(30_000, 2)).unwrap();
        obj.delete(&mut db, 70_000, 40_000).unwrap();
        obj.append(&mut db, &fill(20_000, 3)).unwrap();
        assert_ne!(obj.snapshot(&db), before, "live state moved on");

        // The in-flight reader keeps producing the snapshot's bytes...
        let rest = reader.read_to_end(&mut db);
        assert_eq!(rest, before[50_000..], "{spec:?}: tail diverged");
        // ...and a reader opened late on the same snapshot agrees.
        let mut late = SnapshotReader::new(&mut db, &snap, obj.root_page()).unwrap();
        assert_eq!(late.read_to_end(&mut db), before, "{spec:?}: late reader");

        // Releasing the pin lets deferred frees drain on the next commit.
        db.release_snapshot(snap);
        obj.append(&mut db, b"one more commit").unwrap();
        assert!(
            db.deferred_extents().is_empty(),
            "{spec:?}: frees reclaimed after release"
        );
        obj.check_invariants(&db).unwrap();
    }
}

/// Seeking a snapshot reader visits the same bytes a contiguous scan
/// does, including after the writer has rewritten those ranges.
#[test]
fn snapshot_reader_random_access_matches_snapshot_bytes() {
    let mut db = mvcc_db();
    let mut obj = ManagerSpec::eos(8).create(&mut db).unwrap();
    let before = fill(90_000, 4);
    obj.append(&mut db, &before).unwrap();

    let snap = db.snapshot();
    obj.delete(&mut db, 0, 45_000).unwrap();
    obj.insert(&mut db, 1_000, &fill(5_000, 5)).unwrap();

    let mut reader = SnapshotReader::new(&mut db, &snap, obj.root_page()).unwrap();
    for &(off, len) in &[(0usize, 100usize), (89_000, 1_000), (40_000, 8_192), (1, 1)] {
        reader.seek(off as u64);
        let mut out = vec![0u8; len];
        let mut got = 0;
        while got < len {
            let n = reader.read(&mut db, &mut out[got..]);
            assert!(n > 0);
            got += n;
        }
        assert_eq!(out, before[off..off + len], "range {off}+{len}");
    }
    db.release_snapshot(snap);
}

/// A transaction's operations become visible as ONE committed version,
/// and the version counter advances exactly once.
#[test]
fn transactions_commit_atomically() {
    for spec in specs() {
        let mut db = mvcc_db();
        let mut obj = spec.create(&mut db).unwrap();
        let mut model = fill(80_000, 6);
        obj.append(&mut db, &model).unwrap();

        let v_before = db.current_version();
        obj = db
            .txn(|db| {
                let mut obj = lobstore::open_object(db, obj.kind(), obj.root_page())?;
                obj.append(db, &fill(12_000, 7))?;
                obj.insert(db, 5_000, &fill(3_000, 8))?;
                obj.delete(db, 60_000, 9_000)?;
                Ok(obj)
            })
            .unwrap();
        assert_eq!(
            db.current_version(),
            v_before + 1,
            "{spec:?}: one version per transaction"
        );
        model.extend(fill(12_000, 7));
        model.splice(5_000..5_000, fill(3_000, 8));
        model.drain(60_000..69_000);
        assert_eq!(obj.snapshot(&db), model, "{spec:?}");
        obj.check_invariants(&db).unwrap();
    }
}

/// A transaction whose closure fails rolls back completely: bytes,
/// version counter, and allocator maps all return to the pre-txn state.
#[test]
fn failed_transactions_roll_back() {
    for spec in specs() {
        let mut db = mvcc_db();
        let mut obj = spec.create(&mut db).unwrap();
        let model = fill(70_000, 9);
        obj.append(&mut db, &model).unwrap();
        db.checkpoint();

        let v_before = db.current_version();
        let meta_before = db.meta_pages_allocated();
        let leaf_before = db.leaf_pages_allocated();
        let kind = obj.kind();
        let root = obj.root_page();

        let err = db
            .txn(|db| -> lobstore::Result<()> {
                let mut obj = lobstore::open_object(db, kind, root)?;
                obj.append(db, &fill(20_000, 10))?;
                obj.insert(db, 2_000, &fill(6_000, 11))?;
                obj.delete(db, 30_000, 10_000)?;
                Err(LobError::Corrupt("deliberate abort".into()))
            })
            .unwrap_err();
        assert!(matches!(err, LobError::Corrupt(_)), "{spec:?}: {err}");

        assert_eq!(db.current_version(), v_before, "{spec:?}: no version");
        assert_eq!(
            db.meta_pages_allocated(),
            meta_before,
            "{spec:?}: META allocations rolled back"
        );
        assert_eq!(
            db.leaf_pages_allocated(),
            leaf_before,
            "{spec:?}: LEAF allocations rolled back"
        );
        let obj = lobstore::open_object(&mut db, kind, root).unwrap();
        assert_eq!(obj.snapshot(&db), model, "{spec:?}: bytes restored");
        obj.check_invariants(&db).unwrap();
        db.verify_alloc_log().unwrap();

        // The database keeps working after a rollback.
        let mut obj = lobstore::open_object(&mut db, kind, root).unwrap();
        obj.append(&mut db, b"life goes on").unwrap();
        obj.check_invariants(&db).unwrap();
    }
}

/// With the allocation log on, a crash right after any operation
/// replays to that operation's committed version — no checkpoint
/// needed (the log subsumes the directory-flush requirement).
#[test]
fn crash_after_each_op_recovers_the_committed_version() {
    for spec in specs() {
        let mut db = mvcc_db();
        let mut obj = spec.create(&mut db).unwrap();
        db.checkpoint();
        let kind = obj.kind();
        let root = obj.root_page();
        let mut model: Vec<u8> = Vec::new();

        for (i, action) in [0usize, 1, 2, 0, 2, 1, 0].iter().enumerate() {
            match action {
                0 => {
                    let bytes = fill(25_000, i);
                    obj.append(&mut db, &bytes).unwrap();
                    model.extend(bytes);
                }
                1 => {
                    let at = model.len() / 3;
                    let bytes = fill(8_000, i + 100);
                    obj.insert(&mut db, at as u64, &bytes).unwrap();
                    model.splice(at..at, bytes);
                }
                _ => {
                    let at = model.len() / 4;
                    let len = (model.len() - at).min(9_000);
                    obj.delete(&mut db, at as u64, len as u64).unwrap();
                    model.drain(at..at + len);
                }
            }
            db.crash_and_reboot();
            obj = lobstore::open_object(&mut db, kind, root).unwrap();
            assert_eq!(
                obj.snapshot(&db),
                model,
                "{spec:?}: step {i} lost committed bytes"
            );
            obj.check_invariants(&db).unwrap();
            db.verify_alloc_log().unwrap();
        }
    }
}

/// Transactions and crashes compose: a crash after a committed
/// transaction replays the whole batch; after a rolled-back one it
/// replays none of it.
#[test]
fn crash_replays_committed_transactions_and_forgets_aborted_ones() {
    let mut db = mvcc_db();
    let mut obj = ManagerSpec::esm(4).create(&mut db).unwrap();
    let kind = obj.kind();
    let root = obj.root_page();
    let mut model = fill(40_000, 20);
    obj.append(&mut db, &model).unwrap();

    // Committed transaction, then crash.
    db.txn(|db| {
        let mut obj = lobstore::open_object(db, kind, root)?;
        obj.append(db, &fill(10_000, 21))?;
        obj.delete(db, 0, 5_000)?;
        Ok(())
    })
    .unwrap();
    model.extend(fill(10_000, 21));
    model.drain(0..5_000);
    db.crash_and_reboot();
    let obj = lobstore::open_object(&mut db, kind, root).unwrap();
    assert_eq!(obj.snapshot(&db), model, "committed txn survives the crash");

    // Aborted transaction, then crash.
    let _ = db.txn(|db| -> lobstore::Result<()> {
        let mut obj = lobstore::open_object(db, kind, root)?;
        obj.append(db, &fill(15_000, 22))?;
        Err(LobError::Corrupt("abort".into()))
    });
    db.crash_and_reboot();
    let obj = lobstore::open_object(&mut db, kind, root).unwrap();
    assert_eq!(obj.snapshot(&db), model, "aborted txn leaves no trace");
    obj.check_invariants(&db).unwrap();
    db.verify_alloc_log().unwrap();
}

/// Snapshot bookkeeping survives image round-trips and stays observable
/// through the public counters.
#[test]
fn snapshot_accounting_is_observable() {
    let mut db = mvcc_db();
    let mut obj = ManagerSpec::starburst().create(&mut db).unwrap();
    obj.append(&mut db, &fill(60_000, 30)).unwrap();

    assert_eq!(db.pinned_snapshots(), 0);
    let s1 = db.snapshot();
    let s2 = db.snapshot();
    assert_eq!(db.pinned_snapshots(), 2);
    assert_eq!(s1.version(), s2.version(), "no writes in between");

    obj.delete(&mut db, 0, 30_000).unwrap();
    assert!(
        !db.deferred_extents().is_empty(),
        "pinned snapshots defer frees"
    );
    db.release_snapshot(s1);
    assert_eq!(db.pinned_snapshots(), 1);
    db.release_snapshot(s2);
    assert_eq!(db.pinned_snapshots(), 0);
    obj.append(&mut db, b"x").unwrap();
    assert!(db.deferred_extents().is_empty(), "drained once unpinned");
}
