//! Health telemetry is a *recount*, not a shadow ledger: for any
//! operation history, the sampler's published gauges must agree exactly
//! with independent walks of the same state (DESIGN.md §14).
//!
//! Three accountings of allocated LEAF/META pages must coincide:
//!
//! 1. the bitmap recount behind `Db::leaf_frag_stats` (cost-free peeks
//!    of the space directories — what the sampler publishes);
//! 2. the running allocation counters (`Db::leaf_pages_allocated`);
//! 3. the extent walk `Db::leaf_allocated_ranges` (the fsck-style
//!    enumeration `lobctl check` audits objects against).
//!
//! The same must hold after `checkpoint` + `crash_and_reboot`: health is
//! recomputed from disk state, so a reboot cannot change it.

use lobstore::{object_health, Db, ManagerSpec};
use proptest::prelude::*;

/// Abstract churn op; fractions scale to the current object size.
#[derive(Clone, Debug)]
enum Op {
    Append { len: usize },
    Delete { at: f64, len: usize },
    Recreate,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1usize..40_000).prop_map(|len| Op::Append { len }),
        (0.0f64..=1.0, 1usize..30_000).prop_map(|(at, len)| Op::Delete { at, len }),
        Just(Op::Recreate),
    ]
}

fn fill(len: usize, seed: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 31 + seed * 7 + 3) % 251) as u8)
        .collect()
}

/// Assert the three accountings agree for both areas, and that the
/// published gauges carry exactly the recounted values.
fn assert_health_closure(db: &mut Db, context: &str) {
    let sample = db.sample_health();
    for (area, st, counter, ranges) in [
        (
            "leaf",
            sample.leaf.clone(),
            db.leaf_pages_allocated(),
            db.leaf_allocated_ranges(),
        ),
        (
            "meta",
            sample.meta.clone(),
            db.meta_pages_allocated(),
            db.meta_allocated_ranges(),
        ),
    ] {
        let walked: u64 = ranges.iter().map(|e| u64::from(e.pages)).sum();
        assert_eq!(
            st.allocated_pages, counter,
            "{context}: {area} bitmap recount vs running counter"
        );
        assert_eq!(
            st.allocated_pages, walked,
            "{context}: {area} bitmap recount vs extent walk"
        );
        assert_eq!(
            st.allocated_pages + st.free_pages,
            st.total_pages(),
            "{context}: {area} allocated + free covers every data page"
        );
        assert_eq!(
            st.free_pages,
            st.free_runs.iter().map(|&r| u64::from(r)).sum::<u64>(),
            "{context}: {area} free runs partition the free pages"
        );
        assert_eq!(
            u64::from(st.largest_free_run),
            st.free_runs
                .iter()
                .map(|&r| u64::from(r))
                .max()
                .unwrap_or(0),
            "{context}: {area} largest run is the max run"
        );
        // The gauges the sampler just published are the same numbers.
        for (metric, expect) in [
            ("allocated_pages", st.allocated_pages as f64),
            ("free_pages", st.free_pages as f64),
            ("largest_free_run_pages", f64::from(st.largest_free_run)),
            ("frag_ratio", st.frag_ratio()),
            ("utilization", st.utilization()),
        ] {
            let name = format!("health.{area}.{metric}");
            let got = lobstore_obs::gauge_value(&name)
                .unwrap_or_else(|| panic!("{context}: gauge {name} unpublished"));
            assert_eq!(got, expect, "{context}: gauge {name}");
        }
    }
}

fn run_history(spec: ManagerSpec, ops: &[Op]) {
    lobstore_obs::reset();
    let mut db = Db::paper_default();
    let mut obj = spec.create(&mut db).unwrap();
    let mut size = 0usize;
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Append { len } => {
                obj.append(&mut db, &fill(len, i)).unwrap();
                size += len;
            }
            Op::Delete { at, len } => {
                if size == 0 {
                    continue;
                }
                let off = ((at * size as f64) as usize).min(size - 1);
                let len = len.min(size - off);
                if len == 0 {
                    continue;
                }
                obj.delete(&mut db, off as u64, len as u64).unwrap();
                size -= len;
            }
            Op::Recreate => {
                obj.destroy(&mut db).unwrap();
                obj = spec.create(&mut db).unwrap();
                size = 0;
            }
        }
    }
    assert_health_closure(&mut db, &format!("{} live", spec.label()));

    // Object health agrees with the object's own walk.
    let health = object_health(obj.as_ref(), &db);
    let util = obj.utilization(&db);
    assert_eq!(health.object_bytes, util.object_bytes);
    assert_eq!(health.segments, obj.segments(&db).len() as u64);
    assert!((0.0..=1.0).contains(&health.contiguity()));

    // Flushed state survives a crash with identical health: the recount
    // only ever looks at what the disk (plus pool) holds.
    let before = db.sample_health();
    db.checkpoint();
    db.crash_and_reboot();
    let after = db.sample_health();
    assert_eq!(before.leaf, after.leaf, "{}: reboot", spec.label());
    assert_eq!(before.meta, after.meta, "{}: reboot", spec.label());
    assert_health_closure(&mut db, &format!("{} rebooted", spec.label()));
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        max_shrink_iters: 100,
        ..ProptestConfig::default()
    })]

    #[test]
    fn esm_health_matches_recount(ops in prop::collection::vec(op_strategy(), 1..25)) {
        run_history(ManagerSpec::esm(4), &ops);
    }

    #[test]
    fn eos_health_matches_recount(ops in prop::collection::vec(op_strategy(), 1..25)) {
        run_history(ManagerSpec::eos(16), &ops);
    }

    #[test]
    fn starburst_health_matches_recount(ops in prop::collection::vec(op_strategy(), 1..18)) {
        run_history(ManagerSpec::starburst(), &ops);
    }
}

#[test]
fn sampler_tick_survives_reboot_monotonically() {
    // The op tick is session state, not disk state: after a reboot the
    // count keeps rising from where it was, so series ticks from one
    // process stay strictly increasing (the bench report relies on it).
    lobstore_obs::reset();
    let mut db = Db::paper_default();
    db.set_health_sampling(1);
    let mut obj = ManagerSpec::eos(16).create(&mut db).unwrap();
    obj.append(&mut db, &[7u8; 50_000]).unwrap();
    let ticks_before = db.health_ops();
    db.checkpoint();
    db.crash_and_reboot();
    obj.append(&mut db, &[8u8; 10_000]).unwrap();
    assert!(db.health_ops() > ticks_before);
    let s = lobstore_obs::series_snapshot("health.leaf.allocated_pages").unwrap();
    for w in s.points.windows(2) {
        assert!(w[0].tick < w[1].tick, "ticks strictly increase");
    }
}
