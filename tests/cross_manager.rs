//! Cross-manager equivalence: the three storage structures are different
//! *performance* designs over the same abstraction, so any operation
//! sequence must produce byte-identical objects on all of them.

use lobstore::{Db, LargeObject, ManagerSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn all_specs() -> Vec<ManagerSpec> {
    vec![
        ManagerSpec::esm(1),
        ManagerSpec::esm(16),
        ManagerSpec::eos(1),
        ManagerSpec::eos(64),
        ManagerSpec::starburst(),
    ]
}

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64 * 131 + seed * 7 + 3) % 251) as u8)
        .collect()
}

/// Drive the same scripted edit session everywhere and diff the results.
#[test]
fn scripted_session_is_identical_everywhere() {
    let mut snapshots = Vec::new();
    for spec in all_specs() {
        let mut db = Db::paper_default();
        let mut obj = spec.create(&mut db).unwrap();
        obj.append(&mut db, &pattern(100_000, 1)).unwrap();
        obj.insert(&mut db, 40_000, &pattern(9_000, 2)).unwrap();
        obj.delete(&mut db, 20_000, 15_000).unwrap();
        obj.replace(&mut db, 0, &pattern(5_000, 3)).unwrap();
        obj.append(&mut db, &pattern(30_000, 4)).unwrap();
        obj.insert(&mut db, 0, &pattern(777, 5)).unwrap();
        obj.delete(&mut db, 100_000, 10_000).unwrap();
        obj.trim(&mut db).unwrap();
        obj.check_invariants(&db).unwrap();
        assert_eq!(
            obj.size(&mut db),
            100_000 + 9_000 - 15_000 + 30_000 + 777 - 10_000
        );
        snapshots.push((spec.label(), obj.snapshot(&db)));
    }
    let (ref_label, reference) = &snapshots[0];
    for (label, snap) in &snapshots[1..] {
        assert_eq!(snap, reference, "{label} diverged from {ref_label}");
    }
}

/// Random sessions with a shared RNG seed: every manager must agree with
/// the in-memory reference model at every step.
#[test]
fn random_sessions_agree_with_model() {
    for spec in all_specs() {
        let mut db = Db::paper_default();
        let mut obj = spec.create(&mut db).unwrap();
        let mut model: Vec<u8> = Vec::new();
        let mut rng = StdRng::seed_from_u64(2024);
        let heavy = matches!(spec, ManagerSpec::Starburst { .. });
        let steps = if heavy { 40 } else { 90 };
        for step in 0..steps {
            match rng.gen_range(0..10) {
                0..=3 => {
                    let chunk = pattern(rng.gen_range(1..40_000), step);
                    let off = rng.gen_range(0..=model.len());
                    obj.insert(&mut db, off as u64, &chunk).unwrap();
                    model.splice(off..off, chunk.iter().copied());
                }
                4..=5 if !model.is_empty() => {
                    let off = rng.gen_range(0..model.len());
                    let len = rng.gen_range(1..=(model.len() - off).min(30_000));
                    obj.delete(&mut db, off as u64, len as u64).unwrap();
                    model.drain(off..off + len);
                }
                6..=7 if !model.is_empty() => {
                    let off = rng.gen_range(0..model.len());
                    let len = rng.gen_range(1..=(model.len() - off).min(10_000));
                    let patch = pattern(len, step + 1000);
                    obj.replace(&mut db, off as u64, &patch).unwrap();
                    model[off..off + len].copy_from_slice(&patch);
                }
                _ if !model.is_empty() => {
                    let off = rng.gen_range(0..model.len());
                    let len = rng.gen_range(1..=(model.len() - off).min(20_000));
                    let mut out = vec![0u8; len];
                    obj.read(&mut db, off as u64, &mut out).unwrap();
                    assert_eq!(out[..], model[off..off + len], "{}: read", spec.label());
                }
                _ => {}
            }
            obj.check_invariants(&db)
                .unwrap_or_else(|e| panic!("{} step {step}: {e}", spec.label()));
        }
        assert_eq!(obj.snapshot(&db), model, "{}", spec.label());
        // Tear down and verify no storage leaks.
        obj.destroy(&mut db).unwrap();
        assert_eq!(
            db.leaf_pages_allocated(),
            0,
            "{} leaked leaves",
            spec.label()
        );
        assert_eq!(db.meta_pages_allocated(), 0, "{} leaked meta", spec.label());
    }
}

/// Multiple objects of different kinds coexisting in one database.
#[test]
fn mixed_kinds_share_one_database() {
    let mut db = Db::paper_default();
    let mut objs: Vec<Box<dyn LargeObject>> = all_specs()
        .iter()
        .map(|s| s.create(&mut db).unwrap())
        .collect();
    for (i, obj) in objs.iter_mut().enumerate() {
        obj.append(&mut db, &pattern(50_000 + i * 1_000, i as u64))
            .unwrap();
    }
    // Interleaved edits must not interfere.
    for (i, obj) in objs.iter_mut().enumerate() {
        obj.insert(&mut db, 10_000, &pattern(2_000, 99 + i as u64))
            .unwrap();
    }
    for (i, obj) in objs.iter_mut().enumerate() {
        let mut expected = pattern(50_000 + i * 1_000, i as u64);
        let ins = pattern(2_000, 99 + i as u64);
        expected.splice(10_000..10_000, ins.iter().copied());
        assert_eq!(obj.snapshot(&db), expected, "object {i}");
        obj.check_invariants(&db).unwrap();
    }
    for obj in objs.iter_mut() {
        obj.destroy(&mut db).unwrap();
    }
    assert_eq!(db.leaf_pages_allocated(), 0);
    assert_eq!(db.meta_pages_allocated(), 0);
}

/// Objects survive a "restart": flush everything, drop the handles, and
/// re-open purely from the root page numbers.
#[test]
fn reopen_after_flush() {
    use lobstore::{EosObject, EsmObject, StarburstObject};
    let mut db = Db::paper_default();

    let mut esm = EsmObject::create(&mut db, lobstore::EsmParams { leaf_pages: 4 }).unwrap();
    let mut eos = EosObject::create(&mut db, lobstore::EosParams::default()).unwrap();
    let mut star = StarburstObject::create(&mut db, lobstore::StarburstParams::default()).unwrap();
    esm.append(&mut db, &pattern(30_000, 1)).unwrap();
    eos.append(&mut db, &pattern(30_000, 2)).unwrap();
    star.append(&mut db, &pattern(30_000, 3)).unwrap();
    let roots = (esm.root_page(), eos.root_page(), star.root_page());
    let _ = (esm, eos, star);

    // Flush all dirty pages (roots are only flushed lazily).
    db.pool().flush_all();

    let esm = EsmObject::open(&mut db, roots.0).unwrap();
    let eos = EosObject::open(&mut db, roots.1).unwrap();
    let star = StarburstObject::open(&mut db, roots.2).unwrap();
    assert_eq!(esm.snapshot(&db), pattern(30_000, 1));
    assert_eq!(eos.snapshot(&db), pattern(30_000, 2));
    assert_eq!(star.snapshot(&db), pattern(30_000, 3));
    // Kind confusion is rejected.
    assert!(EsmObject::open(&mut db, roots.1).is_err());
    assert!(StarburstObject::open(&mut db, roots.0).is_err());
    assert!(EosObject::open(&mut db, roots.2).is_err());
}
