//! Randomized crash-recovery fuzzing: interleave operations, checkpoints,
//! and crashes at arbitrary points; after every crash the object must
//! read back exactly as of the last checkpoint.

use lobstore::{Db, ManagerSpec};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Step {
    Insert { at: f64, len: usize },
    Delete { at: f64, len: usize },
    Append { len: usize },
    Checkpoint,
    Crash,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (0.0f64..=1.0, 1usize..20_000).prop_map(|(at, len)| Step::Insert { at, len }),
        2 => (0.0f64..=1.0, 1usize..15_000).prop_map(|(at, len)| Step::Delete { at, len }),
        2 => (1usize..20_000).prop_map(|len| Step::Append { len }),
        2 => Just(Step::Checkpoint),
        1 => Just(Step::Crash),
    ]
}

fn fill(len: usize, seed: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 41 + seed * 3 + 11) % 253) as u8)
        .collect()
}

fn run_fuzz(spec: ManagerSpec, steps: &[Step]) {
    let mut db = Db::paper_default();
    let mut obj = spec.create(&mut db).unwrap();
    let root = obj.root_page();
    // Live model (tracks the uncheckpointed state) and the checkpointed
    // model (what a crash must recover).
    let mut live: Vec<u8> = Vec::new();
    obj.append(&mut db, &fill(30_000, 0)).unwrap();
    live.extend(fill(30_000, 0));
    db.checkpoint();
    let mut checkpointed = live.clone();
    // After a crash, only one op may run before the next checkpoint —
    // the §3.3 discipline defers frees per *operation*, so the paper's
    // guarantee is one-op-deep. We model that by checkpointing whenever
    // an op follows another unflushed op.
    let mut dirty_ops = 0usize;

    for (i, step) in steps.iter().enumerate() {
        match step {
            Step::Insert { at, len } => {
                if dirty_ops >= 1 {
                    db.checkpoint();
                    checkpointed = live.clone();
                    dirty_ops = 0;
                }
                let off = ((at * live.len() as f64) as usize).min(live.len());
                let bytes = fill(*len, i);
                obj.insert(&mut db, off as u64, &bytes).unwrap();
                live.splice(off..off, bytes);
                dirty_ops += 1;
            }
            Step::Delete { at, len } => {
                if live.is_empty() {
                    continue;
                }
                if dirty_ops >= 1 {
                    db.checkpoint();
                    checkpointed = live.clone();
                    dirty_ops = 0;
                }
                let off = ((at * live.len() as f64) as usize).min(live.len() - 1);
                let len = (*len).min(live.len() - off);
                obj.delete(&mut db, off as u64, len as u64).unwrap();
                live.drain(off..off + len);
                dirty_ops += 1;
            }
            Step::Append { len } => {
                if dirty_ops >= 1 {
                    db.checkpoint();
                    checkpointed = live.clone();
                    dirty_ops = 0;
                }
                let bytes = fill(*len, i + 500);
                obj.append(&mut db, &bytes).unwrap();
                live.extend(bytes);
                dirty_ops += 1;
            }
            Step::Checkpoint => {
                db.checkpoint();
                checkpointed = live.clone();
                dirty_ops = 0;
            }
            Step::Crash => {
                db.crash_and_reboot();
                let recovered = lobstore::open_object(&mut db, obj.kind(), root).unwrap();
                assert_eq!(
                    recovered.snapshot(&db),
                    checkpointed,
                    "step {i}: crash did not recover the checkpoint"
                );
                recovered.check_invariants(&db).unwrap();
                obj = recovered;
                live = checkpointed.clone();
                dirty_ops = 0;
            }
        }
    }
    // Final sanity: live state is intact and invariants hold.
    assert_eq!(obj.snapshot(&db), live);
    obj.check_invariants(&db).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, max_shrink_iters: 100, ..ProptestConfig::default() })]

    #[test]
    fn esm_recovers_after_random_crashes(steps in prop::collection::vec(step_strategy(), 1..30)) {
        run_fuzz(ManagerSpec::esm(4), &steps);
    }

    #[test]
    fn eos_recovers_after_random_crashes(steps in prop::collection::vec(step_strategy(), 1..30)) {
        run_fuzz(ManagerSpec::eos(4), &steps);
    }

    #[test]
    fn starburst_recovers_after_random_crashes(steps in prop::collection::vec(step_strategy(), 1..16)) {
        run_fuzz(ManagerSpec::starburst(), &steps);
    }
}
