//! Property-based model checking: arbitrary operation sequences against
//! an in-memory reference `Vec<u8>`, for every manager, plus allocator
//! and buffer-pool properties.

use lobstore::{Db, ManagerSpec};
use proptest::prelude::*;

/// One abstract operation; offsets/lengths are fractions so they stay
/// meaningful as the object grows and shrinks.
#[derive(Clone, Debug)]
enum Op {
    Append { len: usize },
    Insert { at: f64, len: usize },
    Delete { at: f64, len: usize },
    Replace { at: f64, len: usize },
    Read { at: f64, len: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1usize..30_000).prop_map(|len| Op::Append { len }),
        (0.0f64..=1.0, 1usize..30_000).prop_map(|(at, len)| Op::Insert { at, len }),
        (0.0f64..=1.0, 1usize..20_000).prop_map(|(at, len)| Op::Delete { at, len }),
        (0.0f64..=1.0, 1usize..10_000).prop_map(|(at, len)| Op::Replace { at, len }),
        (0.0f64..=1.0, 1usize..10_000).prop_map(|(at, len)| Op::Read { at, len }),
    ]
}

fn fill(len: usize, seed: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 37 + seed * 11 + 5) % 251) as u8)
        .collect()
}

fn run_model(spec: ManagerSpec, ops: &[Op]) {
    let mut db = Db::paper_default();
    let mut obj = spec.create(&mut db).unwrap();
    let mut model: Vec<u8> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let size = model.len();
        match *op {
            Op::Append { len } => {
                let bytes = fill(len, i);
                obj.append(&mut db, &bytes).unwrap();
                model.extend_from_slice(&bytes);
            }
            Op::Insert { at, len } => {
                let off = (at * size as f64) as usize;
                let bytes = fill(len, i);
                obj.insert(&mut db, off as u64, &bytes).unwrap();
                model.splice(off..off, bytes.iter().copied());
            }
            Op::Delete { at, len } => {
                if size == 0 {
                    continue;
                }
                let off = ((at * size as f64) as usize).min(size - 1);
                let len = len.min(size - off);
                if len == 0 {
                    continue;
                }
                obj.delete(&mut db, off as u64, len as u64).unwrap();
                model.drain(off..off + len);
            }
            Op::Replace { at, len } => {
                if size == 0 {
                    continue;
                }
                let off = ((at * size as f64) as usize).min(size - 1);
                let len = len.min(size - off);
                if len == 0 {
                    continue;
                }
                let bytes = fill(len, i + 7777);
                obj.replace(&mut db, off as u64, &bytes).unwrap();
                model[off..off + len].copy_from_slice(&bytes);
            }
            Op::Read { at, len } => {
                if size == 0 {
                    continue;
                }
                let off = ((at * size as f64) as usize).min(size - 1);
                let len = len.min(size - off);
                if len == 0 {
                    continue;
                }
                let mut out = vec![0u8; len];
                obj.read(&mut db, off as u64, &mut out).unwrap();
                prop_assert_eq_bytes(&out, &model[off..off + len], i);
            }
        }
        obj.check_invariants(&db)
            .unwrap_or_else(|e| panic!("op {i} ({op:?}): {e}"));
        assert_eq!(obj.size(&mut db), model.len() as u64, "size after op {i}");
    }
    assert_eq!(obj.snapshot(&db), model, "final content");
    obj.destroy(&mut db).unwrap();
    assert_eq!(db.leaf_pages_allocated(), 0, "leaf leak");
    assert_eq!(db.meta_pages_allocated(), 0, "meta leak");
}

fn prop_assert_eq_bytes(a: &[u8], b: &[u8], op: usize) {
    if a != b {
        let first = a.iter().zip(b).position(|(x, y)| x != y);
        panic!("read mismatch at op {op}, first divergence at {first:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    #[test]
    fn esm_small_leaves_match_model(ops in prop::collection::vec(op_strategy(), 1..35)) {
        run_model(ManagerSpec::esm(1), &ops);
    }

    #[test]
    fn esm_large_leaves_match_model(ops in prop::collection::vec(op_strategy(), 1..35)) {
        run_model(ManagerSpec::esm(16), &ops);
    }

    #[test]
    fn eos_small_threshold_matches_model(ops in prop::collection::vec(op_strategy(), 1..35)) {
        run_model(ManagerSpec::eos(1), &ops);
    }

    #[test]
    fn eos_large_threshold_matches_model(ops in prop::collection::vec(op_strategy(), 1..35)) {
        run_model(ManagerSpec::eos(64), &ops);
    }

    #[test]
    fn starburst_matches_model(ops in prop::collection::vec(op_strategy(), 1..20)) {
        run_model(ManagerSpec::starburst(), &ops);
    }
}

// ---- allocator properties ------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Random allocate/free interleavings never hand out overlapping
    /// extents, and freeing everything returns the allocator to empty.
    #[test]
    fn buddy_never_overlaps(script in prop::collection::vec((1u32..100, any::<bool>()), 1..60)) {
        use lobstore::buddy::{BuddyConfig, BuddyManager, Extent};
        use lobstore::bufpool::{BufferPool, PoolConfig};
        use lobstore::simdisk::{AreaId, CostModel, SimDisk};

        let mut pool = BufferPool::new(SimDisk::new(2, CostModel::FREE), PoolConfig::default());
        let mut mgr = BuddyManager::new(BuddyConfig::new(AreaId::LEAF, 256));
        let mut held: Vec<Extent> = Vec::new();

        for (pages, free_one) in script {
            if free_one && !held.is_empty() {
                let e = held.swap_remove(pages as usize % held.len());
                mgr.free(&mut pool, e);
            } else {
                let e = mgr.allocate(&mut pool, pages);
                for h in &held {
                    prop_assert!(e.end() <= h.start || h.end() <= e.start,
                        "overlap {e} vs {h}");
                }
                held.push(e);
            }
            let total: u32 = held.iter().map(|e| e.pages).sum();
            prop_assert_eq!(mgr.allocated_pages(), u64::from(total));
        }
        for e in held.drain(..) {
            mgr.free(&mut pool, e);
        }
        prop_assert_eq!(mgr.allocated_pages(), 0);
    }

    /// The buffer pool preserves page contents across arbitrary
    /// fix/modify/evict patterns (write-back correctness).
    #[test]
    fn bufpool_preserves_contents(script in prop::collection::vec((0u32..40, any::<u8>()), 1..80)) {
        use lobstore::bufpool::{BufferPool, PoolConfig};
        use lobstore::simdisk::{AreaId, CostModel, PageId, SimDisk};
        use std::collections::HashMap;

        let pool = BufferPool::new(
            SimDisk::new(1, CostModel::FREE),
            PoolConfig { frames: 4, max_buffered_seg: 2 },
        );
        let mut model: HashMap<u32, u8> = HashMap::new();
        for (page, val) in script {
            let pid = PageId::new(AreaId(0), page);
            let r = pool.fix(pid);
            let cur = pool.with_page(r, |p| p[0]);
            prop_assert_eq!(cur, model.get(&page).copied().unwrap_or(0),
                "stale content on page {}", page);
            pool.with_page_mut(r, |p| p[0] = val);
            pool.unfix(r);
            model.insert(page, val);
        }
        pool.flush_all();
        for (page, val) in model {
            let mut out = [0u8; 1];
            pool.disk().peek(AreaId(0), page, &mut out);
            prop_assert_eq!(out[0], val);
        }
    }
}
