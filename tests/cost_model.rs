//! End-to-end cost-model checks: the numbers the paper derives
//! analytically must fall out of the full stack.

use lobstore::{build_object, random_reads, sequential_scan, Db, ManagerSpec};

const MB: u64 = 1 << 20;

/// §4.1: one seek per call, 4 ms per page. A cold 100-byte read of a
/// built object costs exactly one call + one page = 37 ms.
#[test]
fn single_page_read_costs_37ms() {
    let mut db = Db::paper_default();
    let (obj, _) = build_object(&mut db, &ManagerSpec::starburst(), MB, 256 * 1024).unwrap();
    db.reset_io_stats();
    let mut out = [0u8; 100];
    obj.read(&mut db, 512 * 1024 + 10, &mut out).unwrap();
    assert_eq!(db.io_stats().time_us, 37_000);
    assert_eq!(db.io_stats().read_calls, 1);
}

/// §4.4.2 / Table 2 analysis: a large unaligned read bypasses the pool
/// and performs the 3-step I/O — 3 seeks + the pages.
#[test]
fn large_unaligned_read_is_three_step() {
    let mut db = Db::paper_default();
    let (mut obj, _) = build_object(&mut db, &ManagerSpec::starburst(), MB, 256 * 1024).unwrap();
    // Steady state: one exact segment.
    obj.insert(&mut db, 100, b"x").unwrap();
    db.reset_io_stats();
    let mut out = vec![0u8; 100_000];
    obj.read(&mut db, 123_456, &mut out).unwrap();
    let s = db.io_stats();
    let pages = s.pages_read;
    assert_eq!(s.read_calls, 3, "{s}");
    assert!((25..=26).contains(&pages), "{s}");
    assert_eq!(s.time_us, 3 * 33_000 + pages * 4_000);
}

/// §4.3: scanning approaches the transfer rate for segment-based layouts
/// but degenerates to one-seek-per-page for 1-page ESM leaves.
#[test]
fn scan_rates_bracket_the_structures() {
    let scan = |spec: ManagerSpec| {
        let mut db = Db::paper_default();
        let (obj, _) = build_object(&mut db, &spec, MB, 64 * 1024).unwrap();
        sequential_scan(&mut db, obj.as_ref(), 64 * 1024)
            .unwrap()
            .seconds()
    };
    let floor = MB as f64 / 1024.0 / 1000.0; // pure transfer
    let esm1 = scan(ManagerSpec::esm(1));
    let esm64 = scan(ManagerSpec::esm(64));
    let star = scan(ManagerSpec::starburst());
    // 1-page leaves: ~37 ms per page → ≈ 9.5 s per MB.
    assert!(esm1 > 8.0 * floor, "ESM/1 scan {esm1:.2}s");
    assert!(esm64 < 2.0 * floor, "ESM/64 scan {esm64:.2}s");
    assert!(star < 2.0 * floor, "Starburst scan {star:.2}s");
}

/// Table 3 shape at 1 MB scale: a steady-state Starburst insert costs a
/// whole-object copy (≈ 2×1 MB transfer + chunking seeks ≈ 2.2 s).
#[test]
fn starburst_insert_is_whole_object_copy() {
    let mut db = Db::paper_default();
    let (mut obj, _) = build_object(&mut db, &ManagerSpec::starburst(), MB, 256 * 1024).unwrap();
    obj.insert(&mut db, 1, b"warm").unwrap();
    db.reset_io_stats();
    obj.insert(&mut db, MB / 2, b"x").unwrap();
    let t = db.io_stats().time_s();
    assert!((2.0..2.6).contains(&t), "steady-state insert took {t:.2}s");
}

/// §4.4.3: ESM/EOS update cost does not depend on the object size (we
/// compare a 1 MB and a 4 MB object); Starburst's scales linearly.
#[test]
fn update_cost_scaling() {
    let update_cost = |spec: ManagerSpec, mb: u64| {
        let mut db = Db::paper_default();
        let (mut obj, _) = build_object(&mut db, &spec, mb * MB, 64 * 1024).unwrap();
        // Warm to steady state.
        for i in 0..10u64 {
            let size = obj.size(&mut db);
            obj.insert(&mut db, (i * 97_001) % size, &[7u8; 5_000])
                .unwrap();
            let size = obj.size(&mut db);
            obj.delete(&mut db, (i * 31_337) % (size - 5_000), 5_000)
                .unwrap();
        }
        let before = db.io_stats();
        for i in 0..5u64 {
            let size = obj.size(&mut db);
            obj.insert(&mut db, (i * 131_071) % size, &[9u8; 5_000])
                .unwrap();
        }
        (db.io_stats() - before).time_s() / 5.0
    };
    for spec in [ManagerSpec::esm(16), ManagerSpec::eos(16)] {
        let small = update_cost(spec, 1);
        let large = update_cost(spec, 4);
        assert!(
            large < small * 2.0,
            "{}: update cost grew with object size ({small:.2}s → {large:.2}s)",
            spec.label()
        );
    }
    let small = update_cost(ManagerSpec::starburst(), 1);
    let large = update_cost(ManagerSpec::starburst(), 4);
    assert!(
        large > small * 3.0,
        "Starburst update must scale with size ({small:.2}s → {large:.2}s)"
    );
}

/// §4.2: Starburst/EOS build time beats or equals ESM's best case at the
/// same append size.
#[test]
fn starburst_eos_builds_dominate_esm() {
    for append_kb in [4usize, 16, 64] {
        let build = |spec: ManagerSpec| {
            let mut db = Db::paper_default();
            let (_, rep) = build_object(&mut db, &spec, MB, append_kb * 1024).unwrap();
            rep.seconds()
        };
        let esm_best = [1u32, 4, 16, 64]
            .iter()
            .map(|&p| build(ManagerSpec::esm(p)))
            .fold(f64::INFINITY, f64::min);
        let star = build(ManagerSpec::starburst());
        let eos = build(ManagerSpec::eos(4));
        assert!(
            star <= esm_best * 1.05,
            "{append_kb}K: star {star:.2} vs esm {esm_best:.2}"
        );
        assert!(
            eos <= esm_best * 1.05,
            "{append_kb}K: eos {eos:.2} vs esm {esm_best:.2}"
        );
        assert!(
            (star - eos).abs() < 0.05 * star.max(eos),
            "same growth pattern"
        );
    }
}

/// Table 2 at 1 MB: the read-cost ladder 37 / ~54 / ~200 ms.
#[test]
fn table2_read_ladder() {
    let mut db = Db::paper_default();
    let (mut obj, _) = build_object(&mut db, &ManagerSpec::starburst(), MB, 256 * 1024).unwrap();
    obj.insert(&mut db, 9, b"steady").unwrap();
    let r100 = random_reads(&mut db, obj.as_ref(), 200, 100, 1)
        .unwrap()
        .avg_read_ms();
    let r10k = random_reads(&mut db, obj.as_ref(), 200, 10_000, 2)
        .unwrap()
        .avg_read_ms();
    let r100k = random_reads(&mut db, obj.as_ref(), 100, 100_000, 3)
        .unwrap()
        .avg_read_ms();
    assert!((33.0..41.0).contains(&r100), "{r100:.1}");
    assert!((45.0..65.0).contains(&r10k), "{r10k:.1}");
    assert!((180.0..215.0).contains(&r100k), "{r100k:.1}");
}

/// EOS's free lunches: suffix deletes and whole-segment deletes move no
/// data at all.
#[test]
fn eos_free_deletes() {
    let mut db = Db::paper_default();
    let (mut obj, _) = build_object(&mut db, &ManagerSpec::eos(1), MB, 256 * 1024).unwrap();
    db.reset_io_stats();
    obj.delete(&mut db, MB - 100_000, 100_000).unwrap();
    let s = db.io_stats();
    assert_eq!(s.pages(), 0, "suffix delete moved data: {s}");
}
