//! Deep-tree coverage: with the paper's 507/511 fan-out, a 10 MB object
//! needs at most two index levels, so the default experiments barely
//! exercise interior-node splits and merges. Here we shrink the fan-out
//! to 4–6 entries per node and drive the full manager stack over trees
//! four and five levels tall.

use lobstore::{Db, DbConfig, ManagerSpec, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tiny_db(fanout: usize) -> Db {
    Db::new(DbConfig {
        tree: TreeConfig::tiny(fanout),
        ..DbConfig::default()
    })
}

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64 * 61 + seed * 17 + 3) % 251) as u8)
        .collect()
}

/// Build enough 1-page ESM leaves that the tree is several levels tall,
/// then read across the whole range and dismantle it again.
#[test]
fn esm_grows_and_shrinks_through_many_levels() {
    let mut db = tiny_db(4);
    let mut obj = ManagerSpec::esm(1).create(&mut db).unwrap();
    let mut model = Vec::new();
    // 300 leaves at fan-out 4 → height ≥ 4.
    for i in 0..300u64 {
        let chunk = pattern(4096, i);
        obj.append(&mut db, &chunk).unwrap();
        model.extend_from_slice(&chunk);
    }
    obj.check_invariants(&db).unwrap();
    assert!(
        db.meta_pages_allocated() > 80,
        "expected a bushy tree, got {} index pages",
        db.meta_pages_allocated()
    );
    // Random reads across level boundaries.
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..50 {
        let off = rng.gen_range(0..model.len() - 10_000);
        let mut out = vec![0u8; 10_000];
        obj.read(&mut db, off as u64, &mut out).unwrap();
        assert_eq!(out[..], model[off..off + 10_000]);
    }
    // Delete from the middle until the object is small again; every step
    // must keep counts, fill factors, and content consistent.
    while model.len() > 50_000 {
        let len = rng.gen_range(1..30_000).min(model.len() - 1);
        let off = rng.gen_range(0..model.len() - len);
        obj.delete(&mut db, off as u64, len as u64).unwrap();
        model.drain(off..off + len);
        obj.check_invariants(&db)
            .unwrap_or_else(|e| panic!("{} bytes left: {e}", model.len()));
    }
    assert_eq!(obj.snapshot(&db), model);
    obj.destroy(&mut db).unwrap();
    assert_eq!(db.meta_pages_allocated(), 0);
    assert_eq!(db.leaf_pages_allocated(), 0);
}

/// EOS under a deep tree: T=1 keeps segments small, so the entry count —
/// and the index — stays large while inserts and deletes churn.
#[test]
fn eos_mixed_ops_on_a_deep_tree() {
    let mut db = tiny_db(5);
    let mut obj = ManagerSpec::eos(1).create(&mut db).unwrap();
    let mut model: Vec<u8> = Vec::new();
    let mut rng = StdRng::seed_from_u64(77);
    for step in 0..250 {
        match rng.gen_range(0..10) {
            0..=4 => {
                let chunk = pattern(rng.gen_range(1..12_000), step);
                let off = rng.gen_range(0..=model.len());
                obj.insert(&mut db, off as u64, &chunk).unwrap();
                model.splice(off..off, chunk.iter().copied());
            }
            5..=7 if !model.is_empty() => {
                let off = rng.gen_range(0..model.len());
                let len = rng.gen_range(1..=(model.len() - off).min(9_000));
                obj.delete(&mut db, off as u64, len as u64).unwrap();
                model.drain(off..off + len);
            }
            _ if !model.is_empty() => {
                let off = rng.gen_range(0..model.len());
                let len = rng.gen_range(1..=(model.len() - off).min(6_000));
                let mut out = vec![0u8; len];
                obj.read(&mut db, off as u64, &mut out).unwrap();
                assert_eq!(out[..], model[off..off + len], "step {step}");
            }
            _ => {}
        }
        obj.check_invariants(&db)
            .unwrap_or_else(|e| panic!("step {step}: {e}"));
    }
    assert_eq!(obj.snapshot(&db), model);
    let segs = obj.segments(&db);
    assert!(
        segs.len() > 25,
        "T=1 should leave many segments: {}",
        segs.len()
    );
    // Crash-recovery still works on deep trees.
    db.checkpoint();
    let checkpointed = model.clone();
    obj.insert(&mut db, 0, b"lost to the crash").unwrap();
    let root = obj.root_page();
    drop(obj);
    db.crash_and_reboot();
    let recovered = lobstore::open_object(&mut db, lobstore::StorageKind::Eos, root).unwrap();
    assert_eq!(recovered.snapshot(&db), checkpointed);
    recovered.check_invariants(&db).unwrap();
}

/// The tree must also survive pathological splice patterns: repeated
/// inserts at the same offset (front-loading) and strictly alternating
/// boundary deletes.
#[test]
fn adversarial_splice_patterns() {
    for spec in [ManagerSpec::esm(1), ManagerSpec::eos(2)] {
        let mut db = tiny_db(4);
        let mut obj = spec.create(&mut db).unwrap();
        let mut model: Vec<u8> = Vec::new();
        // Front-load: every insert lands at offset 0.
        for i in 0..80u64 {
            let chunk = pattern(3_000, i);
            obj.insert(&mut db, 0, &chunk).unwrap();
            model.splice(0..0, chunk.iter().copied());
            obj.check_invariants(&db)
                .unwrap_or_else(|e| panic!("{} front-load {i}: {e}", spec.label()));
        }
        // Alternating first/last deletes until nothing is left.
        let mut from_front = true;
        while !model.is_empty() {
            let len = 5_000.min(model.len());
            let off = if from_front { 0 } else { model.len() - len };
            obj.delete(&mut db, off as u64, len as u64).unwrap();
            model.drain(off..off + len);
            from_front = !from_front;
            obj.check_invariants(&db)
                .unwrap_or_else(|e| panic!("{} drain: {e}", spec.label()));
        }
        assert_eq!(obj.size(&mut db), 0);
        obj.destroy(&mut db).unwrap();
        assert_eq!(db.leaf_pages_allocated(), 0, "{}", spec.label());
        assert_eq!(db.meta_pages_allocated(), 0, "{}", spec.label());
    }
}
