//! Property-based equivalence of the optimized read paths.
//!
//! The wall-clock work — extent-backed arenas, the scatter read path,
//! the deserialized-node cache, the scan cursor — must leave both the
//! returned bytes and the simulated cost model untouched. Two
//! properties pin that:
//!
//! 1. **Bytes**: for arbitrary build histories, the optimized
//!    `LargeObject::read` and the `ObjectReader` cursor return exactly
//!    the bytes of the naive peek-based reference (`snapshot()`, which
//!    walks the index with cost-free peeks and bypasses the buffer
//!    pool, the node cache and the scatter path entirely).
//! 2. **Accounting**: streaming an object through the cursor charges
//!    *identical* `IoStats` to one bulk `LargeObject::read` of the same
//!    range on a twin database. Bulk reads' absolute costs are pinned
//!    by `tests/golden_traces.rs` and `tests/cost_model.rs` (unchanged
//!    by the optimization pass), so equality here is transitively
//!    equality with pre-optimization accounting.

use std::io::{Read, Seek, SeekFrom};

use lobstore::{Db, ManagerSpec, ObjectReader};
use proptest::prelude::*;

fn fill(len: usize, seed: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 31 + seed * 17 + 3) % 249) as u8)
        .collect()
}

/// Drain a reader to the end in `chunk`-sized requests.
fn stream_all(r: &mut ObjectReader<'_>, chunk: usize, out: &mut Vec<u8>) {
    let mut buf = vec![0u8; chunk];
    loop {
        match r.read(&mut buf).unwrap() {
            0 => break,
            n => out.extend_from_slice(&buf[..n]),
        }
    }
}

/// Build an object from `edits` (append / insert / replace, by turn),
/// then check random-range reads and a full streamed scan against the
/// peek-based snapshot.
fn bytes_match_reference(
    spec: ManagerSpec,
    edits: &[(f64, usize)],
    reads: &[(f64, usize)],
    chunk: usize,
) {
    let mut db = Db::paper_default();
    let mut obj = spec.create(&mut db).unwrap();
    for (i, &(at, len)) in edits.iter().enumerate() {
        let size = obj.size(&mut db) as usize;
        let bytes = fill(len, i);
        match i % 3 {
            0 => obj.append(&mut db, &bytes).unwrap(),
            1 => {
                let off = ((at * size as f64) as usize).min(size);
                obj.insert(&mut db, off as u64, &bytes).unwrap();
            }
            _ => {
                if size == 0 {
                    obj.append(&mut db, &bytes).unwrap();
                } else {
                    let off = ((at * size as f64) as usize).min(size - 1);
                    let len = len.min(size - off);
                    obj.replace(&mut db, off as u64, &bytes[..len]).unwrap();
                }
            }
        }
    }

    let reference = obj.snapshot(&db);
    let size = reference.len();

    // Random ranges through the optimized `read` — offsets land at
    // arbitrary page alignments, so these exercise both the scatter
    // path (direct reads) and the staged/buffered paths.
    for &(at, len) in reads {
        if size == 0 {
            break;
        }
        let off = ((at * size as f64) as usize).min(size - 1);
        let len = len.min(size - off).max(1);
        let mut out = vec![0u8; len];
        obj.read(&mut db, off as u64, &mut out).unwrap();
        if out != reference[off..off + len] {
            let bad = out
                .iter()
                .zip(&reference[off..off + len])
                .position(|(a, b)| a != b);
            panic!("read({off}, {len}) diverges from the peek reference at {bad:?}");
        }
    }

    // Full streamed scan through the cursor.
    let mut streamed = Vec::with_capacity(size);
    let mut r = ObjectReader::new(&mut db, obj.as_ref());
    stream_all(&mut r, chunk, &mut streamed);
    assert_eq!(streamed.len(), size, "cursor length");
    assert!(
        streamed == reference,
        "streamed bytes diverge from the peek reference"
    );
}

/// Twin databases, identical single-append build: stream `[start, size)`
/// through the cursor on one, bulk-read the same range on the other, and
/// require bit-identical `IoStats`.
///
/// A single large append yields full-width segments everywhere but the
/// tail, so every refill's span read is a direct (unbuffered) read and
/// the cursor's extra index descents hit META pages still resident in
/// the pool — zero additional simulated I/O. The tail segment may be
/// small enough to take the buffered path, but it is read last in both
/// runs, so the accounting stays equal.
fn streamed_accounting_matches_bulk(
    spec: ManagerSpec,
    total: usize,
    start_frac: f64,
    chunk: usize,
) {
    let build = fill(total, 99);

    let mut db_bulk = Db::paper_default();
    let mut obj_bulk = spec.create(&mut db_bulk).unwrap();
    obj_bulk.append(&mut db_bulk, &build).unwrap();

    let mut db_stream = Db::paper_default();
    let mut obj_stream = spec.create(&mut db_stream).unwrap();
    obj_stream.append(&mut db_stream, &build).unwrap();

    let start = ((start_frac * total as f64) as usize).min(total - 1);
    let want = total - start;

    let before = db_bulk.io_stats();
    let mut bulk_bytes = vec![0u8; want];
    obj_bulk
        .read(&mut db_bulk, start as u64, &mut bulk_bytes)
        .unwrap();
    let bulk = db_bulk.io_stats() - before;

    let before = db_stream.io_stats();
    let mut streamed_bytes = Vec::with_capacity(want);
    {
        let mut r = ObjectReader::new(&mut db_stream, obj_stream.as_ref());
        r.seek(SeekFrom::Start(start as u64)).unwrap();
        stream_all(&mut r, chunk, &mut streamed_bytes);
    }
    let streamed = db_stream.io_stats() - before;

    assert!(streamed_bytes == bulk_bytes, "content diverges");
    assert_eq!(
        streamed, bulk,
        "cursor scan of [{start}, {total}) in {chunk}-byte chunks must charge \
         exactly the simulated I/O of one bulk read"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        max_shrink_iters: 100,
        ..ProptestConfig::default()
    })]

    #[test]
    fn esm_reads_match_the_peek_reference(
        (edits, reads, chunk) in (
            prop::collection::vec((0.0f64..=1.0, 1usize..40_000), 1..12),
            prop::collection::vec((0.0f64..=1.0, 1usize..30_000), 1..8),
            1usize..9_000,
        )
    ) {
        bytes_match_reference(ManagerSpec::esm(16), &edits, &reads, chunk);
    }

    #[test]
    fn esm_single_page_leaves_match_the_peek_reference(
        (edits, reads, chunk) in (
            prop::collection::vec((0.0f64..=1.0, 1usize..20_000), 1..10),
            prop::collection::vec((0.0f64..=1.0, 1usize..15_000), 1..8),
            1usize..9_000,
        )
    ) {
        bytes_match_reference(ManagerSpec::esm(1), &edits, &reads, chunk);
    }

    #[test]
    fn eos_reads_match_the_peek_reference(
        (edits, reads, chunk) in (
            prop::collection::vec((0.0f64..=1.0, 1usize..40_000), 1..12),
            prop::collection::vec((0.0f64..=1.0, 1usize..30_000), 1..8),
            1usize..9_000,
        )
    ) {
        bytes_match_reference(ManagerSpec::eos(16), &edits, &reads, chunk);
    }

    #[test]
    fn starburst_reads_match_the_peek_reference(
        (edits, reads, chunk) in (
            prop::collection::vec((0.0f64..=1.0, 1usize..40_000), 1..10),
            prop::collection::vec((0.0f64..=1.0, 1usize..30_000), 1..8),
            1usize..9_000,
        )
    ) {
        bytes_match_reference(ManagerSpec::starburst(), &edits, &reads, chunk);
    }

    #[test]
    fn esm_streamed_accounting_matches_bulk(
        (total, start, chunk) in (65_536usize..1_500_000, 0.0f64..=1.0, 512usize..16_384)
    ) {
        streamed_accounting_matches_bulk(ManagerSpec::esm(16), total, start, chunk);
    }

    #[test]
    fn eos_streamed_accounting_matches_bulk(
        (total, start, chunk) in (65_536usize..1_500_000, 0.0f64..=1.0, 512usize..16_384)
    ) {
        streamed_accounting_matches_bulk(ManagerSpec::eos(16), total, start, chunk);
    }

    #[test]
    fn starburst_streamed_accounting_matches_bulk(
        (total, start, chunk) in (65_536usize..1_500_000, 0.0f64..=1.0, 512usize..16_384)
    ) {
        streamed_accounting_matches_bulk(ManagerSpec::starburst(), total, start, chunk);
    }
}
