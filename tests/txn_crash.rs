//! Transactional crash-consistency fuzzing (DESIGN.md §16): run a mixed
//! workload of multi-operation transactions, single operations, and
//! checkpoints, and inject `crash_and_reboot` at EVERY commit boundary.
//! After each crash the database must fsck clean (exit-0 semantics: zero
//! findings) and the object must read back byte-identical to the last
//! committed state — the allocation log replays everything since the
//! last checkpoint, and aborted transactions leave no trace.

use lobstore::{Catalog, Db, DbConfig, LargeObject, LobError, ManagerSpec};
use lobstore_cli::check_database;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Append { len: usize },
    Insert { at: f64, len: usize },
    Delete { at: f64, len: usize },
}

#[derive(Clone, Debug)]
enum Step {
    /// A multi-op transaction; `abort` makes the closure fail after
    /// running every op, exercising rollback.
    Txn {
        ops: Vec<Op>,
        abort: bool,
    },
    /// One auto-committed operation.
    Single(Op),
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1usize..12_000).prop_map(|len| Op::Append { len }),
        2 => (0.0f64..=1.0, 1usize..8_000).prop_map(|(at, len)| Op::Insert { at, len }),
        2 => (0.0f64..=1.0, 1usize..8_000).prop_map(|(at, len)| Op::Delete { at, len }),
    ]
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (prop::collection::vec(op_strategy(), 1..4), any::<bool>())
            .prop_map(|(ops, abort)| Step::Txn { ops, abort }),
        3 => op_strategy().prop_map(Step::Single),
        1 => Just(Step::Checkpoint),
    ]
}

fn fill(len: usize, seed: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 43 + seed * 11 + 7) % 249) as u8)
        .collect()
}

/// Apply `op` to the live object and mirror it on `model`.
fn apply(db: &mut Db, obj: &mut dyn LargeObject, model: &mut Vec<u8>, op: &Op, seed: usize) {
    match op {
        Op::Append { len } => {
            let bytes = fill(*len, seed);
            obj.append(db, &bytes).unwrap();
            model.extend(bytes);
        }
        Op::Insert { at, len } => {
            let off = ((at * model.len() as f64) as usize).min(model.len());
            let bytes = fill(*len, seed + 1000);
            obj.insert(db, off as u64, &bytes).unwrap();
            model.splice(off..off, bytes);
        }
        Op::Delete { at, len } => {
            if model.is_empty() {
                return;
            }
            let off = ((at * model.len() as f64) as usize).min(model.len() - 1);
            let len = (*len).min(model.len() - off);
            obj.delete(db, off as u64, len as u64).unwrap();
            model.drain(off..off + len);
        }
    }
}

fn run(spec: ManagerSpec, steps: &[Step]) {
    let mut db = Db::new(DbConfig {
        alloc_log: true,
        ..DbConfig::default()
    });
    let mut cat = Catalog::create(&mut db).unwrap();
    let cat_root = cat.root_page();
    let mut obj = spec.create(&mut db).unwrap();
    let kind = obj.kind();
    let root = obj.root_page();
    cat.put(&mut db, "x", kind, root).unwrap();
    let mut model: Vec<u8> = Vec::new();
    obj.append(&mut db, &fill(20_000, 0)).unwrap();
    model.extend(fill(20_000, 0));
    db.checkpoint();

    for (i, step) in steps.iter().enumerate() {
        match step {
            Step::Txn { ops, abort } => {
                let mut scratch = model.clone();
                let abort = *abort;
                let ops = ops.clone();
                let result = db.txn(|db| {
                    let mut obj = lobstore::open_object(db, kind, root)?;
                    for (j, op) in ops.iter().enumerate() {
                        apply(db, obj.as_mut(), &mut scratch, op, i * 10 + j);
                    }
                    if abort {
                        Err(LobError::Corrupt("injected abort".into()))
                    } else {
                        Ok(())
                    }
                });
                if abort {
                    result.unwrap_err();
                    // model unchanged: the rollback must erase the txn.
                } else {
                    result.unwrap();
                    model = scratch;
                }
            }
            Step::Single(op) => {
                apply(&mut db, obj.as_mut(), &mut model, op, i * 10 + 7);
            }
            Step::Checkpoint => db.checkpoint(),
        }

        // Commit boundary: crash, replay, verify.
        db.crash_and_reboot();
        db.verify_alloc_log().unwrap();
        obj = lobstore::open_object(&mut db, kind, root).unwrap();
        assert_eq!(
            obj.snapshot(&db),
            model,
            "step {i}: recovered bytes differ from the last committed state"
        );
        obj.check_invariants(&db).unwrap();
        let mut cat2 = Catalog::open(&mut db, cat_root).unwrap();
        let findings = check_database(&mut db, &mut cat2);
        assert!(findings.is_empty(), "step {i}: fsck found {findings:?}");
        cat = cat2;
    }
    let _ = &cat;
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, max_shrink_iters: 60, ..ProptestConfig::default() })]

    #[test]
    fn esm_txns_crash_consistently(steps in prop::collection::vec(step_strategy(), 1..10)) {
        run(ManagerSpec::esm(4), &steps);
    }

    #[test]
    fn eos_txns_crash_consistently(steps in prop::collection::vec(step_strategy(), 1..10)) {
        run(ManagerSpec::eos(8), &steps);
    }

    #[test]
    fn starburst_txns_crash_consistently(steps in prop::collection::vec(step_strategy(), 1..8)) {
        run(ManagerSpec::starburst(), &steps);
    }
}
