//! End-to-end observability: with a sink installed, a mixed workload over
//! all three storage schemes must produce a JSONL event stream and a
//! metrics dump whose numbers are mutually consistent — the sum of the
//! per-operation span I/O deltas equals the disks' cumulative I/O, the
//! buffer pool reports a hit ratio, and the per-area simulated-disk page
//! counters are all nonzero.
//!
//! The metrics registry is thread-local, so this single test owns the
//! whole pipeline without interference from other tests.

use lobstore::bufpool::PoolConfig;
use lobstore::obs::{self, json, json::Value};
use lobstore::{build_object, Db, DbConfig, IoStats, ManagerSpec, MixedConfig, MixedWorkload};

const SCHEMES: [(&str, &str); 3] = [("ESM", "esm"), ("Starburst", "starburst"), ("EOS", "eos")];

fn span_io_counters() -> IoStats {
    IoStats {
        read_calls: obs::counter_value("span.io.read_calls"),
        write_calls: obs::counter_value("span.io.write_calls"),
        pages_read: obs::counter_value("span.io.pages_read"),
        pages_written: obs::counter_value("span.io.pages_written"),
        time_us: obs::counter_value("span.io.time_us"),
    }
}

#[test]
fn mixed_workload_metrics_and_events_are_consistent() {
    obs::reset();
    let sink = obs::MemorySink::new();
    obs::install_sink(Box::new(sink.clone()));

    let specs = [
        ManagerSpec::esm(4),
        ManagerSpec::starburst(),
        ManagerSpec::eos(16),
    ];
    let mut disk_total = IoStats::default();
    for spec in &specs {
        // A 2-frame pool forces index pages out between fixes, so the
        // META area sees real read traffic and the pool real misses.
        let mut db = Db::new(DbConfig {
            pool: PoolConfig {
                frames: 2,
                ..PoolConfig::default()
            },
            ..DbConfig::default()
        });
        let base = db.io_stats();
        let (mut obj, _) = build_object(&mut db, spec, 600_000, 16 * 1024).expect("build");
        let mut w = MixedWorkload::new(MixedConfig {
            ops: 150,
            mark_every: 50,
            mean_op_bytes: 5_000,
            ..MixedConfig::default()
        });
        w.run(&mut db, obj.as_mut()).expect("mixed workload");
        disk_total = disk_total + (db.io_stats() - base);
    }
    let _ = obs::take_sink();

    // 1. Accounting closure: every byte of simulated I/O flowed through an
    //    observed operation, so the span accumulators equal the disks'
    //    cumulative stats exactly.
    assert_eq!(span_io_counters(), disk_total);

    let snap = obs::snapshot();

    // 2. Buffer pool: hits, misses, and a hit ratio in (0, 1).
    assert!(snap.counter("bufpool.hits") > 0);
    assert!(snap.counter("bufpool.misses") > 0);
    let ratio = snap.gauge("bufpool.hit_ratio").expect("hit ratio gauge");
    assert!(ratio > 0.0 && ratio < 1.0, "hit ratio {ratio}");

    // 3. Per-scheme span counters: each scheme created one object and ran
    //    reads/inserts/deletes.
    for (_, slug) in SCHEMES {
        assert_eq!(snap.counter(&format!("op.{slug}.create")), 1, "{slug}");
        for op in ["append", "read", "insert", "delete"] {
            assert!(
                snap.counter(&format!("op.{slug}.{op}")) > 0,
                "op.{slug}.{op} must be nonzero"
            );
        }
    }

    // 4. Simulated disk: per-area counters are nonzero and sum to the
    //    cumulative disk stats.
    let areas = ["meta", "leaf", "other"];
    for area in ["meta", "leaf"] {
        assert!(
            snap.counter(&format!("simdisk.{area}.pages_read")) > 0,
            "{area} reads"
        );
        assert!(
            snap.counter(&format!("simdisk.{area}.pages_written")) > 0,
            "{area} writes"
        );
    }
    let sum = |suffix: &str| -> u64 {
        areas
            .iter()
            .map(|a| snap.counter(&format!("simdisk.{a}.{suffix}")))
            .sum()
    };
    assert_eq!(sum("read_calls"), disk_total.read_calls);
    assert_eq!(sum("write_calls"), disk_total.write_calls);
    assert_eq!(sum("pages_read"), disk_total.pages_read);
    assert_eq!(sum("pages_written"), disk_total.pages_written);

    // 5. The JSONL stream: every line parses; spans carry scheme labels
    //    and io fields; span counts per scheme are nonzero and agree with
    //    the metric counters; the workload emitted mark events.
    let lines = sink.lines();
    assert!(!lines.is_empty(), "sink collected no events");
    let mut spans_per_scheme = [0u64; 3];
    let mut marks = 0u64;
    let mut span_pages_read = 0u64;
    for line in &lines {
        let v = json::parse(line).expect("JSONL line parses");
        let name = v.get("name").and_then(Value::as_str).expect("name field");
        if name == "workload.mark" {
            marks += 1;
            assert!(v.get("ops_done").and_then(Value::as_u64).is_some());
            continue;
        }
        if let Some(scheme) = v.get("scheme").and_then(Value::as_str) {
            let k = SCHEMES
                .iter()
                .position(|(label, _)| *label == scheme)
                .unwrap_or_else(|| panic!("unknown scheme label {scheme}"));
            spans_per_scheme[k] += 1;
            span_pages_read += v
                .get("io_pages_read")
                .and_then(Value::as_u64)
                .expect("io_pages_read field");
        }
    }
    assert!(marks >= 3 * 3, "every run has 3 marks, got {marks}");
    for (k, (label, _)) in SCHEMES.iter().enumerate() {
        assert!(spans_per_scheme[k] > 0, "no spans for {label}");
    }
    assert_eq!(
        span_pages_read, disk_total.pages_read,
        "span-annotated page reads must sum to the disks' total"
    );

    // 6. The metrics dump round-trips as JSON and carries the histograms.
    let dump = json::parse(&snap.to_json()).expect("metrics dump parses");
    assert!(dump.get("counters").is_some());
    assert!(dump.get("gauges").is_some());
    let hists = dump.get("histograms").expect("histograms section");
    assert!(
        hists.get("simdisk.seek_us").is_some(),
        "seek histogram present"
    );
}

#[test]
fn sink_disabled_runs_keep_counting() {
    obs::reset();
    assert!(!obs::sink_installed());
    let mut db = Db::paper_default();
    let base = db.io_stats();
    let (mut obj, _) =
        build_object(&mut db, &ManagerSpec::eos(16), 200_000, 16 * 1024).expect("build");
    obj.insert(&mut db, 1_000, b"counted").expect("insert");
    assert_eq!(span_io_counters(), db.io_stats() - base);
    let snap = obs::snapshot();
    assert_eq!(snap.counter("op.eos.create"), 1);
    assert!(snap.counter("op.eos.append") > 0);
    assert_eq!(snap.counter("op.eos.insert"), 1);
}
