//! Golden I/O traces: the exact disk-call sequences for canonical
//! operations, as the paper's cost analysis derives them. These tests pin
//! the cost model at the finest grain — kind, page count, and order of
//! every disk access.

use lobstore::{simdisk::TraceKind, AreaId, Db, LargeObject, ManagerSpec};

fn build(spec: ManagerSpec, size: usize, append: usize) -> (Db, Box<dyn LargeObject>) {
    let mut db = Db::paper_default();
    let mut obj = spec.create(&mut db).unwrap();
    let chunk = vec![0x5Au8; append];
    let mut done = 0;
    while done < size {
        let n = append.min(size - done);
        obj.append(&mut db, &chunk[..n]).unwrap();
        done += n;
    }
    obj.trim(&mut db).unwrap();
    (db, obj)
}

/// (kind, area, pages) triples of a trace.
fn shape(db: &mut Db) -> Vec<(TraceKind, AreaId, u32)> {
    db.pool()
        .disk_mut()
        .take_trace()
        .into_iter()
        .map(|e| (e.kind, e.area, e.pages))
        .collect()
}

const R: TraceKind = TraceKind::Read;
const W: TraceKind = TraceKind::Write;
const LEAF: AreaId = AreaId::LEAF;
const META: AreaId = AreaId::META;

/// §4.2's append cost: "the cost of an append operation is the one of
/// reading the rightmost page (if it is not full) and flushing to disk
/// the pages containing the new bytes" — Starburst, mid-page append.
#[test]
fn starburst_unaligned_append_reads_boundary_writes_new() {
    let (mut db, mut obj) = build(ManagerSpec::starburst(), 100_000, 100_000);
    db.pool().disk_mut().enable_trace(16);
    obj.append(&mut db, &vec![1u8; 10_000]).unwrap();
    let t = shape(&mut db);
    // 100000 B = 24.4 pages, trimmed to a 25-page segment. The append
    // first fills the 2400 B left in page 24 (read it, write it), then
    // the remaining 7600 B open the next doubling segment (one 2-page
    // write): exactly "read the rightmost page and flush the pages
    // containing the new bytes".
    assert_eq!(t, vec![(R, LEAF, 1), (W, LEAF, 1), (W, LEAF, 2)], "{t:?}");
}

/// Page-aligned append: no boundary read at all.
#[test]
fn starburst_aligned_append_writes_only() {
    let (mut db, mut obj) = build(ManagerSpec::starburst(), 131_072, 131_072);
    db.pool().disk_mut().enable_trace(16);
    obj.append(&mut db, &vec![1u8; 8_192]).unwrap();
    let t = shape(&mut db);
    assert_eq!(t, vec![(W, LEAF, 2)], "{t:?}");
}

/// Table 2's 100 KB read: the 3-step I/O, in order — partial first page
/// via the pool, interior pages direct, partial last page via the pool.
#[test]
fn large_unaligned_read_is_exactly_three_steps() {
    let (mut db, mut obj) = build(ManagerSpec::starburst(), 1 << 20, 256 * 1024);
    obj.insert(&mut db, 3, b"x").unwrap(); // steady state: one segment
    db.pool().disk_mut().enable_trace(16);
    let mut out = vec![0u8; 100_000];
    obj.read(&mut db, 50_001, &mut out).unwrap();
    let t = shape(&mut db);
    assert_eq!(t.len(), 3, "{t:?}");
    assert_eq!(t[0], (R, LEAF, 1), "first partial page staged: {t:?}");
    assert_eq!(t[2], (R, LEAF, 1), "last partial page staged: {t:?}");
    assert_eq!(t[1].0, R);
    assert!((23..=24).contains(&t[1].2), "interior pages direct: {t:?}");
}

/// A small buffered read is one call; repeating it is free.
#[test]
fn small_read_buffers_then_hits() {
    let (mut db, obj) = build(ManagerSpec::eos(16), 1 << 20, 256 * 1024);
    db.pool().disk_mut().enable_trace(16);
    let mut out = vec![0u8; 10_000];
    obj.read(&mut db, 500_000, &mut out).unwrap();
    obj.read(&mut db, 500_000, &mut out).unwrap();
    let t = shape(&mut db);
    assert_eq!(t.len(), 1, "second read must be a pure pool hit: {t:?}");
    assert_eq!(t[0].0, R);
    assert!((3..=4).contains(&t[0].2));
}

/// ESM exact-fit append on a level-1 tree: exactly one leaf write — no
/// data re-read, no index flush (the root is not shadowed, §3.3).
#[test]
fn esm_exact_fit_append_level1_is_one_write() {
    let (mut db, mut obj) = build(ManagerSpec::esm(16), 2 << 20, 65_536);
    db.pool().disk_mut().enable_trace(16);
    obj.append(&mut db, &vec![2u8; 65_536]).unwrap();
    let t = shape(&mut db);
    assert_eq!(t, vec![(W, LEAF, 16)], "{t:?}");
}

/// ESM exact-fit append on a level-2 tree additionally flushes exactly
/// one shadowed internal index page (§3.3: "the new copy that contains
/// the update is flushed out to disk at the end of the operation").
#[test]
fn esm_exact_fit_append_level2_adds_one_index_flush() {
    // 1-page leaves: level 2 beyond 507 leaves ⇒ 3 MB is comfortably there.
    let (mut db, mut obj) = build(ManagerSpec::esm(1), 3 << 20, 4096);
    db.pool().disk_mut().enable_trace(16);
    obj.append(&mut db, &vec![2u8; 4096]).unwrap();
    let t = shape(&mut db);
    let leaf_writes: Vec<_> = t.iter().filter(|e| e.1 == LEAF && e.0 == W).collect();
    let meta_writes: Vec<_> = t.iter().filter(|e| e.1 == META && e.0 == W).collect();
    assert_eq!(leaf_writes.len(), 1, "{t:?}");
    assert_eq!(leaf_writes[0].2, 1);
    assert_eq!(meta_writes.len(), 1, "one shadowed internal node: {t:?}");
    assert_eq!(meta_writes[0].2, 1);
}

/// EOS suffix delete: no data pages move at all (§2.3 trims in place);
/// the only traffic, if any, is metadata.
#[test]
fn eos_suffix_delete_moves_no_data() {
    let (mut db, mut obj) = build(ManagerSpec::eos(1), 1 << 20, 256 * 1024);
    db.pool().disk_mut().enable_trace(16);
    obj.delete(&mut db, (1 << 20) - 300_000, 300_000).unwrap();
    let t = shape(&mut db);
    assert!(
        t.iter().all(|e| e.1 != LEAF),
        "suffix delete touched data pages: {t:?}"
    );
}

/// ESM whole-leaf delete likewise frees without reading the leaf.
#[test]
fn esm_whole_leaf_delete_reads_no_data() {
    let (mut db, mut obj) = build(ManagerSpec::esm(4), 1 << 20, 16_384);
    db.pool().disk_mut().enable_trace(32);
    // Delete leaves 10..14 exactly (aligned).
    obj.delete(&mut db, 10 * 16_384, 4 * 16_384).unwrap();
    let t = shape(&mut db);
    assert!(
        t.iter().all(|e| !(e.1 == LEAF && e.0 == R)),
        "aligned delete read data pages: {t:?}"
    );
}

/// A shadowed ESM leaf rewrite: read the old leaf once, write the new
/// copy once — "copy, update, flush" (§3.3). The leaf has free space, so
/// no split happens.
#[test]
fn esm_small_insert_is_copy_update_flush() {
    let (mut db, mut obj) = build(ManagerSpec::esm(4), 10_000, 10_000);
    db.pool().disk_mut().enable_trace(16);
    obj.insert(&mut db, 5_000, b"tiny").unwrap();
    let t = shape(&mut db);
    let data: Vec<_> = t.iter().filter(|e| e.1 == LEAF).collect();
    assert_eq!(data.len(), 2, "{t:?}");
    assert_eq!(data[0].0, R);
    assert_eq!(data[0].2, 3, "old leaf content read (3 used pages): {t:?}");
    assert_eq!(data[1].0, W);
    assert_eq!(data[1].2, 3, "new leaf copy written: {t:?}");
}

/// Inserting into a *full* ESM leaf whose neighbours are full too splits
/// it into two half-full leaves — the basic overflow of [Care86].
#[test]
fn esm_insert_into_full_leaf_splits_evenly() {
    let (mut db, mut obj) = build(ManagerSpec::esm(4), 1 << 20, 16_384);
    db.pool().disk_mut().enable_trace(16);
    obj.insert(&mut db, 100_000, b"tiny").unwrap();
    let t = shape(&mut db);
    let data: Vec<_> = t.iter().filter(|e| e.1 == LEAF).collect();
    // Read the old leaf once; write two ~half-full (3-page) leaves.
    assert_eq!(data.len(), 3, "{t:?}");
    assert_eq!(*data[0], (R, LEAF, 4), "{t:?}");
    assert_eq!(*data[1], (W, LEAF, 3), "{t:?}");
    assert_eq!(*data[2], (W, LEAF, 3), "{t:?}");
}
