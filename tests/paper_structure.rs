//! Structural claims the paper states exactly, checked at full scale.
//!
//! §4.2: "In ESM, with 1-page leaves, a 10M-byte object turns out to be
//! of level 2 — the root, one level of 9 internal nodes, and then 2560
//! leaves. With 4-page leaves, the object is again of level 2 — the
//! root, 2 internal nodes and 640 leaves. For leaf blocks of 16 and 64
//! pages, the tree is of level 1. (The level of a 100M-byte object is 2
//! for 1, 4, and 16-page leaf blocks and 1 for 64-page leaves.) For
//! Starburst and EOS the tree level is always 1."
//!
//! "Level" counts index levels below the root: level 1 = root only,
//! level 2 = root + one layer of internal nodes. Our proxy is the number
//! of index pages: level 1 ⇔ exactly one (the root).

use lobstore::{Db, ManagerSpec};
use lobstore_workload::build_object;

const MB: u64 = 1 << 20;

/// Build with exact-fit appends and return (index pages, leaf count).
fn structure(spec: ManagerSpec, size: u64) -> (u64, usize) {
    let mut db = Db::paper_default();
    let append = match spec {
        ManagerSpec::Esm { leaf_pages } => leaf_pages as usize * 4096,
        _ => 512 * 1024,
    };
    let (obj, _) = build_object(&mut db, &spec, size, append).unwrap();
    let u = obj.utilization(&db);
    (u.index_pages, obj.segments(&db).len())
}

#[test]
fn ten_mb_tree_levels_match_section_4_2() {
    // ESM/1: level 2 with ~2560 leaves and ~9 internal nodes.
    let (index, leaves) = structure(ManagerSpec::esm(1), 10 * MB);
    assert_eq!(leaves, 2560);
    assert!(
        (2..=15).contains(&(index - 1)),
        "ESM/1 at 10 MB should have a single internal layer (paper: 9 nodes), got {}",
        index - 1
    );

    // ESM/4: level 2 with 640 leaves and ~2 internal nodes.
    let (index, leaves) = structure(ManagerSpec::esm(4), 10 * MB);
    assert_eq!(leaves, 640);
    assert!(
        (1..=4).contains(&(index - 1)),
        "ESM/4 at 10 MB: paper says 2 internal nodes, got {}",
        index - 1
    );

    // ESM/16 and ESM/64: level 1 (root only).
    for pages in [16u32, 64] {
        let (index, _) = structure(ManagerSpec::esm(pages), 10 * MB);
        assert_eq!(index, 1, "ESM/{pages} at 10 MB must be level 1");
    }

    // Starburst and EOS: always level 1.
    let (index, _) = structure(ManagerSpec::starburst(), 10 * MB);
    assert_eq!(index, 1);
    let (index, _) = structure(ManagerSpec::eos(4), 10 * MB);
    assert_eq!(index, 1);
}

#[test]
fn hundred_mb_tree_levels_match_section_4_2() {
    // Level 2 for 1, 4, and 16-page leaves; level 1 for 64-page leaves.
    for pages in [4u32, 16] {
        let (index, _) = structure(ManagerSpec::esm(pages), 100 * MB);
        assert!(index > 1, "ESM/{pages} at 100 MB must be level 2");
    }
    let (index, _) = structure(ManagerSpec::esm(64), 100 * MB);
    assert_eq!(index, 1, "ESM/64 at 100 MB must be level 1");

    // Starburst/EOS stay flat even at 100 MB.
    let (index, segs) = structure(ManagerSpec::eos(4), 100 * MB);
    assert_eq!(index, 1);
    assert!(
        segs < 50,
        "doubling growth keeps the segment count tiny: {segs}"
    );
}

#[test]
fn build_time_is_ten_x_from_10_to_100_mb() {
    // §4.2: "to obtain the time required to build a 100M-byte object,
    // just multiply the numbers in Figure 5 by 10."
    let time = |spec: ManagerSpec, size: u64| {
        let mut db = Db::paper_default();
        let (_, rep) = build_object(&mut db, &spec, size, 16 * 1024).unwrap();
        rep.seconds()
    };
    // Exactly linear for the flat structures (no index writes at all).
    for spec in [ManagerSpec::starburst(), ManagerSpec::eos(4)] {
        let ratio = time(spec, 100 * MB) / time(spec, 10 * MB);
        assert!(
            (9.5..10.5).contains(&ratio),
            "{}: 100 MB / 10 MB build ratio {ratio:.2} should be ≈10",
            spec.label()
        );
    }
    // ESM/1 spends nearly all of both builds at level 2, so it is close
    // to linear too. (ESM/4 crosses into level 2 mid-build at 10 MB and
    // is visibly superlinear — the paper's ×10 is an approximation.)
    let ratio = time(ManagerSpec::esm(1), 100 * MB) / time(ManagerSpec::esm(1), 10 * MB);
    assert!(
        (9.0..12.0).contains(&ratio),
        "ESM/1: ratio {ratio:.2} should be ≈10"
    );
}

#[test]
fn eos_root_capacity_supports_16_gb_claim() {
    // §4.2: "In EOS, to come up with a tree of level greater than 1, the
    // size of the object being created must be larger than 16 Gigabytes."
    // 507 root pairs × 32 MB max segments = 15.84 GB ≈ the paper's 16 GB.
    let capacity = 507u64 * 8192 * 4096;
    assert!(capacity > 15 << 30 && capacity < 17 << 30, "{capacity}");
}
