//! Crash-consistency of the shadowing discipline (§3.3).
//!
//! The paper's recovery assumption: shadowing means "a page is never
//! overwritten; instead, a write is performed by allocating and writing a
//! new page and leaving the old one intact until it is no longer needed
//! for recovery." Consequently, after flushing a state S:
//!
//! * any single further update operation touches only *fresh* pages (plus
//!   bytes beyond S's end-of-object in an append) and leaves its root
//!   update sitting unflushed in the buffer pool, so
//! * a crash before the next flush must recover exactly S.
//!
//! These tests drive precisely that scenario through the full stack —
//! buffer pool, buddy directories, count trees — for all three managers
//! and all operation types.

use lobstore::{Db, EsmObject, LargeObject, ManagerSpec};

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64 * 89 + seed * 13 + 1) % 250) as u8)
        .collect()
}

fn specs() -> Vec<ManagerSpec> {
    vec![
        ManagerSpec::esm(1),
        ManagerSpec::esm(16),
        ManagerSpec::eos(4),
        ManagerSpec::eos(64),
        ManagerSpec::starburst(),
    ]
}

/// Build + checkpoint, apply one unflushed op, crash — the checkpointed
/// state must read back bit-for-bit.
#[test]
fn one_unflushed_op_never_damages_the_checkpoint() {
    type Op = (&'static str, fn(&mut dyn LargeObject, &mut Db));
    let ops: Vec<Op> = vec![
        ("insert", |o, db| {
            o.insert(db, 30_000, &pattern(12_345, 9)).unwrap();
        }),
        ("delete", |o, db| o.delete(db, 10_000, 25_000).unwrap()),
        ("append", |o, db| o.append(db, &pattern(20_000, 7)).unwrap()),
        ("replace", |o, db| {
            o.replace(db, 50_000, &pattern(8_000, 5)).unwrap();
        }),
        ("delete-to-end", |o, db| {
            let size = o.size(db);
            o.delete(db, size - 40_000, 40_000).unwrap();
        }),
    ];
    for spec in specs() {
        for (name, op) in &ops {
            let mut db = Db::paper_default();
            let mut obj = spec.create(&mut db).unwrap();
            let content = pattern(150_000, 3);
            obj.append(&mut db, &content).unwrap();
            obj.trim(&mut db).unwrap();
            let root = obj.root_page();
            db.checkpoint();

            // One op the crash will erase.
            op(obj.as_mut(), &mut db);
            let _ = obj;
            db.crash_and_reboot();

            let obj = open_any(&mut db, &spec, root);
            assert_eq!(
                obj.snapshot(&db),
                content,
                "{} after unflushed {name}: checkpoint damaged",
                spec.label()
            );
            obj.check_invariants(&db)
                .unwrap_or_else(|e| panic!("{} after {name}: {e}", spec.label()));
        }
    }
}

/// After a crash, the recovered allocator state is consistent enough to
/// keep working: the recovered object can be updated, read, and destroyed
/// without leaks relative to the post-recovery baseline.
#[test]
fn recovered_database_remains_usable() {
    for spec in specs() {
        let mut db = Db::paper_default();
        let mut obj = spec.create(&mut db).unwrap();
        obj.append(&mut db, &pattern(200_000, 1)).unwrap();
        obj.trim(&mut db).unwrap();
        let root = obj.root_page();
        db.checkpoint();
        obj.insert(&mut db, 5, &pattern(999, 2)).unwrap(); // lost
        let _ = obj;
        db.crash_and_reboot();

        let baseline = (db.leaf_pages_allocated(), db.meta_pages_allocated());
        let mut obj = open_any(&mut db, &spec, root);
        let mut expected = pattern(200_000, 1);
        obj.insert(&mut db, 100_000, &pattern(5_000, 8)).unwrap();
        expected.splice(100_000..100_000, pattern(5_000, 8));
        obj.delete(&mut db, 0, 1_000).unwrap();
        expected.drain(0..1_000);
        assert_eq!(obj.snapshot(&db), expected, "{}", spec.label());
        obj.check_invariants(&db).unwrap();
        obj.destroy(&mut db).unwrap();
        assert!(
            db.leaf_pages_allocated() <= baseline.0,
            "{}: leaf pages grew past the recovery baseline",
            spec.label()
        );
        assert!(db.meta_pages_allocated() <= baseline.1, "{}", spec.label());
    }
}

/// The counter-example that motivates shadowing: with shadowing disabled,
/// an in-place replace clobbers checkpointed bytes, and the crash loses
/// committed data.
#[test]
fn without_shadowing_replace_is_not_crash_safe() {
    let mut db = Db::new(lobstore::DbConfig {
        shadowing: false,
        ..lobstore::DbConfig::default()
    });
    let mut obj = EsmObject::create(&mut db, lobstore::EsmParams { leaf_pages: 4 }).unwrap();
    let content = pattern(50_000, 1);
    obj.append(&mut db, &content).unwrap();
    let root = obj.root_page();
    db.checkpoint();

    obj.replace(&mut db, 10_000, &pattern(4_000, 2)).unwrap(); // in place!
    let _ = obj;
    db.crash_and_reboot();

    let obj = EsmObject::open(&mut db, root).unwrap();
    assert_ne!(
        obj.snapshot(&db),
        content,
        "in-place replace should have clobbered the checkpoint — if this \
         fails, the ablation switch is not actually writing in place"
    );
}

/// Crash with *nothing* flushed after object creation: the object simply
/// does not exist yet, and the space managers recover an empty database.
#[test]
fn crash_before_first_checkpoint_recovers_empty() {
    let mut db = Db::paper_default();
    let mut obj = ManagerSpec::eos(4).create(&mut db).unwrap();
    obj.append(&mut db, &pattern(100_000, 1)).unwrap();
    drop(obj);
    db.crash_and_reboot();
    // Directories were never flushed: everything is free again.
    assert_eq!(db.leaf_pages_allocated(), 0);
}

fn open_any(db: &mut Db, spec: &ManagerSpec, root: u32) -> Box<dyn LargeObject> {
    use lobstore::{EosObject, StarburstObject};
    match spec {
        ManagerSpec::Esm { .. } => Box::new(EsmObject::open(db, root).unwrap()),
        ManagerSpec::Eos { .. } => Box::new(EosObject::open(db, root).unwrap()),
        ManagerSpec::Starburst { .. } => Box::new(StarburstObject::open(db, root).unwrap()),
    }
}
