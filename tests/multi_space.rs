//! Large-database coverage: objects big enough that the LEAF area spans
//! several buddy spaces, exercising the superdirectory's space selection
//! and cross-space allocation under churn (§3.1: "larger databases will
//! have many buddy spaces").
//!
//! A 64 MB space holds 16384 pages, so we shrink spaces to 1024 pages
//! (4 MB) to get many of them without moving hundreds of megabytes.

use lobstore::{Db, DbConfig, IoStats, LargeObject, ManagerSpec};

fn small_space_db() -> Db {
    Db::new(DbConfig {
        leaf_space_pages: 1024, // 4 MB spaces
        meta_space_pages: 1024,
        ..DbConfig::default()
    })
}

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64 * 131 + seed) % 251) as u8)
        .collect()
}

#[test]
fn object_spanning_many_buddy_spaces() {
    let mut db = small_space_db();
    // 20 MB object in 4 MB spaces → at least 5 spaces. Max segment is
    // capped by the space size (1024 pages), so Starburst/EOS growth
    // saturates at 4 MB segments.
    // Segments are capped by the 1024-page space size.
    let mut obj = ManagerSpec::Eos {
        threshold_pages: 16,
        max_seg_pages: 1024,
    }
    .create(&mut db)
    .unwrap();
    let chunk = pattern(256 * 1024, 1);
    for _ in 0..80 {
        obj.append(&mut db, &chunk).unwrap();
    }
    obj.trim(&mut db).unwrap();
    assert_eq!(obj.size(&mut db), 20 << 20);
    obj.check_invariants(&db).unwrap();

    // Verify content at space boundaries (every 4 MB + 4 KB of slack).
    let mut buf = vec![0u8; 8192];
    for mb in [4u64, 8, 12, 16] {
        let off = (mb << 20) - 4096;
        obj.read(&mut db, off, &mut buf).unwrap();
        // Expected bytes follow the repeating 256 KB chunk pattern.
        for (i, &b) in buf.iter().enumerate() {
            let pos = (off + i as u64) % (256 * 1024);
            assert_eq!(b, ((pos * 131 + 1) % 251) as u8, "byte at {off}+{i}");
        }
    }

    // Churn across spaces.
    for i in 0..60u64 {
        let size = obj.size(&mut db);
        let at = (i * 334_961) % size;
        obj.insert(&mut db, at, &pattern(9_000, i)).unwrap();
        let size = obj.size(&mut db);
        obj.delete(&mut db, (i * 746_773) % (size - 9_000), 9_000)
            .unwrap();
    }
    obj.check_invariants(&db).unwrap();
    obj.destroy(&mut db).unwrap();
    assert_eq!(db.leaf_pages_allocated(), 0);
    assert_eq!(db.meta_pages_allocated(), 0);
}

#[test]
fn many_objects_fill_and_release_spaces() {
    let mut db = small_space_db();
    let mut objs: Vec<Box<dyn LargeObject>> = Vec::new();
    // 12 objects × 2 MB = 24 MB over 4 MB spaces.
    for i in 0..12u64 {
        let spec = match i % 3 {
            0 => ManagerSpec::esm(4),
            1 => ManagerSpec::Eos {
                threshold_pages: 16,
                max_seg_pages: 1024,
            },
            _ => ManagerSpec::Starburst {
                max_seg_pages: 1024,
                known_size: false,
            },
        };
        let mut obj = spec.create(&mut db).unwrap();
        obj.append(&mut db, &pattern(2 << 20, i)).unwrap();
        obj.trim(&mut db).unwrap();
        objs.push(obj);
    }
    // Destroy every other object, then grow the survivors into the holes.
    for (i, obj) in objs.iter_mut().enumerate() {
        if i % 2 == 0 {
            obj.destroy(&mut db).unwrap();
        }
    }
    let survivors: Vec<&mut Box<dyn LargeObject>> = objs
        .iter_mut()
        .enumerate()
        .filter_map(|(i, o)| (i % 2 == 1).then_some(o))
        .collect();
    let mut db_ref = db;
    for (i, obj) in survivors.into_iter().enumerate() {
        obj.append(&mut db_ref, &pattern(1 << 20, 100 + i as u64))
            .unwrap();
        obj.check_invariants(&db_ref).unwrap();
        let expected_tail = pattern(1 << 20, 100 + i as u64);
        let size = obj.size(&mut db_ref);
        let mut tail = vec![0u8; 1 << 20];
        obj.read(&mut db_ref, size - (1 << 20), &mut tail).unwrap();
        assert_eq!(tail, expected_tail, "survivor {i}");
    }
}

/// Steady-state allocation stays at ≤ 1 directory access even with many
/// spaces, thanks to the superdirectory (§3.1).
#[test]
fn superdirectory_keeps_allocation_cheap_across_spaces() {
    let mut db = small_space_db();
    // Fill several spaces.
    let mut held = Vec::new();
    for _ in 0..6 {
        held.push(db.alloc_leaf(1024)); // one whole space each
    }
    // Now allocate/free small segments: the superdirectory knows the
    // full spaces are full, so each allocation touches at most one
    // directory (usually cached: zero I/O).
    let before: IoStats = db.io_stats();
    for _ in 0..50 {
        let e = db.alloc_leaf(8);
        db.free_leaf(e);
    }
    let delta = db.io_stats() - before;
    assert!(
        delta.calls() <= 2,
        "50 steady-state alloc/free cycles cost {} I/O calls",
        delta.calls()
    );
}
