#!/usr/bin/env bash
# CI driver: the exact gate sequence .github/workflows/ci.yml runs.
# Usage: ./ci.sh   (from the workspace root; offline, no network needed)
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo
    echo "==> $*"
    "$@"
}

# Style and static analysis first: these fail fastest. The xtask suite
# runs explicitly before loblint: it carries the seeded-violation
# fixtures and mutation drills for every lint rule (including the CFG
# rules: lock-order cycle/canonical-order detection, guard-across-io,
# panic-while-locked, disk-taint), so a broken rule fails loudly here
# rather than silently passing an under-linted workspace. loblint then
# runs against the committed ratchet baseline (loblint.baseline): any
# finding not already frozen there — a lock-order cycle or a v4
# crash-consistency violation included — fails the build. Its JSON
# report is validated against the loblint-findings/v2 schema (with
# per-finding CFG/effect-chain evidence) like the bench reports are,
# then converted to SARIF 2.1.0 (the converter validates its own
# output; CI uploads the .sarif as a workflow artifact).
run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings

# Documentation gate: rustdoc warnings (broken intra-doc links above
# all) are errors, and crates/obs + crates/buddy deny missing docs on
# their public APIs. docs/SCHEMAS.md is the prose counterpart for the
# JSON formats the validators below enforce.
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
run cargo test -q -p xtask
run cargo run -q -p xtask -- loblint --json --out target/loblint.json
run cargo run -q -p xtask -- check-lint-json target/loblint.json
run cargo run -q -p xtask -- lint-sarif target/loblint.json --out target/loblint.sarif

# Functional gates: the whole suite, then again with deep runtime
# verification compiled into every mutating operation.
run cargo test -q --workspace
run cargo test -q --features paranoid
run cargo test -q -p lobstore-core -p lobstore-buddy --features paranoid

# Machine-readable bench output: run one small bench and validate its
# --json-out document against the lobstore-bench-report/v1 schema.
run cargo run -q -p lobstore-bench --bin table2 -- --quick \
    --out-dir target/bench-smoke --json-out target/bench-smoke/table2.json
run cargo run -q -p xtask -- check-bench-json target/bench-smoke/table2.json

# Hot-path smoke plus the perf-regression gate: the fresh quick-scale
# throughput run is compared against the committed baseline BENCH_5.json.
# Simulated scan seconds are deterministic given the seed, so a >20%
# regression is a code change, not machine noise (wall MB/s is
# informational only). Regenerate the baseline deliberately with:
#   cargo run -q -p lobstore-bench --bin throughput -- --quick \
#       --json-out BENCH_5.json
run cargo run -q -p lobstore-bench --bin throughput -- --quick \
    --out-dir target/bench-smoke --json-out target/bench-smoke/throughput.json
run cargo run -q -p xtask -- check-bench-json target/bench-smoke/throughput.json
run cargo run -q -p xtask -- bench-compare BENCH_5.json target/bench-smoke/throughput.json

# Storage-health smoke: aging churn at smoke scale emits the v2 report
# (per-scheme health time series); schema-checked, then gated against the
# committed BENCH_7.json baseline — post-aging scan regression >20% or a
# fragmentation/utilization blowup fails the build (DESIGN.md §14).
run cargo run -q -p lobstore-bench --bin aging -- --quick \
    --out-dir target/bench-smoke --json-out target/bench-smoke/aging.json
run cargo run -q -p xtask -- check-bench-json target/bench-smoke/aging.json
run cargo run -q -p xtask -- bench-compare BENCH_7.json target/bench-smoke/aging.json

# Reader-scaling smoke: concurrent snapshot scanners under writer churn,
# gated against the committed BENCH_10.json baseline. Built --release on
# purpose: the gate measures the lock-free read tier against the
# serialized exclusive-lock discipline, and debug-build per-byte
# overhead (bounds checks, unoptimized copies) drowns the lock cost it
# exists to detect. bench-compare also enforces the absolute >= 3x
# floor on the final reader.scaling_ratio point (DESIGN.md §17).
# Regenerate the baseline deliberately with:
#   cargo run -q --release -p lobstore-bench --bin concurrent_mvcc -- \
#       --quick --json-out BENCH_10.json
run cargo run -q --release -p lobstore-bench --bin concurrent_mvcc -- --quick \
    --out-dir target/bench-smoke --json-out target/bench-smoke/concurrent_mvcc.json
run cargo run -q -p xtask -- check-bench-json target/bench-smoke/concurrent_mvcc.json
run cargo run -q -p xtask -- bench-compare BENCH_10.json target/bench-smoke/concurrent_mvcc.json

echo
echo "ci.sh: all gates passed"
