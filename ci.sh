#!/usr/bin/env bash
# CI driver: the exact gate sequence .github/workflows/ci.yml runs.
# Usage: ./ci.sh   (from the workspace root; offline, no network needed)
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo
    echo "==> $*"
    "$@"
}

# Style and static analysis first: these fail fastest. The xtask suite
# runs explicitly before loblint: it carries the seeded-violation
# fixtures and mutation drills for every lint rule (including the CFG
# rules: lock-order cycle/canonical-order detection, guard-across-io,
# panic-while-locked, disk-taint), so a broken rule fails loudly here
# rather than silently passing an under-linted workspace. loblint then
# runs against the committed ratchet baseline (loblint.baseline): any
# finding not already frozen there — a lock-order cycle included —
# fails the build. Its JSON report is validated against the
# loblint-findings/v2 schema (with per-finding CFG evidence) like the
# bench reports are.
run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo test -q -p xtask
run cargo run -q -p xtask -- loblint --json --out target/loblint.json
run cargo run -q -p xtask -- check-lint-json target/loblint.json

# Functional gates: the whole suite, then again with deep runtime
# verification compiled into every mutating operation.
run cargo test -q --workspace
run cargo test -q --features paranoid
run cargo test -q -p lobstore-core -p lobstore-buddy --features paranoid

# Machine-readable bench output: run one small bench and validate its
# --json-out document against the lobstore-bench-report/v1 schema.
run cargo run -q -p lobstore-bench --bin table2 -- --quick \
    --out-dir target/bench-smoke --json-out target/bench-smoke/table2.json
run cargo run -q -p xtask -- check-bench-json target/bench-smoke/table2.json

# Hot-path smoke: the throughput bench at smoke scale writes the
# repo-root trajectory artifact (full-scale numbers are regenerated with
# `cargo run -q -p lobstore-bench --bin throughput` before a release).
run cargo run -q -p lobstore-bench --bin throughput -- --quick \
    --out-dir target/bench-smoke --json-out BENCH_5.json
run cargo run -q -p xtask -- check-bench-json BENCH_5.json

echo
echo "ci.sh: all gates passed"
