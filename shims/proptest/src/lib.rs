//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so this crate
//! implements the pieces the test suite calls — `proptest!`,
//! `prop_oneof!`, `prop_assert*!`, `any`, `Just`, `.prop_map`,
//! `prop::collection::vec`, and `ProptestConfig` — on top of a small
//! deterministic RNG. Differences from the real crate:
//!
//! * **No shrinking.** A failing case panics with the generated input's
//!   `Debug` rendering and its case seed, but is not minimized.
//! * **Deterministic seeds.** Cases derive from a fixed base seed, so a
//!   failure reproduces on every run (the real crate persists failing
//!   seeds to a regressions file instead).
//!
//! Neither difference changes what the properties assert, only how
//! counterexamples are presented.

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` with the fields this
    /// workspace names. Extra knobs of the real crate are accepted
    /// through `..Default::default()` in struct literals.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_shrink_iters: 1024,
            }
        }
    }

    /// splitmix64 — deterministic generator behind every strategy.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values. Unlike the real crate there is no value
    /// tree and no shrinking: `generate` draws one value.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map }
        }

        fn prop_flat_map<S2, F>(self, map: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { source: self, map }
        }

        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Helper used by `prop_oneof!` to erase arm types.
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `.prop_map` adapter.
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// `.prop_flat_map` adapter.
    pub struct FlatMap<S, F> {
        source: S,
        map: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.map)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Weighted choice between type-erased arms (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(
                total_weight > 0,
                "prop_oneof! total weight must be positive"
            );
            Union { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight);
            for (weight, arm) in &self.arms {
                let weight = u64::from(*weight);
                if pick < weight {
                    return arm.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let draw = (rng.next_u64() as u128) % span;
                    self.start.wrapping_add(draw as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    let draw = (rng.next_u64() as u128) % span;
                    lo.wrapping_add(draw as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
            lo + unit * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// `proptest::arbitrary::any::<T>()` equivalent.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with a length drawn from `len` and elements
    /// drawn from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(elem, len_range)` equivalent.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.clone().generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions that run a property over many generated
/// cases. Matches the two forms this workspace uses: with and without a
/// leading `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::test_runner::Config as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])+ fn $name:ident($pat:pat in $strategy:expr) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let strategy = $strategy;
                for case in 0..u64::from(config.cases) {
                    // Seed derived from the case index only: failures
                    // reproduce deterministically on every run.
                    let seed = 0xC0FF_EE00_0000_0000u64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let mut rng = $crate::test_runner::TestRng::from_seed(seed);
                    let value = $crate::strategy::Strategy::generate(&strategy, &mut rng);
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        let $pat = value.clone();
                        $body
                    }));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {case} (seed {seed:#x}) failed with input: {:?}",
                            value
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// `prop_assert!` — panics like `assert!` (no shrinking to report to).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// `prop_assert_eq!` — panics like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// `prop_assert_ne!` — panics like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Weighted (`w => strat`) or unweighted choice between strategies; all
/// arms must yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strategy))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        Push(u8),
        Pop,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => any::<u8>().prop_map(Op::Push),
            1 => Just(Op::Pop),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn vec_strategy_respects_length(ops in prop::collection::vec(op_strategy(), 1..35)) {
            prop_assert!(!ops.is_empty() && ops.len() < 35);
        }

        #[test]
        fn tuple_and_ranges_compose(v in (0.0f64..=1.0, 1usize..30, 5u16..=9)) {
            let (f, n, w) = v;
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!((1..30).contains(&n));
            prop_assert!((5..=9).contains(&w));
        }
    }

    proptest! {
        #[test]
        fn defaults_apply_without_config(x in 0u32..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn oneof_weights_reach_every_arm() {
        use crate::strategy::Strategy as _;
        let strat = op_strategy();
        let mut rng = crate::test_runner::TestRng::from_seed(1);
        let mut saw_push = false;
        let mut saw_pop = false;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                Op::Push(_) => saw_push = true,
                Op::Pop => saw_pop = true,
            }
        }
        assert!(saw_push && saw_pop);
    }
}
