//! Offline stand-in for the subset of `criterion 0.5` this workspace's
//! benches call: `Criterion::benchmark_group`, `bench_function`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no crates.io access. This shim keeps
//! `cargo bench` compiling and producing *rough* wall-clock numbers
//! (median of a short fixed-duration run) without the statistical
//! machinery, HTML reports, or CLI of the real crate. Numbers printed
//! here are indicative only — regressions should be judged on the real
//! criterion once network access exists.

use std::time::{Duration, Instant};

/// How batched inputs are grouped; accepted for API compatibility. The
/// shim runs one setup per measured call regardless of the hint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Drives one benchmark body and records its timing.
pub struct Bencher {
    measured: Vec<Duration>,
}

/// Target wall-clock budget for one `bench_function` call.
const BUDGET: Duration = Duration::from_millis(200);
/// Hard cap on measured iterations per benchmark.
const MAX_ITERS: u64 = 10_000;

impl Bencher {
    /// Time `routine` repeatedly until the budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let started = Instant::now();
        while started.elapsed() < BUDGET && (self.measured.len() as u64) < MAX_ITERS {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.measured.push(t0.elapsed());
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let started = Instant::now();
        while started.elapsed() < BUDGET && (self.measured.len() as u64) < MAX_ITERS {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.measured.push(t0.elapsed());
        }
    }

    /// Like [`Bencher::iter_batched`] but hands the routine `&mut I`.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        let started = Instant::now();
        while started.elapsed() < BUDGET && (self.measured.len() as u64) < MAX_ITERS {
            let mut input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(&mut input));
            self.measured.push(t0.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.measured.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        let mut sorted = self.measured.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        println!(
            "{label:<48} median {median:>12?}  mean {mean:>12?}  ({} iters)",
            sorted.len()
        );
    }
}

/// Entry point handed to every benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group; the shim group only prefixes labels.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut body: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.to_string(), &mut body);
        self
    }
}

/// Group of related benchmarks sharing a label prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut body: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut body);
        self
    }

    /// Accepted for compatibility; the shim's iteration count is fixed by
    /// the measurement loop, not a sample budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim has no per-group state.
    pub fn finish(self) {}
}

fn run_one(label: &str, body: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        measured: Vec::new(),
    };
    body(&mut bencher);
    bencher.report(label);
}

/// `criterion_group!(name, target, ...)` — defines `fn name()` running
/// each target against a fresh `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// `criterion_main!(group, ...)` — defines `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.bench_function("iter", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(smoke, sample_bench);

    #[test]
    fn group_and_bencher_run() {
        smoke();
    }
}
