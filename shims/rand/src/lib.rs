//! Offline stand-in for the subset of the `rand 0.8` API this workspace
//! uses: `StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`, and
//! `Rng::gen`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the handful of entry points it calls. The generator
//! is xoshiro256++ seeded via splitmix64 — deterministic, fast, and easily
//! good enough for workload generation and randomized tests (it is *not*
//! cryptographic, exactly like the real `StdRng` contract does not promise
//! any particular algorithm across versions).

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG trait: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that knows how to draw a uniform sample of `T` from itself.
/// `T` is a type parameter (not an associated type), and the two range
/// impls below are blanket impls over [`SampleUniform`], so an
/// integer-literal bound unifies with the call-site's expected type the
/// same way it does with the real crate.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types `gen_range` can sample uniformly between two bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` or `[lo, hi]` when `inclusive`.
    fn sample_between<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(lo, hi, true, rng)
    }
}

/// Types drawable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "gen_range: empty range"
                );
                let span = (hi as u128)
                    .wrapping_sub(lo as u128)
                    .wrapping_add(u128::from(inclusive));
                let draw = (rng.next_u64() as u128) % span;
                lo.wrapping_add(draw as $t)
            }
        }
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore>(lo: f64, hi: f64, inclusive: bool, rng: &mut R) -> f64 {
        let denom = if inclusive {
            ((1u64 << 53) - 1) as f64
        } else {
            (1u64 << 53) as f64
        };
        let unit = (rng.next_u64() >> 11) as f64 / denom;
        lo + unit * (hi - lo)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator seeded through splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(3..=3);
            assert_eq!(w, 3);
            let f: f64 = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&f));
            let i: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
