//! The loblint v4 crash-consistency rules, built on interprocedural
//! *effect summaries* over the [`crate::lobsyn`] token streams and the
//! [`crate::lobflow`] CFG engine.
//!
//! The summary layer ([`summarize`]) computes, for every non-test
//! workspace function, the set of storage effects it may perform —
//! raw disk sites, cost-counted wrapper reads, durable writes, buddy
//! allocate/free, shadow-session operations, meta-page writes,
//! node-cache invalidations, guard acquisitions, root flips — by a
//! bottom-up fixpoint over the call graph ([`Effect`] is a small
//! finite lattice joined by set union, so the fixpoint terminates).
//! Calls resolve with the same conservative descriptor rules as the
//! lock graph ([`crate::flowrules::call_descriptor`]): `Q::f`,
//! `self.m`, and bare `f` only. Each summarized effect carries a
//! witness chain (call site -> ... -> direct site) that becomes the
//! finding's `evidence` array.
//!
//! Four rules consume the summaries, all scoped to library crates,
//! non-test code (DESIGN.md section 15):
//!
//! * `shadow-order` — inside an `OpCtx` shadow operation (§3.3
//!   discipline): old storage may only be released via
//!   `free_*_later` (materialized at `finish`), never freed
//!   immediately (directly or through a resolvable call); every
//!   `shadow_page`/`fresh_page` result must be written (mentioned)
//!   before `finish`; no in-place write to a page shadowed in the
//!   same op; and no shadow/meta/durable effect after `finish`.
//! * `alloc-balance` — every let-bound buddy allocation is freed,
//!   queued, or recorded (any later mention counts as an ownership
//!   transfer) on *every* CFG path, including `?`/`return` error
//!   edges, where a leaked extent would survive until fsck.
//! * `cache-invalidate` — a raw META page write (`guard_mut`/
//!   `guard_new` on `AreaId::META`) must reach a node-cache
//!   invalidation in the same function on every path; the
//!   `Db::with_meta_page_mut`/`with_new_meta_page` funnels are the
//!   sanctioned shape (the static twin of the PR 4 nodecache
//!   invariant).
//! * `commit-point` — an operation that makes a freshly allocated
//!   META root/header page durable (`flush_page(PageId::new(
//!   AreaId::META, <new page>))`) has exactly one such flip per
//!   path, and no durable write may follow it: a crash between the
//!   flip and a later write would publish a half-finished operation.
//!
//! Deliberate conservatisms, shared with the other CFG rules: a
//! mention anywhere in a statement counts for the whole statement
//! (so consumption after a `?` in the same statement is treated as
//! reaching the error path too — false-negative direction), and an
//! `OpCtx` dropped un-finished on an error edge is tolerated (it is
//! crash-equivalent by construction; `tests/crash_consistency.rs`
//! covers it dynamically).

use std::collections::{BTreeMap, BTreeSet};

use crate::flowrules::call_descriptor;
use crate::lobflow::{self, Cfg, Stmt};
use crate::loblint::{left_chain, Analysis, Finding};
use crate::lobsyn::{FnDef, Tok, TokKind};

/// One storage effect a function may perform. The summary of a
/// function is a set of these, each with a witness chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Effect {
    /// Raw `disk.read`/`disk.write`/`write_gather` site.
    RawDisk,
    /// Cost-counted read wrapper or entry (`read_buffered`, ...).
    WrapperRead,
    /// A write that reaches the disk image (`write_direct`,
    /// `flush_page`, `flush_range`, `flush_all`, `evict`, raw write).
    DurableWrite,
    /// Page pin / frame guard acquisition (`guard*`, `fix*`).
    GuardAcq,
    /// Buddy allocation (`alloc_leaf`, `alloc_meta_page`).
    BuddyAlloc,
    /// Immediate buddy release (`free_leaf`, `free_meta_page`).
    BuddyFree,
    /// `OpCtx::shadow_page` call site.
    ShadowPage,
    /// `OpCtx::fresh_page` call site.
    FreshPage,
    /// Deferred release (`free_extent_later`, `free_page_later`).
    FreeLater,
    /// Meta-page write: a `with_meta_page_mut`/`with_new_meta_page`
    /// funnel call, or a raw META guard site.
    MetaWrite,
    /// Node-cache invalidation (`meta_cache.invalidate/clear`, or a
    /// funnel, which invalidates internally).
    CacheInvalidate,
    /// Commit point: `flush_page` of a freshly allocated META page.
    RootFlip,
}

/// Effects that describe a *local* protocol (tied to the enclosing
/// function's `OpCtx` or allocation) and therefore do not propagate
/// to callers during the fixpoint.
const LOCAL_EFFECTS: [Effect; 4] = [
    Effect::RootFlip,
    Effect::ShadowPage,
    Effect::FreshPage,
    Effect::FreeLater,
];

/// A function's effect summary: each effect it may perform, with a
/// witness chain from the function down to a direct site.
pub(crate) type Summary = BTreeMap<Effect, Vec<String>>;
/// Qualified function name (`Owner::name` or bare `name`) -> summary.
pub(crate) type Sums = BTreeMap<String, Summary>;

/// A direct effect site inside one function body: the token index of
/// the called name.
#[derive(Debug, Clone, Copy)]
struct Site {
    effect: Effect,
    tok: usize,
}

/// Files participating in the effect graph: the workspace minus the
/// analyzer itself and the vendored dependency shims (same scope as
/// the lock graph).
fn effect_graph_file(rel: &str) -> bool {
    !rel.starts_with("crates/xtask/") && !rel.starts_with("shims/")
}

// ---- token helpers --------------------------------------------------------

/// Index of the bracket closing the group opened at `open`.
fn group_end(t: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < t.len() {
        match t[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    t.len()
}

/// Does the bracket group opened at `open` contain ident `name`?
fn group_has(t: &[Tok], open: usize, name: &str) -> bool {
    let close = group_end(t, open);
    (open + 1..close).any(|i| t[i].is_ident(name))
}

/// The `n`-th (0-based) comma-separated argument of the group opened
/// at `open`, as the concatenation of its token texts (`self.root`,
/// `step.page`); used to compare page expressions by spelling.
fn nth_arg(t: &[Tok], open: usize, n: usize) -> Option<String> {
    let close = group_end(t, open);
    let mut depth = 0i64;
    let mut idx = 0usize;
    let mut cur = String::new();
    for tok in t.iter().take(close).skip(open + 1) {
        match tok.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => {
                if idx == n {
                    return Some(cur);
                }
                idx += 1;
                cur.clear();
                continue;
            }
            _ => {}
        }
        cur.push_str(&tok.text);
    }
    (idx == n && !cur.is_empty()).then_some(cur)
}

/// Every identifier mentioned in `[lo, hi)`.
fn mentions(t: &[Tok], lo: usize, hi: usize) -> BTreeSet<String> {
    (lo..hi.min(t.len()))
        .filter(|&i| t[i].kind == TokKind::Ident)
        .map(|i| t[i].text.clone())
        .collect()
}

/// First early-exit token (`?` or `return`) in `[lo, hi)`, if any.
fn escape_at(t: &[Tok], lo: usize, hi: usize) -> Option<usize> {
    (lo..hi.min(t.len())).find(|&i| t[i].is_punct("?") || t[i].is_ident("return"))
}

/// The page variable of a commit-point-shaped `flush_page` call at
/// `k`: `flush_page ( PageId :: new ( AreaId :: META , v ) )`.
fn flip_arg(t: &[Tok], k: usize) -> Option<String> {
    let p = |i: usize, s: &str| t.get(k + i).is_some_and(|x| x.text == s);
    (p(1, "(")
        && p(2, "PageId")
        && p(3, "::")
        && p(4, "new")
        && p(5, "(")
        && p(6, "AreaId")
        && p(7, "::")
        && p(8, "META")
        && p(9, ",")
        && t.get(k + 10).is_some_and(|x| x.kind == TokKind::Ident)
        && p(11, ")"))
    .then(|| t[k + 10].text.clone())
}

// ---- direct effect sites --------------------------------------------------

/// All direct effect sites in one function body `[b0, b1)`.
fn scan_sites(t: &[Tok], b0: usize, b1: usize) -> Vec<Site> {
    // Names let-bound from `alloc_meta_page()`: the commit-point
    // candidates. Loop variables and parameters (the `OpCtx::finish`
    // flush loop, `Catalog::flush`) are deliberately not candidates.
    let mut meta_vars: BTreeSet<String> = BTreeSet::new();
    for k in b0..b1.min(t.len()) {
        if t[k].is_ident("alloc_meta_page") && t.get(k + 1).is_some_and(|n| n.is_punct("(")) {
            if let Some(v) = lobflow::live_region(t, b0, b1, k).var {
                meta_vars.insert(v);
            }
        }
    }
    let mut out = Vec::new();
    for k in b0..b1.min(t.len()) {
        if t[k].kind != TokKind::Ident
            || !t.get(k + 1).is_some_and(|n| n.is_punct("("))
            || (k > 0 && t[k - 1].is_ident("fn"))
        {
            continue;
        }
        let recv: Vec<String> = if k >= 1 && t[k - 1].is_punct(".") {
            left_chain(t, k - 1).unwrap_or_default()
        } else {
            Vec::new()
        };
        let mut eff = |e: Effect| out.push(Site { effect: e, tok: k });
        match t[k].text.as_str() {
            "alloc_leaf" | "alloc_meta_page" => eff(Effect::BuddyAlloc),
            "free_leaf" | "free_meta_page" => eff(Effect::BuddyFree),
            "shadow_page" => eff(Effect::ShadowPage),
            "fresh_page" => eff(Effect::FreshPage),
            "free_extent_later" | "free_page_later" => eff(Effect::FreeLater),
            "with_meta_page_mut" | "with_new_meta_page" => {
                // The sanctioned funnels: they write META and
                // invalidate the node cache internally (db.rs).
                eff(Effect::MetaWrite);
                eff(Effect::CacheInvalidate);
            }
            "invalidate" | "clear" if recv.iter().any(|r| r == "meta_cache") => {
                eff(Effect::CacheInvalidate)
            }
            name @ ("guard" | "guard_mut" | "guard_new" | "fix" | "fix_new") => {
                eff(Effect::GuardAcq);
                if name == "fix" {
                    eff(Effect::WrapperRead);
                }
                if matches!(name, "guard_mut" | "guard_new" | "fix_new")
                    && group_has(t, k + 1, "META")
                {
                    eff(Effect::MetaWrite);
                }
            }
            "read_buffered" | "read_direct" | "read_pages" | "read_scatter" | "read_segment" => {
                eff(Effect::WrapperRead)
            }
            "evict" | "flush_all" | "flush_range" | "write_direct" => eff(Effect::DurableWrite),
            "flush_page" => {
                eff(Effect::DurableWrite);
                if flip_arg(t, k).is_some_and(|v| meta_vars.contains(&v)) {
                    eff(Effect::RootFlip);
                }
            }
            name @ ("read" | "write" | "write_gather")
                if recv.iter().any(|r| r == "disk" || r == "disk_mut") =>
            {
                eff(Effect::RawDisk);
                if name != "read" {
                    eff(Effect::DurableWrite);
                }
            }
            _ => {}
        }
    }
    out
}

// ---- the summary fixpoint -------------------------------------------------

/// Bottom-up effect summaries for every non-test workspace function.
/// Direct sites seed the map; the fixpoint unions resolvable callees'
/// effects into callers, prefixing the call site onto the witness
/// chain (capped at four hops). [`LOCAL_EFFECTS`] stay local: a
/// caller of `create()` does not itself flip a root.
pub(crate) fn summarize(analyses: &[Analysis]) -> Sums {
    let mut sums: Sums = BTreeMap::new();
    let mut edges: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
    for a in analyses {
        if !effect_graph_file(&a.rel) {
            continue;
        }
        for f in &a.fns {
            let Some((b0, b1)) = f.body else { continue };
            if a.in_test(f.line) {
                continue;
            }
            let q = f.qualified();
            let entry = sums.entry(q.clone()).or_default();
            for site in scan_sites(&a.toks, b0, b1) {
                entry.entry(site.effect).or_insert_with(|| {
                    vec![format!(
                        "{}:{} `{}(..)`",
                        a.rel, a.toks[site.tok].line, a.toks[site.tok].text
                    )]
                });
            }
            let e = edges.entry(q).or_default();
            for k in b0..b1.min(a.toks.len()) {
                if let Some(d) = call_descriptor(&a.toks, k, f.owner.as_deref()) {
                    e.entry(d)
                        .or_insert_with(|| format!("{}:{}", a.rel, a.toks[k].line));
                }
            }
        }
    }
    // Effects form a finite set, so each round can only add; bound the
    // rounds as a backstop anyway.
    for _ in 0..64 {
        let mut changed = false;
        let snapshot = sums.clone();
        for (caller, calls) in &edges {
            for (callee, site) in calls {
                let Some(cs) = snapshot.get(callee) else {
                    continue;
                };
                for (effect, chain) in cs {
                    if LOCAL_EFFECTS.contains(effect) {
                        continue;
                    }
                    let entry = sums.entry(caller.clone()).or_default();
                    if !entry.contains_key(effect) {
                        let mut ev = vec![format!("{site}: call `{callee}`")];
                        ev.extend(chain.iter().take(3).cloned());
                        entry.insert(*effect, ev);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    sums
}

// ---- per-function context -------------------------------------------------

/// Everything the four rules need about one function under analysis.
struct FnCx<'a> {
    a: &'a Analysis,
    f: &'a FnDef,
    b0: usize,
    b1: usize,
    cfg: Cfg,
    sites: Vec<Site>,
}

impl FnCx<'_> {
    fn t(&self) -> &[Tok] {
        &self.a.toks
    }

    fn sites_in(&self, lo: usize, hi: usize) -> impl Iterator<Item = &Site> + '_ {
        self.sites.iter().filter(move |s| lo <= s.tok && s.tok < hi)
    }

    /// Resolvable calls in `[lo, hi)` whose summary is known.
    fn callee_effects<'s>(
        &self,
        lo: usize,
        hi: usize,
        sums: &'s Sums,
    ) -> Vec<(String, usize, &'s Summary)> {
        let t = self.t();
        let mut out = Vec::new();
        for k in lo..hi.min(t.len()) {
            if let Some(d) = call_descriptor(t, k, self.f.owner.as_deref()) {
                if let Some(s) = sums.get(&d) {
                    out.push((d, k, s));
                }
            }
        }
        out
    }
}

/// The shadow-session handle of a function: an `OpCtx`-typed
/// parameter (live at entry), or a `let [mut] name = OpCtx::new()`
/// binding (live from its statement on).
struct CtxInfo {
    name: String,
    /// Token index of the `OpCtx::new` site; `None` for a parameter.
    new_tok: Option<usize>,
}

fn ctx_info(t: &[Tok], f: &FnDef, b0: usize, b1: usize) -> Option<CtxInfo> {
    for j in f.fn_tok..b0.min(t.len()) {
        if t[j].is_ident("OpCtx") {
            let mut p = j;
            while p > f.fn_tok
                && (t[p - 1].is_punct("&")
                    || t[p - 1].is_ident("mut")
                    || t[p - 1].kind == TokKind::Lifetime)
            {
                p -= 1;
            }
            if p >= 2 && t[p - 1].is_punct(":") && t[p - 2].kind == TokKind::Ident {
                return Some(CtxInfo {
                    name: t[p - 2].text.clone(),
                    new_tok: None,
                });
            }
        }
    }
    for k in b0..b1.min(t.len()).saturating_sub(2) {
        if t[k].is_ident("OpCtx") && t[k + 1].is_punct("::") && t[k + 2].is_ident("new") {
            if let Some(var) = lobflow::live_region(t, b0, b1, k).var {
                return Some(CtxInfo {
                    name: var,
                    new_tok: Some(k),
                });
            }
        }
    }
    None
}

/// Token index of a `<ctx> . finish (` call in `[lo, hi)`, if any.
/// Receiver-checked so `obs.finish(..)` / `w.finish()` don't match.
fn finish_at(t: &[Tok], lo: usize, hi: usize, ctx: &str) -> Option<usize> {
    (lo..hi.min(t.len())).find(|&k| {
        t[k].is_ident("finish")
            && t.get(k + 1).is_some_and(|n| n.is_punct("("))
            && k >= 2
            && t[k - 1].is_punct(".")
            && t[k - 2].is_ident(ctx)
    })
}

// ---- the rules ------------------------------------------------------------

/// Entry point, called from `lint_sources` after the v3 rules.
pub(crate) fn check(analyses: &[Analysis], out: &mut Vec<Finding>) {
    let sums = summarize(analyses);
    for a in analyses {
        if !a.class.library {
            continue;
        }
        for f in &a.fns {
            let Some((b0, b1)) = f.body else { continue };
            if a.in_test(f.line) {
                continue;
            }
            let cx = FnCx {
                a,
                f,
                b0,
                b1,
                cfg: lobflow::build_cfg(&a.toks, b0, b1),
                sites: scan_sites(&a.toks, b0, b1),
            };
            check_shadow_order(&cx, &sums, out);
            check_alloc_balance(&cx, out);
            check_cache_invalidate(&cx, out);
            check_commit_point(&cx, &sums, out);
        }
    }
}

/// Shadow-session state for `shadow-order`, joined pessimistically
/// (may-live, may-finished, union of shadowed pages and unwritten
/// shadow/fresh bindings).
#[derive(Clone, PartialEq, Default)]
struct ShadState {
    live: bool,
    finished: bool,
    /// Spellings of pages passed to `shadow_page` (the *old* copies).
    shadowed: BTreeSet<String>,
    /// Shadow/fresh bindings not yet written: name -> site token.
    pending: BTreeMap<String, usize>,
}

fn check_shadow_order(cx: &FnCx, sums: &Sums, out: &mut Vec<Finding>) {
    if cx.f.owner.as_deref() == Some("OpCtx") {
        return; // the session implementation itself
    }
    let Some(ctx) = ctx_info(cx.t(), cx.f, cx.b0, cx.b1) else {
        return;
    };
    let t = cx.t();
    let join = |a: &ShadState, b: &ShadState| ShadState {
        live: a.live || b.live,
        finished: a.finished || b.finished,
        shadowed: a.shadowed.union(&b.shadowed).cloned().collect(),
        pending: {
            let mut m = a.pending.clone();
            m.extend(b.pending.iter().map(|(k, v)| (k.clone(), *v)));
            m
        },
    };
    let transfer = |s: &mut ShadState, st: &Stmt| {
        let m = mentions(t, st.lo, st.hi);
        if !s.finished {
            // A mention is a write (or an ownership hand-off to a
            // helper that writes); after finish it no longer counts.
            s.pending.retain(|v, _| !m.contains(v));
        }
        for site in cx.sites_in(st.lo, st.hi) {
            match site.effect {
                Effect::ShadowPage => {
                    if let Some(old) = nth_arg(t, site.tok + 1, 1) {
                        s.shadowed.insert(old);
                    }
                    if let Some(v) = lobflow::live_region(t, cx.b0, cx.b1, site.tok).var {
                        s.pending.insert(v, site.tok);
                    }
                }
                Effect::FreshPage => {
                    if let Some(v) = lobflow::live_region(t, cx.b0, cx.b1, site.tok).var {
                        s.pending.insert(v, site.tok);
                    }
                }
                _ => {}
            }
        }
        if let Some(k) = ctx.new_tok {
            if st.lo <= k && k < st.hi {
                s.live = true;
            }
        }
        if finish_at(t, st.lo, st.hi, &ctx.name).is_some() {
            s.finished = true;
            s.live = false;
        }
    };
    let entry = ShadState {
        live: ctx.new_tok.is_none(),
        ..Default::default()
    };
    let entries = lobflow::forward(&cx.cfg, entry, join, transfer);
    lobflow::replay(&cx.cfg, &entries, transfer, |s, st| {
        if s.live {
            for site in cx.sites_in(st.lo, st.hi) {
                if site.effect == Effect::BuddyFree {
                    cx.a.push_ev(
                        out,
                        t[site.tok].line,
                        "shadow-order",
                        format!(
                            "`{}(..)` releases storage immediately while shadow op `{}` is \
                             open; queue it with `{}.free_extent_later`/`free_page_later` so \
                             it materializes at finish",
                            t[site.tok].text, ctx.name, ctx.name
                        ),
                        vec![format!("shadow session open: `{}`", ctx.name)],
                    );
                }
            }
            for (callee, k, sum) in cx.callee_effects(st.lo, st.hi, sums) {
                if let Some(chain) = sum.get(&Effect::BuddyFree) {
                    cx.a.push_ev(
                        out,
                        t[k].line,
                        "shadow-order",
                        format!(
                            "call `{callee}` releases storage immediately while shadow op \
                             `{}` is open; pass the session and defer via `free_*_later`",
                            ctx.name
                        ),
                        chain.clone(),
                    );
                }
            }
        }
        if s.finished {
            for site in cx.sites_in(st.lo, st.hi) {
                if matches!(
                    site.effect,
                    Effect::MetaWrite
                        | Effect::ShadowPage
                        | Effect::FreshPage
                        | Effect::FreeLater
                        | Effect::DurableWrite
                ) {
                    cx.a.push_ev(
                        out,
                        t[site.tok].line,
                        "shadow-order",
                        format!(
                            "`{}(..)` after `{}.finish(..)`: the operation is already \
                             committed; move the effect before finish",
                            t[site.tok].text, ctx.name
                        ),
                        vec![format!("commit: `{}.finish(..)`", ctx.name)],
                    );
                }
            }
            for (callee, k, sum) in cx.callee_effects(st.lo, st.hi, sums) {
                if let Some(chain) = sum
                    .get(&Effect::MetaWrite)
                    .or_else(|| sum.get(&Effect::DurableWrite))
                {
                    cx.a.push_ev(
                        out,
                        t[k].line,
                        "shadow-order",
                        format!(
                            "call `{callee}` writes meta/durable state after \
                             `{}.finish(..)`; the operation is already committed",
                            ctx.name
                        ),
                        chain.clone(),
                    );
                }
            }
        } else {
            for site in cx.sites_in(st.lo, st.hi) {
                if site.effect == Effect::MetaWrite
                    && matches!(
                        t[site.tok].text.as_str(),
                        "with_meta_page_mut" | "with_new_meta_page"
                    )
                {
                    if let Some(arg0) = nth_arg(t, site.tok + 1, 0) {
                        if s.shadowed.contains(&arg0) {
                            cx.a.push_ev(
                                out,
                                t[site.tok].line,
                                "shadow-order",
                                format!(
                                    "in-place write to `{arg0}`, which was shadowed earlier \
                                     in this op; write the shadow copy instead"
                                ),
                                vec![format!("`{arg0}` shadowed via `{}.shadow_page`", ctx.name)],
                            );
                        }
                    }
                }
            }
        }
    });
    if let Some(Some(end)) = entries.get(cx.cfg.exit) {
        for (v, &site) in &end.pending {
            cx.a.push_ev(
                out,
                t[site].line,
                "shadow-order",
                format!(
                    "shadow/fresh page `{v}` from `{}(..)` is never written before \
                     `{}.finish(..)`/exit on some path",
                    t[site].text, ctx.name
                ),
                vec![format!("shadow session: `{}`", ctx.name)],
            );
        }
    }
}

fn check_alloc_balance(cx: &FnCx, out: &mut Vec<Finding>) {
    let t = cx.t();
    if !cx.sites.iter().any(|s| s.effect == Effect::BuddyAlloc) {
        return;
    }
    type S = BTreeMap<String, usize>; // live allocation: name -> site token
    let join = |a: &S, b: &S| {
        let mut m = a.clone();
        m.extend(b.iter().map(|(k, v)| (k.clone(), *v)));
        m
    };
    let transfer = |s: &mut S, st: &Stmt| {
        let m = mentions(t, st.lo, st.hi);
        s.retain(|v, _| !m.contains(v));
        for site in cx.sites_in(st.lo, st.hi) {
            if site.effect == Effect::BuddyAlloc {
                if let Some(v) = lobflow::live_region(t, cx.b0, cx.b1, site.tok).var {
                    s.insert(v, site.tok);
                }
            }
        }
    };
    let entries = lobflow::forward(&cx.cfg, S::new(), join, transfer);
    let mut reported: BTreeSet<usize> = BTreeSet::new();
    lobflow::replay(&cx.cfg, &entries, transfer, |s, st| {
        let Some(esc) = escape_at(t, st.lo, st.hi) else {
            return;
        };
        let m = mentions(t, st.lo, st.hi);
        for (v, &site) in s.iter().filter(|(v, _)| !m.contains(*v)) {
            if reported.insert(site) {
                cx.a.push_ev(
                    out,
                    t[esc].line,
                    "alloc-balance",
                    format!(
                        "extent/page `{v}` from `{}(..)` leaks on this early-return path; \
                         free it, queue it with `free_*_later`, or record it before the \
                         `?`/`return`",
                        t[site].text
                    ),
                    vec![format!("allocated at {}:{}", cx.a.rel, t[site].line)],
                );
            }
        }
    });
    if let Some(Some(end)) = entries.get(cx.cfg.exit) {
        for (v, &site) in end {
            if reported.insert(site) {
                cx.a.push_ev(
                    out,
                    t[site].line,
                    "alloc-balance",
                    format!(
                        "extent/page `{v}` from `{}(..)` is never freed, queued, or \
                         recorded on some path to function exit",
                        t[site].text
                    ),
                    Vec::new(),
                );
            }
        }
    }
}

fn check_cache_invalidate(cx: &FnCx, out: &mut Vec<Finding>) {
    let t = cx.t();
    // Raw META write sites: META-addressed mutable guards (and, for
    // completeness, direct write wrappers aimed at META). The flush
    // family is exempt: flushing a frame cannot stale the node cache.
    let raw: Vec<usize> = (cx.b0..cx.b1.min(t.len()))
        .filter(|&k| {
            t[k].kind == TokKind::Ident
                && t.get(k + 1).is_some_and(|n| n.is_punct("("))
                && !(k > 0 && t[k - 1].is_ident("fn"))
                && matches!(
                    t[k].text.as_str(),
                    "guard_mut" | "guard_new" | "fix_new" | "write_direct" | "write_gather"
                )
                && group_has(t, k + 1, "META")
        })
        .collect();
    for &site in &raw {
        #[derive(Clone, PartialEq, Default)]
        struct S {
            /// Invalidation seen on *every* path so far (must-join).
            inval: bool,
            /// Site executed without a preceding invalidation, and no
            /// invalidation since (may-join).
            pending: bool,
        }
        let join = |a: &S, b: &S| S {
            inval: a.inval && b.inval,
            pending: a.pending || b.pending,
        };
        let transfer = |s: &mut S, st: &Stmt| {
            if st.lo <= site && site < st.hi && !s.inval {
                s.pending = true;
            }
            if cx
                .sites_in(st.lo, st.hi)
                .any(|x| x.effect == Effect::CacheInvalidate)
            {
                s.inval = true;
                s.pending = false;
            }
        };
        let entries = lobflow::forward(&cx.cfg, S::default(), join, transfer);
        if let Some(Some(end)) = entries.get(cx.cfg.exit) {
            if end.pending {
                cx.a.push_ev(
                    out,
                    t[site].line,
                    "cache-invalidate",
                    format!(
                        "raw META page write via `{}(..)` does not reach a node-cache \
                         invalidation before function exit; stale deserialized nodes would \
                         survive — use `Db::with_meta_page_mut`/`with_new_meta_page` or \
                         invalidate explicitly",
                        t[site].text
                    ),
                    vec![format!("write site: {}:{}", cx.a.rel, t[site].line)],
                );
            }
        }
    }
}

fn check_commit_point(cx: &FnCx, sums: &Sums, out: &mut Vec<Finding>) {
    let t = cx.t();
    let flips: Vec<usize> = cx
        .sites
        .iter()
        .filter(|s| s.effect == Effect::RootFlip)
        .map(|s| s.tok)
        .collect();
    if flips.is_empty() {
        return;
    }
    let flip_ev: Vec<String> = flips
        .iter()
        .map(|&k| format!("commit point: {}:{} `flush_page(..)`", cx.a.rel, t[k].line))
        .collect();
    let join = |a: &u8, b: &u8| (*a).max(*b);
    let transfer = |s: &mut u8, st: &Stmt| {
        let n = flips.iter().filter(|&&k| st.lo <= k && k < st.hi).count() as u8;
        *s = s.saturating_add(n).min(2);
    };
    let entries = lobflow::forward(&cx.cfg, 0u8, join, transfer);
    lobflow::replay(&cx.cfg, &entries, transfer, |s, st| {
        let local: Vec<usize> = flips
            .iter()
            .copied()
            .filter(|&k| st.lo <= k && k < st.hi)
            .collect();
        let seen_before = *s >= 1;
        for (i, &k) in local.iter().enumerate() {
            if seen_before || i > 0 {
                cx.a.push_ev(
                    out,
                    t[k].line,
                    "commit-point",
                    "second root/header flip on this path; an operation has exactly one \
                     commit point"
                        .to_string(),
                    flip_ev.clone(),
                );
            }
        }
        if seen_before {
            for site in cx.sites_in(st.lo, st.hi) {
                if site.effect == Effect::DurableWrite && !flips.contains(&site.tok) {
                    cx.a.push_ev(
                        out,
                        t[site.tok].line,
                        "commit-point",
                        format!(
                            "durable write `{}(..)` after the commit-point flip; a crash \
                             between them publishes a half-finished operation (§3.3)",
                            t[site.tok].text
                        ),
                        flip_ev.clone(),
                    );
                }
            }
            for (callee, k, sum) in cx.callee_effects(st.lo, st.hi, sums) {
                if let Some(chain) = sum.get(&Effect::DurableWrite) {
                    let mut ev = flip_ev.clone();
                    ev.extend(chain.iter().cloned());
                    cx.a.push_ev(
                        out,
                        t[k].line,
                        "commit-point",
                        format!(
                            "call `{callee}` performs durable writes after the commit-point \
                             flip; a crash between them publishes a half-finished operation"
                        ),
                        ev,
                    );
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use crate::loblint::{lint_sources, Finding};

    fn findings_for(files: &[(&str, &str)], rule: &str) -> Vec<Finding> {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(rel, content)| (rel.to_string(), content.to_string()))
            .collect();
        lint_sources(&sources)
            .into_iter()
            .filter(|f| f.rule == rule)
            .collect()
    }

    // ---- shadow-order -------------------------------------------------

    #[test]
    fn shadow_order_clean_op_has_no_findings() {
        let files = [(
            "crates/core/src/x.rs",
            "fn op(db: &mut Db, page: u32) -> Result<(), E> {\n\
             let mut ctx = OpCtx::new();\n\
             let target = ctx.shadow_page(db, page);\n\
             store_node(db, target, 1);\n\
             ctx.finish(db);\n\
             Ok(())\n\
             }\n",
        )];
        assert!(findings_for(&files, "shadow-order").is_empty());
    }

    #[test]
    fn shadow_order_flags_in_place_write_to_shadowed_page() {
        let files = [(
            "crates/core/src/x.rs",
            "fn op(db: &mut Db, page: u32) {\n\
             let mut ctx = OpCtx::new();\n\
             let target = ctx.shadow_page(db, page);\n\
             db.with_meta_page_mut(page, write_one);\n\
             store_node(db, target, 1);\n\
             ctx.finish(db);\n\
             }\n",
        )];
        let fs = findings_for(&files, "shadow-order");
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("in-place write to `page`"), "{fs:?}");
    }

    #[test]
    fn shadow_order_flags_swapped_order_write_after_finish() {
        // Mutation drill: the same op with the meta write moved after
        // finish (the "swapped shadow order" seed).
        let good = "fn op(db: &mut Db, page: u32) {\n\
                    let mut ctx = OpCtx::new();\n\
                    let target = ctx.fresh_page(db);\n\
                    db.with_meta_page_mut(target, write_one);\n\
                    ctx.finish(db);\n\
                    }\n";
        let bad = "fn op(db: &mut Db, page: u32) {\n\
                   let mut ctx = OpCtx::new();\n\
                   let target = ctx.fresh_page(db);\n\
                   db.with_meta_page_mut(target, write_one);\n\
                   ctx.finish(db);\n\
                   db.with_meta_page_mut(page, write_one);\n\
                   }\n";
        assert!(findings_for(&[("crates/core/src/x.rs", good)], "shadow-order").is_empty());
        let fs = findings_for(&[("crates/core/src/x.rs", bad)], "shadow-order");
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("after `ctx.finish(..)`"), "{fs:?}");
    }

    #[test]
    fn shadow_order_flags_immediate_free_while_open() {
        let bad = "fn op(db: &mut Db, ext: Extent) {\n\
                   let mut ctx = OpCtx::new();\n\
                   db.free_leaf(ext);\n\
                   ctx.finish(db);\n\
                   }\n";
        let good = "fn op(db: &mut Db, ext: Extent) {\n\
                    let mut ctx = OpCtx::new();\n\
                    ctx.free_extent_later(ext);\n\
                    ctx.finish(db);\n\
                    }\n";
        let fs = findings_for(&[("crates/core/src/x.rs", bad)], "shadow-order");
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("releases storage immediately"));
        assert!(findings_for(&[("crates/core/src/x.rs", good)], "shadow-order").is_empty());
    }

    #[test]
    fn shadow_order_sees_free_through_a_call_with_evidence() {
        let files = [(
            "crates/core/src/x.rs",
            "fn helper(db: &mut Db, ext: Extent) {\n\
             db.free_leaf(ext);\n\
             }\n\
             fn op(db: &mut Db, ext: Extent) {\n\
             let mut ctx = OpCtx::new();\n\
             helper(db, ext);\n\
             ctx.finish(db);\n\
             }\n",
        )];
        let fs = findings_for(&files, "shadow-order");
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("call `helper`"), "{fs:?}");
        assert!(
            fs[0].evidence.iter().any(|e| e.contains("free_leaf")),
            "witness chain should reach the direct site: {fs:?}"
        );
    }

    #[test]
    fn shadow_order_flags_unwritten_fresh_page() {
        let files = [(
            "crates/core/src/x.rs",
            "fn op(db: &mut Db) {\n\
             let mut ctx = OpCtx::new();\n\
             let target = ctx.fresh_page(db);\n\
             ctx.finish(db);\n\
             }\n",
        )];
        let fs = findings_for(&files, "shadow-order");
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("never written before"), "{fs:?}");
    }

    // ---- alloc-balance ------------------------------------------------

    #[test]
    fn alloc_balance_flags_leak_on_question_mark_path() {
        // Mutation drill: hoisting the fallible call above the
        // allocation makes the same function clean.
        let bad = "fn op(db: &mut Db) -> Result<(), E> {\n\
                   let ext = db.alloc_leaf(n());\n\
                   risky(db)?;\n\
                   record_extent(db, ext);\n\
                   Ok(())\n\
                   }\n";
        let good = "fn op(db: &mut Db) -> Result<(), E> {\n\
                    risky(db)?;\n\
                    let ext = db.alloc_leaf(n());\n\
                    record_extent(db, ext);\n\
                    Ok(())\n\
                    }\n";
        let fs = findings_for(&[("crates/core/src/x.rs", bad)], "alloc-balance");
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("leaks on this early-return path"));
        assert_eq!(fs[0].line, 3, "anchored at the `?`: {fs:?}");
        assert!(findings_for(&[("crates/core/src/x.rs", good)], "alloc-balance").is_empty());
    }

    #[test]
    fn alloc_balance_flags_branch_return_leak() {
        let files = [(
            "crates/core/src/x.rs",
            "fn op(db: &mut Db, c: bool) -> u32 {\n\
             let ext = db.alloc_leaf(n());\n\
             if c {\n\
             return fallback();\n\
             }\n\
             ext.start\n\
             }\n",
        )];
        let fs = findings_for(&files, "alloc-balance");
        assert_eq!(fs.len(), 1, "{fs:?}");
    }

    #[test]
    fn alloc_balance_flags_never_recorded_alloc() {
        let files = [(
            "crates/core/src/x.rs",
            "fn op(db: &mut Db) {\n\
             let ext = db.alloc_leaf(n());\n\
             }\n",
        )];
        let fs = findings_for(&files, "alloc-balance");
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("never freed, queued, or recorded"));
    }

    #[test]
    fn alloc_balance_accepts_recorded_alloc_across_branches() {
        let files = [(
            "crates/core/src/x.rs",
            "fn op(db: &mut Db, c: bool) -> Extent {\n\
             let ext = db.alloc_leaf(n());\n\
             if c {\n\
             register(db, ext);\n\
             } else {\n\
             db.free_leaf(ext);\n\
             }\n\
             done(db);\n\
             result()\n\
             }\n",
        )];
        assert!(findings_for(&files, "alloc-balance").is_empty());
    }

    // ---- cache-invalidate ---------------------------------------------

    #[test]
    fn cache_invalidate_flags_dropped_invalidation() {
        // Mutation drill: the funnel shape (invalidate first) and the
        // invalidate-after-on-all-paths shape are both clean; dropping
        // the invalidation is the seeded violation.
        let bad = "fn raw(&mut self, page: u32) {\n\
                   let g = self.pool.guard_mut(PageId::new(AreaId::META, page));\n\
                   consume(g);\n\
                   }\n";
        let before = "fn raw(&mut self, page: u32) {\n\
                      self.meta_cache.invalidate(page);\n\
                      let g = self.pool.guard_mut(PageId::new(AreaId::META, page));\n\
                      consume(g);\n\
                      }\n";
        let after = "fn raw(&mut self, page: u32) {\n\
                     let g = self.pool.guard_mut(PageId::new(AreaId::META, page));\n\
                     consume(g);\n\
                     self.meta_cache.invalidate(page);\n\
                     }\n";
        let fs = findings_for(&[("crates/core/src/x.rs", bad)], "cache-invalidate");
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("node-cache invalidation"));
        assert!(findings_for(&[("crates/core/src/x.rs", before)], "cache-invalidate").is_empty());
        assert!(findings_for(&[("crates/core/src/x.rs", after)], "cache-invalidate").is_empty());
    }

    #[test]
    fn cache_invalidate_flags_partial_branch_invalidation() {
        let files = [(
            "crates/core/src/x.rs",
            "fn raw(&mut self, page: u32, c: bool) {\n\
             let g = self.pool.guard_mut(PageId::new(AreaId::META, page));\n\
             consume(g);\n\
             if c {\n\
             self.meta_cache.invalidate(page);\n\
             }\n\
             }\n",
        )];
        let fs = findings_for(&files, "cache-invalidate");
        assert_eq!(fs.len(), 1, "one path misses the invalidation: {fs:?}");
    }

    // ---- commit-point -------------------------------------------------

    #[test]
    fn commit_point_flags_double_flip() {
        // Mutation drill: the single-flip create shape is clean; the
        // doubled flush of the fresh root is the seeded violation.
        let good = "fn create(db: &mut Db) -> Result<X, E> {\n\
                    let root = db.alloc_meta_page();\n\
                    db.with_new_meta_page(root, init_page);\n\
                    db.pool.flush_page(PageId::new(AreaId::META, root));\n\
                    Ok(X { root })\n\
                    }\n";
        let bad = "fn create(db: &mut Db) -> Result<X, E> {\n\
                   let root = db.alloc_meta_page();\n\
                   db.with_new_meta_page(root, init_page);\n\
                   db.pool.flush_page(PageId::new(AreaId::META, root));\n\
                   db.pool.flush_page(PageId::new(AreaId::META, root));\n\
                   Ok(X { root })\n\
                   }\n";
        assert!(findings_for(&[("crates/core/src/x.rs", good)], "commit-point").is_empty());
        let fs = findings_for(&[("crates/core/src/x.rs", bad)], "commit-point");
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("second root/header flip"));
        assert_eq!(fs[0].line, 5, "{fs:?}");
    }

    #[test]
    fn commit_point_flags_durable_write_after_flip() {
        let files = [(
            "crates/core/src/x.rs",
            "fn create(db: &mut Db, buf: &[u8]) {\n\
             let root = db.alloc_meta_page();\n\
             db.with_new_meta_page(root, init_page);\n\
             db.pool.flush_page(PageId::new(AreaId::META, root));\n\
             db.pool.write_direct(AreaId::LEAF, base(), buf);\n\
             }\n",
        )];
        let fs = findings_for(&files, "commit-point");
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("durable write `write_direct(..)`"));
    }

    #[test]
    fn commit_point_sees_durable_write_through_a_call() {
        let files = [(
            "crates/core/src/x.rs",
            "fn spill(db: &mut Db, buf: &[u8]) {\n\
             db.pool.write_direct(AreaId::LEAF, base(), buf);\n\
             }\n\
             fn create(db: &mut Db, buf: &[u8]) {\n\
             let root = db.alloc_meta_page();\n\
             db.with_new_meta_page(root, init_page);\n\
             db.pool.flush_page(PageId::new(AreaId::META, root));\n\
             spill(db, buf);\n\
             }\n",
        )];
        let fs = findings_for(&files, "commit-point");
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("call `spill`"), "{fs:?}");
        assert!(
            fs[0].evidence.iter().any(|e| e.contains("write_direct")),
            "witness chain should reach the direct site: {fs:?}"
        );
    }

    #[test]
    fn flip_requires_freshly_allocated_page() {
        // Flushing a META page that is a parameter (Catalog::flush,
        // the OpCtx::finish loop) is not a commit point.
        let files = [(
            "crates/core/src/x.rs",
            "fn flush(db: &mut Db, page: u32) {\n\
             db.pool.flush_page(PageId::new(AreaId::META, page));\n\
             db.pool.flush_page(PageId::new(AreaId::META, page));\n\
             }\n",
        )];
        assert!(findings_for(&files, "commit-point").is_empty());
    }

    // ---- scope --------------------------------------------------------

    #[test]
    fn v4_rules_skip_test_code_and_non_library_files() {
        let body = "fn op(db: &mut Db) {\n\
                    let ext = db.alloc_leaf(n());\n\
                    }\n";
        let in_tests = [("crates/core/tests/x.rs", body)];
        let in_cli = [("crates/cli/src/x.rs", body)];
        assert!(findings_for(&in_tests, "alloc-balance").is_empty());
        assert!(findings_for(&in_cli, "alloc-balance").is_empty());
    }

    #[test]
    fn v4_findings_are_waivable() {
        let files = [(
            "crates/core/src/x.rs",
            "fn op(db: &mut Db) {\n\
             // transferred to the caller-side recovery map below.\n\
             // loblint: allow(alloc-balance)\n\
             let ext = db.alloc_leaf(n());\n\
             }\n",
        )];
        assert!(findings_for(&files, "alloc-balance").is_empty());
    }
}
