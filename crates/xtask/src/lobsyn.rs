//! `lobsyn` — a std-only Rust lexer and lightweight structural parser.
//!
//! This is the token layer under `loblint` v2. The v1 linter matched
//! substrings of raw lines, so a rule like `todo` fired on the word
//! `todo!` inside a string literal or a comment. `lobsyn` lexes real
//! Rust tokens (identifiers, literals, multi-character operators) with
//! their line numbers, records comments separately, and recovers just
//! enough structure for semantic lint rules:
//!
//! * **attribute spans** (`#[...]` / `#![...]`), including whether an
//!   attribute is a doc attribute or a `#[cfg(test)]`-family gate;
//! * **test regions** — the token/line extent of every item under a
//!   `#[cfg(test)]` attribute;
//! * **function definitions** — name, defining line, body token range,
//!   and the surrounding `impl` type (so a call-graph rule can talk
//!   about `BufferPool::fix` rather than a bare `fix`).
//!
//! The lexer is deliberately forgiving: it never fails, and constructs
//! it does not model exactly (float exponents with signs, raw
//! identifiers) degrade to adjacent tokens rather than derailing the
//! scan. That is the right trade-off for a linter — rules only need
//! token *kinds* and *adjacency*, not a full parse tree.

use std::collections::BTreeSet;

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `pub`, `page_no`, ...).
    Ident,
    /// A lifetime such as `'a` (including `'static`, `'_`).
    Lifetime,
    /// Numeric literal, raw text preserved (`0x1234_5678u32`, `42`).
    Num,
    /// String literal, including raw strings; text includes the quotes.
    Str,
    /// Byte-string literal (`b"..."`, `br#"..."#`).
    ByteStr,
    /// Character or byte-character literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation; multi-character operators are one token (`<<=`).
    Punct,
}

/// One lexed token: kind, exact source text, and 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this punctuation with exactly this text?
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// One comment (line or block). Block comments spanning several lines
/// produce one entry per source line so that line-anchored waiver
/// comments keep working wherever they appear.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line this piece of comment text sits on.
    pub line: usize,
    /// The comment text of this line (including the `//` / `/*` lead-in
    /// on its first line).
    pub text: String,
    /// Is this a doc comment (`///`, `//!`, `/** ... */`)?
    pub doc: bool,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order (comments excluded).
    pub toks: Vec<Tok>,
    /// Comments, one entry per (comment, line) pair, in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Lines that carry at least one code token.
    pub fn code_lines(&self) -> BTreeSet<usize> {
        self.toks.iter().map(|t| t.line).collect()
    }

    /// Lines that carry a doc comment (`///` / `//!` / `/** */`).
    pub fn doc_lines(&self) -> BTreeSet<usize> {
        self.comments
            .iter()
            .filter(|c| c.doc)
            .map(|c| c.line)
            .collect()
    }
}

const THREE_CHAR_OPS: [&str; 3] = ["<<=", ">>=", "..="];
const TWO_CHAR_OPS: [&str; 18] = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
    "->", "=>",
];
const TWO_CHAR_OPS_TAIL: [&str; 2] = ["::", ".."];

/// Lex `src` into tokens and comments. Never fails; unknown bytes are
/// emitted as single-character punctuation.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;

    let peek = |at: usize| -> u8 {
        if at < b.len() {
            b[at]
        } else {
            0
        }
    };

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if (c as char).is_whitespace() => i += 1,
            b'/' if peek(i + 1) == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = &src[start..i];
                out.comments.push(Comment {
                    line,
                    text: text.to_string(),
                    doc: text.starts_with("///") || text.starts_with("//!"),
                });
            }
            b'/' if peek(i + 1) == b'*' => {
                let start = i;
                let doc = src[i..].starts_with("/**") && !src[i..].starts_with("/**/")
                    || src[i..].starts_with("/*!");
                let mut depth = 1usize;
                i += 2;
                let mut piece_start = start;
                let mut piece_line = line;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        out.comments.push(Comment {
                            line: piece_line,
                            text: src[piece_start..i].to_string(),
                            doc,
                        });
                        line += 1;
                        i += 1;
                        piece_start = i;
                        piece_line = line;
                    } else if b[i] == b'/' && peek(i + 1) == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && peek(i + 1) == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    line: piece_line,
                    text: src[piece_start..i].to_string(),
                    doc,
                });
            }
            b'"' => {
                let (end, nl) = scan_string(src, i);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: src[i..end].to_string(),
                    line,
                });
                line += nl;
                i = end;
            }
            b'r' if peek(i + 1) == b'"' || (peek(i + 1) == b'#' && raw_string_at(src, i + 1)) => {
                let (end, nl) = scan_raw_string(src, i + 1);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: src[i..end].to_string(),
                    line,
                });
                line += nl;
                i = end;
            }
            b'b' if peek(i + 1) == b'"' => {
                let (end, nl) = scan_string(src, i + 1);
                out.toks.push(Tok {
                    kind: TokKind::ByteStr,
                    text: src[i..end].to_string(),
                    line,
                });
                line += nl;
                i = end;
            }
            b'b' if peek(i + 1) == b'r'
                && (peek(i + 2) == b'"' || (peek(i + 2) == b'#' && raw_string_at(src, i + 2))) =>
            {
                let (end, nl) = scan_raw_string(src, i + 2);
                out.toks.push(Tok {
                    kind: TokKind::ByteStr,
                    text: src[i..end].to_string(),
                    line,
                });
                line += nl;
                i = end;
            }
            b'b' if peek(i + 1) == b'\'' => {
                let end = scan_char(src, i + 1);
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: src[i..end].to_string(),
                    line,
                });
                i = end;
            }
            b'\'' => {
                // Lifetime (`'a`, `'_`) vs char literal (`'a'`, `'\n'`).
                let nc = peek(i + 1);
                let lifetime = (nc.is_ascii_alphabetic() || nc == b'_') && peek(i + 2) != b'\'';
                if lifetime {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[start..i].to_string(),
                        line,
                    });
                } else {
                    let end = scan_char(src, i);
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text: src[i..end].to_string(),
                        line,
                    });
                    i = end;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                // A fractional part: `.` followed by a digit (but not
                // `..` ranges or `.method()` calls).
                if i < b.len() && b[i] == b'.' && peek(i + 1).is_ascii_digit() {
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                let op3 = THREE_CHAR_OPS.iter().find(|op| src[i..].starts_with(**op));
                let op2 = TWO_CHAR_OPS
                    .iter()
                    .chain(TWO_CHAR_OPS_TAIL.iter())
                    .find(|op| src[i..].starts_with(**op));
                let len = if let Some(op) = op3 {
                    op.len()
                } else if let Some(op) = op2 {
                    op.len()
                } else {
                    // One char; may be multi-byte UTF-8.
                    src[i..].chars().next().map_or(1, char::len_utf8)
                };
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: src[i..i + len].to_string(),
                    line,
                });
                i += len;
            }
        }
    }
    out
}

/// Does `src[at..]` start a raw-string hash run (`#...#"`)?
fn raw_string_at(src: &str, at: usize) -> bool {
    let rest = &src.as_bytes()[at..];
    let hashes = rest.iter().take_while(|&&c| c == b'#').count();
    hashes > 0 && rest.get(hashes) == Some(&b'"')
}

/// Scan a `"`-delimited string starting at the opening quote; returns
/// (end index past the closing quote, newline count inside).
fn scan_string(src: &str, start: usize) -> (usize, usize) {
    let b = src.as_bytes();
    let mut i = start + 1;
    let mut nl = 0usize;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                nl += 1;
                i += 1;
            }
            b'"' => return (i + 1, nl),
            _ => i += 1,
        }
    }
    (b.len(), nl)
}

/// Scan a raw string whose hash run (possibly empty) begins at `start`
/// (pointing at `#` or `"`); returns (end index, newline count).
fn scan_raw_string(src: &str, start: usize) -> (usize, usize) {
    let b = src.as_bytes();
    let hashes = b[start..].iter().take_while(|&&c| c == b'#').count();
    let mut i = start + hashes + 1; // past the opening quote
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    let mut nl = 0usize;
    while i < b.len() {
        if b[i] == b'\n' {
            nl += 1;
            i += 1;
        } else if b[i] == b'"' && b[i..].starts_with(&closer) {
            return (i + closer.len(), nl);
        } else {
            i += 1;
        }
    }
    (b.len(), nl)
}

/// Scan a `'`-delimited char literal starting at the opening quote;
/// returns the end index past the closing quote.
fn scan_char(src: &str, start: usize) -> usize {
    let b = src.as_bytes();
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            b'\n' => return i, // unterminated; don't eat the line
            _ => i += 1,
        }
    }
    b.len()
}

// ---- structure: attributes, test regions, functions ----------------------

/// One `#[...]` or `#![...]` attribute: token extent plus classification.
#[derive(Debug, Clone)]
pub struct AttrSpan {
    /// Index of the `#` token.
    pub first: usize,
    /// Index of the closing `]` token.
    pub last: usize,
    /// Inner attribute (`#![...]`)?
    pub inner: bool,
    /// Is this `#[doc ...]`?
    pub is_doc: bool,
    /// Is this a `#[cfg(test)]` / `#[cfg(all(test, ...))]` /
    /// `#[cfg(any(test, ...))]` gate?
    pub is_cfg_test: bool,
}

/// Find every attribute in `toks`.
pub fn attr_spans(toks: &[Tok]) -> Vec<AttrSpan> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_punct("#") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let inner = j < toks.len() && toks[j].is_punct("!");
        if inner {
            j += 1;
        }
        if j >= toks.len() || !toks[j].is_punct("[") {
            i += 1;
            continue;
        }
        // Match the closing bracket.
        let mut depth = 0i64;
        let mut k = j;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        if k >= toks.len() {
            break;
        }
        let body = &toks[j + 1..k];
        let is_doc = body.first().is_some_and(|t| t.is_ident("doc"));
        let is_cfg_test = body.first().is_some_and(|t| t.is_ident("cfg"))
            && body.get(1).is_some_and(|t| t.is_punct("("))
            && (body.get(2).is_some_and(|t| t.is_ident("test"))
                || (body
                    .get(2)
                    .is_some_and(|t| t.is_ident("all") || t.is_ident("any"))
                    && body.get(3).is_some_and(|t| t.is_punct("("))
                    && body.get(4).is_some_and(|t| t.is_ident("test"))));
        out.push(AttrSpan {
            first: i,
            last: k,
            inner,
            is_doc,
            is_cfg_test,
        });
        i = k + 1;
    }
    out
}

/// The token index one past the end of the item starting at `i` (after
/// its attributes): either past its `;`, or past the matching `}` of
/// its first top-level `{`. Bracket depth covers `()`, `[]`, `{}`.
fn item_end(toks: &[Tok], mut i: usize) -> usize {
    let mut depth = 0i64;
    let mut brace_depth = 0i64;
    let mut in_body = false;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" => {
                depth += 1;
                brace_depth += 1;
                in_body = true;
            }
            "}" => {
                depth -= 1;
                brace_depth -= 1;
                if in_body && brace_depth == 0 {
                    return i + 1;
                }
            }
            ";" if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Lines covered by items under a `#[cfg(test)]`-family attribute.
pub fn test_lines(toks: &[Tok], spans: &[AttrSpan]) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    for s in spans.iter().filter(|s| s.is_cfg_test) {
        // Skip any further attributes between the gate and the item.
        let mut i = s.last + 1;
        while let Some(next) = spans.iter().find(|t| t.first == i) {
            i = next.last + 1;
        }
        let end = item_end(toks, i);
        let first_line = toks.get(s.first).map_or(1, |t| t.line);
        let last_line = if end > 0 && end <= toks.len() {
            toks[end - 1].line
        } else {
            toks.last().map_or(first_line, |t| t.line)
        };
        out.extend(first_line..=last_line);
    }
    out
}

/// A function definition: its name, where it is, the token range of its
/// body (if it has one), and the `impl` type it sits in (if any).
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token range `(open, close)` of the body braces, exclusive of the
    /// braces themselves; `None` for bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Name of the surrounding `impl` type (`impl Foo`, `impl Tr for
    /// Foo` both give `Foo`), or `None` at module level.
    pub owner: Option<String>,
}

impl FnDef {
    /// `Owner::name` when there is an owner, else just `name`.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The implementing type name of an `impl` header starting at `i`
/// (the `impl` token): the first identifier after `for` if present,
/// else the first identifier after the (possibly generic) `impl`.
fn impl_owner(toks: &[Tok], i: usize) -> Option<String> {
    let mut j = i + 1;
    // Skip generic parameters `impl<...>`.
    if toks.get(j).is_some_and(|t| t.is_punct("<")) {
        let mut angle = 0i64;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                _ => {}
            }
            j += 1;
            if angle == 0 {
                break;
            }
        }
    }
    let mut first_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
        let t = &toks[j];
        if t.is_ident("for") {
            saw_for = true;
        } else if t.is_ident("where") {
            break;
        } else if t.kind == TokKind::Ident {
            if saw_for && after_for.is_none() {
                after_for = Some(t.text.clone());
            } else if first_ident.is_none() {
                first_ident = Some(t.text.clone());
            }
            // Only the *last* path segment names the type: `a::b::C`.
            if toks.get(j + 1).is_some_and(|n| n.is_punct("::")) {
                if saw_for {
                    after_for = None;
                } else {
                    first_ident = None;
                }
            }
        }
        j += 1;
    }
    after_for.or(first_ident)
}

/// Every function definition in `toks`, with `impl` owners resolved.
pub fn fn_defs(toks: &[Tok]) -> Vec<FnDef> {
    let mut out = Vec::new();
    // (brace close depth, owner) stack for impl blocks.
    let mut impl_stack: Vec<(i64, Option<String>)> = Vec::new();
    let mut pending_impl: Option<Option<String>> = None;
    let mut depth = 0i64;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "{" if t.kind == TokKind::Punct => {
                depth += 1;
                if let Some(owner) = pending_impl.take() {
                    impl_stack.push((depth, owner));
                }
            }
            "}" if t.kind == TokKind::Punct => {
                if impl_stack.last().is_some_and(|(d, _)| *d == depth) {
                    impl_stack.pop();
                }
                depth -= 1;
            }
            "impl" if t.kind == TokKind::Ident => {
                pending_impl = Some(impl_owner(toks, i));
            }
            "fn" if t.kind == TokKind::Ident => {
                if let Some(name_tok) = toks.get(i + 1) {
                    if name_tok.kind == TokKind::Ident {
                        // Find the body: first `{` at signature level, or
                        // `;` (trait method without a body).
                        let mut j = i + 2;
                        let mut d = 0i64;
                        let mut body = None;
                        while j < toks.len() {
                            match toks[j].text.as_str() {
                                "(" | "[" => d += 1,
                                ")" | "]" => d -= 1,
                                ";" if d == 0 => break,
                                "{" if d == 0 => {
                                    // Match the braces.
                                    let open = j;
                                    let mut bd = 0i64;
                                    while j < toks.len() {
                                        match toks[j].text.as_str() {
                                            "{" => bd += 1,
                                            "}" => {
                                                bd -= 1;
                                                if bd == 0 {
                                                    break;
                                                }
                                            }
                                            _ => {}
                                        }
                                        j += 1;
                                    }
                                    body = Some((open + 1, j));
                                    break;
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                        out.push(FnDef {
                            name: name_tok.text.clone(),
                            line: t.line,
                            fn_tok: i,
                            body,
                            owner: impl_stack.last().and_then(|(_, o)| o.clone()),
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_produce_no_code_tokens() {
        let src = "let s = \"todo! .unwrap()\"; // .unwrap() too\n/* and todo! here */\n";
        let l = lex(src);
        assert_eq!(idents(src), vec!["let", "s"]);
        assert_eq!(l.comments.len(), 2);
        assert!(!l.comments[0].doc);
    }

    #[test]
    fn raw_and_byte_strings_are_single_tokens() {
        let l = lex("let a = r#\"x \" y\"#; let b = b\"LOBS\"; let c = br#\"z\"#;");
        let kinds: Vec<TokKind> = l.toks.iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TokKind::Str));
        assert_eq!(
            l.toks.iter().filter(|t| t.kind == TokKind::ByteStr).count(),
            2
        );
        let raw = l.toks.iter().find(|t| t.text.starts_with("r#")).unwrap();
        assert_eq!(raw.text, "r#\"x \" y\"#");
    }

    #[test]
    fn lifetimes_and_char_literals_are_distinguished() {
        let l = lex("fn f<'a>(x: &'a u8) { let c = 'y'; let n = '\\n'; let s: &'static str; }");
        let lifes: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifes, vec!["'a", "'a", "'static"]);
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn multi_char_operators_are_joined() {
        let l = lex("a <<= 1; b << 2; c += d; e != f; g..=h; i -> j;");
        let ops: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert!(ops.contains(&"<<="));
        assert!(ops.contains(&"<<"));
        assert!(ops.contains(&"+="));
        assert!(ops.contains(&"!="));
        assert!(ops.contains(&"..="));
        assert!(ops.contains(&"->"));
    }

    #[test]
    fn line_numbers_track_multiline_strings_and_comments() {
        let src = "let a = \"one\ntwo\";\n/* block\nstill */\nlet b = 1;\n";
        let l = lex(src);
        let b_tok = l.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b_tok.line, 5);
        // The block comment yields one entry per line.
        assert_eq!(l.comments.iter().filter(|c| c.line == 3).count(), 1);
        assert_eq!(l.comments.iter().filter(|c| c.line == 4).count(), 1);
    }

    #[test]
    fn numeric_literals_keep_raw_text() {
        let l = lex("let x = 0x1234_5678u32 + 42usize + 1.5;");
        let nums: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0x1234_5678u32", "42usize", "1.5"]);
    }

    #[test]
    fn attr_spans_classify_doc_and_cfg_test() {
        let src = "#[doc = \"hi\"]\n#[cfg(test)]\n#[cfg(all(test, feature = \"x\"))]\nfn f() {}\n";
        let l = lex(src);
        let spans = attr_spans(&l.toks);
        assert_eq!(spans.len(), 3);
        assert!(spans[0].is_doc);
        assert!(spans[1].is_cfg_test);
        assert!(spans[2].is_cfg_test);
    }

    #[test]
    fn test_region_covers_gated_module() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let l = lex(src);
        let spans = attr_spans(&l.toks);
        let tl = test_lines(&l.toks, &spans);
        assert!(!tl.contains(&1));
        assert!(tl.contains(&2) && tl.contains(&3) && tl.contains(&4) && tl.contains(&5));
        assert!(!tl.contains(&6));
    }

    #[test]
    fn fn_defs_resolve_impl_owners() {
        let src = "impl BufferPool {\n    fn fix(&mut self) {}\n}\n\
                   impl LargeObject for ObservedObject {\n    fn read(&self) {}\n}\n\
                   fn free() { let inner = 1; }\n";
        let l = lex(src);
        let fns = fn_defs(&l.toks);
        let names: Vec<_> = fns.iter().map(FnDef::qualified).collect();
        assert_eq!(
            names,
            vec!["BufferPool::fix", "ObservedObject::read", "free"]
        );
        assert!(fns[2].body.is_some());
    }

    #[test]
    fn nested_fns_and_closures_do_not_confuse_bodies() {
        let src = "fn outer() {\n    let f = |x: u32| x + 1;\n    fn inner() {}\n}\nfn next() {}\n";
        let fns = fn_defs(&lex(src).toks);
        let names: Vec<_> = fns.iter().map(|f| f.name.clone()).collect();
        assert_eq!(names, vec!["outer", "inner", "next"]);
        // outer's body spans past inner's.
        let outer = &fns[0];
        let inner = &fns[1];
        assert!(outer.body.unwrap().0 < inner.fn_tok && inner.fn_tok < outer.body.unwrap().1);
    }

    #[test]
    fn fn_signature_with_semicolon_in_array_type_finds_body() {
        let src = "fn f(buf: [u8; 4096]) -> u8 { buf[0] }\n";
        let fns = fn_defs(&lex(src).toks);
        assert_eq!(fns.len(), 1);
        assert!(fns[0].body.is_some());
    }

    #[test]
    fn generic_impl_owner_is_found() {
        let src = "impl<T: Clone> Wrapper<T> {\n    fn get(&self) {}\n}\n";
        let fns = fn_defs(&lex(src).toks);
        assert_eq!(fns[0].qualified(), "Wrapper::get");
    }

    #[test]
    fn path_qualified_impl_takes_last_segment() {
        let src = "impl crate::pool::BufferPool {\n    fn tick(&mut self) {}\n}\n";
        let fns = fn_defs(&lex(src).toks);
        assert_eq!(fns[0].qualified(), "BufferPool::tick");
    }
}

/// Property-based round-trip: render an arbitrary valid token stream
/// canonically, lex it, and reconstruct the source byte-exactly from
/// the lexed tokens and comments. Any token the lexer splits, merges,
/// drops, or mis-lines breaks byte equality, so this pins the entire
/// token surface (idents, numbers, strings, raw/byte strings, chars,
/// lifetimes, multi-char operators, line comments) in one property.
#[cfg(test)]
mod roundtrip {
    use super::*;
    use proptest::prelude::*;

    const IDENTS: [&str; 10] = [
        "fn", "let", "mut", "self", "page_no", "x", "_tmp", "extent", "r", "b",
    ];
    const NUMS: [&str; 8] = [
        "0",
        "42",
        "0x1f",
        "0xdead_beef",
        "1_000u64",
        "3.25",
        "7usize",
        "0b1010",
    ];
    const PUNCTS: [&str; 24] = [
        "<<=", ">>=", "..=", "<<", ">>", "<=", "==", "!=", "&&", "||", "+=", "->", "=>", "::",
        "..", "(", ")", "{", "}", ";", ",", "#", ".", "?",
    ];
    const LIFETIMES: [&str; 4] = ["'a", "'static", "'_", "'tx"];
    const CHARS: [&str; 5] = ["'a'", "'Z'", "'_'", "'\\n'", "b'x'"];
    const QUOTED: [&str; 4] = ["b\"LOBS\"", "br#\"z\"#", "r#\"x \" y\"#", "r\"raw\""];
    const STR_PIECES: [&str; 7] = ["a", "bc", " ", "_7", "\\\"", "\\n", "::"];

    fn pick(table: &'static [&'static str]) -> impl Strategy<Value = String> {
        (0..table.len()).prop_map(move |i| table[i].to_string())
    }

    fn tok_strategy() -> impl Strategy<Value = String> {
        prop_oneof![
            3 => pick(&IDENTS),
            2 => pick(&NUMS),
            3 => pick(&PUNCTS),
            1 => pick(&LIFETIMES),
            1 => pick(&CHARS),
            1 => pick(&QUOTED),
            1 => prop::collection::vec(0..STR_PIECES.len(), 0..5).prop_map(|ps| {
                let inner: String = ps.iter().map(|&p| STR_PIECES[p]).collect();
                format!("\"{inner}\"")
            }),
        ]
    }

    /// Canonical rendering: eight tokens per line joined by single
    /// spaces; every third line carries a trailing `//` comment.
    fn render(toks: &[String]) -> String {
        let mut out = String::new();
        for (ln, chunk) in toks.chunks(8).enumerate() {
            out.push_str(&chunk.join(" "));
            if ln % 3 == 2 {
                out.push_str(" // margin note");
            }
            out.push('\n');
        }
        out
    }

    /// Rebuild the canonical rendering from a `Lexed`: group tokens by
    /// line, join with single spaces, and re-append each line comment.
    fn reconstruct(l: &Lexed) -> String {
        let last = l
            .toks
            .iter()
            .map(|t| t.line)
            .chain(l.comments.iter().map(|c| c.line))
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for line in 1..=last {
            let texts: Vec<&str> = l
                .toks
                .iter()
                .filter(|t| t.line == line)
                .map(|t| t.text.as_str())
                .collect();
            out.push_str(&texts.join(" "));
            for c in l.comments.iter().filter(|c| c.line == line) {
                if !texts.is_empty() {
                    out.push(' ');
                }
                out.push_str(&c.text);
            }
            out.push('\n');
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        #[test]
        fn lex_then_reconstruct_is_byte_exact(
            toks in prop::collection::vec(tok_strategy(), 1..64)
        ) {
            let src = render(&toks);
            let l = lex(&src);
            prop_assert_eq!(l.toks.len(), toks.len(),
                "token count changed: {:?} from {:?}", l.toks, src);
            for (i, t) in l.toks.iter().enumerate() {
                prop_assert_eq!(&t.text, &toks[i], "token {} re-lexed differently", i);
                prop_assert_eq!(t.line, i / 8 + 1, "token {} landed on the wrong line", i);
            }
            let rebuilt = reconstruct(&l);
            prop_assert_eq!(rebuilt, src);
        }
    }
}
