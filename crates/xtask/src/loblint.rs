//! `loblint` — project-specific static analysis for the lobstore
//! workspace (std-only, text-based, deliberately simple).
//!
//! # Rules
//!
//! | rule | scope | meaning |
//! |------|-------|---------|
//! | `unwrap` | library crates, non-test code | no `.unwrap()` / `.expect(` — propagate `LobError` instead |
//! | `truncating-cast` | library crates, non-test code | no bare `as u8/u16/u32/usize` on page/byte-offset arithmetic — use `try_into` or the checked helpers in `lobstore_simdisk::cast` |
//! | `magic-duplicate` | whole workspace | each on-disk magic value is defined by exactly one `*MAGIC*` const |
//! | `magic-literal` | whole workspace | a defined magic value may not appear as a bare literal outside its defining const |
//! | `missing-docs` | library crates | every `pub` item carries a `///` doc comment |
//! | `todo` | all non-test code | no `todo!` / `unimplemented!` |
//!
//! Library crates are `core`, `buddy`, `bufpool`, `simdisk`, `record`,
//! `obs`.
//! Test modules (`#[cfg(test)]`), `tests/`, `benches/`, `examples/`, the
//! CLI, bench, workload, xtask crates and the dependency shims are exempt
//! from the library-only rules.
//!
//! # Suppression
//!
//! Any finding can be waived with a comment on the same line or the line
//! directly above: `// loblint: allow(<rule>)`, e.g.
//! `// loblint: allow(truncating-cast)`. Multiple rules separate with
//! commas. Each waiver is local — there is no file- or crate-level allow.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The rule identifiers, as used in findings and `allow(...)` comments.
pub const RULES: [&str; 6] = [
    "unwrap",
    "truncating-cast",
    "magic-duplicate",
    "magic-literal",
    "missing-docs",
    "todo",
];

const LIBRARY_CRATES: [&str; 6] = ["core", "buddy", "bufpool", "simdisk", "record", "obs"];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

/// How a file participates in the lint pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Subject to the library-only rules (unwrap, truncating-cast,
    /// missing-docs)?
    pub library: bool,
    /// Entirely test/bench/example code (library rules and `todo` off)?
    pub test_code: bool,
}

/// Classify a workspace-relative path (forward slashes).
pub fn classify(rel: &str) -> FileClass {
    let test_code = rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.starts_with("tests/")
        || rel.starts_with("benches/")
        || rel.starts_with("examples/");
    let library = !test_code
        && LIBRARY_CRATES
            .iter()
            .any(|c| rel.starts_with(&format!("crates/{c}/src/")));
    FileClass { library, test_code }
}

/// A magic-constant definition discovered in pass one.
#[derive(Debug, Clone)]
pub struct MagicDef {
    file: String,
    line: usize,
    name: String,
    /// Normalized literal (lowercase hex without underscores, or the raw
    /// byte-string token).
    value: String,
}

impl MagicDef {
    /// The const's name, for reporting.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Everything `loblint` found across the workspace.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();

    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        let rel = relative_name(root, path);
        let content = std::fs::read_to_string(path)?;
        sources.push((rel, content));
    }

    let magics = collect_magic_defs(&sources);
    let mut findings = Vec::new();
    check_magic_duplicates(&magics, &mut findings);
    for (rel, content) in &sources {
        let class = classify(rel);
        lint_source(class, rel, content, &magics, &mut findings);
    }
    findings.sort();
    Ok(findings)
}

/// CLI entry point: print findings (text or JSON) and map them to an
/// exit code — 0 clean, 1 findings, 2 unable to run.
pub fn run(root: &Path, json: bool) -> ExitCode {
    let findings = match lint_workspace(root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("loblint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", to_json(&findings));
    } else {
        for f in &findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        eprintln!(
            "loblint: {} finding{}",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        );
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn relative_name(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---- pass one: magic constants ------------------------------------------

fn collect_magic_defs(sources: &[(String, String)]) -> Vec<MagicDef> {
    let mut defs = Vec::new();
    for (rel, content) in sources {
        for (i, raw) in content.lines().enumerate() {
            let code = strip_line_comment(raw);
            let Some((name, value)) = parse_magic_def(code) else {
                continue;
            };
            defs.push(MagicDef {
                file: rel.clone(),
                line: i + 1,
                name,
                value,
            });
        }
    }
    defs
}

/// Parse `const <NAME>: .. = <literal>;` where NAME contains MAGIC.
fn parse_magic_def(code: &str) -> Option<(String, String)> {
    let after = code.trim_start();
    let after = after.strip_prefix("pub ").unwrap_or(after);
    let after = after
        .strip_prefix("pub(crate) ")
        .unwrap_or(after)
        .trim_start();
    let rest = after.strip_prefix("const ")?;
    let name_end = rest.find(':')?;
    let name = rest[..name_end].trim();
    if !name.contains("MAGIC") {
        return None;
    }
    let eq = rest.find('=')?;
    let value_src = rest[eq + 1..].trim().trim_end_matches(';').trim();
    let value = normalize_literal(value_src)?;
    Some((name.to_string(), value))
}

/// Normalize a numeric or byte-string literal for value comparison.
/// Returns `None` when the initializer is not a literal (e.g. a
/// reference to another const, which is fine).
fn normalize_literal(src: &str) -> Option<String> {
    if let Some(hex) = src.strip_prefix("0x") {
        let digits: String = hex
            .chars()
            .take_while(|c| c.is_ascii_hexdigit() || *c == '_')
            .filter(|c| *c != '_')
            .collect();
        if digits.is_empty() {
            return None;
        }
        return Some(format!("0x{}", digits.to_ascii_lowercase()));
    }
    if let Some(body) = src.strip_prefix("b\"") {
        let end = body.find('"')?;
        return Some(src[..end + 3].to_string());
    }
    if src.chars().next()?.is_ascii_digit() {
        let digits: String = src
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '_')
            .filter(|c| *c != '_')
            .collect();
        return Some(digits);
    }
    None
}

fn check_magic_duplicates(defs: &[MagicDef], findings: &mut Vec<Finding>) {
    let mut by_value: BTreeMap<&str, Vec<&MagicDef>> = BTreeMap::new();
    for d in defs {
        by_value.entry(&d.value).or_default().push(d);
    }
    for (value, group) in by_value {
        if group.len() > 1 {
            for d in &group[1..] {
                findings.push(Finding {
                    file: d.file.clone(),
                    line: d.line,
                    rule: "magic-duplicate",
                    message: format!(
                        "magic value {value} of `{}` already defined as `{}` at {}:{}",
                        d.name(),
                        group[0].name(),
                        group[0].file,
                        group[0].line
                    ),
                });
            }
        }
    }
}

// ---- pass two: per-file rules -------------------------------------------

/// Lint one file's content. `magics` is the workspace-wide magic table
/// from pass one. Findings are appended to `out`.
pub fn lint_source(
    class: FileClass,
    rel: &str,
    content: &str,
    magics: &[MagicDef],
    out: &mut Vec<Finding>,
) {
    let lines: Vec<&str> = content.lines().collect();
    let test_lines = test_region_lines(&lines);
    let mut in_block_comment = false;

    for (i, raw) in lines.iter().enumerate() {
        let lineno = i + 1;
        let in_test = class.test_code || test_lines.contains(&i);
        let prev_raw = if i > 0 { lines[i - 1] } else { "" };

        let (code, still_in_block) = strip_comments(raw, in_block_comment);
        let was_in_block = in_block_comment;
        in_block_comment = still_in_block;
        if was_in_block && still_in_block && !raw.contains("*/") {
            continue;
        }
        let code = code.as_str();

        let allowed = |rule: &str| {
            has_allow(raw, rule) || (is_comment_only(prev_raw) && has_allow(prev_raw, rule))
        };

        // -- todo: everywhere outside tests --
        if !in_test
            && (code.contains("todo!") || code.contains("unimplemented!")) // loblint: allow(todo)
            && !allowed("todo")
        {
            out.push(Finding {
                file: rel.to_string(),
                line: lineno,
                rule: "todo",
                message: "todo!/unimplemented! outside test code".into(), // loblint: allow(todo)
            });
        }

        // -- magic-literal: everywhere, skipping the defining const --
        if parse_magic_def(code).is_none() {
            for lit in extract_literals(code) {
                if let Some(def) = magics.iter().find(|d| d.value == lit) {
                    if !allowed("magic-literal") {
                        out.push(Finding {
                            file: rel.to_string(),
                            line: lineno,
                            rule: "magic-literal",
                            message: format!(
                                "bare magic literal {lit}; reference `{}` ({}:{}) instead",
                                def.name, def.file, def.line
                            ),
                        });
                    }
                }
            }
        }

        if !class.library || in_test {
            continue;
        }

        // -- unwrap: library non-test code --
        if (code.contains(".unwrap()") || code.contains(".expect(")) && !allowed("unwrap") {
            out.push(Finding {
                file: rel.to_string(),
                line: lineno,
                rule: "unwrap",
                message: "unwrap()/expect() in library code; propagate LobError instead".into(),
            });
        }

        // -- truncating-cast: library non-test code --
        if !allowed("truncating-cast") {
            if let Some(width) = truncating_cast(code) {
                out.push(Finding {
                    file: rel.to_string(),
                    line: lineno,
                    rule: "truncating-cast",
                    message: format!(
                        "bare `as {width}` on page/offset arithmetic; use try_into or lobstore_simdisk::cast"
                    ),
                });
            }
        }

        // -- missing-docs: library non-test code --
        if let Some(item) = pub_item_kind(code) {
            if !has_doc_above(&lines, i) && !allowed("missing-docs") {
                out.push(Finding {
                    file: rel.to_string(),
                    line: lineno,
                    rule: "missing-docs",
                    message: format!("pub {item} without a /// doc comment"),
                });
            }
        }
    }
}

/// Detect a bare narrowing cast on a line doing page/offset arithmetic.
/// Returns the cast width when found.
fn truncating_cast(code: &str) -> Option<&'static str> {
    const WIDTHS: [&str; 4] = ["u8", "u16", "u32", "usize"];
    const CONTEXT: [&str; 6] = ["off", "page", "pos", "byte", "pgno", "pid"];
    let lower = code.to_ascii_lowercase();
    if !CONTEXT.iter().any(|c| lower.contains(c)) {
        return None;
    }
    for width in WIDTHS {
        let needle = format!("as {width}");
        let mut start = 0;
        while let Some(at) = code[start..].find(&needle) {
            let abs = start + at;
            let before_ok = abs == 0
                || code[..abs]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_whitespace() || c == '(');
            let after = abs + needle.len();
            let after_ok = code[after..]
                .chars()
                .next()
                .is_none_or(|c| !c.is_alphanumeric() && c != '_');
            if before_ok && after_ok {
                return Some(width);
            }
            start = after;
        }
    }
    None
}

/// Identify a `pub` item declaration (not `pub(crate)`/`pub use`).
fn pub_item_kind(code: &str) -> Option<&'static str> {
    let trimmed = code.trim_start();
    let rest = trimmed.strip_prefix("pub ")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("async ").unwrap_or(rest);
    let rest = rest.strip_prefix("unsafe ").unwrap_or(rest);
    for kind in [
        "fn", "struct", "enum", "trait", "const", "static", "type", "mod", "union",
    ] {
        if let Some(after) = rest.strip_prefix(kind) {
            if after.starts_with(char::is_whitespace) {
                return Some(match kind {
                    "fn" => "fn",
                    "struct" => "struct",
                    "enum" => "enum",
                    "trait" => "trait",
                    "const" => "const",
                    "static" => "static",
                    "type" => "type",
                    "mod" => "mod",
                    _ => "union",
                });
            }
        }
    }
    None
}

/// Walk upward over attributes; the first non-attribute line above must
/// be a `///` doc comment (or `#[doc...]`).
fn has_doc_above(lines: &[&str], mut i: usize) -> bool {
    while i > 0 {
        let above = lines[i - 1].trim();
        if above.starts_with("#[") || above.starts_with("#!") {
            i -= 1;
            continue;
        }
        // Tolerate multiline attributes: a line that closes one, e.g. `)]`.
        if above.ends_with(")]") && !above.starts_with("///") {
            i -= 1;
            continue;
        }
        return above.starts_with("///") || above.starts_with("#[doc");
    }
    false
}

/// Line indices inside `#[cfg(test)] mod … { … }` blocks.
fn test_region_lines(lines: &[&str]) -> std::collections::BTreeSet<usize> {
    let mut out = std::collections::BTreeSet::new();
    let mut i = 0;
    while i < lines.len() {
        let t = lines[i].trim_start();
        let is_cfg_test = t.starts_with("#[cfg(test)]")
            || t.starts_with("#[cfg(all(test")
            || t.starts_with("#[cfg(any(test");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut started = false;
        let mut j = i;
        while j < lines.len() {
            out.insert(j);
            for c in lines[j].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        started = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if started && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    out
}

/// All normalized numeric/byte-string literals appearing in a code line.
fn extract_literals(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'0' && i + 1 < bytes.len() && bytes[i + 1] == b'x' {
            let start = i;
            i += 2;
            while i < bytes.len() && (bytes[i].is_ascii_hexdigit() || bytes[i] == b'_') {
                i += 1;
            }
            if let Some(lit) = normalize_literal(&code[start..i]) {
                out.push(lit);
            }
        } else if bytes[i] == b'b' && i + 1 < bytes.len() && bytes[i + 1] == b'"' {
            let start = i;
            i += 2;
            while i < bytes.len() && bytes[i] != b'"' {
                i += 1;
            }
            i = (i + 1).min(bytes.len());
            if let Some(lit) = normalize_literal(&code[start..i]) {
                out.push(lit);
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Does this raw line carry `loblint: allow(<rule>)` for `rule`?
fn has_allow(raw: &str, rule: &str) -> bool {
    debug_assert!(RULES.contains(&rule), "unknown lint rule `{rule}`");
    let Some(at) = raw.find("loblint: allow(") else {
        return false;
    };
    let inner_start = at + "loblint: allow(".len();
    let Some(close) = raw[inner_start..].find(')') else {
        return false;
    };
    raw[inner_start..inner_start + close]
        .split(',')
        .any(|r| r.trim() == rule)
}

fn is_comment_only(raw: &str) -> bool {
    raw.trim_start().starts_with("//")
}

fn strip_line_comment(raw: &str) -> &str {
    match raw.find("//") {
        Some(at) => &raw[..at],
        None => raw,
    }
}

/// Strip `//` and `/* */` comments from a line; returns the remaining
/// code and whether a block comment continues onto the next line.
fn strip_comments(raw: &str, mut in_block: bool) -> (String, bool) {
    let mut out = String::new();
    let bytes = raw.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if in_block {
            if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                in_block = false;
                i += 2;
            } else {
                i += 1;
            }
        } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            break;
        } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            in_block = true;
            i += 2;
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    (out, in_block)
}

// ---- output --------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render findings as a JSON object: `{"count": N, "findings": [...]}`.
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n");
    let _ = write!(out, "  \"count\": {},\n  \"findings\": [", findings.len());
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.rule,
            json_escape(&f.message)
        );
    }
    if !findings.is_empty() {
        out.push('\n');
        out.push_str("  ");
    }
    out.push_str("]\n}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: FileClass = FileClass {
        library: true,
        test_code: false,
    };

    fn lint_lib(content: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        lint_source(LIB, "crates/core/src/x.rs", content, &[], &mut out);
        out
    }

    #[test]
    fn reintroduced_unwrap_is_flagged() {
        let found = lint_lib("fn f() { let x = g().unwrap(); }\n");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "unwrap");
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn expect_is_flagged_like_unwrap() {
        let found = lint_lib("fn f() { g().expect(\"boom\"); }\n");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "unwrap");
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        assert!(lint_lib("fn f() { g().unwrap_or_else(|| 3); }\n").is_empty());
        assert!(lint_lib("fn f() { g().unwrap_or_default(); }\n").is_empty());
    }

    #[test]
    fn unwrap_inside_cfg_test_module_is_exempt() {
        let src =
            "fn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x().unwrap(); }\n}\n";
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn obs_is_a_library_crate() {
        let class = classify("crates/obs/src/metrics.rs");
        assert!(class.library, "lobstore-obs is held to the library rules");
        assert!(!class.test_code);
    }

    #[test]
    fn unwrap_in_non_library_file_is_exempt() {
        let mut out = Vec::new();
        let class = classify("crates/cli/src/main.rs");
        assert!(!class.library);
        lint_source(
            class,
            "crates/cli/src/main.rs",
            "fn f() { g().unwrap(); }\n",
            &[],
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn reintroduced_truncating_page_cast_is_flagged() {
        let found = lint_lib("fn f(off: u64) -> u32 { off as u32 }\n");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "truncating-cast");
        // Same cast without offset-ish context is not page arithmetic.
        assert!(lint_lib("fn f(mask: u64) -> u32 { mask as u32 }\n").is_empty());
        // Widening casts are fine.
        assert!(lint_lib("fn f(off: u32) -> u64 { off as u64 }\n").is_empty());
    }

    #[test]
    fn allow_comment_suppresses_on_same_or_previous_line() {
        let same = "fn f(off: u64) -> u32 { off as u32 } // loblint: allow(truncating-cast)\n";
        assert!(lint_lib(same).is_empty());
        let above = "// loblint: allow(truncating-cast)\nfn f(off: u64) -> u32 { off as u32 }\n";
        assert!(lint_lib(above).is_empty());
        // An allow for a different rule does not suppress.
        let wrong = "fn f(off: u64) -> u32 { off as u32 } // loblint: allow(unwrap)\n";
        assert_eq!(lint_lib(wrong).len(), 1);
    }

    #[test]
    fn todo_flagged_everywhere_outside_tests() {
        let mut out = Vec::new();
        lint_source(
            classify("crates/cli/src/main.rs"),
            "crates/cli/src/main.rs",
            "fn f() { todo!() }\n",
            &[],
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "todo");
    }

    #[test]
    fn magic_duplicate_and_bare_literal_detected() {
        let sources = vec![
            (
                "crates/core/src/a.rs".to_string(),
                "const A_MAGIC: u32 = 0x1234_5678;\n".to_string(),
            ),
            (
                "crates/buddy/src/b.rs".to_string(),
                "const B_MAGIC: u32 = 0x12345678;\nfn f() { let x = 0x1234_5678; }\n".to_string(),
            ),
        ];
        let defs = collect_magic_defs(&sources);
        assert_eq!(defs.len(), 2);
        let mut findings = Vec::new();
        check_magic_duplicates(&defs, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "magic-duplicate");
        let mut per_file = Vec::new();
        lint_source(
            classify("crates/buddy/src/b.rs"),
            "crates/buddy/src/b.rs",
            &sources[1].1,
            &defs,
            &mut per_file,
        );
        let lit: Vec<_> = per_file
            .iter()
            .filter(|f| f.rule == "magic-literal")
            .collect();
        assert_eq!(lit.len(), 1);
        assert_eq!(lit[0].line, 2);
    }

    #[test]
    fn missing_docs_on_pub_items_only() {
        let undocumented = "pub fn f() {}\n";
        let found = lint_lib(undocumented);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "missing-docs");
        let documented = "/// Does f things.\npub fn f() {}\n";
        assert!(lint_lib(documented).is_empty());
        let attr_between = "/// Docs.\n#[inline]\npub fn f() {}\n";
        assert!(lint_lib(attr_between).is_empty());
        let private = "fn f() {}\npub(crate) fn g() {}\n";
        assert!(lint_lib(private).is_empty());
    }

    #[test]
    fn block_comments_do_not_hide_or_cause_findings() {
        assert!(lint_lib("/* x.unwrap() */ fn f() {}\n").is_empty());
        let multi = "/*\n x.unwrap()\n*/\nfn f() {}\n";
        assert!(lint_lib(multi).is_empty());
    }

    /// End-to-end: a synthetic workspace on disk, scanned via
    /// `lint_workspace`, exits nonzero through `run`'s finding count.
    #[test]
    fn workspace_walk_finds_violations_on_disk() {
        let dir = std::env::temp_dir().join(format!("loblint-selftest-{}", std::process::id()));
        let lib = dir.join("crates/core/src");
        std::fs::create_dir_all(&lib).unwrap();
        std::fs::write(
            lib.join("bad.rs"),
            "pub fn f(off: u64) -> u32 { g().unwrap(); off as u32 }\n",
        )
        .unwrap();
        let findings = lint_workspace(&dir).unwrap();
        let rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"unwrap"), "{findings:?}");
        assert!(rules.contains(&"truncating-cast"), "{findings:?}");
        assert!(rules.contains(&"missing-docs"), "{findings:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn json_output_shape() {
        let findings = vec![Finding {
            file: "a.rs".into(),
            line: 3,
            rule: "unwrap",
            message: "msg with \"quotes\"".into(),
        }];
        let json = to_json(&findings);
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\\\"quotes\\\""));
        assert!(to_json(&[]).contains("\"count\": 0"));
    }
}
