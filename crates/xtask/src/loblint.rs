//! `loblint` v2 — project-specific static analysis for the lobstore
//! workspace, built on the [`crate::lobsyn`] token layer (std-only).
//!
//! # Rules
//!
//! | rule | scope | meaning |
//! |------|-------|---------|
//! | `unwrap` | library crates, non-test code | no `.unwrap()` / `.expect(` — propagate `LobError` instead |
//! | `truncating-cast` | library crates, non-test code | no bare `as u8/u16/u32/usize` on page/byte-offset arithmetic — use `try_into` or the checked helpers in `lobstore_simdisk::cast` |
//! | `magic-duplicate` | whole workspace | each on-disk magic value is defined by exactly one `*MAGIC*` const |
//! | `magic-literal` | whole workspace | a defined magic value may not appear as a bare literal outside its defining const |
//! | `missing-docs` | library crates | every `pub` item carries a `///` doc comment |
//! | `todo` | all non-test code | no `todo!` / `unimplemented!` |
//! | `arith-overflow` | library crates, non-test code | bare `+ - * <<` (and compound forms) on page/byte/segment quantities — use `checked_*` / `saturating_*` |
//! | `panic-path` | library crates, non-test code | indexing/slicing and `/` `%` with a non-constant divisor can panic — guard or waive |
//! | `unit-mixing` | library crates, non-test code | byte-, page-index- and page-count-typed values may not be mixed in arithmetic/comparison/assignment |
//! | `io-accounting` | library crates | raw `disk.read` / `disk.write` only inside the cost-counted bufpool wrappers; every I/O entry point reaches a wrapper and bumps its counter; health meta-inspectors stay peek-only |
//! | `forbid-unsafe` | library crates | each library `lib.rs` carries `#![forbid(unsafe_code)]` |
//! | `bad-waiver` | whole workspace | `loblint: allow(...)` comments may only name known rules |
//! | `lock-order` | workspace, non-test | the lock/latch acquisition graph is acyclic and follows the canonical order (see [`crate::flowrules`]) |
//! | `guard-across-io` | library crates, non-test code | no lock guard or page pin live across a cost-counted I/O wrapper call or `std::io`/`std::fs` |
//! | `panic-while-locked` | library crates, non-test code | no panic-capable token inside a region where a guard is live |
//! | `disk-taint` | library crates, non-test code | disk-deserialized values must pass a bounds check before use as an index, `PageId`, or I/O argument |
//! | `unused-waiver` | whole workspace, non-test | a waiver that no longer suppresses anything is itself a finding |
//!
//! The last five are the v3 control-flow rules; they run on the CFG +
//! dataflow engine in [`crate::lobflow`] and live in
//! [`crate::flowrules`].
//!
//! Library crates are `core`, `buddy`, `bufpool`, `simdisk`, `record`,
//! `obs`. Test modules (`#[cfg(test)]`), `tests/`, `benches/`,
//! `examples/`, the CLI, bench, workload, xtask crates and the
//! dependency shims are exempt from the library-only rules.
//!
//! Because rules walk real tokens, occurrences inside string literals
//! and comments never fire (the v1 false-positive class).
//!
//! # Suppression and the ratchet
//!
//! Any finding can be waived with a comment on the same line or a
//! comment-only line directly above: `// loblint: allow(<rule>)`,
//! multiple rules separated by commas. Unknown rule names are
//! themselves findings (`bad-waiver`).
//!
//! Pre-existing findings are frozen in `loblint.baseline` (sorted
//! `file<TAB>rule<TAB>message` lines, no line numbers so the baseline
//! survives unrelated edits). `loblint` exits 0 when every finding is
//! baselined and 1 when *new* findings appear; `--update-baseline`
//! regenerates the file deterministically.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use crate::lobsyn::{self, AttrSpan, FnDef, Tok, TokKind};

/// The rule identifiers, as used in findings and `allow(...)` comments.
pub const RULES: [&str; 21] = [
    "alloc-balance",
    "arith-overflow",
    "bad-waiver",
    "cache-invalidate",
    "commit-point",
    "disk-taint",
    "forbid-unsafe",
    "guard-across-io",
    "io-accounting",
    "lock-order",
    "magic-duplicate",
    "magic-literal",
    "missing-docs",
    "panic-path",
    "panic-while-locked",
    "shadow-order",
    "todo",
    "truncating-cast",
    "unit-mixing",
    "unused-waiver",
    "unwrap",
];

/// One `--explain` documentation entry per rule: (name, scope, text).
pub const RULE_DOCS: [(&str, &str, &str); 21] = [
    (
        "alloc-balance",
        "library crates, non-test code",
        "Every let-bound buddy allocation (alloc_leaf/alloc_meta_page) must be freed, queued \
         with free_*_later, or recorded (any later mention counts as an ownership transfer) \
         on every CFG path — including ?/early-return error edges, where a leaked extent \
         would survive until fsck. Effect-summary rule (DESIGN.md section 15).",
    ),
    (
        "arith-overflow",
        "library crates, non-test code",
        "Bare `+ - * <<` (and compound forms) on page/byte/segment quantities can wrap in \
         release builds; use checked_*/saturating_* or waive with a rationale.",
    ),
    (
        "bad-waiver",
        "whole workspace",
        "A `// loblint: allow(...)` comment names a rule loblint does not know; fix the \
         spelling so the waiver actually waives something.",
    ),
    (
        "cache-invalidate",
        "library crates, non-test code",
        "A raw META page write (guard_mut/guard_new/fix_new addressing AreaId::META) must \
         reach a node-cache invalidation in the same function on every CFG path, before or \
         after the write; otherwise stale deserialized nodes survive the write. The \
         Db::with_meta_page_mut / with_new_meta_page funnels are the sanctioned shape — the \
         static twin of the PR 4 nodecache invariant (DESIGN.md section 15).",
    ),
    (
        "commit-point",
        "library crates, non-test code",
        "An operation that makes a freshly allocated META root/header page durable \
         (flush_page(PageId::new(AreaId::META, <new page>))) has exactly one such flip per \
         CFG path, and no durable write — direct or through a summarized call — may follow \
         it: a crash between the flip and a later write would publish a half-finished \
         operation (paper section 3.3; DESIGN.md section 15).",
    ),
    (
        "disk-taint",
        "library crates, non-test code",
        "A value deserialized from disk bytes (from_le_bytes, get_u16/u32/u64, decode) is \
         tainted: it must flow through a bounds/validation check before being used as a slice \
         index, a PageId, an I/O-call argument, or in offset/length arithmetic. Forward \
         dataflow over the function CFG; a comparison, a `.min(`/`.clamp(` call, or being an \
         argument to a call whose name contains check/valid/verify/bound sanitizes. The \
         static twin of `lobctl check`.",
    ),
    (
        "forbid-unsafe",
        "library crates",
        "Each library crate's lib.rs must carry `#![forbid(unsafe_code)]`.",
    ),
    (
        "guard-across-io",
        "library crates, non-test code",
        "A lock guard, borrow latch, or page pin is live across a cost-counted I/O wrapper \
         call or a std::io/std::fs path. Disk I/O under a held lock serializes the workload \
         the lock was meant to protect; drop the guard first or restructure.",
    ),
    (
        "io-accounting",
        "library crates",
        "Raw `disk.read`/`disk.write` only inside the cost-counted bufpool wrappers; every \
         I/O entry point must reach a wrapper through the call graph and bump its counter. \
         Health meta-inspectors (frag_stats, sample_health, object_health) are the inverse: \
         peek-only recounts that must never perform raw I/O or call a costed wrapper/entry.",
    ),
    (
        "lock-order",
        "whole workspace, non-test",
        "All lock/latch acquisitions (Mutex::lock, RwLock::read/write, BufferPool::guard*, \
         thread-local RefCell .with) form a graph: an edge A -> B means B is acquired while \
         A is held, directly or through a call. The graph must be acyclic, must not \
         re-acquire a held resource, and known resources must follow the canonical order in \
         flowrules::CANONICAL_LOCK_ORDER (DESIGN.md section 13).",
    ),
    (
        "magic-duplicate",
        "whole workspace",
        "Each on-disk magic value is defined by exactly one `*MAGIC*` const.",
    ),
    (
        "magic-literal",
        "whole workspace",
        "A defined magic value may not appear as a bare literal outside its defining const.",
    ),
    (
        "missing-docs",
        "library crates",
        "Every pub item carries a /// doc comment.",
    ),
    (
        "panic-path",
        "library crates, non-test code",
        "Postfix indexing/slicing (`v[i]`, `&v[..n]`) and `/` `%` with a non-constant \
         divisor can panic; guard or waive. Exempt: full-range `[..]` slices, a `[` after \
         the keyword `mut` (a slice *type* such as `&mut [u8]`, never an indexing \
         expression), and divisors that are literals or ALL_CAPS const chains.",
    ),
    (
        "panic-while-locked",
        "library crates, non-test code",
        "A panic-capable token (unwrap/expect, panic!-family macros, indexing, non-constant \
         division — with the same `[..]`/slice-type/const-divisor exemptions as panic-path) \
         inside a region where a guard is live poisons the lock for every other thread. \
         Propagate errors or hoist the panic-capable work outside the guard.",
    ),
    (
        "shadow-order",
        "library crates, non-test code",
        "Inside an OpCtx shadow operation: old storage is released only via free_*_later \
         (materialized at finish), never freed immediately — directly or through a call \
         whose effect summary frees; every shadow_page/fresh_page result is written before \
         finish; no in-place write to a page shadowed in the same op; and no shadow, meta, \
         or durable effect after finish. The static twin of tests/crash_consistency.rs \
         (paper section 3.3; DESIGN.md section 15).",
    ),
    (
        "todo",
        "all non-test code",
        "No `todo!` / `unimplemented!` outside test code.",
    ),
    (
        "truncating-cast",
        "library crates, non-test code",
        "No bare `as u8/u16/u32/usize` on page/byte-offset arithmetic; use try_into or the \
         checked helpers in lobstore_simdisk::cast.",
    ),
    (
        "unit-mixing",
        "library crates, non-test code",
        "Byte-, page-index- and page-count-typed values may not be mixed in arithmetic, \
         comparison or assignment.",
    ),
    (
        "unused-waiver",
        "whole workspace, non-test",
        "A `// loblint: allow(rule)` comment whose rule no longer fires on the waived line \
         is dead weight that hides future regressions; remove it. `--update-baseline` \
         likewise reports baseline entries the current run resolved.",
    ),
    (
        "unwrap",
        "library crates, non-test code",
        "No `.unwrap()` / `.expect(` in library code; propagate LobError instead.",
    ),
];

/// Schema tag of the `--json` findings document. v2 added the
/// per-finding `evidence` array (acquisition chains, taint paths).
pub const FINDINGS_SCHEMA: &str = "loblint-findings/v2";

const LIBRARY_CRATES: [&str; 6] = ["core", "buddy", "bufpool", "simdisk", "record", "obs"];

/// One reported violation. `evidence` carries the control-flow trail
/// for CFG rules (acquisition chain, taint path); empty for token
/// rules. It is reported in the JSON document but excluded from the
/// baseline key, like line numbers.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
    pub evidence: Vec<String>,
}

/// How a file participates in the lint pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Subject to the library-only rules?
    pub library: bool,
    /// Entirely test/bench/example code (library rules and `todo` off)?
    pub test_code: bool,
}

/// Classify a workspace-relative path (forward slashes).
pub fn classify(rel: &str) -> FileClass {
    let test_code = rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.starts_with("tests/")
        || rel.starts_with("benches/")
        || rel.starts_with("examples/");
    let library = !test_code
        && LIBRARY_CRATES
            .iter()
            .any(|c| rel.starts_with(&format!("crates/{c}/src/")));
    FileClass { library, test_code }
}

// ---- per-file analysis ----------------------------------------------------

/// Everything the rules need to know about one source file, derived
/// once from the token stream.
pub(crate) struct Analysis {
    pub(crate) rel: String,
    pub(crate) class: FileClass,
    pub(crate) toks: Vec<Tok>,
    pub(crate) fns: Vec<FnDef>,
    spans: Vec<AttrSpan>,
    /// Lines carrying at least one code token.
    code_lines: BTreeSet<usize>,
    /// Lines inside `#[cfg(test)]`-gated items (1-based).
    test_lines: BTreeSet<usize>,
    /// Lines covered by any attribute.
    attr_cover: BTreeSet<usize>,
    /// Lines covered by a doc attribute or doc comment.
    doc_lines: BTreeSet<usize>,
    /// line -> rules waived on that line (known rules only).
    waivers: BTreeMap<usize, Vec<&'static str>>,
    /// `bad-waiver` findings discovered while parsing comments.
    bad_waivers: Vec<Finding>,
    /// (waiver line, rule) pairs that suppressed at least one finding
    /// this run — the input to the `unused-waiver` rule.
    used_waivers: RefCell<BTreeSet<(usize, &'static str)>>,
}

impl Analysis {
    fn new(rel: &str, content: &str) -> Self {
        let lexed = lobsyn::lex(content);
        let spans = lobsyn::attr_spans(&lexed.toks);
        let test_lines = lobsyn::test_lines(&lexed.toks, &spans);
        let code_lines = lexed.code_lines();
        let mut attr_cover = BTreeSet::new();
        let mut doc_lines = lexed.doc_lines();
        for s in &spans {
            let (a, b) = (lexed.toks[s.first].line, lexed.toks[s.last].line);
            attr_cover.extend(a..=b);
            if s.is_doc {
                doc_lines.extend(a..=b);
            }
        }
        let mut waivers: BTreeMap<usize, Vec<&'static str>> = BTreeMap::new();
        let mut bad_waivers = Vec::new();
        for c in lexed.comments.iter().filter(|c| !c.doc) {
            let Some(at) = c.text.find("loblint: allow(") else {
                continue;
            };
            let inner = &c.text[at + "loblint: allow(".len()..];
            let Some(close) = inner.find(')') else {
                continue;
            };
            for name in inner[..close].split(',') {
                let name = name.trim();
                match RULES.iter().find(|r| **r == name) {
                    Some(rule) => waivers.entry(c.line).or_default().push(rule),
                    None => bad_waivers.push(Finding {
                        file: rel.to_string(),
                        line: c.line,
                        rule: "bad-waiver",
                        message: format!(
                            "unknown rule `{name}` in `loblint: allow(...)`; known rules: {}",
                            RULES.join(", ")
                        ),
                        evidence: Vec::new(),
                    }),
                }
            }
        }
        Analysis {
            rel: rel.to_string(),
            class: classify(rel),
            fns: lobsyn::fn_defs(&lexed.toks),
            spans,
            code_lines,
            test_lines,
            attr_cover,
            doc_lines,
            waivers,
            bad_waivers,
            used_waivers: RefCell::new(BTreeSet::new()),
            toks: lexed.toks,
        }
    }

    /// Is `rule` waived at `line` (same line, or a code-free line
    /// directly above)? A hit marks the waiver as used.
    pub(crate) fn allowed(&self, line: usize, rule: &'static str) -> bool {
        let at = |l: usize| self.waivers.get(&l).is_some_and(|rs| rs.contains(&rule));
        if at(line) {
            self.used_waivers.borrow_mut().insert((line, rule));
            return true;
        }
        if line > 1 && !self.code_lines.contains(&(line - 1)) && at(line - 1) {
            self.used_waivers.borrow_mut().insert((line - 1, rule));
            return true;
        }
        false
    }

    /// Is this line exempt from library rules (test code)?
    pub(crate) fn in_test(&self, line: usize) -> bool {
        self.class.test_code || self.test_lines.contains(&line)
    }

    pub(crate) fn push(
        &self,
        out: &mut Vec<Finding>,
        line: usize,
        rule: &'static str,
        message: String,
    ) {
        self.push_ev(out, line, rule, message, Vec::new());
    }

    /// Like [`Analysis::push`], with a control-flow evidence trail.
    pub(crate) fn push_ev(
        &self,
        out: &mut Vec<Finding>,
        line: usize,
        rule: &'static str,
        message: String,
        evidence: Vec<String>,
    ) {
        if !self.allowed(line, rule) {
            out.push(Finding {
                file: self.rel.clone(),
                line,
                rule,
                message,
                evidence,
            });
        }
    }

    /// Walk upward from the line above `line`, skipping attribute
    /// lines; true when the first thing found is a doc comment/attr.
    fn has_doc_above(&self, line: usize) -> bool {
        let mut l = line - 1;
        while l >= 1 {
            if self.doc_lines.contains(&l) {
                return true;
            }
            if self.attr_cover.contains(&l) {
                l -= 1;
                continue;
            }
            return false;
        }
        false
    }

    /// The innermost function whose body contains token index `k`.
    fn enclosing_fn(&self, k: usize) -> Option<&FnDef> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(a, b)| a <= k && k < b))
            .max_by_key(|f| f.body.map(|(a, _)| a))
    }
}

// ---- the full pipeline ----------------------------------------------------

/// Lint a set of in-memory sources (workspace-relative path, content).
/// This is the whole deterministic pipeline; `lint_workspace` is the
/// on-disk shell around it.
pub fn lint_sources(sources: &[(String, String)]) -> Vec<Finding> {
    let analyses: Vec<Analysis> = sources
        .iter()
        .map(|(rel, content)| Analysis::new(rel, content))
        .collect();
    let magics = collect_magic_defs(&analyses);

    let mut findings = Vec::new();
    check_magic_duplicates(&magics, &mut findings);
    for a in &analyses {
        findings.extend(a.bad_waivers.iter().cloned());
        lint_file(a, &magics, &mut findings);
    }
    check_forbid_unsafe(&analyses, &mut findings);
    check_io_accounting(&analyses, &mut findings);
    crate::flowrules::check(&analyses, &mut findings);
    crate::effectrules::check(&analyses, &mut findings);
    // Last: every other rule has had its chance to consume waivers.
    check_unused_waivers(&analyses, &mut findings);
    findings.sort();
    findings
}

/// The `unused-waiver` rule: a waiver that suppressed nothing this run
/// is dead weight that would silently swallow future regressions.
/// Waivers for `unused-waiver` itself are exempt (self-referential),
/// as are waivers in test code, where the waived rules never run.
fn check_unused_waivers(analyses: &[Analysis], out: &mut Vec<Finding>) {
    for a in analyses {
        for (&line, rules) in &a.waivers {
            if a.in_test(line) {
                continue;
            }
            let mut seen = BTreeSet::new();
            for &rule in rules {
                if rule == "unused-waiver" || !seen.insert(rule) {
                    continue;
                }
                if !a.used_waivers.borrow().contains(&(line, rule)) {
                    a.push(
                        out,
                        line,
                        "unused-waiver",
                        format!(
                            "waiver `{rule}` no longer suppresses any finding on this line; remove it"
                        ),
                    );
                }
            }
        }
    }
}

/// Everything `loblint` found across the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, std::fs::read_to_string(path)?));
    }
    Ok(lint_sources(&sources))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---- magic constants ------------------------------------------------------

/// A magic-constant definition (`const <NAME containing MAGIC>: _ =
/// <literal>;`) discovered in pass one.
#[derive(Debug, Clone)]
struct MagicDef {
    file: String,
    line: usize,
    name: String,
    /// Normalized literal (lowercase hex without underscores, decimal
    /// digits, or the raw byte-string token).
    value: String,
}

/// Normalize a numeric token's text for value comparison. `None` for
/// floats or malformed text.
fn normalize_num(text: &str) -> Option<String> {
    if let Some(hex) = text.strip_prefix("0x") {
        let digits: String = hex
            .chars()
            .take_while(|c| c.is_ascii_hexdigit() || *c == '_')
            .filter(|c| *c != '_')
            .collect();
        if digits.is_empty() {
            return None;
        }
        return Some(format!("0x{}", digits.to_ascii_lowercase()));
    }
    if text.contains('.') {
        return None;
    }
    if text.chars().next()?.is_ascii_digit() {
        let digits: String = text
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '_')
            .filter(|c| *c != '_')
            .collect();
        return Some(digits);
    }
    None
}

fn collect_magic_defs(analyses: &[Analysis]) -> Vec<MagicDef> {
    let mut defs = Vec::new();
    for a in analyses {
        let t = &a.toks;
        for i in 0..t.len() {
            if !t[i].is_ident("const") {
                continue;
            }
            let Some(name) = t.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
                continue;
            };
            if !name.text.contains("MAGIC") || !t.get(i + 2).is_some_and(|c| c.is_punct(":")) {
                continue;
            }
            // Find `= <literal> ;` before the statement ends.
            let mut j = i + 3;
            while j < t.len() && !t[j].is_punct("=") && !t[j].is_punct(";") {
                j += 1;
            }
            let Some(lit) = t.get(j + 1) else { continue };
            if !t.get(j + 2).is_some_and(|s| s.is_punct(";")) {
                continue;
            }
            let value = match lit.kind {
                TokKind::Num => normalize_num(&lit.text),
                TokKind::ByteStr => Some(lit.text.clone()),
                _ => None,
            };
            if let Some(value) = value {
                defs.push(MagicDef {
                    file: a.rel.clone(),
                    line: name.line,
                    name: name.text.clone(),
                    value,
                });
            }
        }
    }
    defs
}

fn check_magic_duplicates(defs: &[MagicDef], findings: &mut Vec<Finding>) {
    let mut by_value: BTreeMap<&str, Vec<&MagicDef>> = BTreeMap::new();
    for d in defs {
        by_value.entry(&d.value).or_default().push(d);
    }
    for (value, group) in by_value {
        for d in group.iter().skip(1) {
            findings.push(Finding {
                file: d.file.clone(),
                line: d.line,
                rule: "magic-duplicate",
                message: format!(
                    "magic value {value} of `{}` already defined as `{}` at {}:{}",
                    d.name, group[0].name, group[0].file, group[0].line
                ),
                evidence: Vec::new(),
            });
        }
    }
}

// ---- per-file token rules -------------------------------------------------

const CAST_WIDTHS: [&str; 4] = ["u8", "u16", "u32", "usize"];
const CAST_CONTEXT: [&str; 6] = ["off", "page", "pos", "byte", "pgno", "pid"];
const ITEM_KINDS: [&str; 9] = [
    "fn", "struct", "enum", "trait", "const", "static", "type", "mod", "union",
];

/// Words that mark an identifier as a page/byte/segment quantity for
/// the `arith-overflow` rule (matched against `_`-separated words).
const QUANTITY_WORDS: [&str; 16] = [
    "page", "pages", "npages", "pgno", "pid", "byte", "bytes", "off", "offset", "pos", "seg",
    "segment", "segments", "size", "count", "extent",
];

/// Can the token end a binary operator's left operand?
pub(crate) fn ends_operand(t: &Tok) -> bool {
    matches!(t.kind, TokKind::Ident | TokKind::Num) || t.is_punct(")") || t.is_punct("]")
}

/// Is `toks[i]` a `/ % /= %=` whose divisor is not a literal or
/// ALL_CAPS const — i.e. a potential divide-by-zero panic? Shared by
/// `panic-path` and `panic-while-locked`.
pub(crate) fn panic_div_at(t: &[Tok], i: usize) -> bool {
    if !(t[i].kind == TokKind::Punct
        && matches!(t[i].text.as_str(), "/" | "%" | "/=" | "%=")
        && i > 0
        && ends_operand(&t[i - 1]))
    {
        return false;
    }
    let divisor_const = match t.get(i + 1) {
        Some(n) if n.kind == TokKind::Num => true,
        _ => right_chain(t, i)
            .is_some_and(|(c, call, _)| !call && c.last().is_some_and(|id| is_const_name(id))),
    };
    !divisor_const
}

/// Is `toks[i]` a postfix `[` (indexing/slicing a value) that is not a
/// full-range `[..]`? Shared by `panic-path`, `panic-while-locked` and
/// the `disk-taint` sink scan. A `[` after the keyword `mut` is a slice
/// *type* (`&mut [u8]`), never an indexing expression — `mut` cannot
/// name a value.
pub(crate) fn panic_index_at(t: &[Tok], i: usize) -> bool {
    t[i].is_punct("[")
        && i > 0
        && (matches!(t[i - 1].kind, TokKind::Ident) && !t[i - 1].is_ident("mut")
            || t[i - 1].is_punct(")")
            || t[i - 1].is_punct("]")
            || t[i - 1].is_punct("?"))
        && !(t.get(i + 1).is_some_and(|n| n.is_punct(".."))
            && t.get(i + 2).is_some_and(|n| n.is_punct("]")))
}

/// The `.`/`::`-joined identifier chain ending at `op - 1`, innermost
/// last (`self.pos` -> `["self", "pos"]`). `None` when the operand is
/// not a plain chain (a call result, a literal, ...).
pub(crate) fn left_chain(toks: &[Tok], op: usize) -> Option<Vec<String>> {
    let mut j = op.checked_sub(1)?;
    if toks[j].kind != TokKind::Ident {
        return None;
    }
    let mut idents = vec![toks[j].text.clone()];
    while j >= 2
        && (toks[j - 1].is_punct(".") || toks[j - 1].is_punct("::"))
        && toks[j - 2].kind == TokKind::Ident
    {
        idents.push(toks[j - 2].text.clone());
        j -= 2;
    }
    idents.reverse();
    Some(idents)
}

/// The identifier chain starting at `op + 1`. The bool is true when
/// the chain is immediately called (`f(...)`), i.e. its value is not
/// the named thing itself; the usize is the index of the chain's last
/// token.
pub(crate) fn right_chain(toks: &[Tok], op: usize) -> Option<(Vec<String>, bool, usize)> {
    let mut j = op + 1;
    if toks.get(j)?.kind != TokKind::Ident {
        return None;
    }
    let mut idents = vec![toks[j].text.clone()];
    while toks
        .get(j + 1)
        .is_some_and(|t| t.is_punct(".") || t.is_punct("::"))
        && toks.get(j + 2).is_some_and(|t| t.kind == TokKind::Ident)
    {
        idents.push(toks[j + 2].text.clone());
        j += 2;
    }
    let is_call = toks.get(j + 1).is_some_and(|t| t.is_punct("("));
    Some((idents, is_call, j))
}

fn words_of(ident: &str) -> Vec<String> {
    ident
        .split('_')
        .filter(|w| !w.is_empty())
        .map(str::to_ascii_lowercase)
        .collect()
}

/// Does any chain identifier classify as a page/byte quantity?
/// CamelCase / ALL_CAPS idents (types, traits, consts) never do — a
/// const operand is compile-time bounded and a trait bound `A + B` is
/// not arithmetic.
fn is_quantity(chain: &[String]) -> bool {
    chain
        .iter()
        .filter(|id| id.chars().next().is_some_and(|c| !c.is_ascii_uppercase()))
        .any(|id| {
            words_of(id)
                .iter()
                .any(|w| QUANTITY_WORDS.contains(&w.as_str()))
        })
}

/// Is this identifier an ALL_CAPS constant name?
pub(crate) fn is_const_name(id: &str) -> bool {
    id.chars().any(|c| c.is_ascii_uppercase())
        && id
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// A unit for the `unit-mixing` rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Unit {
    Bytes,
    PageCount,
    PageIdx,
}

impl Unit {
    pub(crate) fn name(self) -> &'static str {
        match self {
            Unit::Bytes => "byte quantity",
            Unit::PageCount => "page count",
            Unit::PageIdx => "page index",
        }
    }
}

/// Classify an identifier chain by naming convention: byte words win,
/// then count-of-pages words, then page-index words.
pub(crate) fn unit_of(chain: &[String]) -> Option<Unit> {
    let words: Vec<String> = chain.iter().flat_map(|id| words_of(id)).collect();
    let has = |w: &str| words.iter().any(|x| x == w);
    if ["byte", "bytes", "off", "offset", "pos", "size"]
        .iter()
        .any(|w| has(w))
    {
        return Some(Unit::Bytes);
    }
    if has("pages")
        || has("npages")
        || (has("page") && ["n", "num", "count", "cnt", "total"].iter().any(|w| has(w)))
    {
        return Some(Unit::PageCount);
    }
    if has("page") || has("pgno") || has("pageno") {
        return Some(Unit::PageIdx);
    }
    None
}

/// Run every per-file rule over one analysis.
fn lint_file(a: &Analysis, magics: &[MagicDef], out: &mut Vec<Finding>) {
    let t = &a.toks;
    for i in 0..t.len() {
        let line = t[i].line;
        let in_test = a.in_test(line);

        // -- todo: everywhere outside tests --
        if !in_test
            && t[i].kind == TokKind::Ident
            && (t[i].text == "todo" || t[i].text == "unimplemented")
            && t.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            a.push(
                out,
                line,
                "todo",
                format!("{}! outside test code", t[i].text),
            );
        }

        // -- magic-literal: everywhere, skipping defining consts --
        if matches!(t[i].kind, TokKind::Num | TokKind::ByteStr) {
            let value = match t[i].kind {
                TokKind::Num => normalize_num(&t[i].text),
                _ => Some(t[i].text.clone()),
            };
            if let Some(value) = value {
                if let Some(def) = magics.iter().find(|d| d.value == value) {
                    let at_def = magics
                        .iter()
                        .any(|d| d.value == value && d.file == a.rel && d.line == line);
                    if !at_def {
                        a.push(
                            out,
                            line,
                            "magic-literal",
                            format!(
                                "bare magic literal {value}; reference `{}` ({}:{}) instead",
                                def.name, def.file, def.line
                            ),
                        );
                    }
                }
            }
        }

        if !a.class.library || in_test {
            continue;
        }

        // -- unwrap: `.unwrap()` / `.expect(` --
        if t[i].is_punct(".")
            && t.get(i + 1)
                .is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
            && t.get(i + 2).is_some_and(|n| n.is_punct("("))
        {
            a.push(
                out,
                line,
                "unwrap",
                "unwrap()/expect() in library code; propagate LobError instead".into(),
            );
        }

        // -- truncating-cast: `as u8/u16/u32/usize` with offset context --
        if t[i].is_ident("as") {
            if let Some(width) = t
                .get(i + 1)
                .filter(|n| n.kind == TokKind::Ident)
                .and_then(|n| CAST_WIDTHS.iter().find(|w| n.text == **w))
            {
                let context = t
                    .iter()
                    .filter(|x| x.line == line && x.kind == TokKind::Ident)
                    .any(|x| {
                        let lower = x.text.to_ascii_lowercase();
                        CAST_CONTEXT.iter().any(|c| lower.contains(c))
                    });
                if context {
                    a.push(
                        out,
                        line,
                        "truncating-cast",
                        format!(
                            "bare `as {width}` on page/offset arithmetic; use try_into or lobstore_simdisk::cast"
                        ),
                    );
                }
            }
        }

        // -- missing-docs: `pub` items need docs --
        if t[i].is_ident("pub") && !t.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            let mut j = i + 1;
            while t
                .get(j)
                .is_some_and(|n| n.is_ident("async") || n.is_ident("unsafe"))
            {
                j += 1;
            }
            if let Some(kind) = t
                .get(j)
                .filter(|n| n.kind == TokKind::Ident)
                .and_then(|n| ITEM_KINDS.iter().find(|k| n.text == **k))
            {
                if !a.has_doc_above(line) {
                    a.push(
                        out,
                        line,
                        "missing-docs",
                        format!("pub {kind} without a /// doc comment"),
                    );
                }
            }
        }

        // -- arith-overflow: bare + - * << on quantities --
        if t[i].kind == TokKind::Punct
            && matches!(
                t[i].text.as_str(),
                "+" | "-" | "*" | "<<" | "+=" | "-=" | "*=" | "<<="
            )
            && i > 0
            && ends_operand(&t[i - 1])
        {
            let lq = left_chain(t, i).is_some_and(|c| is_quantity(&c));
            let rq = right_chain(t, i).is_some_and(|(c, call, _)| !call && is_quantity(&c));
            if lq || rq {
                a.push(
                    out,
                    line,
                    "arith-overflow",
                    format!(
                        "unchecked `{}` on a page/byte quantity; use checked_*/saturating_* or waive with rationale",
                        t[i].text
                    ),
                );
            }
        }

        // -- panic-path: division by non-constants --
        if panic_div_at(t, i) {
            a.push(
                out,
                line,
                "panic-path",
                format!(
                    "`{}` with a non-constant divisor may panic on zero; guard or waive",
                    t[i].text
                ),
            );
        }

        // -- panic-path: postfix indexing/slicing --
        if panic_index_at(t, i) {
            a.push(
                out,
                line,
                "panic-path",
                "indexing/slicing may panic on out-of-range; use get()/split checks or waive"
                    .into(),
            );
        }
    }

    if a.class.library {
        lint_unit_mixing(a, out);
    }
}

/// The `unit-mixing` rule: per function, track `PageId`-typed names
/// and naming-convention units, then flag cross-unit operations.
fn lint_unit_mixing(a: &Analysis, out: &mut Vec<Finding>) {
    let t = &a.toks;
    for f in &a.fns {
        let Some((b0, b1)) = f.body else { continue };
        if a.in_test(f.line) {
            continue;
        }
        // Symbol table: `name: PageId` in the signature or body.
        let mut page_idx_syms: BTreeSet<&str> = BTreeSet::new();
        for k in f.fn_tok..b1.min(t.len()) {
            if t[k].is_ident("PageId")
                && k >= 2
                && t[k - 1].is_punct(":")
                && t[k - 2].kind == TokKind::Ident
            {
                page_idx_syms.insert(&t[k - 2].text);
            }
        }
        let classify = |chain: &[String]| -> Option<Unit> {
            if chain.len() == 1 && page_idx_syms.contains(chain[0].as_str()) {
                return Some(Unit::PageIdx);
            }
            unit_of(chain)
        };
        for i in b0..b1.min(t.len()) {
            if t[i].kind != TokKind::Punct {
                continue;
            }
            let op = t[i].text.as_str();
            let tracked = matches!(
                op,
                "+" | "-" | "+=" | "-=" | "=" | "==" | "!=" | "<" | "<=" | ">" | ">="
            );
            if !tracked || i == 0 || !ends_operand(&t[i - 1]) {
                continue;
            }
            let Some(lu) = left_chain(t, i).and_then(|c| classify(&c)) else {
                continue;
            };
            let Some((rc, r_call, r_end)) = right_chain(t, i) else {
                continue;
            };
            let Some(ru) = (if r_call { None } else { classify(&rc) }) else {
                continue;
            };
            // For plain assignment, only a *bare* chain on the right is
            // unit-meaningful: `count = idx - idx + 1` computes a count.
            let rhs_is_bare = t
                .get(r_end + 1)
                .is_none_or(|n| n.is_punct(";") || n.is_punct(",") || n.is_punct(")"));
            let line = t[i].line;
            if op == "=" && !rhs_is_bare {
                // `off = page * PAGE_SIZE` converts units; only a bare
                // chain on the right carries its unit into the left side.
            } else if (lu == Unit::Bytes) != (ru == Unit::Bytes) {
                // Bytes never mix with page-grained units.
                a.push(
                    out,
                    line,
                    "unit-mixing",
                    format!("`{op}` mixes a {} with a {}", lu.name(), ru.name()),
                );
            } else if lu == Unit::PageIdx && ru == Unit::PageIdx && matches!(op, "+" | "+=") {
                // index + index has no unit meaning (index + count does).
                a.push(
                    out,
                    line,
                    "unit-mixing",
                    "`+` adds two page indexes; one side should be a page count".into(),
                );
            } else if lu != ru && op == "=" {
                // Assigning a count into an index (or vice versa).
                a.push(
                    out,
                    line,
                    "unit-mixing",
                    format!("assignment of a {} to a {}", ru.name(), lu.name()),
                );
            }
        }
    }
}

// ---- workspace rules: forbid-unsafe ---------------------------------------

/// Each library crate's `lib.rs`, when present in the scanned set,
/// must carry `#![forbid(unsafe_code)]`.
fn check_forbid_unsafe(analyses: &[Analysis], out: &mut Vec<Finding>) {
    for c in LIBRARY_CRATES {
        let rel = format!("crates/{c}/src/lib.rs");
        let Some(a) = analyses.iter().find(|a| a.rel == rel) else {
            continue;
        };
        let has = a.spans.iter().any(|s| {
            s.inner
                && a.toks[s.first..=s.last]
                    .iter()
                    .any(|t| t.is_ident("forbid"))
                && a.toks[s.first..=s.last]
                    .iter()
                    .any(|t| t.is_ident("unsafe_code"))
        });
        if !has {
            a.push(
                out,
                1,
                "forbid-unsafe",
                format!("{rel} is missing `#![forbid(unsafe_code)]`"),
            );
        }
    }
}

// ---- workspace rules: io-accounting ---------------------------------------

/// The cost-counted wrapper functions, per bufpool file. Every raw
/// `disk.read`/`disk.write` call site must sit inside one of these,
/// and each must (transitively) perform raw I/O — together they are
/// the static model of "all I/O above the disk goes through the pool".
pub(crate) const IO_WRAPPERS: [(&str, &[&str]); 2] = [
    (
        "crates/bufpool/src/pool.rs",
        &["evict", "fix", "flush_page", "flush_all"],
    ),
    (
        "crates/bufpool/src/segio.rs",
        &[
            "read_buffered",
            "read_direct",
            "read_pages",
            "read_scatter",
            "write_direct",
            "flush_range",
        ],
    ),
];

/// The I/O entry points above the pool: each must reach a wrapper
/// through the call graph, and the core ones must bump their obs
/// counter — the static twin of `tests/observability.rs`.
pub(crate) const IO_ENTRIES: [(&str, &str, Option<&str>); 5] = [
    ("crates/bufpool/src/segio.rs", "read_segment", None),
    (
        "crates/core/src/segdata.rs",
        "read_seg_bytes",
        Some("core.seg.reads"),
    ),
    (
        "crates/core/src/segdata.rs",
        "write_new_seg",
        Some("core.seg.writes"),
    ),
    (
        "crates/core/src/segdata.rs",
        "append_in_place",
        Some("core.seg.writes"),
    ),
    (
        "crates/core/src/segdata.rs",
        "patch_in_place",
        Some("core.seg.writes"),
    ),
];

/// The health meta-inspectors (DESIGN.md §14): cost-free recounts the
/// sampler may run at any cadence. Each must exist, touch no raw disk
/// I/O, and never call a cost-counted wrapper or I/O entry — observation
/// that costs simulated I/O would distort the experiment it reports on
/// (`tests/observability.rs` asserts the runtime twin of this rule).
pub(crate) const META_INSPECTORS: [(&str, &str); 7] = [
    ("crates/buddy/src/manager.rs", "frag_stats"),
    ("crates/core/src/db.rs", "leaf_frag_stats"),
    ("crates/core/src/db.rs", "meta_frag_stats"),
    ("crates/core/src/db.rs", "sample_health"),
    ("crates/core/src/health.rs", "object_health"),
    ("crates/core/src/health.rs", "publish_area"),
    ("crates/core/src/health.rs", "publish_object_health"),
];

pub(crate) const CALL_KEYWORDS: [&str; 11] = [
    "if", "match", "while", "for", "return", "loop", "fn", "as", "in", "move", "unsafe",
];

/// A raw disk I/O site: `disk` / `disk_mut()` receiver followed by
/// `.read(`, `.write(` or `.write_gather(`. Returns the index of the
/// method ident for each site in `toks`.
fn raw_disk_sites(toks: &[Tok]) -> Vec<usize> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("disk") || toks[i].is_ident("disk_mut")) {
            continue;
        }
        let mut j = i + 1;
        // Skip a call pair for accessor style: `disk_mut()`.
        if toks.get(j).is_some_and(|t| t.is_punct("("))
            && toks.get(j + 1).is_some_and(|t| t.is_punct(")"))
        {
            j += 2;
        }
        if toks.get(j).is_some_and(|t| t.is_punct("."))
            && toks.get(j + 1).is_some_and(|t| {
                t.is_ident("read") || t.is_ident("write") || t.is_ident("write_gather")
            })
            && toks.get(j + 2).is_some_and(|t| t.is_punct("("))
        {
            out.push(j + 1);
        }
    }
    out
}

/// Names called from the token range `[b0, b1)`: `name(...)` and
/// `.name(...)` forms, keywords and definitions excluded. A
/// type-qualified call `Q::name(...)` only counts when `Q` is a type the
/// workspace itself has an `impl` for (`owners`) — `Vec::new`,
/// `u32::try_from` and friends are foreign and must not alias workspace
/// functions that happen to share a method name.
fn callees(toks: &[Tok], b0: usize, b1: usize, owners: &BTreeSet<&str>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for k in b0..b1.min(toks.len()) {
        if toks[k].kind == TokKind::Ident
            && toks.get(k + 1).is_some_and(|n| n.is_punct("("))
            && !CALL_KEYWORDS.contains(&toks[k].text.as_str())
            && !(k > 0 && toks[k - 1].is_ident("fn"))
        {
            if k >= 2 && toks[k - 1].is_punct("::") && toks[k - 2].kind == TokKind::Ident {
                let q = toks[k - 2].text.as_str();
                let foreign_type = q.starts_with(char::is_uppercase) && !owners.contains(q);
                // Primitive qualifiers (`u32::from_le_bytes`) are foreign
                // too; lowercase module paths (`cast::to_u32`) stay.
                let primitive = matches!(
                    q,
                    "u8" | "u16"
                        | "u32"
                        | "u64"
                        | "u128"
                        | "usize"
                        | "i8"
                        | "i16"
                        | "i32"
                        | "i64"
                        | "i128"
                        | "isize"
                        | "f32"
                        | "f64"
                        | "bool"
                        | "char"
                        | "str"
                );
                if foreign_type || primitive {
                    continue;
                }
            }
            out.insert(toks[k].text.clone());
        }
    }
    out
}

/// The io-accounting pass. Only runs when the scanned set contains
/// bufpool sources (the real workspace, or a fixture modelling it).
fn check_io_accounting(analyses: &[Analysis], out: &mut Vec<Finding>) {
    if !analyses
        .iter()
        .any(|a| a.rel.starts_with("crates/bufpool/"))
    {
        return;
    }

    // Call graph and raw-I/O facts over library, non-test functions.
    let owners: BTreeSet<&str> = analyses
        .iter()
        .filter(|a| a.class.library)
        .flat_map(|a| a.fns.iter().filter_map(|f| f.owner.as_deref()))
        .collect();
    // Nodes are restricted to the two crates the accounting model spans.
    // Call edges resolve by bare name, so every `.len(..)`/`.insert(..)`
    // method call aliases any workspace function of that name; admitting
    // obs/simdisk/record functions as nodes lets those aliases chain into
    // phantom paths that reach a wrapper through code the entry never
    // runs. Confining the graph to core + bufpool keeps every path the
    // model cares about (entries live in core, wrappers in bufpool) while
    // cutting the alias bridges.
    let graph_crate =
        |rel: &str| rel.starts_with("crates/bufpool/") || rel.starts_with("crates/core/");
    let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut has_raw: BTreeSet<String> = BTreeSet::new();
    for a in analyses
        .iter()
        .filter(|a| a.class.library && graph_crate(&a.rel))
    {
        let raw = raw_disk_sites(&a.toks);
        for f in &a.fns {
            if a.in_test(f.line) {
                continue;
            }
            let Some((b0, b1)) = f.body else { continue };
            calls
                .entry(f.name.clone())
                .or_default()
                .extend(callees(&a.toks, b0, b1, &owners));
            if raw.iter().any(|&k| b0 <= k && k < b1) {
                has_raw.insert(f.name.clone());
            }
        }
    }
    let reaches = |start: &str, pred: &dyn Fn(&str) -> bool| -> bool {
        let mut seen = BTreeSet::new();
        let mut queue = vec![start.to_string()];
        while let Some(n) = queue.pop() {
            if pred(&n) {
                return true;
            }
            if !seen.insert(n.clone()) {
                continue;
            }
            if let Some(cs) = calls.get(&n) {
                queue.extend(cs.iter().cloned());
            }
        }
        false
    };
    let all_wrappers: BTreeSet<&str> = IO_WRAPPERS
        .iter()
        .flat_map(|(_, ws)| ws.iter().copied())
        .collect();

    // (a) Every raw disk call site sits inside a wrapper in bufpool.
    // The simdisk crate is the device itself and is exempt.
    for a in analyses
        .iter()
        .filter(|a| a.class.library && !a.rel.starts_with("crates/simdisk/"))
    {
        let in_bufpool = a.rel.starts_with("crates/bufpool/");
        for k in raw_disk_sites(&a.toks) {
            let line = a.toks[k].line;
            if a.in_test(line) {
                continue;
            }
            let covered = in_bufpool
                && a.enclosing_fn(k)
                    .is_some_and(|f| all_wrappers.contains(f.name.as_str()));
            if !covered {
                let name = a
                    .enclosing_fn(k)
                    .map_or("<module scope>".to_string(), |f| f.qualified());
                a.push(
                    out,
                    line,
                    "io-accounting",
                    format!(
                        "raw disk {} outside the cost-counted wrappers (in `{name}`); route through BufferPool",
                        a.toks[k].text
                    ),
                );
            }
        }
    }

    // (b) Each wrapper exists in its file and performs raw I/O, either
    // directly or by delegating to another wrapper (`flush_all` →
    // `flush_page`). A fixpoint over the wrapper set only — general
    // reachability would let an aliased method name (`.remove(..)` vs a
    // core fn `remove`) smuggle in raw I/O a wrapper does not do.
    let mut raw_wrappers: BTreeSet<&str> = all_wrappers
        .iter()
        .copied()
        .filter(|w| has_raw.contains(*w))
        .collect();
    loop {
        let grown: Vec<&str> = all_wrappers
            .iter()
            .copied()
            .filter(|w| !raw_wrappers.contains(w))
            .filter(|w| {
                calls
                    .get(*w)
                    .is_some_and(|cs| cs.iter().any(|c| raw_wrappers.contains(c.as_str())))
            })
            .collect();
        if grown.is_empty() {
            break;
        }
        raw_wrappers.extend(grown);
    }
    for (file, wrappers) in IO_WRAPPERS {
        let Some(a) = analyses.iter().find(|a| a.rel == file) else {
            continue;
        };
        for w in wrappers {
            match a.fns.iter().find(|f| f.name == *w && !a.in_test(f.line)) {
                None => a.push(
                    out,
                    1,
                    "io-accounting",
                    format!("cost-counted wrapper `{w}` is missing from {file}"),
                ),
                Some(f) => {
                    if !raw_wrappers.contains(w) {
                        a.push(
                            out,
                            f.line,
                            "io-accounting",
                            format!(
                                "wrapper `{w}` performs no disk I/O (directly or via other wrappers)"
                            ),
                        );
                    }
                }
            }
        }
    }

    // (c) Each entry point reaches a wrapper and bumps its counter.
    for (file, entry, counter) in IO_ENTRIES {
        let Some(a) = analyses.iter().find(|a| a.rel == file) else {
            continue;
        };
        let Some(f) = a.fns.iter().find(|f| f.name == entry && !a.in_test(f.line)) else {
            a.push(
                out,
                1,
                "io-accounting",
                format!("I/O entry point `{entry}` is missing from {file}"),
            );
            continue;
        };
        if !reaches(entry, &|n| all_wrappers.contains(n)) {
            a.push(
                out,
                f.line,
                "io-accounting",
                format!("I/O entry `{entry}` never reaches a cost-counted wrapper"),
            );
        }
        if let (Some(counter), Some((b0, b1))) = (counter, f.body) {
            let bumps = a.toks[b0..b1.min(a.toks.len())]
                .iter()
                .any(|t| t.kind == TokKind::Str && t.text.contains(counter));
            if !bumps {
                a.push(
                    out,
                    f.line,
                    "io-accounting",
                    format!("I/O entry `{entry}` does not bump its `{counter}` counter"),
                );
            }
        }
    }

    // (d) Health meta-inspectors are peek-only. Direct-call check, not
    // reachability: the alias-prone call graph would drown this in
    // phantom paths, and a peek-only recount that *directly* invokes a
    // costed wrapper or entry is the regression worth catching.
    let entry_names: BTreeSet<&str> = IO_ENTRIES.iter().map(|(_, e, _)| *e).collect();
    for (file, inspector) in META_INSPECTORS {
        let Some(a) = analyses.iter().find(|a| a.rel == file) else {
            continue;
        };
        let Some(f) = a
            .fns
            .iter()
            .find(|f| f.name == inspector && !a.in_test(f.line))
        else {
            a.push(
                out,
                1,
                "io-accounting",
                format!("health inspector `{inspector}` is missing from {file}"),
            );
            continue;
        };
        let Some((b0, b1)) = f.body else { continue };
        if raw_disk_sites(&a.toks).iter().any(|&k| b0 <= k && k < b1) {
            a.push(
                out,
                f.line,
                "io-accounting",
                format!(
                    "health inspector `{inspector}` performs raw disk I/O; recounts must be \
                     peek-only"
                ),
            );
        }
        for c in callees(&a.toks, b0, b1, &owners) {
            if all_wrappers.contains(c.as_str()) || entry_names.contains(c.as_str()) {
                a.push(
                    out,
                    f.line,
                    "io-accounting",
                    format!(
                        "health inspector `{inspector}` calls cost-counted `{c}`; health \
                         sampling must stay simulated-I/O-free (peek-only)"
                    ),
                );
            }
        }
    }
}

// ---- baseline ratchet -----------------------------------------------------

/// A frozen multiset of findings keyed on (file, rule, message) — line
/// numbers are deliberately excluded so unrelated edits above a frozen
/// finding do not invalidate the baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    counts: BTreeMap<(String, String, String), usize>,
}

impl Baseline {
    /// Parse the `file<TAB>rule<TAB>message` line format. Blank lines
    /// and `#` comments are ignored; malformed lines are reported.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            match (parts.next(), parts.next(), parts.next()) {
                (Some(f), Some(r), Some(m)) => {
                    *counts
                        .entry((f.to_string(), r.to_string(), m.to_string()))
                        .or_insert(0) += 1;
                }
                _ => {
                    return Err(format!(
                        "baseline line {}: expected 3 tab-separated fields",
                        i + 1
                    ))
                }
            }
        }
        Ok(Baseline { counts })
    }

    /// Render findings as a deterministic (sorted) baseline file.
    pub fn render(findings: &[Finding]) -> String {
        let mut lines: Vec<String> = findings
            .iter()
            .map(|f| {
                format!(
                    "{}\t{}\t{}",
                    f.file,
                    f.rule,
                    f.message.replace(['\t', '\n'], " ")
                )
            })
            .collect();
        lines.sort();
        let mut out = String::from(
            "# loblint baseline — frozen findings (file<TAB>rule<TAB>message).\n\
             # Regenerate with: cargo run -q -p xtask -- loblint --update-baseline\n",
        );
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }

    /// Baseline entries the current findings no longer produce — what
    /// an `--update-baseline` run is about to drop. Reported so
    /// resolved findings are visible instead of silently vanishing.
    pub fn resolved_against(&self, findings: &[Finding]) -> Vec<(String, String, String, usize)> {
        let mut left = self.counts.clone();
        for f in findings {
            let key = (
                f.file.clone(),
                f.rule.to_string(),
                f.message.replace(['\t', '\n'], " "),
            );
            if let Some(n) = left.get_mut(&key) {
                *n = n.saturating_sub(1);
            }
        }
        left.into_iter()
            .filter(|(_, n)| *n > 0)
            .map(|((f, r, m), n)| (f, r, m, n))
            .collect()
    }

    /// Mark each finding as baselined (true) or new (false), consuming
    /// baseline entries multiset-style.
    pub fn apply(&self, findings: &[Finding]) -> Vec<bool> {
        let mut left = self.counts.clone();
        findings
            .iter()
            .map(|f| {
                let key = (
                    f.file.clone(),
                    f.rule.to_string(),
                    f.message.replace(['\t', '\n'], " "),
                );
                match left.get_mut(&key) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        true
                    }
                    _ => false,
                }
            })
            .collect()
    }
}

// ---- output and CLI -------------------------------------------------------

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the `loblint-findings/v2` document. `baselined[i]` says
/// whether `findings[i]` is frozen in the baseline.
pub fn to_json(findings: &[Finding], baselined: &[bool]) -> String {
    let n_base = baselined.iter().filter(|b| **b).count();
    let mut out = String::from("{\n");
    let _ = write!(out, "  \"schema\": \"{FINDINGS_SCHEMA}\",\n  \"rules\": [");
    for (i, r) in RULES.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{r}\"");
    }
    let _ = write!(
        out,
        "],\n  \"total\": {},\n  \"baselined\": {},\n  \"new\": {},\n  \"findings\": [",
        findings.len(),
        n_base,
        findings.len() - n_base
    );
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let evidence = f
            .evidence
            .iter()
            .map(|e| format!("\"{}\"", json_escape(e)))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(
            out,
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\", \"evidence\": [{evidence}], \"baselined\": {}}}",
            json_escape(&f.file),
            f.line,
            f.rule,
            json_escape(&f.message),
            baselined.get(i).copied().unwrap_or(false)
        );
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

/// CLI options for `xtask loblint`.
pub struct Opts {
    pub root: PathBuf,
    pub json: bool,
    /// Write the JSON document here instead of stdout.
    pub out: Option<PathBuf>,
    /// Baseline path; defaults to `<root>/loblint.baseline`.
    pub baseline: Option<PathBuf>,
    /// Ignore the baseline entirely (report every finding as new).
    pub no_baseline: bool,
    /// Regenerate the baseline from the current findings and exit 0.
    pub update_baseline: bool,
    /// Run a single rule in isolation (`--rule <name>`).
    pub rule: Option<String>,
    /// Print the doc-table entry for a rule and exit (`--explain`).
    pub explain: Option<String>,
    /// Print the per-rule counts and baseline-delta table (`--stats`).
    pub stats: bool,
}

/// Render the `--stats` table: per-rule totals split into baselined
/// and new, rules with findings only, plus a TOTAL row. The exact
/// format is pinned by `stats_table_format_is_pinned`.
pub fn stats_table(findings: &[Finding], baselined: &[bool]) -> String {
    let mut rows: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for (i, f) in findings.iter().enumerate() {
        let e = rows.entry(f.rule).or_default();
        e.0 += 1;
        if baselined.get(i).copied().unwrap_or(false) {
            e.1 += 1;
        }
    }
    let name_w = rows
        .keys()
        .map(|r| r.len())
        .chain(["TOTAL".len(), "rule".len()])
        .max()
        .unwrap_or(5);
    let mut out = String::new();
    let mut row = |name: &str, total: String, base: String, new: String| {
        let _ = writeln!(out, "{name:<name_w$}  {total:>5}  {base:>9}  {new:>5}");
    };
    let dashes = (
        "-".repeat(name_w),
        "-".repeat(5),
        "-".repeat(9),
        "-".repeat(5),
    );
    row("rule", "total".into(), "baselined".into(), "new".into());
    row(
        &dashes.0,
        dashes.1.clone(),
        dashes.2.clone(),
        dashes.3.clone(),
    );
    let (mut t, mut b) = (0usize, 0usize);
    for (rule, (total, base)) in &rows {
        t += total;
        b += base;
        row(
            rule,
            total.to_string(),
            base.to_string(),
            (total - base).to_string(),
        );
    }
    row(&dashes.0, dashes.1, dashes.2, dashes.3);
    row("TOTAL", t.to_string(), b.to_string(), (t - b).to_string());
    out
}

/// Print the `RULE_DOCS` entry for `rule`. Exit 0 when known, 2 not.
pub fn explain(rule: &str) -> ExitCode {
    match RULE_DOCS.iter().find(|(name, _, _)| *name == rule) {
        Some((name, scope, text)) => {
            println!("rule:  {name}\nscope: {scope}\n\n{text}");
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "loblint: unknown rule `{rule}`; known rules: {}",
                RULES.join(", ")
            );
            ExitCode::from(2)
        }
    }
}

/// CLI entry point. Exit code 0 = no *new* findings (baselined ones
/// are fine), 1 = new findings, 2 = the pass could not run.
pub fn run(opts: &Opts) -> ExitCode {
    if let Some(rule) = &opts.explain {
        return explain(rule);
    }
    if let Some(rule) = &opts.rule {
        if !RULES.contains(&rule.as_str()) {
            eprintln!(
                "loblint: unknown rule `{rule}` for --rule; known rules: {}",
                RULES.join(", ")
            );
            return ExitCode::from(2);
        }
    }
    let mut findings = match lint_workspace(&opts.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("loblint: cannot scan {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(rule) = &opts.rule {
        findings.retain(|f| f.rule == rule.as_str());
    }
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join("loblint.baseline"));

    if opts.update_baseline {
        // Report what the regeneration is about to drop: the ratchet
        // must be honest in both directions.
        if let Ok(old_text) = std::fs::read_to_string(&baseline_path) {
            if let Ok(old) = Baseline::parse(&old_text) {
                for (file, rule, msg, n) in old.resolved_against(&findings) {
                    println!("loblint: resolved (x{n}): {file} [{rule}] {msg}");
                }
            }
        }
        let text = Baseline::render(&findings);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("loblint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "loblint: baseline updated ({} findings) -> {}",
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if opts.no_baseline {
        Baseline::default()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("loblint: {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(_) => Baseline::default(), // no baseline file: everything is new
        }
    };
    let marks = baseline.apply(&findings);
    let n_new = marks.iter().filter(|m| !**m).count();

    if opts.json {
        let doc = to_json(&findings, &marks);
        if let Some(out_path) = &opts.out {
            if let Err(e) = std::fs::write(out_path, &doc) {
                eprintln!("loblint: cannot write {}: {e}", out_path.display());
                return ExitCode::from(2);
            }
            eprintln!("loblint: wrote {}", out_path.display());
        } else {
            println!("{doc}");
        }
    } else {
        for (f, baselined) in findings.iter().zip(&marks) {
            if !baselined {
                println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
            }
        }
    }
    if opts.stats {
        print!("{}", stats_table(&findings, &marks));
        let resolved: usize = baseline
            .resolved_against(&findings)
            .iter()
            .map(|(_, _, _, n)| n)
            .sum();
        println!(
            "baseline delta: {} matched, {resolved} resolved, {n_new} new",
            findings.len() - n_new
        );
    }
    eprintln!(
        "loblint: {} finding{} ({} baselined, {n_new} new)",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" },
        findings.len() - n_new,
    );
    if n_new == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lint one library source (plus any extra files) through the full
    /// pipeline.
    fn lint_with(files: &[(&str, &str)]) -> Vec<Finding> {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(rel, content)| (rel.to_string(), content.to_string()))
            .collect();
        lint_sources(&sources)
    }

    fn lint_lib(content: &str) -> Vec<Finding> {
        lint_with(&[("crates/core/src/x.rs", content)])
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    // ---- --stats ------------------------------------------------------

    #[test]
    fn stats_table_format_is_pinned() {
        let f = |file: &str, line: usize, rule: &'static str| Finding {
            file: file.to_string(),
            line,
            rule,
            message: "m".to_string(),
            evidence: Vec::new(),
        };
        let findings = vec![
            f("a.rs", 1, "unwrap"),
            f("a.rs", 2, "panic-path"),
            f("b.rs", 3, "panic-path"),
        ];
        let marks = vec![true, true, false];
        let expected = "\
rule        total  baselined    new
----------  -----  ---------  -----
panic-path      2          1      1
unwrap          1          1      0
----------  -----  ---------  -----
TOTAL           3          2      1
";
        assert_eq!(stats_table(&findings, &marks), expected);
    }

    #[test]
    fn stats_table_on_empty_findings_has_only_the_total_row() {
        let table = stats_table(&[], &[]);
        assert!(table.contains("TOTAL      0          0      0"), "{table}");
    }

    // ---- v1 rules, now token-exact ------------------------------------

    #[test]
    fn reintroduced_unwrap_is_flagged() {
        let found = lint_lib("fn f() { let x = g().unwrap(); }\n");
        assert_eq!(rules_of(&found), vec!["unwrap"]);
        assert_eq!(found[0].line, 1);
        let found = lint_lib("fn f() { g().expect(\"boom\"); }\n");
        assert_eq!(rules_of(&found), vec!["unwrap"]);
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        assert!(lint_lib("fn f() { g().unwrap_or_else(|| 3); }\n").is_empty());
        assert!(lint_lib("fn f() { g().unwrap_or_default(); }\n").is_empty());
    }

    #[test]
    fn unwrap_inside_cfg_test_module_is_exempt() {
        let src =
            "fn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x().unwrap(); }\n}\n";
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn unwrap_in_non_library_file_is_exempt() {
        let class = classify("crates/cli/src/main.rs");
        assert!(!class.library);
        assert!(lint_with(&[("crates/cli/src/main.rs", "fn f() { g().unwrap(); }\n")]).is_empty());
    }

    #[test]
    fn obs_is_a_library_crate() {
        let class = classify("crates/obs/src/metrics.rs");
        assert!(class.library, "lobstore-obs is held to the library rules");
        assert!(!class.test_code);
    }

    #[test]
    fn reintroduced_truncating_page_cast_is_flagged() {
        let found = lint_lib("fn f(off: u64) -> u32 { off as u32 }\n");
        assert_eq!(rules_of(&found), vec!["truncating-cast"]);
        // Same cast without offset-ish context is not page arithmetic.
        assert!(lint_lib("fn f(mask: u64) -> u32 { mask as u32 }\n").is_empty());
        // Widening casts are fine.
        assert!(lint_lib("fn f(off2: u64) -> u64 { off2 as u64 }\n").is_empty());
    }

    #[test]
    fn todo_flagged_everywhere_outside_tests() {
        let found = lint_with(&[("crates/cli/src/main.rs", "fn f() { todo!() }\n")]);
        assert_eq!(rules_of(&found), vec!["todo"]);
    }

    #[test]
    fn magic_duplicate_and_bare_literal_detected() {
        let found = lint_with(&[
            ("crates/cli/src/a.rs", "const A_MAGIC: u32 = 0x1234_5678;\n"),
            (
                "crates/cli/src/b.rs",
                "const B_MAGIC: u32 = 0x12345678;\nfn f() { let x = 0x1234_5678; }\n",
            ),
        ]);
        let dup: Vec<_> = found
            .iter()
            .filter(|f| f.rule == "magic-duplicate")
            .collect();
        assert_eq!(dup.len(), 1, "{found:?}");
        assert!(dup[0].message.contains("A_MAGIC"));
        let lit: Vec<_> = found.iter().filter(|f| f.rule == "magic-literal").collect();
        assert_eq!(lit.len(), 1, "{found:?}");
        assert_eq!(lit[0].line, 2);
    }

    #[test]
    fn byte_string_magic_is_tracked() {
        let found = lint_with(&[(
            "crates/cli/src/a.rs",
            "const HDR_MAGIC: &[u8] = b\"LOBS\";\nfn f() -> &'static [u8] { b\"LOBS\" }\n",
        )]);
        assert_eq!(rules_of(&found), vec!["magic-literal"]);
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn missing_docs_on_pub_items_only() {
        let found = lint_lib("pub fn f() {}\n");
        assert_eq!(rules_of(&found), vec!["missing-docs"]);
        assert!(lint_lib("/// Does f things.\npub fn f() {}\n").is_empty());
        assert!(lint_lib("/// Docs.\n#[inline]\npub fn f() {}\n").is_empty());
        assert!(lint_lib("fn f() {}\npub(crate) fn g() {}\n").is_empty());
    }

    // ---- the v1 false-positive class: strings and comments ------------

    #[test]
    fn occurrences_inside_strings_do_not_fire() {
        assert!(lint_lib("fn f() { let s = \".unwrap() and todo!\"; }\n").is_empty());
        assert!(lint_lib("fn f() { let s = r#\"x.unwrap() off as u32\"#; }\n").is_empty());
        assert!(lint_lib("fn f(off: u64) { let s = \"off as u32\"; }\n").is_empty());
    }

    #[test]
    fn occurrences_inside_comments_do_not_fire() {
        assert!(lint_lib("fn f() {} // call .unwrap() and todo! here\n").is_empty());
        assert!(lint_lib("/* x.unwrap() */ fn f() {}\n").is_empty());
        assert!(lint_lib("/*\n x.unwrap()\n todo!()\n*/\nfn f() {}\n").is_empty());
        assert!(lint_lib("/// Never call `.unwrap()` or `todo!` here.\nfn f() {}\n").is_empty());
    }

    // ---- waiver handling ----------------------------------------------

    #[test]
    fn allow_comment_suppresses_on_same_or_previous_line() {
        let same = "fn f(off: u64) -> u32 { off as u32 } // loblint: allow(truncating-cast)\n";
        assert!(lint_lib(same).is_empty());
        let above = "// loblint: allow(truncating-cast)\nfn f(off: u64) -> u32 { off as u32 }\n";
        assert!(lint_lib(above).is_empty());
        // An allow for a different rule does not suppress — and since
        // it suppresses nothing, it is itself flagged as unused.
        let wrong = "fn f(off: u64) -> u32 { off as u32 } // loblint: allow(unwrap)\n";
        assert_eq!(
            rules_of(&lint_lib(wrong)),
            vec!["truncating-cast", "unused-waiver"]
        );
    }

    #[test]
    fn multi_rule_waiver_covers_both_rules() {
        let src = "// loblint: allow(unwrap, truncating-cast)\n\
                   fn f(off: u64) -> u32 { g().unwrap(); off as u32 }\n";
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn waiver_above_code_line_does_not_reach_past_it() {
        // The waiver sits above a *code* line, so it only covers that
        // line — the violation two lines down stays flagged, and the
        // out-of-reach waiver is reported as unused.
        let src = "// loblint: allow(unwrap)\nfn f() {\n    g().unwrap();\n}\n";
        assert_eq!(rules_of(&lint_lib(src)), vec!["unused-waiver", "unwrap"]);
    }

    #[test]
    fn unknown_rule_in_waiver_is_a_clear_error() {
        let src = "fn f() {} // loblint: allow(no-such-rule)\n";
        let found = lint_lib(src);
        assert_eq!(rules_of(&found), vec!["bad-waiver"]);
        assert!(found[0].message.contains("unknown rule `no-such-rule`"));
        assert!(found[0].message.contains("known rules:"), "{found:?}");
    }

    #[test]
    fn mixed_known_and_unknown_waiver_rules() {
        // The known rule still waives; the unknown one is flagged.
        let src = "fn f() { g().unwrap(); } // loblint: allow(unwrap, nonsense)\n";
        let found = lint_lib(src);
        assert_eq!(rules_of(&found), vec!["bad-waiver"]);
    }

    // ---- unused-waiver ------------------------------------------------

    #[test]
    fn seeded_unused_waiver_violation() {
        // The code was fixed but the waiver stayed behind: flagged.
        let src = "fn f(v: &[u8], i: usize) -> Option<u8> { v.get(i).copied() } \
                   // loblint: allow(panic-path)\n";
        let found = lint_lib(src);
        assert_eq!(rules_of(&found), vec!["unused-waiver"]);
        assert!(found[0].message.contains("`panic-path`"), "{found:?}");
    }

    #[test]
    fn mutation_drill_working_waiver_is_not_unused() {
        // Re-introduce the violation the waiver targets: quiet again.
        let src = "fn f(v: &[u8], i: usize) -> u8 { v[i] } // loblint: allow(panic-path)\n";
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn unused_waiver_skips_test_code_and_is_waivable_itself() {
        // Inside #[cfg(test)] the library rules never run, so a waiver
        // there suppresses nothing — and must not be flagged for it.
        let test_side = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    \
                         fn t(v: &[u8]) -> u8 { v[0] } // loblint: allow(panic-path)\n}\n";
        assert!(lint_lib(test_side).is_empty());
        // A waiver for `unused-waiver` itself is exempt rather than an
        // infinite regress.
        let meta = "fn f() {} // loblint: allow(unused-waiver)\n";
        assert!(lint_lib(meta).is_empty());
    }

    // ---- baseline: resolved entries -----------------------------------

    #[test]
    fn resolved_against_reports_what_update_baseline_drops() {
        let old = Baseline::parse(
            "crates/core/src/a.rs\tunwrap\tunwrap in library\n\
             crates/core/src/b.rs\tpanic-path\tindexing\n\
             crates/core/src/b.rs\tpanic-path\tindexing\n",
        )
        .unwrap();
        // Only one of the two b.rs findings still fires.
        let current = vec![Finding {
            file: "crates/core/src/b.rs".into(),
            line: 7,
            rule: "panic-path",
            message: "indexing".into(),
            evidence: Vec::new(),
        }];
        let mut resolved = old.resolved_against(&current);
        resolved.sort();
        assert_eq!(
            resolved,
            vec![
                (
                    "crates/core/src/a.rs".into(),
                    "unwrap".into(),
                    "unwrap in library".into(),
                    1
                ),
                (
                    "crates/core/src/b.rs".into(),
                    "panic-path".into(),
                    "indexing".into(),
                    1
                ),
            ]
        );
        // Nothing resolved when the findings cover the baseline.
        assert!(old
            .resolved_against(&[current[0].clone(), current[0].clone(), {
                let mut f = current[0].clone();
                f.file = "crates/core/src/a.rs".into();
                f.rule = "unwrap";
                f.message = "unwrap in library".into();
                f
            }])
            .is_empty());
    }

    // ---- rule docs (--explain) ----------------------------------------

    #[test]
    fn every_rule_has_exactly_one_doc_entry() {
        for rule in RULES {
            assert_eq!(
                RULE_DOCS.iter().filter(|(n, _, _)| *n == rule).count(),
                1,
                "rule `{rule}` must have exactly one RULE_DOCS entry"
            );
        }
        assert_eq!(RULE_DOCS.len(), RULES.len(), "no orphan doc entries");
        for (_, scope, text) in RULE_DOCS {
            assert!(!scope.is_empty() && !text.is_empty());
        }
    }

    /// The doc text must track the implementation's exemptions — the
    /// seeded-fixture tests below prove the *behavior*, these pins keep
    /// `--explain` from drifting away from it again. Each required
    /// substring names a behavior a fixture in this module exercises.
    #[test]
    fn rule_docs_describe_v4_exemptions() {
        let text_of = |rule: &str| {
            RULE_DOCS
                .iter()
                .find(|(n, _, _)| *n == rule)
                .map(|(_, _, t)| *t)
                .unwrap()
        };
        // panic-path: full_range_slices_and_non_postfix_brackets_are_fine,
        // mut_slice_type_in_signature_is_not_an_index_site,
        // division_by_non_constant_is_flagged.
        for needle in ["[..]", "`mut`", "&mut [u8]", "const"] {
            assert!(
                text_of("panic-path").contains(needle),
                "panic-path --explain must mention the {needle:?} exemption"
            );
        }
        // panic-while-locked shares panic_index_at/panic_div_at.
        assert!(
            text_of("panic-while-locked").contains("exemptions as panic-path"),
            "panic-while-locked --explain must reference the shared exemptions"
        );
        // disk-taint: the sanitizer set in flowrules::sanitized_at.
        for needle in [
            "comparison",
            ".min(",
            ".clamp(",
            "check",
            "valid",
            "verify",
            "bound",
        ] {
            assert!(
                text_of("disk-taint").contains(needle),
                "disk-taint --explain must name the {needle:?} sanitizer"
            );
        }
    }

    // ---- arith-overflow -----------------------------------------------

    #[test]
    fn seeded_arith_overflow_violation_and_waiver() {
        let bad = "fn f(byte_off: u64) -> u64 { byte_off + 1 }\n";
        assert_eq!(rules_of(&lint_lib(bad)), vec!["arith-overflow"]);
        let waived =
            "fn f(byte_off: u64) -> u64 { byte_off + 1 } // loblint: allow(arith-overflow)\n";
        assert!(lint_lib(waived).is_empty());
    }

    #[test]
    fn arith_on_non_quantities_is_fine() {
        assert!(lint_lib("fn f(a: u64, b: u64) -> u64 { a + b }\n").is_empty());
        // Trait bounds are not arithmetic.
        assert!(lint_lib("fn f<T: Clone + Send>(t: T) {}\n").is_empty());
        // checked_*/saturating_* forms carry no bare operator.
        assert!(lint_lib("fn f(off: u64) -> Option<u64> { off.checked_add(1) }\n").is_empty());
    }

    #[test]
    fn compound_assign_and_shift_are_covered() {
        assert_eq!(
            rules_of(&lint_lib("fn f(mut n_pages: u32) { n_pages += 2; }\n")),
            vec!["arith-overflow"]
        );
        assert_eq!(
            rules_of(&lint_lib("fn f(size: u64) -> u64 { size << 1 }\n")),
            vec!["arith-overflow"]
        );
    }

    #[test]
    fn arith_overflow_is_library_only() {
        assert!(lint_with(&[(
            "crates/bench/src/main.rs",
            "fn f(off: u64) -> u64 { off + 1 }\n"
        )])
        .is_empty());
    }

    // ---- panic-path ---------------------------------------------------

    #[test]
    fn seeded_panic_path_violation_and_waiver() {
        let bad = "fn f(v: &[u8], i: usize) -> u8 { v[i] }\n";
        assert_eq!(rules_of(&lint_lib(bad)), vec!["panic-path"]);
        let waived = "fn f(v: &[u8], i: usize) -> u8 { v[i] } // loblint: allow(panic-path)\n";
        assert!(lint_lib(waived).is_empty());
    }

    #[test]
    fn division_by_non_constant_is_flagged() {
        let bad = "fn f(a: u64, b: u64) -> u64 { a / b }\n";
        assert_eq!(rules_of(&lint_lib(bad)), vec!["panic-path"]);
        // Literal and ALL_CAPS-const divisors cannot be a surprise zero.
        assert!(lint_lib("fn f(a: u64) -> u64 { a / 2 }\n").is_empty());
        assert!(lint_lib("fn f(a: u64) -> u64 { a % SOME_CONST }\n").is_empty());
        assert!(lint_lib("fn f(a: u64) -> u64 { a / cast::SOME_CONST }\n").is_empty());
    }

    #[test]
    fn full_range_slices_and_non_postfix_brackets_are_fine() {
        assert!(lint_lib("fn f(v: &[u8]) -> &[u8] { &v[..] }\n").is_empty());
        assert!(lint_lib("fn f(n: usize) -> Vec<u8> { vec![0; n] }\n").is_empty());
        assert!(lint_lib("fn f(buf: [u8; 4]) {}\n").is_empty());
        assert!(lint_lib("#[derive(Clone)]\nstruct S;\n").is_empty());
        // Partial ranges still panic.
        assert_eq!(
            rules_of(&lint_lib("fn f(v: &[u8], n: usize) -> &[u8] { &v[..n] }\n")),
            vec!["panic-path"]
        );
    }

    #[test]
    fn mut_slice_type_in_signature_is_not_an_index_site() {
        // `&mut [u8]` is a type — `mut` cannot name an indexable value.
        assert!(lint_lib("fn f(out: &mut [u8]) {}\n").is_empty());
        assert!(lint_lib("fn f(out: &mut [u8], v: &[u8]) -> &mut [u8] { out }\n").is_empty());
        // Indexing *through* such a parameter still fires.
        assert_eq!(
            rules_of(&lint_lib(
                "fn f(out: &mut [u8], i: usize) { out[i] = 0; }\n"
            )),
            vec!["panic-path"]
        );
    }

    // ---- unit-mixing --------------------------------------------------

    #[test]
    fn seeded_unit_mixing_violation_and_waiver() {
        let bad = "fn f(byte_off: u64, pgno: u64) -> bool { byte_off == pgno }\n";
        let found = lint_lib(bad);
        assert_eq!(rules_of(&found), vec!["unit-mixing"]);
        assert!(found[0].message.contains("byte quantity"));
        let waived =
            "fn f(byte_off: u64, pgno: u64) -> bool { byte_off == pgno } // loblint: allow(unit-mixing)\n";
        assert!(lint_lib(waived).is_empty());
    }

    #[test]
    fn page_id_newtype_annotations_drive_units() {
        let bad = "fn f(p: PageId, size: u64) -> bool { size == p }\n";
        assert_eq!(rules_of(&lint_lib(bad)), vec!["unit-mixing"]);
    }

    #[test]
    fn idiomatic_page_arithmetic_is_not_mixing() {
        // index < count is the canonical bounds check.
        assert!(lint_lib("fn f(pgno: u32, n_pages: u32) -> bool { pgno < n_pages }\n").is_empty());
        // index + count advances an index. (+ on quantities is still an
        // arith-overflow finding, so waive that rule only.)
        let advance = "fn f(pgno: u32, n_pages: u32) -> u32 { pgno + n_pages } // loblint: allow(arith-overflow)\n";
        assert!(lint_lib(advance).is_empty());
        // count = index - index computes a distance.
        let distance = "fn f(a_page: u32, b_page: u32) { let n_pages = b_page - a_page; } // loblint: allow(arith-overflow)\n";
        assert!(lint_lib(distance).is_empty());
        // Same units compare fine.
        assert!(lint_lib("fn f(off: u64, size: u64) -> bool { off < size }\n").is_empty());
    }

    #[test]
    fn adding_two_page_indexes_is_flagged() {
        let bad = "fn f(a_page: u32, b_page: u32) -> u32 { a_page + b_page } // loblint: allow(arith-overflow)\n";
        let found = lint_lib(bad);
        assert_eq!(rules_of(&found), vec!["unit-mixing"]);
        assert!(found[0].message.contains("two page indexes"));
    }

    // ---- forbid-unsafe ------------------------------------------------

    #[test]
    fn seeded_forbid_unsafe_violation_and_waiver() {
        let bad = [("crates/record/src/lib.rs", "//! Records.\nfn f() {}\n")];
        let found = lint_with(&bad);
        assert_eq!(rules_of(&found), vec!["forbid-unsafe"]);
        assert!(found[0].message.contains("forbid(unsafe_code)"));
        let good = [(
            "crates/record/src/lib.rs",
            "//! Records.\n#![forbid(unsafe_code)]\nfn f() {}\n",
        )];
        assert!(lint_with(&good).is_empty());
        let waived = [(
            "crates/record/src/lib.rs",
            "// loblint: allow(forbid-unsafe)\nfn f() {}\n",
        )];
        // The finding anchors at line 1; a line-1 waiver covers it.
        assert!(lint_with(&waived).is_empty());
    }

    #[test]
    fn forbid_unsafe_ignores_non_library_crates_and_non_lib_files() {
        assert!(lint_with(&[("crates/cli/src/lib.rs", "fn f() {}\n")]).is_empty());
        assert!(lint_with(&[("crates/record/src/other.rs", "fn f() {}\n")]).is_empty());
    }

    // ---- io-accounting ------------------------------------------------

    /// A minimal, accounting-correct model of bufpool + core: every
    /// wrapper exists and does raw I/O (or delegates to one that does),
    /// every entry point reaches a wrapper and bumps its counter.
    fn io_fixture() -> Vec<(&'static str, &'static str)> {
        vec![
            (
                "crates/bufpool/src/pool.rs",
                "impl BufferPool {\n\
                 fn evict(&mut self) { self.disk.write(a, p, d); }\n\
                 fn fix(&mut self) { self.disk.read(a, p, d); }\n\
                 fn flush_page(&mut self) { self.disk.write(a, p, d); }\n\
                 fn flush_all(&mut self) { self.flush_page(); }\n\
                 }\n",
            ),
            (
                "crates/bufpool/src/segio.rs",
                "impl BufferPool {\n\
                 fn read_buffered(&mut self) { self.disk.read(a, p, d); }\n\
                 fn read_direct(&mut self) { self.disk.read(a, p, d); }\n\
                 fn read_pages(&mut self) { self.disk.read(a, p, d); }\n\
                 fn read_scatter(&mut self) { self.disk.read(a, p, d); }\n\
                 fn write_direct(&mut self) { self.disk.write(a, p, d); }\n\
                 fn flush_range(&mut self) { self.disk.write_gather(a, p, d); }\n\
                 fn read_segment(&mut self) { self.read_buffered(); self.read_direct(); }\n\
                 }\n",
            ),
            (
                "crates/core/src/segdata.rs",
                "fn read_seg_bytes(db: &mut Db) { counter_add(\"core.seg.reads\", 1); db.pool.read_pages(); }\n\
                 fn write_new_seg(db: &mut Db) { counter_add(\"core.seg.writes\", 1); db.pool.write_direct(); }\n\
                 fn append_in_place(db: &mut Db) { counter_add(\"core.seg.writes\", 1); db.pool.write_direct(); }\n\
                 fn patch_in_place(db: &mut Db) { counter_add(\"core.seg.writes\", 1); db.pool.write_direct(); }\n",
            ),
        ]
    }

    fn io_findings(files: &[(&str, &str)]) -> Vec<Finding> {
        lint_with(files)
            .into_iter()
            .filter(|f| f.rule == "io-accounting")
            .collect()
    }

    #[test]
    fn accounting_correct_fixture_is_clean() {
        assert_eq!(io_findings(&io_fixture()), Vec::<Finding>::new());
    }

    #[test]
    fn seeded_raw_io_outside_wrappers_and_waiver() {
        let mut files = io_fixture();
        files.push((
            "crates/core/src/rogue.rs",
            "fn sneaky(d: &mut SimDisk) { d.disk.write(a, p, buf); }\n",
        ));
        let found = io_findings(&files);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("raw disk write"));
        assert!(found[0].message.contains("sneaky"));

        files.pop();
        files.push((
            "crates/core/src/rogue.rs",
            "// loblint: allow(io-accounting)\nfn sneaky(d: &mut SimDisk) { d.disk.write(a, p, buf); }\n",
        ));
        // Waiver above covers the fn's only line... the site is on line 2.
        let found = io_findings(&files);
        assert_eq!(found, Vec::<Finding>::new());
    }

    #[test]
    fn disk_mut_accessor_style_raw_io_is_caught() {
        let mut files = io_fixture();
        files.push((
            "crates/core/src/rogue.rs",
            "fn sneaky(p: &mut BufferPool) { p.disk_mut().write(a, p, buf); }\n",
        ));
        let found = io_findings(&files);
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn gather_write_raw_io_is_caught() {
        let mut files = io_fixture();
        files.push((
            "crates/core/src/rogue.rs",
            "fn sneaky(d: &mut SimDisk) { d.disk.write_gather(a, p, runs); }\n",
        ));
        let found = io_findings(&files);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("raw disk write_gather"));
    }

    /// The io fixture plus a peek-only model of the health inspectors.
    fn inspector_fixture() -> Vec<(&'static str, &'static str)> {
        let mut files = io_fixture();
        files.push((
            "crates/core/src/health.rs",
            "pub fn object_health(db: &Db) -> ObjectHealth { db.peek_segments() }\n\
             pub fn publish_area(st: &FragStats) { gauge_set(\"health.leaf.x\", st.ratio()); }\n\
             pub fn publish_object_health(objs: &[ObjectHealth]) { publish_area(&recount(objs)); }\n",
        ));
        files
    }

    #[test]
    fn peek_only_inspectors_are_clean() {
        assert_eq!(io_findings(&inspector_fixture()), Vec::<Finding>::new());
    }

    #[test]
    fn inspector_calling_a_costed_wrapper_is_flagged() {
        let mut files = inspector_fixture();
        files[3] = (
            "crates/core/src/health.rs",
            "pub fn object_health(db: &mut Db) -> ObjectHealth { db.pool.read_pages() }\n\
             pub fn publish_area(st: &FragStats) { gauge_set(\"health.leaf.x\", st.ratio()); }\n\
             pub fn publish_object_health(objs: &[ObjectHealth]) { publish_area(&recount(objs)); }\n",
        );
        let found = io_findings(&files);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("object_health"), "{found:?}");
        assert!(found[0].message.contains("read_pages"), "{found:?}");
    }

    #[test]
    fn inspector_doing_raw_io_or_missing_is_flagged() {
        let mut files = inspector_fixture();
        files[3] = (
            "crates/core/src/health.rs",
            "pub fn object_health(db: &mut Db) -> ObjectHealth { db.pool.disk.read(a, p, d) }\n\
             pub fn publish_area(st: &FragStats) { gauge_set(\"health.leaf.x\", st.ratio()); }\n\
             pub fn publish_object_health(objs: &[ObjectHealth]) { publish_area(&recount(objs)); }\n",
        );
        let found = io_findings(&files);
        // The raw site is flagged twice: once as raw-I/O-outside-wrappers
        // (check a), once as a non-peek inspector (check d).
        assert!(
            found.iter().any(|f| f.message.contains("peek-only")),
            "{found:?}"
        );

        files[3] = (
            "crates/core/src/health.rs",
            "pub fn publish_area(st: &FragStats) { gauge_set(\"health.leaf.x\", st.ratio()); }\n\
             pub fn publish_object_health(objs: &[ObjectHealth]) { publish_area(&recount(objs)); }\n",
        );
        let found = io_findings(&files);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(
            found[0].message.contains("`object_health` is missing"),
            "{found:?}"
        );
    }

    #[test]
    fn deleting_a_wrapper_call_uncovers_the_entry_path() {
        // read_seg_bytes no longer calls any wrapper: flagged.
        let mut files = io_fixture();
        files[2] = (
            "crates/core/src/segdata.rs",
            "fn read_seg_bytes(db: &mut Db) { counter_add(\"core.seg.reads\", 1); }\n\
             fn write_new_seg(db: &mut Db) { counter_add(\"core.seg.writes\", 1); db.pool.write_direct(); }\n\
             fn append_in_place(db: &mut Db) { counter_add(\"core.seg.writes\", 1); db.pool.write_direct(); }\n\
             fn patch_in_place(db: &mut Db) { counter_add(\"core.seg.writes\", 1); db.pool.write_direct(); }\n",
        );
        let found = io_findings(&files);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("read_seg_bytes"));
        assert!(found[0].message.contains("never reaches"));
    }

    #[test]
    fn deleting_raw_io_from_a_wrapper_is_reported() {
        // read_buffered loses its disk.read and calls nothing raw.
        let mut files = io_fixture();
        files[1] = (
            "crates/bufpool/src/segio.rs",
            "impl BufferPool {\n\
             fn read_buffered(&mut self) { self.noop(); }\n\
             fn read_direct(&mut self) { self.disk.read(a, p, d); }\n\
             fn read_pages(&mut self) { self.disk.read(a, p, d); }\n\
             fn read_scatter(&mut self) { self.disk.read(a, p, d); }\n\
             fn write_direct(&mut self) { self.disk.write(a, p, d); }\n\
             fn flush_range(&mut self) { self.disk.write_gather(a, p, d); }\n\
             fn read_segment(&mut self) { self.read_buffered(); self.read_direct(); }\n\
             }\n",
        );
        let found = io_findings(&files);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("read_buffered"));
        assert!(found[0].message.contains("performs no disk I/O"));
    }

    #[test]
    fn missing_wrapper_and_missing_counter_are_reported() {
        // flush_range deleted entirely.
        let mut files = io_fixture();
        files[1] = (
            "crates/bufpool/src/segio.rs",
            "impl BufferPool {\n\
             fn read_buffered(&mut self) { self.disk.read(a, p, d); }\n\
             fn read_direct(&mut self) { self.disk.read(a, p, d); }\n\
             fn read_pages(&mut self) { self.disk.read(a, p, d); }\n\
             fn read_scatter(&mut self) { self.disk.read(a, p, d); }\n\
             fn write_direct(&mut self) { self.disk.write(a, p, d); }\n\
             fn read_segment(&mut self) { self.read_buffered(); self.read_direct(); }\n\
             }\n",
        );
        let found = io_findings(&files);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("flush_range"));
        assert!(found[0].message.contains("missing"));

        // Counter bump deleted from an entry point.
        let mut files = io_fixture();
        files[2] = (
            "crates/core/src/segdata.rs",
            "fn read_seg_bytes(db: &mut Db) { db.pool.read_pages(); }\n\
             fn write_new_seg(db: &mut Db) { counter_add(\"core.seg.writes\", 1); db.pool.write_direct(); }\n\
             fn append_in_place(db: &mut Db) { counter_add(\"core.seg.writes\", 1); db.pool.write_direct(); }\n\
             fn patch_in_place(db: &mut Db) { counter_add(\"core.seg.writes\", 1); db.pool.write_direct(); }\n",
        );
        let found = io_findings(&files);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("core.seg.reads"));
    }

    #[test]
    fn io_accounting_skips_fixtureless_sets() {
        // No bufpool sources scanned: the pass stays quiet rather than
        // reporting the whole model as missing.
        assert!(io_findings(&[("crates/core/src/x.rs", "fn f() {}\n")]).is_empty());
    }

    // ---- baseline ratchet ---------------------------------------------

    fn two_findings() -> Vec<Finding> {
        lint_lib("fn f() { g().unwrap(); }\nfn h() { k().unwrap(); }\n")
    }

    #[test]
    fn baseline_round_trip_freezes_findings() {
        let findings = two_findings();
        assert_eq!(findings.len(), 2);
        let text = Baseline::render(&findings);
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.apply(&findings), vec![true, true]);
    }

    #[test]
    fn baseline_is_a_multiset_over_identical_messages() {
        let findings = two_findings();
        // Freeze only ONE of the two identical (file, rule, message)
        // findings: exactly one stays baselined, the other is new.
        let one = Baseline::render(&findings[..1]);
        let parsed = Baseline::parse(&one).unwrap();
        assert_eq!(parsed.apply(&findings), vec![true, false]);
    }

    #[test]
    fn baseline_render_is_sorted_and_deterministic() {
        let mut findings = two_findings();
        let a = Baseline::render(&findings);
        findings.reverse();
        let b = Baseline::render(&findings);
        assert_eq!(a, b);
        let body: Vec<&str> = a.lines().filter(|l| !l.starts_with('#')).collect();
        let mut sorted = body.clone();
        sorted.sort_unstable();
        assert_eq!(body, sorted);
    }

    #[test]
    fn baseline_survives_line_number_drift() {
        let before = two_findings();
        let text = Baseline::render(&before);
        // The same violations, pushed down by an unrelated edit above.
        let after = lint_lib("fn a() {}\n\nfn f() { g().unwrap(); }\nfn h() { k().unwrap(); }\n");
        assert_ne!(before[0].line, after[0].line);
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.apply(&after), vec![true, true]);
    }

    #[test]
    fn malformed_baseline_is_rejected() {
        assert!(Baseline::parse("only-one-field\n").is_err());
        assert!(Baseline::parse("# comment\n\n")
            .unwrap()
            .apply(&[])
            .is_empty());
    }

    // ---- output and the real workspace --------------------------------

    #[test]
    fn json_document_shape() {
        let findings = two_findings();
        let doc = lobstore_obs::json::parse(&to_json(&findings, &[true, false])).unwrap();
        use lobstore_obs::json::Value;
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some(FINDINGS_SCHEMA)
        );
        assert_eq!(doc.get("total").and_then(Value::as_u64), Some(2));
        assert_eq!(doc.get("baselined").and_then(Value::as_u64), Some(1));
        assert_eq!(doc.get("new").and_then(Value::as_u64), Some(1));
        let rules = doc.get("rules").and_then(Value::as_arr).unwrap();
        assert_eq!(rules.len(), RULES.len());
        let arr = doc.get("findings").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("rule").and_then(Value::as_str), Some("unwrap"));
    }

    /// End-to-end: a synthetic workspace on disk, scanned via
    /// `lint_workspace`.
    #[test]
    fn workspace_walk_finds_violations_on_disk() {
        let dir = std::env::temp_dir().join(format!("loblint-selftest-{}", std::process::id()));
        let lib = dir.join("crates/core/src");
        std::fs::create_dir_all(&lib).unwrap();
        std::fs::write(
            lib.join("bad.rs"),
            "pub fn f(off: u64) -> u32 { g().unwrap(); off as u32 }\n",
        )
        .unwrap();
        let findings = lint_workspace(&dir).unwrap();
        let rules = rules_of(&findings);
        assert!(rules.contains(&"unwrap"), "{findings:?}");
        assert!(rules.contains(&"truncating-cast"), "{findings:?}");
        assert!(rules.contains(&"missing-docs"), "{findings:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The ratchet itself: the real workspace must carry no findings
    /// beyond the committed `loblint.baseline`.
    #[test]
    fn real_workspace_is_clean_against_committed_baseline() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = lint_workspace(&root).expect("workspace must be scannable");
        let text = std::fs::read_to_string(root.join("loblint.baseline"))
            .expect("loblint.baseline must be committed");
        let baseline = Baseline::parse(&text).expect("baseline must parse");
        let marks = baseline.apply(&findings);
        let new: Vec<&Finding> = findings
            .iter()
            .zip(&marks)
            .filter(|(_, m)| !**m)
            .map(|(f, _)| f)
            .collect();
        assert!(
            new.is_empty(),
            "new lint findings (fix them or run `cargo run -q -p xtask -- loblint --update-baseline`): {new:#?}"
        );
    }
}
