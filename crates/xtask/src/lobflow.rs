//! `lobflow` — intra-procedural control flow and dataflow over
//! [`crate::lobsyn`] token streams (std-only).
//!
//! This is the analysis layer under the loblint v3 concurrency rules.
//! The v2 rules see tokens and a call graph; what they cannot see is
//! *order*: whether a check happens before a use, whether a guard is
//! still live at a call site, which assignments can reach a merge
//! point. `lobflow` recovers exactly that much structure:
//!
//! * **CFG construction** — per-function basic blocks over
//!   `if`/`else if`/`else`, `match`, `loop`/`while`/`for`, `return`,
//!   `?`, `break` and `continue`. Blocks hold statements as token
//!   ranges; edges model fallthrough, branching, loop back edges and
//!   early exits.
//! * **Forward dataflow** — a worklist fixpoint over any join
//!   semilattice (`None` = unreachable bottom), with per-statement
//!   state replay for rules that need the state *at* a program point.
//! * **Regions** — the token extent over which a value of interest
//!   (a lock guard, a page pin) is live. Rust drops guards at the end
//!   of their lexical scope (or at an explicit `drop(g)`), so regions
//!   are computed lexically and shared by all guard-discipline rules.
//!
//! Like `lobsyn`, the builder is deliberately forgiving: expression-
//! position conditionals (`let x = if c { a } else { b };`) are
//! swallowed into their statement, closure bodies stay inside their
//! call's parentheses, and anything unparseable degrades to a plain
//! statement rather than derailing the pass. Rules only need
//! conservative joins, not a perfect parse.

use crate::lobsyn::{Tok, TokKind};

/// What role a statement plays in the CFG. Conditions sit in the block
/// that branches on them, so branch-local refinements (a bounds check
/// in an `if` head) flow into *both* successors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmtKind {
    /// Ordinary statement (including swallowed expression conditionals).
    Plain,
    /// The condition/scrutinee head of `if`/`match`/`while`/`for`.
    Cond,
}

/// One statement: a token range `[lo, hi)` into the lexed file.
#[derive(Debug, Clone, Copy)]
pub struct Stmt {
    pub kind: StmtKind,
    pub lo: usize,
    pub hi: usize,
}

/// One basic block: statements executed in order, then a jump to every
/// successor.
#[derive(Debug, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
    pub succs: Vec<usize>,
}

/// A per-function control-flow graph. `entry` is block 0; `exit`
/// collects every `return`/`?`-error edge and the fall-off-the-end
/// path. Unreachable continuation blocks (after `return`, `break`,
/// `continue`) simply have no incoming edges and stay at bottom during
/// dataflow.
#[derive(Debug)]
pub struct Cfg {
    pub blocks: Vec<Block>,
    pub entry: usize,
    /// Read by analyses that care about the function's final state
    /// (and by the engine tests); some clients only replay statements.
    #[allow(dead_code)]
    pub exit: usize,
}

/// Keywords that open a control-flow construct at statement level.
const FLOW_KEYWORDS: [&str; 5] = ["if", "match", "loop", "while", "for"];

struct Builder<'t> {
    toks: &'t [Tok],
    blocks: Vec<Block>,
    cur: usize,
    exit: usize,
    /// (continue target, break target) per enclosing loop.
    loops: Vec<(usize, usize)>,
}

impl<'t> Builder<'t> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    fn push_stmt(&mut self, kind: StmtKind, lo: usize, hi: usize) {
        if lo < hi {
            self.blocks[self.cur].stmts.push(Stmt { kind, lo, hi });
        }
    }

    /// Index of the token after the bracket group opening at `i`
    /// (which must be `(`, `[` or `{`). Counts all three bracket kinds.
    fn skip_group(&self, mut i: usize) -> usize {
        let mut depth = 0i64;
        while i < self.toks.len() {
            match self.toks[i].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.toks.len()
    }

    /// Find the `{` opening the block of a construct whose header
    /// starts at `i` (after the keyword), at header bracket depth 0.
    fn find_block_open(&self, mut i: usize, hi: usize) -> Option<usize> {
        let mut depth = 0i64;
        while i < hi {
            match self.toks[i].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => return Some(i),
                ";" if depth == 0 => return None, // `loop` label weirdness etc.
                _ => {}
            }
            i += 1;
        }
        None
    }

    /// Index just past an entire `if ... {} else if ... {} else {}`
    /// chain (or `match`/loop body) whose keyword sits at `i`.
    fn construct_end(&self, i: usize, hi: usize) -> usize {
        let kw = self.toks[i].text.as_str();
        let Some(open) = self.find_block_open(i + 1, hi) else {
            return (i + 1).min(hi);
        };
        let mut end = self.skip_group(open);
        if kw == "if" {
            while end < hi && self.toks[end].is_ident("else") {
                if end + 1 < hi && self.toks[end + 1].is_ident("if") {
                    let Some(open) = self.find_block_open(end + 2, hi) else {
                        return end + 2;
                    };
                    end = self.skip_group(open);
                } else {
                    let Some(open) = self.find_block_open(end + 1, hi) else {
                        return end + 1;
                    };
                    end = self.skip_group(open);
                    break;
                }
            }
        }
        end
    }

    /// Lower an `if`/`else if`/`else` chain starting at the `if` token
    /// `i`; returns the index just past the chain.
    fn lower_if(&mut self, i: usize, hi: usize) -> usize {
        let join = self.new_block();
        let mut at = i;
        loop {
            // `at` sits on an `if` keyword.
            let Some(open) = self.find_block_open(at + 1, hi) else {
                self.edge(self.cur, join);
                self.cur = join;
                return (at + 1).min(hi);
            };
            self.push_stmt(StmtKind::Cond, at + 1, open);
            let close = self.skip_group(open);
            let branch_from = self.cur;
            let then_entry = self.new_block();
            self.edge(branch_from, then_entry);
            self.cur = then_entry;
            self.lower_range(open + 1, close.saturating_sub(1));
            self.edge(self.cur, join);

            let false_block = self.new_block();
            self.edge(branch_from, false_block);
            self.cur = false_block;

            if close < hi && self.toks[close].is_ident("else") {
                if close + 1 < hi && self.toks[close + 1].is_ident("if") {
                    at = close + 1;
                    continue;
                }
                let Some(eopen) = self.find_block_open(close + 1, hi) else {
                    self.edge(self.cur, join);
                    self.cur = join;
                    return close + 1;
                };
                let eclose = self.skip_group(eopen);
                self.lower_range(eopen + 1, eclose.saturating_sub(1));
                self.edge(self.cur, join);
                // The false path of the last condition goes into the
                // else block, which `cur` already lowered; no extra edge.
                self.cur = join;
                return eclose;
            }
            // No else: the false path falls through to the join.
            self.edge(self.cur, join);
            self.cur = join;
            return close;
        }
    }

    /// Lower a `match` whose keyword sits at `i`; returns the index
    /// just past the closing brace.
    fn lower_match(&mut self, i: usize, hi: usize) -> usize {
        let Some(open) = self.find_block_open(i + 1, hi) else {
            return (i + 1).min(hi);
        };
        self.push_stmt(StmtKind::Cond, i + 1, open);
        let close_plus = self.skip_group(open);
        let close = close_plus.saturating_sub(1);
        let branch_from = self.cur;
        let join = self.new_block();

        // Split arms: `pat => body` separated by `,` (or adjacency
        // after a `{}` body) at depth 0 inside the match braces.
        let mut k = open + 1;
        while k < close {
            // Pattern tokens up to `=>` at depth 0.
            let pat_lo = k;
            let mut depth = 0i64;
            while k < close {
                match self.toks[k].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=>" if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            if k >= close {
                break;
            }
            let arrow = k;
            k += 1; // past `=>`
            let (body_lo, body_hi, next);
            if k < close && self.toks[k].is_punct("{") {
                let past = self.skip_group(k);
                body_lo = k + 1;
                body_hi = past.saturating_sub(1).min(close);
                next = if past < close && self.toks[past].is_punct(",") {
                    past + 1
                } else {
                    past
                };
            } else {
                // Expression arm: up to `,` at depth 0 or the close.
                let mut depth = 0i64;
                let lo = k;
                while k < close {
                    match self.toks[k].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                body_lo = lo;
                body_hi = k;
                next = (k + 1).min(close);
            }
            let arm_entry = self.new_block();
            self.edge(branch_from, arm_entry);
            self.cur = arm_entry;
            // The pattern can bind and compare; keep it visible.
            self.push_stmt(StmtKind::Cond, pat_lo, arrow);
            self.lower_range(body_lo, body_hi);
            self.edge(self.cur, join);
            k = next;
        }
        // A match with no lowered arms still flows onward.
        if self.blocks[branch_from].succs.iter().all(|&s| s == join) {
            self.edge(branch_from, join);
        }
        self.cur = join;
        close_plus
    }

    /// Lower `loop`/`while`/`for`; returns the index past the body.
    fn lower_loop(&mut self, i: usize, hi: usize) -> usize {
        let Some(open) = self.find_block_open(i + 1, hi) else {
            return (i + 1).min(hi);
        };
        let close = self.skip_group(open);
        let head = self.new_block();
        self.edge(self.cur, head);
        self.cur = head;
        // `while cond` / `for pat in iter`: the header is a condition
        // statement in the head block; `loop` has none.
        self.push_stmt(StmtKind::Cond, i + 1, open);
        let exit = self.new_block();
        if !self.toks[i].is_ident("loop") {
            self.edge(head, exit);
        }
        let body_entry = self.new_block();
        self.edge(head, body_entry);
        self.cur = body_entry;
        self.loops.push((head, exit));
        self.lower_range(open + 1, close.saturating_sub(1));
        self.loops.pop();
        let back_from = self.cur;
        self.edge(back_from, head);
        self.cur = exit;
        close
    }

    /// Lower the token range `[lo, hi)` into the current block chain.
    fn lower_range(&mut self, lo: usize, hi: usize) {
        let mut i = lo;
        let mut stmt_lo = lo;
        let flush = |b: &mut Self, stmt_lo: &mut usize, upto: usize, kind: StmtKind| {
            b.push_stmt(kind, *stmt_lo, upto);
            *stmt_lo = upto;
        };
        while i < hi {
            let t = &self.toks[i];
            let at_stmt_start = stmt_lo == i;
            match t.text.as_str() {
                "(" | "[" => {
                    i = self.skip_group(i);
                }
                "{" => {
                    if at_stmt_start {
                        // Bare scope block: lower inline.
                        let close = self.skip_group(i);
                        self.lower_range(i + 1, close.saturating_sub(1));
                        i = close;
                        stmt_lo = i;
                    } else {
                        // A trailing struct literal / swallowed body.
                        i = self.skip_group(i);
                    }
                }
                ";" => {
                    flush(self, &mut stmt_lo, i + 1, StmtKind::Plain);
                    i += 1;
                }
                "if" | "match" | "loop" | "while" | "for"
                    if t.kind == TokKind::Ident && FLOW_KEYWORDS.contains(&t.text.as_str()) =>
                {
                    if at_stmt_start {
                        i = match t.text.as_str() {
                            "if" => self.lower_if(i, hi),
                            "match" => self.lower_match(i, hi),
                            _ => self.lower_loop(i, hi),
                        };
                        stmt_lo = i;
                    } else {
                        // Expression position (`let x = if ... {}`):
                        // swallow the construct into this statement.
                        i = self.construct_end(i, hi);
                    }
                }
                "return" if t.kind == TokKind::Ident => {
                    // Take the rest of the statement with it.
                    let mut j = i + 1;
                    let mut depth = 0i64;
                    while j < hi {
                        match self.toks[j].text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            ";" if depth == 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    flush(self, &mut stmt_lo, (j + 1).min(hi), StmtKind::Plain);
                    let exit = self.exit;
                    self.edge(self.cur, exit);
                    let dead = self.new_block();
                    self.cur = dead;
                    i = (j + 1).min(hi);
                    stmt_lo = i;
                }
                "break" | "continue" if t.kind == TokKind::Ident => {
                    flush(self, &mut stmt_lo, i + 1, StmtKind::Plain);
                    if let Some(&(head, exit)) = self.loops.last() {
                        let target = if t.text == "break" { exit } else { head };
                        self.edge(self.cur, target);
                    }
                    // Skip the rest of the statement (`break 'label v;`).
                    let mut j = i + 1;
                    while j < hi && !self.toks[j].is_punct(";") {
                        j += 1;
                    }
                    let dead = self.new_block();
                    self.cur = dead;
                    i = (j + 1).min(hi);
                    stmt_lo = i;
                }
                "?" => {
                    // The error path leaves the function; the ok path
                    // continues in this statement.
                    let exit = self.exit;
                    self.edge(self.cur, exit);
                    i += 1;
                }
                _ => i += 1,
            }
        }
        flush(self, &mut stmt_lo, hi, StmtKind::Plain);
    }
}

/// Build the CFG of one function body, the token range `[b0, b1)`
/// (exclusive of the body braces, as produced by `lobsyn::fn_defs`).
pub fn build_cfg(toks: &[Tok], b0: usize, b1: usize) -> Cfg {
    let mut b = Builder {
        toks,
        blocks: vec![Block::default(), Block::default()],
        cur: 0,
        exit: 1,
        loops: Vec::new(),
    };
    b.lower_range(b0, b1.min(toks.len()));
    let last = b.cur;
    b.edge(last, 1);
    Cfg {
        blocks: b.blocks,
        entry: 0,
        exit: 1,
    }
}

// ---- forward dataflow -----------------------------------------------------

/// Run a forward worklist analysis to fixpoint. `None` is bottom
/// (unreachable); `join` merges two reachable states; `transfer`
/// updates a state in place across one statement. Returns the entry
/// state of every block.
pub fn forward<S: Clone + PartialEq>(
    cfg: &Cfg,
    entry_state: S,
    join: impl Fn(&S, &S) -> S,
    transfer: impl Fn(&mut S, &Stmt),
) -> Vec<Option<S>> {
    let mut entry: Vec<Option<S>> = vec![None; cfg.blocks.len()];
    entry[cfg.entry] = Some(entry_state);
    let mut work = vec![cfg.entry];
    // Bounded to keep pathological token streams from spinning: each
    // block re-queues only when its entry state actually changes, and
    // the state space rules use is finite, so this terminates; the cap
    // is a backstop.
    let mut budget = 64 * cfg.blocks.len().max(1) * cfg.blocks.len().max(1);
    while let Some(b) = work.pop() {
        if budget == 0 {
            break;
        }
        budget -= 1;
        let Some(mut state) = entry[b].clone() else {
            continue;
        };
        for s in &cfg.blocks[b].stmts {
            transfer(&mut state, s);
        }
        for &succ in &cfg.blocks[b].succs {
            let merged = match &entry[succ] {
                None => state.clone(),
                Some(old) => join(old, &state),
            };
            if entry[succ].as_ref() != Some(&merged) {
                entry[succ] = Some(merged);
                work.push(succ);
            }
        }
    }
    entry
}

/// Replay a block's statements from its fixpoint entry state, handing
/// `visit` the state *before* each statement. Used by rules that check
/// program points rather than block summaries.
pub fn replay<S: Clone>(
    cfg: &Cfg,
    entries: &[Option<S>],
    transfer: impl Fn(&mut S, &Stmt),
    mut visit: impl FnMut(&S, &Stmt),
) {
    for (b, blk) in cfg.blocks.iter().enumerate() {
        let Some(mut state) = entries[b].clone() else {
            continue;
        };
        for s in &blk.stmts {
            visit(&state, s);
            transfer(&mut state, s);
        }
    }
}

// ---- regions --------------------------------------------------------------

/// The token extent over which a value of interest is live: from its
/// production site to the end of its lexical scope, an explicit
/// `drop(var)`, or (for unbound temporaries) the end of its statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Binding name, when the value was `let`-bound.
    pub var: Option<String>,
    /// Token range `[lo, hi)` of the live extent.
    pub lo: usize,
    pub hi: usize,
}

impl Region {
    pub fn contains(&self, i: usize) -> bool {
        self.lo <= i && i < self.hi
    }
}

/// Index just past the end of the statement containing `i`: the `;` at
/// the brace depth of `i`, or the end of the enclosing brace scope.
fn stmt_extent(toks: &[Tok], b1: usize, i: usize) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while j < b1.min(toks.len()) {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            ";" if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    b1.min(toks.len())
}

/// Index of the `}` closing the innermost brace scope containing `i`,
/// bounded by the body range `[.., b1)`.
fn scope_extent(toks: &[Tok], b1: usize, i: usize) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while j < b1.min(toks.len()) {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            _ => {}
        }
        j += 1;
    }
    b1.min(toks.len())
}

/// The live region of a value produced at token `prod` inside a
/// function body `[b0, b1)`. Walks back from `prod` for a `let
/// [mut] name =` binding head; when bound, the region runs to the end
/// of the enclosing brace scope or an explicit `drop(name)`, whichever
/// comes first. Unbound values live to the end of their statement.
pub fn live_region(toks: &[Tok], b0: usize, b1: usize, prod: usize) -> Region {
    // Find the binding: scan back past the receiver chain to `let`.
    let mut j = prod;
    while j > b0 {
        let t = &toks[j - 1];
        if t.kind == TokKind::Ident || t.is_punct(".") || t.is_punct("::") || t.is_punct("&") {
            j -= 1;
        } else {
            break;
        }
    }
    let var = if j >= b0 + 2 && toks[j - 1].is_punct("=") {
        let mut k = j - 1;
        // `= ` preceded by `name` (+ optional `mut`) + `let`.
        if k >= 1 && toks[k - 1].kind == TokKind::Ident && !toks[k - 1].is_ident("mut") {
            let name = toks[k - 1].text.clone();
            k -= 1;
            if k >= 1 && toks[k - 1].is_ident("mut") {
                k -= 1;
            }
            if k >= 1 && toks[k - 1].is_ident("let") {
                Some(name)
            } else {
                None
            }
        } else {
            None
        }
    } else {
        None
    };

    match var {
        None => Region {
            var: None,
            lo: prod,
            hi: stmt_extent(toks, b1, prod),
        },
        Some(name) => {
            let scope_end = scope_extent(toks, b1, prod);
            // An explicit `drop(name)` inside the scope ends the region.
            let mut hi = scope_end;
            let mut k = stmt_extent(toks, b1, prod);
            while k + 2 < scope_end {
                if toks[k].is_ident("drop")
                    && toks[k + 1].is_punct("(")
                    && toks[k + 2].is_ident(&name)
                    && toks.get(k + 3).is_some_and(|t| t.is_punct(")"))
                {
                    hi = k;
                    break;
                }
                k += 1;
            }
            Region {
                var: Some(name),
                lo: prod,
                hi,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lobsyn;

    fn cfg_of(src: &str) -> (Vec<Tok>, Cfg) {
        let toks = lobsyn::lex(src).toks;
        let fns = lobsyn::fn_defs(&toks);
        let (b0, b1) = fns[0].body.expect("fixture fn needs a body");
        let cfg = build_cfg(&toks, b0, b1);
        (toks, cfg)
    }

    /// Reachability lattice: () reachable, joined trivially.
    fn reachable_blocks(cfg: &Cfg) -> Vec<bool> {
        forward(cfg, (), |_, _| (), |_, _| ())
            .into_iter()
            .map(|s| s.is_some())
            .collect()
    }

    #[test]
    fn straight_line_is_one_block_plus_exit() {
        let (_, cfg) = cfg_of("fn f() { let a = 1; let b = a; }");
        assert_eq!(cfg.blocks[cfg.entry].stmts.len(), 2);
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![cfg.exit]);
    }

    #[test]
    fn if_else_branches_and_joins() {
        let (_, cfg) = cfg_of("fn f(c: bool) { if c { a(); } else { b(); } d(); }");
        // entry branches to then and else; both reach a join that holds d().
        let entry = &cfg.blocks[cfg.entry];
        assert_eq!(entry.succs.len(), 2);
        let reach = reachable_blocks(&cfg);
        assert!(reach[cfg.exit]);
        // Exactly one block contains the `d` statement and both branch
        // blocks lead (transitively) to it.
        let d_block = cfg
            .blocks
            .iter()
            .position(|b| {
                b.stmts.iter().any(|s| {
                    s.lo != s.hi && s.kind == StmtKind::Plain && b.succs.contains(&cfg.exit)
                })
            })
            .unwrap();
        assert!(reach[d_block]);
    }

    #[test]
    fn else_if_chain_keeps_all_paths() {
        let (_, cfg) =
            cfg_of("fn f(x: u32) { if x == 1 { a(); } else if x == 2 { b(); } else { c(); } }");
        let reach = reachable_blocks(&cfg);
        assert!(reach[cfg.exit]);
        // All three arm bodies exist as reachable blocks.
        let arm_blocks = cfg
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| {
                reach[*i]
                    && b.stmts
                        .iter()
                        .any(|s| s.kind == StmtKind::Plain && s.hi > s.lo)
            })
            .count();
        assert!(arm_blocks >= 3, "{cfg:?}");
    }

    #[test]
    fn return_leaves_no_fallthrough() {
        let (toks, cfg) = cfg_of("fn f(c: bool) { if c { return; } g(); }");
        // The then-branch edge goes to exit, not to the join with g().
        let then_block = cfg.blocks[cfg.entry].succs[0];
        assert!(cfg.blocks[then_block].succs.contains(&cfg.exit));
        // g() is still reachable via the false path.
        let reach = reachable_blocks(&cfg);
        let g_block = cfg
            .blocks
            .iter()
            .position(|b| {
                b.stmts
                    .iter()
                    .any(|s| toks[s.lo..s.hi].iter().any(|t| t.is_ident("g")))
            })
            .unwrap();
        assert!(reach[g_block]);
    }

    #[test]
    fn loop_has_back_edge_and_break_exits() {
        let (toks, cfg) = cfg_of("fn f() { loop { if done() { break; } step(); } after(); }");
        let reach = reachable_blocks(&cfg);
        let after_block = cfg
            .blocks
            .iter()
            .position(|b| {
                b.stmts
                    .iter()
                    .any(|s| toks[s.lo..s.hi].iter().any(|t| t.is_ident("after")))
            })
            .unwrap();
        assert!(reach[after_block], "break must reach the loop exit");
        // The step() block is part of a cycle: it reaches itself again.
        let step_block = cfg
            .blocks
            .iter()
            .position(|b| {
                b.stmts
                    .iter()
                    .any(|s| toks[s.lo..s.hi].iter().any(|t| t.is_ident("step")))
            })
            .unwrap();
        let mut seen = vec![false; cfg.blocks.len()];
        let mut work = cfg.blocks[step_block].succs.clone();
        let mut cyclic = false;
        while let Some(b) = work.pop() {
            if b == step_block {
                cyclic = true;
                break;
            }
            if !std::mem::replace(&mut seen[b], true) {
                work.extend(cfg.blocks[b].succs.iter().copied());
            }
        }
        assert!(cyclic, "loop body must sit on a back edge: {cfg:?}");
    }

    #[test]
    fn while_loop_can_skip_body() {
        let (toks, cfg) = cfg_of("fn f(n: u32) { while n > 0 { work(); } done(); }");
        let reach = reachable_blocks(&cfg);
        let done_block = cfg
            .blocks
            .iter()
            .position(|b| {
                b.stmts
                    .iter()
                    .any(|s| toks[s.lo..s.hi].iter().any(|t| t.is_ident("done")))
            })
            .unwrap();
        assert!(reach[done_block]);
    }

    #[test]
    fn match_arms_all_flow_to_join() {
        let (toks, cfg) =
            cfg_of("fn f(x: u32) { match x { 0 => a(), 1 => { b(); } _ => c(), } after(); }");
        let reach = reachable_blocks(&cfg);
        for name in ["a", "b", "c", "after"] {
            let blk = cfg.blocks.iter().position(|b| {
                b.stmts
                    .iter()
                    .any(|s| toks[s.lo..s.hi].iter().any(|t| t.is_ident(name)))
            });
            assert!(
                blk.is_some_and(|b| reach[b]),
                "{name} must be reachable: {cfg:?}"
            );
        }
    }

    #[test]
    fn question_mark_adds_exit_edge() {
        let (_, cfg) = cfg_of("fn f() -> R { let x = g()?; h(x); Ok(()) }");
        assert!(cfg.blocks[cfg.entry].succs.contains(&cfg.exit));
    }

    #[test]
    fn expression_position_if_is_swallowed() {
        let (_, cfg) = cfg_of("fn f(c: bool) { let x = if c { 1 } else { 2 }; g(x); }");
        // No branching: the conditional is part of the let statement.
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![cfg.exit]);
        assert_eq!(cfg.blocks[cfg.entry].stmts.len(), 2);
    }

    // ---- dataflow: reaching taint through joins -----------------------

    /// A two-point lattice over one variable: has `x` been cleared on
    /// every path? (true = still set)
    fn x_set_at_exit(src: &str) -> bool {
        let toks = lobsyn::lex(src).toks;
        let fns = lobsyn::fn_defs(&toks);
        let (b0, b1) = fns[0].body.unwrap();
        let cfg = build_cfg(&toks, b0, b1);
        let entries = forward(
            &cfg,
            true,
            |a, b| *a || *b,
            |s, stmt| {
                let has = |name: &str| toks[stmt.lo..stmt.hi].iter().any(|t| t.is_ident(name));
                if has("clear") {
                    *s = false;
                }
                if has("set") {
                    *s = true;
                }
            },
        );
        entries[cfg.exit].unwrap_or(false)
    }

    #[test]
    fn join_keeps_the_pessimistic_state() {
        // Cleared on only one path: still set at exit.
        assert!(x_set_at_exit(
            "fn f(c: bool) { set(); if c { clear(); } g(); }"
        ));
        // Cleared on both paths: clean at exit.
        assert!(!x_set_at_exit(
            "fn f(c: bool) { set(); if c { clear(); } else { clear(); } g(); }"
        ));
        // Straight-line clear.
        assert!(!x_set_at_exit("fn f() { set(); clear(); }"));
        // Re-set inside a loop body reaches the exit via the back edge.
        assert!(x_set_at_exit(
            "fn f() { clear(); loop { if d() { break; } set(); } }"
        ));
    }

    // ---- regions ------------------------------------------------------

    fn region_at(src: &str, marker: &str) -> (Vec<Tok>, Region) {
        let toks = lobsyn::lex(src).toks;
        let fns = lobsyn::fn_defs(&toks);
        let (b0, b1) = fns[0].body.unwrap();
        let prod = toks.iter().position(|t| t.is_ident(marker)).unwrap();
        let r = live_region(&toks, b0, b1, prod);
        (toks, r)
    }

    #[test]
    fn let_bound_region_runs_to_scope_end() {
        let src = "fn f() { let g = m.lock(); use1(); } \n";
        let (toks, r) = region_at(src, "lock");
        assert_eq!(r.var.as_deref(), Some("g"));
        let use1 = toks.iter().position(|t| t.is_ident("use1")).unwrap();
        assert!(r.contains(use1));
    }

    #[test]
    fn inner_scope_ends_the_region() {
        let src = "fn f() { { let g = m.lock(); inner(); } outer(); }";
        let (toks, r) = region_at(src, "lock");
        let inner = toks.iter().position(|t| t.is_ident("inner")).unwrap();
        let outer = toks.iter().position(|t| t.is_ident("outer")).unwrap();
        assert!(r.contains(inner));
        assert!(!r.contains(outer));
    }

    #[test]
    fn explicit_drop_ends_the_region() {
        let src = "fn f() { let g = m.lock(); use1(); drop(g); use2(); }";
        let (toks, r) = region_at(src, "lock");
        let u1 = toks.iter().position(|t| t.is_ident("use1")).unwrap();
        let u2 = toks.iter().position(|t| t.is_ident("use2")).unwrap();
        assert!(r.contains(u1));
        assert!(!r.contains(u2));
    }

    #[test]
    fn unbound_temporary_lives_for_its_statement() {
        let src = "fn f() { m.lock().insert(k, v); later(); }";
        let (toks, r) = region_at(src, "lock");
        assert_eq!(r.var, None);
        let ins = toks.iter().position(|t| t.is_ident("insert")).unwrap();
        let later = toks.iter().position(|t| t.is_ident("later")).unwrap();
        assert!(r.contains(ins));
        assert!(!r.contains(later));
    }

    #[test]
    fn mut_binding_is_recognized() {
        let src = "fn f() { let mut g = m.lock(); touch(); }";
        let (_, r) = region_at(src, "lock");
        assert_eq!(r.var.as_deref(), Some("g"));
    }
}
