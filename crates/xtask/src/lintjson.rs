//! `check-lint-json` — validate a `loblint --json` findings document.
//!
//! CI runs `loblint --json --out <path>` and pushes the output through
//! this validator so the `loblint-findings/v2` schema cannot drift
//! silently. The checks are structural and arithmetic: schema tag, the
//! rule list, `total == baselined + new == findings.len()`, the
//! per-finding fields (including the v2 `evidence` string array that
//! carries acquisition chains and taint paths), every finding's rule
//! being declared, and the findings arriving sorted (loblint output is
//! deterministic). The full field-by-field reference lives in
//! `docs/SCHEMAS.md`.

use std::path::Path;
use std::process::ExitCode;

use lobstore_obs::json::{self, Value};

use crate::loblint::FINDINGS_SCHEMA;

/// `Value::as_bool` does not exist upstream; keep the shim local.
fn as_bool(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

/// Validate `doc` as a `loblint-findings/v2` document. Returns every
/// problem found (empty = valid).
pub fn validate(doc: &Value) -> Vec<String> {
    let mut problems = Vec::new();
    let mut fail = |msg: String| problems.push(msg);

    match doc.get("schema").and_then(Value::as_str) {
        Some(s) if s == FINDINGS_SCHEMA => {}
        Some(s) => fail(format!("schema is {s:?}, expected {FINDINGS_SCHEMA:?}")),
        None => fail("missing string field `schema`".to_string()),
    }

    let rules: Vec<&str> = match doc.get("rules").and_then(Value::as_arr) {
        Some(arr) if !arr.is_empty() => {
            let mut rules = Vec::new();
            for (i, r) in arr.iter().enumerate() {
                match r.as_str() {
                    Some(s) => rules.push(s),
                    None => fail(format!("rules[{i}] must be a string")),
                }
            }
            rules
        }
        _ => {
            fail("missing non-empty array field `rules`".to_string());
            Vec::new()
        }
    };

    let counts: Vec<Option<u64>> = ["total", "baselined", "new"]
        .iter()
        .map(|f| {
            let v = doc.get(f).and_then(Value::as_u64);
            if v.is_none() {
                fail(format!("missing integer field `{f}`"));
            }
            v
        })
        .collect();

    match doc.get("findings").and_then(Value::as_arr) {
        Some(findings) => {
            if let (Some(total), Some(base), Some(new)) = (counts[0], counts[1], counts[2]) {
                if total != findings.len() as u64 {
                    fail(format!(
                        "total is {total} but findings has {} entries",
                        findings.len()
                    ));
                }
                if base + new != total {
                    fail(format!(
                        "baselined ({base}) + new ({new}) != total ({total})"
                    ));
                }
                let flagged = findings
                    .iter()
                    .filter(|f| f.get("baselined").and_then(as_bool) == Some(true))
                    .count() as u64;
                if flagged != base {
                    fail(format!(
                        "baselined is {base} but {flagged} findings carry baselined=true"
                    ));
                }
            }
            let mut prev: Option<(String, u64)> = None;
            for (i, f) in findings.iter().enumerate() {
                let file = f.get("file").and_then(Value::as_str);
                if file.is_none_or(str::is_empty) {
                    fail(format!("findings[{i}].file must be a non-empty string"));
                }
                let line = f.get("line").and_then(Value::as_u64);
                match line {
                    Some(n) if n >= 1 => {}
                    _ => fail(format!("findings[{i}].line must be an integer >= 1")),
                }
                match f.get("rule").and_then(Value::as_str) {
                    Some(r) if rules.contains(&r) => {}
                    Some(r) => fail(format!("findings[{i}].rule {r:?} is not in `rules`")),
                    None => fail(format!("findings[{i}].rule must be a string")),
                }
                if f.get("message").and_then(Value::as_str).is_none() {
                    fail(format!("findings[{i}].message must be a string"));
                }
                if f.get("baselined").and_then(as_bool).is_none() {
                    fail(format!("findings[{i}].baselined must be a boolean"));
                }
                match f.get("evidence").and_then(Value::as_arr) {
                    Some(ev) => {
                        for (j, e) in ev.iter().enumerate() {
                            if e.as_str().is_none_or(str::is_empty) {
                                fail(format!(
                                    "findings[{i}].evidence[{j}] must be a non-empty string"
                                ));
                            }
                        }
                    }
                    None => fail(format!(
                        "findings[{i}].evidence must be an array (empty for token rules)"
                    )),
                }
                if let (Some(file), Some(line)) = (file, line) {
                    let key = (file.to_string(), line);
                    if let Some(p) = &prev {
                        if key < *p {
                            fail(format!(
                                "findings[{i}] is out of (file, line) order — output must be sorted"
                            ));
                        }
                    }
                    prev = Some(key);
                }
            }
        }
        None => fail("missing array field `findings`".to_string()),
    }

    problems
}

/// Entry point for `cargo run -p xtask -- check-lint-json <path>`.
/// Exit code 0 = valid, 1 = invalid document, 2 = cannot read or parse.
pub fn run(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check-lint-json: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let doc = match json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("check-lint-json: {} is not JSON: {e:?}", path.display());
            return ExitCode::from(2);
        }
    };
    let problems = validate(&doc);
    if problems.is_empty() {
        let total = doc.get("total").and_then(Value::as_u64).unwrap_or(0);
        let new = doc.get("new").and_then(Value::as_u64).unwrap_or(0);
        println!(
            "ok: {} is a valid {FINDINGS_SCHEMA} document ({total} findings, {new} new)",
            path.display()
        );
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("check-lint-json: {p}");
        }
        eprintln!(
            "check-lint-json: {} problem(s) in {} — schema reference: docs/SCHEMAS.md",
            problems.len(),
            path.display()
        );
        ExitCode::from(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loblint::{to_json, Finding};

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                file: "crates/core/src/a.rs".into(),
                line: 3,
                rule: "unwrap",
                message: "unwrap in library".into(),
                evidence: Vec::new(),
            },
            Finding {
                file: "crates/core/src/b.rs".into(),
                line: 9,
                rule: "lock-order",
                message: "lock acquisition cycle: a -> b -> a".into(),
                evidence: vec![
                    "`b` acquired while `a` held at crates/core/src/b.rs:9".into(),
                    "`a` acquired while `b` held at crates/core/src/c.rs:4".into(),
                ],
            },
        ]
    }

    #[test]
    fn real_loblint_output_round_trips_and_validates() {
        let doc = json::parse(&to_json(&sample(), &[true, false])).unwrap();
        assert_eq!(validate(&doc), Vec::<String>::new());
        assert_eq!(doc.get("total").and_then(Value::as_u64), Some(2));
        assert_eq!(doc.get("baselined").and_then(Value::as_u64), Some(1));
        assert_eq!(doc.get("new").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn empty_findings_document_is_valid() {
        let doc = json::parse(&to_json(&[], &[])).unwrap();
        assert_eq!(validate(&doc), Vec::<String>::new());
    }

    #[test]
    fn wrong_schema_and_count_mismatches_are_reported() {
        let doc = json::parse(
            r#"{"schema": "nope/v9", "rules": ["unwrap"], "total": 3, "baselined": 1,
                "new": 1, "findings": []}"#,
        )
        .unwrap();
        let problems = validate(&doc);
        assert!(
            problems.iter().any(|p| p.contains("schema")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("total is 3")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("!= total")),
            "{problems:?}"
        );
    }

    #[test]
    fn undeclared_rule_and_unsorted_findings_fail() {
        let mut text = to_json(&sample(), &[false, false]);
        text = text.replace("\"rule\": \"lock-order\"", "\"rule\": \"mystery\"");
        let doc = json::parse(&text).unwrap();
        let problems = validate(&doc);
        assert!(
            problems.iter().any(|p| p.contains("\"mystery\"")),
            "{problems:?}"
        );

        let mut rev = sample();
        rev.reverse();
        let doc = json::parse(&to_json(&rev, &[false, false])).unwrap();
        let problems = validate(&doc);
        assert!(problems.iter().any(|p| p.contains("order")), "{problems:?}");
    }

    #[test]
    fn evidence_must_be_an_array_of_non_empty_strings() {
        // Drop the evidence array from the first finding.
        let text = to_json(&sample(), &[false, false]).replacen("\"evidence\": []", "\"x\": []", 1);
        let doc = json::parse(&text).unwrap();
        let problems = validate(&doc);
        assert!(
            problems
                .iter()
                .any(|p| p.contains("evidence must be an array")),
            "{problems:?}"
        );

        // Turn a real evidence entry into an empty string.
        let text = to_json(&sample(), &[false, false]).replace(
            "\"`b` acquired while `a` held at crates/core/src/b.rs:9\"",
            "\"\"",
        );
        let doc = json::parse(&text).unwrap();
        let problems = validate(&doc);
        assert!(
            problems.iter().any(|p| p.contains("evidence[0]")),
            "{problems:?}"
        );
    }

    #[test]
    fn baselined_flag_count_must_match_header() {
        let text =
            to_json(&sample(), &[true, false]).replace("\"baselined\": 1", "\"baselined\": 2");
        let doc = json::parse(&text).unwrap();
        let problems = validate(&doc);
        // 2 + 1 != 2 and only one finding carries baselined=true.
        assert!(
            problems.iter().any(|p| p.contains("!= total")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("baselined=true")),
            "{problems:?}"
        );
    }
}
