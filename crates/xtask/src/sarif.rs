//! `lint-sarif` — convert a `loblint-findings/v2` document to SARIF
//! 2.1.0 so findings render natively in code-review UIs.
//!
//! The converter is a thin, deterministic projection: every finding
//! becomes one `result` with its rule id, file/line location, the
//! `evidence` witness chain in the result's property bag, and a
//! `baselineState` of `"unchanged"` (frozen in `loblint.baseline`) or
//! `"new"`. Baselined findings are `note`-level, new ones `warning`.
//! Rule metadata comes from [`crate::loblint::RULE_DOCS`]. The input
//! is validated with [`crate::lintjson::validate`] before conversion,
//! and the output is re-parsed and checked by [`validate_sarif`] — the
//! same belt-and-braces shape as `check-lint-json`.

use std::path::Path;
use std::process::ExitCode;

use lobstore_obs::json::{self, Value};

use crate::lintjson;
use crate::loblint::{json_escape, RULE_DOCS};

/// The SARIF version this converter emits.
pub const SARIF_VERSION: &str = "2.1.0";
/// `$schema` URI stamped into the document.
pub const SARIF_SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Convert a parsed, already-validated `loblint-findings/v2` document
/// to SARIF 2.1.0. Returns `Err` when the document is missing the
/// pieces the conversion needs (callers should have validated first).
pub fn to_sarif(doc: &Value) -> Result<String, String> {
    let findings = doc
        .get("findings")
        .and_then(Value::as_arr)
        .ok_or_else(|| "missing array field `findings`".to_string())?;

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"$schema\": \"{SARIF_SCHEMA}\",\n  \"version\": \"{SARIF_VERSION}\",\n"
    ));
    out.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"loblint\",\n");
    out.push_str("          \"informationUri\": \"DESIGN.md\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, (name, scope, text)) in RULE_DOCS.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \
             \"fullDescription\": {{\"text\": \"{}\"}}}}{}\n",
            json_escape(name),
            json_escape(&format!("{name} ({scope})")),
            json_escape(text),
            if i + 1 < RULE_DOCS.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let field = |name: &str| {
            f.get(name)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("findings[{i}].{name} must be a string"))
        };
        let file = field("file")?;
        let rule = field("rule")?;
        let message = field("message")?;
        let line = f
            .get("line")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("findings[{i}].line must be an integer"))?;
        let baselined = matches!(f.get("baselined"), Some(Value::Bool(true)));
        let evidence = f
            .get("evidence")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("findings[{i}].evidence must be an array"))?
            .iter()
            .filter_map(Value::as_str)
            .map(|e| format!("\"{}\"", json_escape(e)))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"level\": \"{}\", \
             \"message\": {{\"text\": \"{}\"}}, \"baselineState\": \"{}\", \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {line}}}}}}}], \
             \"properties\": {{\"evidence\": [{evidence}]}}}}{}\n",
            json_escape(rule),
            if baselined { "note" } else { "warning" },
            json_escape(message),
            if baselined { "unchanged" } else { "new" },
            json_escape(file),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}");
    Ok(out)
}

/// Structural checks on an emitted SARIF document: version tag, one
/// run, driver name, every result's rule declared by the driver, and
/// well-formed locations. Returns every problem found (empty = valid).
pub fn validate_sarif(doc: &Value) -> Vec<String> {
    let mut problems = Vec::new();
    let mut fail = |msg: String| problems.push(msg);

    match doc.get("version").and_then(Value::as_str) {
        Some(v) if v == SARIF_VERSION => {}
        Some(v) => fail(format!("version is {v:?}, expected {SARIF_VERSION:?}")),
        None => fail("missing string field `version`".to_string()),
    }
    if doc.get("$schema").and_then(Value::as_str).is_none() {
        fail("missing string field `$schema`".to_string());
    }
    let Some(runs) = doc.get("runs").and_then(Value::as_arr) else {
        fail("missing array field `runs`".to_string());
        return problems;
    };
    if runs.len() != 1 {
        fail(format!("expected exactly 1 run, found {}", runs.len()));
        return problems;
    }
    let run = &runs[0];
    let driver = run.get("tool").and_then(|t| t.get("driver"));
    match driver.and_then(|d| d.get("name")).and_then(Value::as_str) {
        Some("loblint") => {}
        other => fail(format!(
            "tool.driver.name must be \"loblint\", got {other:?}"
        )),
    }
    let rule_ids: Vec<&str> = driver
        .and_then(|d| d.get("rules"))
        .and_then(Value::as_arr)
        .map(|rs| {
            rs.iter()
                .filter_map(|r| r.get("id").and_then(Value::as_str))
                .collect()
        })
        .unwrap_or_default();
    if rule_ids.is_empty() {
        fail("tool.driver.rules must declare the rule set".to_string());
    }
    match run.get("results").and_then(Value::as_arr) {
        Some(results) => {
            for (i, r) in results.iter().enumerate() {
                match r.get("ruleId").and_then(Value::as_str) {
                    Some(id) if rule_ids.contains(&id) => {}
                    Some(id) => fail(format!("results[{i}].ruleId {id:?} is not declared")),
                    None => fail(format!("results[{i}].ruleId must be a string")),
                }
                match r.get("level").and_then(Value::as_str) {
                    Some("warning" | "note" | "error") => {}
                    other => fail(format!("results[{i}].level invalid: {other:?}")),
                }
                match r.get("baselineState").and_then(Value::as_str) {
                    Some("new" | "unchanged") => {}
                    other => fail(format!("results[{i}].baselineState invalid: {other:?}")),
                }
                if r.get("message")
                    .and_then(|m| m.get("text"))
                    .and_then(Value::as_str)
                    .is_none_or(str::is_empty)
                {
                    fail(format!("results[{i}].message.text must be non-empty"));
                }
                let loc = r
                    .get("locations")
                    .and_then(Value::as_arr)
                    .and_then(|l| l.first())
                    .and_then(|l| l.get("physicalLocation"));
                if loc
                    .and_then(|l| l.get("artifactLocation"))
                    .and_then(|a| a.get("uri"))
                    .and_then(Value::as_str)
                    .is_none_or(str::is_empty)
                {
                    fail(format!("results[{i}] is missing its artifact uri"));
                }
                if loc
                    .and_then(|l| l.get("region"))
                    .and_then(|g| g.get("startLine"))
                    .and_then(Value::as_u64)
                    .is_none()
                {
                    fail(format!("results[{i}] is missing region.startLine"));
                }
            }
        }
        None => fail("run is missing array field `results`".to_string()),
    }
    problems
}

/// Entry point for `cargo run -p xtask -- lint-sarif <findings.json>
/// [--out <path>]`. Exit 0 = converted (written or printed), 1 = the
/// findings document failed validation, 2 = cannot read or parse.
pub fn run(input: &Path, out: Option<&Path>) -> ExitCode {
    let text = match std::fs::read_to_string(input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lint-sarif: cannot read {}: {e}", input.display());
            return ExitCode::from(2);
        }
    };
    let doc = match json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("lint-sarif: {} is not JSON: {e:?}", input.display());
            return ExitCode::from(2);
        }
    };
    let problems = lintjson::validate(&doc);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("lint-sarif: {p}");
        }
        eprintln!(
            "lint-sarif: {} is not a valid findings document ({} problem(s))",
            input.display(),
            problems.len()
        );
        return ExitCode::from(1);
    }
    let sarif = match to_sarif(&doc) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lint-sarif: {e}");
            return ExitCode::from(1);
        }
    };
    // Belt and braces: the emitted document must re-parse and pass the
    // structural checks before anything downstream sees it.
    match json::parse(&sarif) {
        Ok(emitted) => {
            let problems = validate_sarif(&emitted);
            if !problems.is_empty() {
                for p in &problems {
                    eprintln!("lint-sarif: emitted document invalid: {p}");
                }
                return ExitCode::from(1);
            }
        }
        Err(e) => {
            eprintln!("lint-sarif: emitted document is not JSON: {e:?}");
            return ExitCode::from(1);
        }
    }
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &sarif) {
                eprintln!("lint-sarif: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!("lint-sarif: wrote {}", path.display());
        }
        None => println!("{sarif}"),
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loblint::{to_json, Finding, RULES};

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                file: "crates/core/src/a.rs".into(),
                line: 3,
                rule: "unwrap",
                message: "unwrap in library".into(),
                evidence: Vec::new(),
            },
            Finding {
                file: "crates/core/src/b.rs".into(),
                line: 9,
                rule: "commit-point",
                message: "durable write after the commit-point flip".into(),
                evidence: vec!["commit point: crates/core/src/b.rs:7 `flush_page(..)`".into()],
            },
        ]
    }

    fn convert(findings: &[Finding], marks: &[bool]) -> Value {
        let doc = json::parse(&to_json(findings, marks)).unwrap();
        json::parse(&to_sarif(&doc).unwrap()).unwrap()
    }

    #[test]
    fn conversion_emits_valid_sarif_with_all_rules_declared() {
        let sarif = convert(&sample(), &[true, false]);
        assert_eq!(validate_sarif(&sarif), Vec::<String>::new());
        let driver_rules = sarif.get("runs").and_then(Value::as_arr).unwrap()[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Value::as_arr)
            .unwrap();
        assert_eq!(driver_rules.len(), RULES.len());
        for (r, id) in RULES.iter().zip(driver_rules.iter()) {
            assert_eq!(id.get("id").and_then(Value::as_str), Some(*r));
        }
    }

    #[test]
    fn results_carry_location_baseline_state_and_evidence() {
        let sarif = convert(&sample(), &[true, false]);
        let results = sarif.get("runs").and_then(Value::as_arr).unwrap()[0]
            .get("results")
            .and_then(Value::as_arr)
            .unwrap();
        assert_eq!(results.len(), 2);
        let (a, b) = (&results[0], &results[1]);
        assert_eq!(a.get("level").and_then(Value::as_str), Some("note"));
        assert_eq!(
            a.get("baselineState").and_then(Value::as_str),
            Some("unchanged")
        );
        assert_eq!(b.get("level").and_then(Value::as_str), Some("warning"));
        assert_eq!(b.get("baselineState").and_then(Value::as_str), Some("new"));
        let loc = b.get("locations").and_then(Value::as_arr).unwrap()[0]
            .get("physicalLocation")
            .unwrap();
        assert_eq!(
            loc.get("artifactLocation")
                .and_then(|l| l.get("uri"))
                .and_then(Value::as_str),
            Some("crates/core/src/b.rs")
        );
        assert_eq!(
            loc.get("region")
                .and_then(|g| g.get("startLine"))
                .and_then(Value::as_u64),
            Some(9)
        );
        let ev = b
            .get("properties")
            .and_then(|p| p.get("evidence"))
            .and_then(Value::as_arr)
            .unwrap();
        assert_eq!(ev.len(), 1);
        assert!(ev[0].as_str().unwrap().contains("flush_page"));
    }

    #[test]
    fn empty_findings_document_converts_cleanly() {
        let sarif = convert(&[], &[]);
        assert_eq!(validate_sarif(&sarif), Vec::<String>::new());
        let results = sarif.get("runs").and_then(Value::as_arr).unwrap()[0]
            .get("results")
            .and_then(Value::as_arr)
            .unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn conversion_rejects_a_structurally_broken_document() {
        let doc = json::parse(r#"{"schema": "loblint-findings/v2"}"#).unwrap();
        assert!(to_sarif(&doc).is_err());
    }

    #[test]
    fn validator_rejects_mutated_sarif() {
        let good = to_sarif(&json::parse(&to_json(&sample(), &[true, false])).unwrap()).unwrap();
        // Undeclared ruleId.
        let doc =
            json::parse(&good.replace("\"ruleId\": \"unwrap\"", "\"ruleId\": \"nope\"")).unwrap();
        assert!(validate_sarif(&doc)
            .iter()
            .any(|p| p.contains("not declared")));
        // Wrong version.
        let doc =
            json::parse(&good.replace("\"version\": \"2.1.0\"", "\"version\": \"9.9\"")).unwrap();
        assert!(validate_sarif(&doc).iter().any(|p| p.contains("version")));
        // Broken baselineState.
        let doc =
            json::parse(&good.replace("\"baselineState\": \"new\"", "\"baselineState\": \"old\""))
                .unwrap();
        assert!(validate_sarif(&doc)
            .iter()
            .any(|p| p.contains("baselineState")));
    }
}
