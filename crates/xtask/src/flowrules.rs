//! The loblint v3 concurrency & taint rules, built on the
//! [`crate::lobflow`] CFG/dataflow engine.
//!
//! Four rules live here:
//!
//! * `lock-order` — every lock/latch acquisition site (`.lock()`,
//!   `RwLock` `.read()`/`.write()`, `BufferPool::guard*`, thread-local
//!   `STATIC.with(..)`) contributes edges to a workspace acquisition
//!   graph: an edge `A -> B` means `B` is acquired while `A` is held,
//!   either directly inside `A`'s live region or through a call whose
//!   transitive closure acquires `B`. The graph must be acyclic, must
//!   never re-acquire a held resource, and edges between resources in
//!   [`CANONICAL_LOCK_ORDER`] must point from outer to inner.
//! * `guard-across-io` — no guard/pin/latch live across a cost-counted
//!   I/O wrapper or entry call, or a `std::io`/`std::fs` path.
//! * `panic-while-locked` — no panic-capable token (unwrap/expect,
//!   `panic!`-family macro, postfix indexing, non-constant division)
//!   inside a guard's live region.
//! * `disk-taint` — a forward may-taint dataflow over the function CFG:
//!   values produced by the disk deserializers are Tainted until a
//!   comparison, `.min()`/`.clamp()`, or a `check*`/`valid*`/`verify*`
//!   call touches them; Tainted values may not reach a slice index,
//!   `PageId::new`, an I/O call argument, or offset/length arithmetic
//!   (sink typing reuses the `unit-mixing` naming heuristics).
//!
//! Naming note: resource identity is declaration-based where possible
//! (`inner` declared as `Mutex<..>` inside `struct SharedDb` names the
//! resource `SharedDb.inner` at every call site, whether spelled
//! `self.inner.lock()` or `db.inner.lock()`); ALL_CAPS statics are
//! crate-qualified (`bench::REPORT`); page pins all map to the single
//! `BufferPool.frame` resource. Call-graph edges resolve by bare name,
//! so — as with `io-accounting` — the graph excludes xtask and the
//! dependency shims, and the acquisition method names themselves
//! (`lock`, `with`, ...) never resolve to workspace functions.

use std::collections::{BTreeMap, BTreeSet};

use crate::lobflow::{self, Region};
use crate::loblint::{
    ends_operand, is_const_name, left_chain, panic_div_at, panic_index_at, unit_of, Analysis,
    Finding, CALL_KEYWORDS, IO_ENTRIES, IO_WRAPPERS,
};
use crate::lobsyn::{FnDef, Tok, TokKind};

/// The canonical workspace lock order, outermost first. An acquisition
/// edge `A -> B` (B taken while A is held) between two listed
/// resources must go strictly downward in this table. Mirrored in
/// DESIGN.md sections 13 and 17; extend the table (and the docs) when a
/// new lock joins the workspace.
pub(crate) const CANONICAL_LOCK_ORDER: [&str; 9] = [
    "SharedDb.inner",   // two-tier DB lock: writers exclusive, scans shared
    "bench::REPORT",    // process-wide bench report registry
    "BufferPool.frame", // page pins, only under the DB lock
    "BufferPool.ctl",   // pool control block: frame table + replacement
    "Shard.pages",      // per-shard page-box latch, only under/after ctl
    "AreaSlot.store",   // per-area disk store latch
    "SimDisk.trace",    // trace stream, innermost disk-side lock
    "obs::REGISTRY",    // thread-local metrics registry latch
    "obs::SINK",        // innermost: thread-local event sink latch
];

/// Method names that acquire; they never resolve to workspace
/// functions in the call graph (a `.with(` on a thread-local would
/// otherwise alias `SharedDb::with` and conjure phantom edges).
const ACQUIRE_METHODS: [&str; 9] = [
    "lock",
    "read",
    "write",
    "guard",
    "guard_mut",
    "guard_new",
    "with",
    "borrow",
    "borrow_mut",
];

/// Functions that deserialize values out of raw disk bytes: their
/// results are tainted until checked.
const TAINT_SOURCES: [&str; 7] = [
    "from_le_bytes",
    "from_be_bytes",
    "from_ne_bytes",
    "get_u16",
    "get_u32",
    "get_u64",
    "decode",
];

// ---- lock/latch declarations ----------------------------------------------

/// Workspace-wide lock declarations, collected in one pass so call
/// sites can be named by declaration rather than by receiver spelling.
#[derive(Default)]
struct LockDecls {
    /// Mutex-typed field name -> declaring struct.
    mutex_fields: BTreeMap<String, String>,
    /// RwLock-typed field name -> declaring struct.
    rwlock_fields: BTreeMap<String, String>,
    /// ALL_CAPS static/thread-local name -> crate-qualified resource.
    statics: BTreeMap<String, String>,
    /// The subset of `statics` declared as `RefCell` (latched via
    /// `.with(..)`).
    refcell_statics: BTreeSet<String>,
}

fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("lobstore")
}

fn collect_lock_decls(analyses: &[Analysis]) -> LockDecls {
    let mut d = LockDecls::default();
    for a in analyses {
        let t = &a.toks;
        let mut cur_struct: Option<String> = None;
        for i in 0..t.len() {
            if t[i].is_ident("struct") && t.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) {
                cur_struct = Some(t[i + 1].text.clone());
            }
            // `name : [Arc <]* Mutex/RwLock/RefCell < ...` — shared
            // handles like `inner: Arc<RwLock<Db>>` still declare a
            // lock; the `Arc` wrapper never changes which resource the
            // call sites acquire.
            if t[i].kind != TokKind::Ident || !t.get(i + 1).is_some_and(|n| n.is_punct(":")) {
                continue;
            }
            let mut ty_at = i + 2;
            while t.get(ty_at).is_some_and(|n| n.is_ident("Arc"))
                && t.get(ty_at + 1).is_some_and(|n| n.is_punct("<"))
            {
                ty_at += 2;
            }
            if !t.get(ty_at + 1).is_some_and(|n| n.is_punct("<")) {
                continue;
            }
            let Some(ty) = t.get(ty_at).filter(|n| n.kind == TokKind::Ident) else {
                continue;
            };
            let name = t[i].text.clone();
            match ty.text.as_str() {
                "Mutex" | "RwLock" | "RefCell" if is_const_name(&name) => {
                    let resource = format!("{}::{}", crate_of(&a.rel), name);
                    if ty.text == "RefCell" {
                        d.refcell_statics.insert(name.clone());
                    }
                    d.statics.insert(name, resource);
                }
                "Mutex" => {
                    let owner = cur_struct
                        .clone()
                        .unwrap_or_else(|| crate_of(&a.rel).into());
                    d.mutex_fields.insert(name, owner);
                }
                "RwLock" => {
                    let owner = cur_struct
                        .clone()
                        .unwrap_or_else(|| crate_of(&a.rel).into());
                    d.rwlock_fields.insert(name, owner);
                }
                _ => {}
            }
        }
    }
    d
}

// ---- acquisition sites ----------------------------------------------------

/// One lock/latch/pin acquisition inside a function body.
#[derive(Debug, Clone)]
struct Acq {
    /// Token index of the acquiring method ident.
    tok: usize,
    line: usize,
    resource: String,
    /// Human label: "guard", "page pin", "latch".
    what: &'static str,
    region: Region,
    /// Token range of the acquiring call's own argument group. The
    /// arguments evaluate *before* the resource is acquired, so every
    /// in-region scan skips them (`pool.guard(PageId::new(p))` does not
    /// call `PageId::new` while the pin is held). `None` for `.with`
    /// latches, whose argument is the closure that runs latched.
    args: Option<(usize, usize)>,
}

impl Acq {
    /// Is token `k` inside the acquiring call's own argument group
    /// (i.e. evaluated before the resource is actually held)?
    fn in_args(&self, k: usize) -> bool {
        self.args.is_some_and(|(lo, hi)| lo <= k && k < hi)
    }
}

/// Index just past the `)` matching the `(` at `open`.
fn group_end(t: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    for (i, tok) in t.iter().enumerate().skip(open) {
        if tok.kind == TokKind::Punct {
            match tok.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
        }
    }
    t.len()
}

/// Name the resource behind a `.lock()`/`.read()`/`.write()` receiver
/// chain, preferring the declaring struct over the receiver spelling.
fn field_resource(
    chain: &[String],
    fields: &BTreeMap<String, String>,
    statics: &BTreeMap<String, String>,
    owner: Option<&str>,
    cr: &str,
) -> String {
    let last = chain.last().map(String::as_str).unwrap_or("<expr>");
    if let Some(st) = fields.get(last) {
        return format!("{st}.{last}");
    }
    if let Some(r) = statics.get(last) {
        return r.clone();
    }
    if chain.first().is_some_and(|c| c == "self") {
        return format!("{}.{last}", owner.unwrap_or(cr));
    }
    format!("{cr}::{last}")
}

/// Every acquisition in the body `[b0, b1)` of `f`, with live regions.
fn acquisitions(a: &Analysis, f: &FnDef, decls: &LockDecls) -> Vec<Acq> {
    let t = &a.toks;
    let Some((b0, b1)) = f.body else {
        return Vec::new();
    };
    let cr = crate_of(&a.rel);
    let mut out = Vec::new();
    for k in b0..b1.min(t.len()) {
        if t[k].kind != TokKind::Ident || !t.get(k + 1).is_some_and(|n| n.is_punct("(")) {
            // `STATIC.with(|..| ..)` — the latch is the whole call.
            if decls.refcell_statics.contains(t[k].text.as_str())
                && t.get(k + 1).is_some_and(|n| n.is_punct("."))
                && t.get(k + 2).is_some_and(|n| n.is_ident("with"))
                && t.get(k + 3).is_some_and(|n| n.is_punct("("))
            {
                out.push(Acq {
                    tok: k + 2,
                    line: t[k + 2].line,
                    resource: decls.statics[t[k].text.as_str()].clone(),
                    what: "latch",
                    region: Region {
                        var: None,
                        lo: k + 2,
                        hi: group_end(t, k + 3).min(b1),
                    },
                    args: None,
                });
            }
            continue;
        }
        let method_call = k > b0 && t[k - 1].is_punct(".");
        if !method_call {
            continue;
        }
        let (resource, what) = match t[k].text.as_str() {
            "lock" => {
                let chain = left_chain(t, k - 1).unwrap_or_default();
                (
                    field_resource(
                        &chain,
                        &decls.mutex_fields,
                        &decls.statics,
                        f.owner.as_deref(),
                        cr,
                    ),
                    "guard",
                )
            }
            "read" | "write" => {
                // Only when the receiver is a declared RwLock; plain
                // `file.read(..)` etc. must not register.
                let Some(chain) = left_chain(t, k - 1) else {
                    continue;
                };
                let last = chain.last().map(String::as_str).unwrap_or("");
                if !decls.rwlock_fields.contains_key(last) && !decls.statics.contains_key(last) {
                    continue;
                }
                (
                    field_resource(
                        &chain,
                        &decls.rwlock_fields,
                        &decls.statics,
                        f.owner.as_deref(),
                        cr,
                    ),
                    "guard",
                )
            }
            "guard" | "guard_mut" | "guard_new" => ("BufferPool.frame".to_string(), "page pin"),
            _ => continue,
        };
        out.push(Acq {
            tok: k,
            line: t[k].line,
            resource,
            what,
            region: lobflow::live_region(t, b0, b1, k),
            args: Some((k + 1, group_end(t, k + 1))),
        });
    }
    out
}

// ---- entry point ----------------------------------------------------------

/// Run all four CFG rules over the analyzed workspace.
pub(crate) fn check(analyses: &[Analysis], out: &mut Vec<Finding>) {
    let decls = collect_lock_decls(analyses);
    check_lock_order(analyses, &decls, out);
    for a in analyses {
        if !a.class.library {
            continue;
        }
        for f in &a.fns {
            if f.body.is_none() || a.in_test(f.line) {
                continue;
            }
            let acqs = acquisitions(a, f, &decls);
            check_guard_across_io(a, f, &acqs, out);
            check_panic_while_locked(a, &acqs, out);
            check_disk_taint(a, f, out);
        }
    }
}

// ---- rule: lock-order -----------------------------------------------------

/// Files that contribute acquisition sites and call edges: everything
/// but xtask (whose fixtures mention every pattern) and the dependency
/// shims.
fn lock_graph_file(rel: &str) -> bool {
    !rel.starts_with("crates/xtask/") && !rel.starts_with("shims/")
}

/// A directed acquisition edge with its first witness site.
#[derive(Debug, Clone)]
struct EdgeSite {
    /// Index into `analyses` of the witnessing file.
    a_idx: usize,
    line: usize,
    /// How the inner resource is reached ("directly" or "via `f()`").
    how: String,
    /// Outer acquisition site, for the evidence trail.
    held_line: usize,
}

fn check_lock_order(analyses: &[Analysis], decls: &LockDecls, out: &mut Vec<Finding>) {
    // Per-function facts over the graph scope, keyed by qualified name
    // (`Owner::name` / `name`): call edges only exist where the callee
    // can be resolved without bare-name aliasing (see
    // [`call_descriptor`]).
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    // (analysis index, fn, acquisitions) for the edge scan.
    let mut sites: Vec<(usize, &FnDef, Vec<Acq>)> = Vec::new();
    for (a_idx, a) in analyses.iter().enumerate() {
        if !lock_graph_file(&a.rel) {
            continue;
        }
        for f in &a.fns {
            if f.body.is_none() || a.in_test(f.line) {
                continue;
            }
            let (b0, b1) = f.body.unwrap_or((0, 0));
            let acqs = acquisitions(a, f, decls);
            direct
                .entry(f.qualified())
                .or_default()
                .extend(acqs.iter().map(|q| q.resource.clone()));
            let callset: BTreeSet<String> = (b0..b1.min(a.toks.len()))
                .filter_map(|k| call_descriptor(&a.toks, k, f.owner.as_deref()))
                .collect();
            calls.entry(f.qualified()).or_default().extend(callset);
            sites.push((a_idx, f, acqs));
        }
    }

    // Transitive acquisitions: what does calling `f` eventually take?
    let mut trans = direct.clone();
    loop {
        let mut grown: Vec<(String, Vec<String>)> = Vec::new();
        for (f, cs) in &calls {
            let have = trans.get(f).cloned().unwrap_or_default();
            let mut add = Vec::new();
            for c in cs {
                if let Some(rs) = trans.get(c) {
                    add.extend(rs.iter().filter(|r| !have.contains(*r)).cloned());
                }
            }
            if !add.is_empty() {
                grown.push((f.clone(), add));
            }
        }
        if grown.is_empty() {
            break;
        }
        for (f, add) in grown {
            trans.entry(f).or_default().extend(add);
        }
    }

    // Edge scan: what is acquired while each acquisition is held?
    let mut edges: BTreeMap<(String, String), EdgeSite> = BTreeMap::new();
    for (a_idx, f, acqs) in &sites {
        let a = &analyses[*a_idx];
        let t = &a.toks;
        let (b0, b1) = f.body.unwrap_or((0, 0));
        for held in acqs {
            // Direct nesting, including the self-deadlock case.
            for inner in acqs {
                if inner.tok != held.tok
                    && held.region.contains(inner.tok)
                    && !held.in_args(inner.tok)
                {
                    if inner.resource == held.resource {
                        a.push_ev(
                            out,
                            inner.line,
                            "lock-order",
                            format!(
                                "`{}` re-acquires `{}` while already holding it (line {}); self-deadlock (Mutex) or borrow panic (RefCell)",
                                f.qualified(),
                                held.resource,
                                held.line
                            ),
                            vec![format!(
                                "{} of `{}` acquired at {}:{} is still live here",
                                held.what, held.resource, a.rel, held.line
                            )],
                        );
                    } else {
                        edges
                            .entry((held.resource.clone(), inner.resource.clone()))
                            .or_insert_with(|| EdgeSite {
                                a_idx: *a_idx,
                                line: inner.line,
                                how: "acquired directly".into(),
                                held_line: held.line,
                            });
                    }
                }
            }
            // Nesting through calls: any callee in the region whose
            // transitive closure acquires something.
            for k in held.region.lo.max(b0)..held.region.hi.min(b1) {
                if k == held.tok || held.in_args(k) {
                    continue;
                }
                let Some(desc) = call_descriptor(t, k, f.owner.as_deref()) else {
                    continue;
                };
                let Some(rs) = trans.get(&desc) else {
                    continue;
                };
                for r in rs {
                    if *r == held.resource {
                        continue; // re-entrancy through calls: too alias-prone
                    }
                    edges
                        .entry((held.resource.clone(), r.clone()))
                        .or_insert_with(|| EdgeSite {
                            a_idx: *a_idx,
                            line: t[k].line,
                            how: format!("via `{}()`", t[k].text),
                            held_line: held.line,
                        });
                }
            }
        }
    }

    // Cycles: DFS with an explicit stack over the tiny graph.
    for cycle in find_cycles(&edges) {
        let site = &edges[&(cycle[0].clone(), cycle[1 % cycle.len()].clone())];
        let a = &analyses[site.a_idx];
        let mut evidence = Vec::new();
        for w in 0..cycle.len() {
            let from = &cycle[w];
            let to = &cycle[(w + 1) % cycle.len()];
            if let Some(s) = edges.get(&(from.clone(), to.clone())) {
                evidence.push(format!(
                    "`{to}` acquired while `{from}` held ({}) at {}:{}",
                    s.how, analyses[s.a_idx].rel, s.line
                ));
            }
        }
        let mut path = cycle.clone();
        path.push(cycle[0].clone());
        a.push_ev(
            out,
            site.line,
            "lock-order",
            format!("lock acquisition cycle: {}", path.join(" -> ")),
            evidence,
        );
    }

    // Canonical ordering between known resources.
    let rank = |r: &str| CANONICAL_LOCK_ORDER.iter().position(|c| *c == r);
    for ((from, to), site) in &edges {
        if let (Some(rf), Some(rt)) = (rank(from), rank(to)) {
            if rf > rt {
                let a = &analyses[site.a_idx];
                a.push_ev(
                    out,
                    site.line,
                    "lock-order",
                    format!(
                        "`{to}` acquired while `{from}` is held, but the canonical lock order puts `{to}` outside `{from}` (DESIGN.md section 13)"
                    ),
                    vec![
                        format!(
                            "`{from}` ({}) held since {}:{}; `{to}` {} here",
                            rf, a.rel, site.held_line, site.how
                        ),
                        format!("canonical order: {}", CANONICAL_LOCK_ORDER.join(" -> ")),
                    ],
                );
            }
        }
    }
}

/// The call descriptor at token `k` (an ident followed by `(`), under
/// resolution rules the lock graph can trust: `Q::f(..)` resolves to
/// exactly the workspace `impl Q` method `f`, `self.m(..)` to the
/// enclosing impl's `m`, and a bare `f(..)` to the free function `f`.
/// Method calls on any other receiver resolve to nothing — bare-name
/// matching would alias std methods (`RefCell::replace`,
/// `Option::take`, ...) onto same-named workspace functions and
/// conjure phantom acquisition edges. Acquisitions of locks *inside*
/// such methods are still seen directly when the method itself is
/// scanned; only the caller->callee nesting edge is dropped.
pub(crate) fn call_descriptor(t: &[Tok], k: usize, owner: Option<&str>) -> Option<String> {
    if t[k].kind != TokKind::Ident
        || !t.get(k + 1).is_some_and(|n| n.is_punct("("))
        || CALL_KEYWORDS.contains(&t[k].text.as_str())
        || ACQUIRE_METHODS.contains(&t[k].text.as_str())
        || (k > 0 && t[k - 1].is_ident("fn"))
    {
        return None;
    }
    if k >= 2 && t[k - 1].is_punct("::") && t[k - 2].kind == TokKind::Ident {
        return Some(format!("{}::{}", t[k - 2].text, t[k].text));
    }
    if k >= 1 && t[k - 1].is_punct(".") {
        let chain = left_chain(t, k - 1)?;
        return match (chain.as_slice(), owner) {
            ([s], Some(o)) if s == "self" => Some(format!("{o}::{}", t[k].text)),
            _ => None,
        };
    }
    Some(t[k].text.clone())
}

/// All elementary cycles found by DFS, canonicalized (rotated so the
/// smallest resource leads) and deduplicated.
fn find_cycles(edges: &BTreeMap<(String, String), EdgeSite>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let mut found: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in adj.keys() {
        // DFS stack of (node, next-successor-index) with the current path.
        let mut path: Vec<&str> = vec![start];
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)]; // (path idx, succ idx)
        while let Some((pi, si)) = stack.pop() {
            let node = path[pi];
            let succs = adj.get(node).map(Vec::as_slice).unwrap_or(&[]);
            if si >= succs.len() {
                path.truncate(pi);
                continue;
            }
            stack.push((pi, si + 1));
            let next = succs[si];
            if let Some(at) = path.iter().position(|n| *n == next) {
                let mut cycle: Vec<String> = path[at..].iter().map(|s| s.to_string()).collect();
                let min = (0..cycle.len()).min_by_key(|&i| &cycle[i]).unwrap_or(0);
                cycle.rotate_left(min);
                found.insert(cycle);
                continue;
            }
            if path.len() < 12 {
                path.truncate(pi + 1);
                path.push(next);
                stack.push((path.len() - 1, 0));
            }
        }
    }
    found.into_iter().collect()
}

// ---- rule: guard-across-io ------------------------------------------------

fn io_call_names() -> BTreeSet<&'static str> {
    let mut names: BTreeSet<&'static str> = IO_WRAPPERS
        .iter()
        .flat_map(|(_, ws)| ws.iter().copied())
        .collect();
    names.extend(IO_ENTRIES.iter().map(|(_, e, _)| *e));
    names
}

fn check_guard_across_io(a: &Analysis, f: &FnDef, acqs: &[Acq], out: &mut Vec<Finding>) {
    // The sanctioned wrappers themselves pin frames across raw I/O by
    // design; everything they do is already cost-counted.
    let io_names = io_call_names();
    if a.rel.starts_with("crates/bufpool/") && io_names.contains(f.name.as_str()) {
        return;
    }
    let t = &a.toks;
    for acq in acqs {
        for k in acq.region.lo..acq.region.hi.min(t.len()) {
            if k == acq.tok || acq.in_args(k) {
                continue;
            }
            let held = || {
                vec![format!(
                    "{} of `{}` acquired at {}:{} is still live here",
                    acq.what, acq.resource, a.rel, acq.line
                )]
            };
            if t[k].kind == TokKind::Ident
                && io_names.contains(t[k].text.as_str())
                && t.get(k + 1).is_some_and(|n| n.is_punct("("))
                && k > 0
                && !t[k - 1].is_ident("fn")
            {
                a.push_ev(
                    out,
                    t[k].line,
                    "guard-across-io",
                    format!(
                        "{} of `{}` (line {}) held across cost-counted I/O call `{}`; drop it before the I/O",
                        acq.what, acq.resource, acq.line, t[k].text
                    ),
                    held(),
                );
            }
            if t[k].is_ident("std")
                && t.get(k + 1).is_some_and(|n| n.is_punct("::"))
                && t.get(k + 2)
                    .is_some_and(|n| n.is_ident("io") || n.is_ident("fs"))
            {
                a.push_ev(
                    out,
                    t[k].line,
                    "guard-across-io",
                    format!(
                        "{} of `{}` (line {}) held across a `std::{}` operation",
                        acq.what,
                        acq.resource,
                        acq.line,
                        t[k + 2].text
                    ),
                    held(),
                );
            }
        }
    }
}

// ---- rule: panic-while-locked ---------------------------------------------

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

fn check_panic_while_locked(a: &Analysis, acqs: &[Acq], out: &mut Vec<Finding>) {
    let t = &a.toks;
    let mut reported: BTreeSet<(usize, usize)> = BTreeSet::new(); // (acq tok, site)
    for acq in acqs {
        let mut hit = |k: usize, desc: String, out: &mut Vec<Finding>| {
            if reported.insert((acq.tok, k)) {
                a.push_ev(
                    out,
                    t[k].line,
                    "panic-while-locked",
                    format!(
                        "{desc} while {} of `{}` (line {}) is held; a panic here poisons it",
                        acq.what, acq.resource, acq.line
                    ),
                    vec![format!(
                        "{} of `{}` acquired at {}:{} is still live here",
                        acq.what, acq.resource, a.rel, acq.line
                    )],
                );
            }
        };
        for k in acq.region.lo..acq.region.hi.min(t.len()) {
            if acq.in_args(k) {
                continue;
            }
            if t[k].is_punct(".")
                && t.get(k + 1)
                    .is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
                && t.get(k + 2).is_some_and(|n| n.is_punct("("))
            {
                hit(k, format!("`.{}()`", t[k + 1].text), out);
            }
            if t[k].kind == TokKind::Ident
                && PANIC_MACROS.contains(&t[k].text.as_str())
                && t.get(k + 1).is_some_and(|n| n.is_punct("!"))
            {
                hit(k, format!("`{}!`", t[k].text), out);
            }
            if panic_index_at(t, k) {
                hit(k, "indexing/slicing".to_string(), out);
            }
            if panic_div_at(t, k) {
                hit(k, format!("`{}` by a non-constant", t[k].text), out);
            }
        }
    }
}

// ---- rule: disk-taint -----------------------------------------------------

/// Per-variable taint state. Absence from the map means clean.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Taint {
    /// Was tainted, then passed a bounds/validation check.
    Checked,
    /// Carries unvalidated disk bytes: (source line, source fn).
    Tainted(usize, String),
}

type TaintState = BTreeMap<String, Taint>;

/// May-analysis join: Tainted beats Checked beats clean (absent).
fn join_taint(a: &TaintState, b: &TaintState) -> TaintState {
    let mut out = a.clone();
    for (k, v) in b {
        match out.get(k) {
            Some(Taint::Tainted(..)) => {}
            Some(Taint::Checked) => {
                if matches!(v, Taint::Tainted(..)) {
                    out.insert(k.clone(), v.clone());
                }
            }
            None => {
                out.insert(k.clone(), v.clone());
            }
        }
    }
    out
}

const COMPARISONS: [&str; 6] = ["<", "<=", ">", ">=", "==", "!="];

/// Does a comparison touch the identifier at `idx` (skipping `as T`
/// casts and closing parens between the ident and the operator)?
fn compared_at(t: &[Tok], lo: usize, idx: usize) -> bool {
    // Look right: `x as usize ) <` still checks x.
    let mut j = idx + 1;
    while j + 1 < t.len() && t[j].is_ident("as") && t[j + 1].kind == TokKind::Ident {
        j += 2;
    }
    while j < t.len() && t[j].is_punct(")") {
        j += 1;
    }
    if t.get(j)
        .is_some_and(|n| n.kind == TokKind::Punct && COMPARISONS.contains(&n.text.as_str()))
    {
        return true;
    }
    // Look left: `len > x`.
    let mut p = idx;
    while p > lo && t[p - 1].is_punct("(") {
        p -= 1;
    }
    p > lo && t[p - 1].kind == TokKind::Punct && COMPARISONS.contains(&t[p - 1].text.as_str())
}

/// Is the identifier at `idx` sanitized inside this statement: by an
/// adjacent comparison, a `.min(`/`.clamp(` call, or by being an
/// argument to a `check*`/`valid*`/`verify*`/`bound*` call?
fn sanitized_at(t: &[Tok], lo: usize, hi: usize, idx: usize) -> bool {
    if compared_at(t, lo, idx) {
        return true;
    }
    if t.get(idx + 1).is_some_and(|n| n.is_punct("."))
        && t.get(idx + 2)
            .is_some_and(|n| n.is_ident("min") || n.is_ident("clamp"))
        && t.get(idx + 3).is_some_and(|n| n.is_punct("("))
    {
        return true;
    }
    for k in lo..hi.min(t.len()) {
        if t[k].kind == TokKind::Ident && t.get(k + 1).is_some_and(|n| n.is_punct("(")) {
            let name = t[k].text.to_ascii_lowercase();
            if ["check", "valid", "verify", "bound"]
                .iter()
                .any(|w| name.contains(w))
            {
                let end = group_end(t, k + 1);
                if k + 1 < idx && idx < end {
                    return true;
                }
            }
        }
    }
    false
}

/// A taint-source call inside `[lo, hi)`, if any: (line, name).
fn source_call(t: &[Tok], lo: usize, hi: usize) -> Option<(usize, String)> {
    (lo..hi.min(t.len())).find_map(|k| {
        (t[k].kind == TokKind::Ident
            && TAINT_SOURCES.contains(&t[k].text.as_str())
            && t.get(k + 1).is_some_and(|n| n.is_punct("(")))
        .then(|| (t[k].line, t[k].text.clone()))
    })
}

/// Transfer one statement's effect onto the taint state. `cond` marks
/// an `if`/`while`/`match` head: it can sanitize (that is the usual
/// place a bounds check lives) but never assigns.
fn taint_transfer(t: &[Tok], state: &mut TaintState, lo: usize, hi: usize, cond: bool) {
    // 1. Sanitize: a comparison/min/clamp/check touching a tainted var
    //    downgrades it for all paths out of this statement.
    let tainted: Vec<String> = state
        .iter()
        .filter(|(_, v)| matches!(v, Taint::Tainted(..)))
        .map(|(k, _)| k.clone())
        .collect();
    for var in tainted {
        for k in lo..hi.min(t.len()) {
            if t[k].is_ident(&var) && sanitized_at(t, lo, hi, k) {
                state.insert(var.clone(), Taint::Checked);
                break;
            }
        }
    }

    // 2. Assignment: `let [mut] x [: T] = rhs` or `x =/+= rhs`.
    let hi = hi.min(t.len());
    if cond || lo >= hi {
        return;
    }
    let (var, rhs_lo) = if t[lo].is_ident("let") {
        let mut j = lo + 1;
        if t.get(j).is_some_and(|n| n.is_ident("mut")) {
            j += 1;
        }
        let Some(name) = t.get(j).filter(|n| n.kind == TokKind::Ident) else {
            return;
        };
        // Find the `=` at depth 0 (skipping a type annotation).
        let mut eq = j + 1;
        let mut depth = 0i64;
        while eq < hi {
            match t[eq].text.as_str() {
                "(" | "[" | "{" | "<" if t[eq].kind == TokKind::Punct => depth += 1,
                ")" | "]" | "}" | ">" if t[eq].kind == TokKind::Punct => depth -= 1,
                "=" if depth == 0 && t[eq].kind == TokKind::Punct => break,
                _ => {}
            }
            eq += 1;
        }
        if eq >= hi {
            return;
        }
        (name.text.clone(), eq + 1)
    } else if t[lo].kind == TokKind::Ident
        && t.get(lo + 1).is_some_and(|n| {
            n.kind == TokKind::Punct && matches!(n.text.as_str(), "=" | "+=" | "-=" | "*=" | "|=")
        })
    {
        (t[lo].text.clone(), lo + 2)
    } else {
        return;
    };

    let compound = !t[rhs_lo - 1].is_punct("=");
    let mut new = if let Some((line, src)) = source_call(t, rhs_lo, hi) {
        Some(Taint::Tainted(line, src))
    } else {
        // Propagate from tainted/checked vars mentioned on the right.
        let mut found: Option<Taint> = None;
        for tok in t.iter().take(hi).skip(rhs_lo) {
            if tok.kind != TokKind::Ident {
                continue;
            }
            match state.get(&tok.text) {
                Some(tn @ Taint::Tainted(..)) => {
                    found = Some(tn.clone());
                    break;
                }
                Some(Taint::Checked) => found = Some(Taint::Checked),
                None => {}
            }
        }
        found
    };
    if compound {
        // `x += tainted` taints x even if x was clean, and vice versa.
        if let Some(old @ Taint::Tainted(..)) = state.get(&var) {
            new = Some(old.clone());
        }
    }
    match new {
        Some(tn) => {
            state.insert(var, tn);
        }
        None => {
            state.remove(&var);
        }
    }
}

/// Sink descriptions found in one statement given the state before it.
#[allow(clippy::too_many_arguments)]
fn taint_sinks(
    a: &Analysis,
    state: &TaintState,
    lo: usize,
    hi: usize,
    reported: &mut BTreeSet<(usize, String)>,
    out: &mut Vec<Finding>,
) {
    let t = &a.toks;
    let hi = hi.min(t.len());
    fn flag(
        a: &Analysis,
        reported: &mut BTreeSet<(usize, String)>,
        line: usize,
        var: &str,
        sink: &str,
        taint: &Taint,
        out: &mut Vec<Finding>,
    ) {
        let Taint::Tainted(src_line, src) = taint else {
            return;
        };
        if reported.insert((line, var.to_string())) {
            a.push_ev(
                out,
                line,
                "disk-taint",
                format!(
                    "disk-derived `{var}` (from `{src}`, line {src_line}) used as {sink} without a bounds check"
                ),
                vec![
                    format!("tainted by `{src}` at {}:{src_line}", a.rel),
                    format!("reaches this {sink} unchecked on at least one path"),
                ],
            );
        }
    }
    // Scan a call/index argument group for tainted vars or direct
    // source calls.
    #[allow(clippy::too_many_arguments)]
    fn scan_group(
        a: &Analysis,
        state: &TaintState,
        hi: usize,
        reported: &mut BTreeSet<(usize, String)>,
        open: usize,
        sink: &str,
        out: &mut Vec<Finding>,
    ) {
        let t = &a.toks;
        let end = group_end(t, open).min(hi);
        for j in open + 1..end.saturating_sub(1) {
            if t[j].kind != TokKind::Ident {
                continue;
            }
            if let Some(taint) = state.get(&t[j].text) {
                flag(a, reported, t[j].line, &t[j].text, sink, taint, out);
            }
            if TAINT_SOURCES.contains(&t[j].text.as_str())
                && t.get(j + 1).is_some_and(|n| n.is_punct("("))
            {
                let taint = Taint::Tainted(t[j].line, t[j].text.clone());
                let var = format!("{}(..)", t[j].text);
                flag(a, reported, t[j].line, &var, sink, &taint, out);
            }
        }
    }
    let io_names = io_call_names();
    for k in lo..hi {
        if panic_index_at(t, k) {
            scan_group(a, state, hi, reported, k, "a slice index", out);
        }
        if t[k].is_ident("PageId")
            && t.get(k + 1).is_some_and(|n| n.is_punct("::"))
            && t.get(k + 2).is_some_and(|n| n.is_ident("new"))
            && t.get(k + 3).is_some_and(|n| n.is_punct("("))
        {
            scan_group(a, state, hi, reported, k + 3, "a PageId", out);
        }
        if t[k].kind == TokKind::Ident
            && io_names.contains(t[k].text.as_str())
            && t.get(k + 1).is_some_and(|n| n.is_punct("("))
            && !(k > 0 && t[k - 1].is_ident("fn"))
        {
            scan_group(a, state, hi, reported, k + 1, "an I/O-call argument", out);
        }
        // Offset/length arithmetic: tainted var combined with a
        // unit-bearing chain (the unit-mixing heuristics as sink type).
        if t[k].kind == TokKind::Punct
            && matches!(t[k].text.as_str(), "+" | "-" | "*" | "<<" | "+=" | "-=")
            && k > lo
            && ends_operand(&t[k - 1])
        {
            let l = left_chain(t, k);
            let r = crate::loblint::right_chain(t, k);
            let l_taint = l
                .as_ref()
                .and_then(|c| (c.len() == 1).then(|| state.get(&c[0]).cloned()).flatten());
            let r_taint = r.as_ref().and_then(|(c, call, _)| {
                (!call && c.len() == 1)
                    .then(|| state.get(&c[0]).cloned())
                    .flatten()
            });
            let l_unit = l.as_ref().and_then(|c| unit_of(c));
            let r_unit = r
                .as_ref()
                .and_then(|(c, call, _)| if *call { None } else { unit_of(c) });
            if let (Some(taint), Some(unit)) = (&l_taint, r_unit) {
                if let Some(c) = &l {
                    let sink = format!("{} arithmetic", unit.name());
                    flag(a, reported, t[k].line, &c[0], &sink, taint, out);
                }
            } else if let (Some(taint), Some(unit)) = (&r_taint, l_unit) {
                if let Some((c, _, _)) = &r {
                    let sink = format!("{} arithmetic", unit.name());
                    flag(a, reported, t[k].line, &c[0], &sink, taint, out);
                }
            }
        }
    }
}

fn check_disk_taint(a: &Analysis, f: &FnDef, out: &mut Vec<Finding>) {
    let Some((b0, b1)) = f.body else { return };
    let t = &a.toks;
    // Cheap pre-filter: no source call, no taint.
    if source_call(t, b0, b1).is_none() {
        return;
    }
    let cfg = lobflow::build_cfg(t, b0, b1);
    let transfer = |state: &mut TaintState, s: &lobflow::Stmt| {
        taint_transfer(t, state, s.lo, s.hi, s.kind == lobflow::StmtKind::Cond)
    };
    let entries = lobflow::forward(&cfg, TaintState::new(), join_taint, transfer);
    let mut reported = BTreeSet::new();
    lobflow::replay(&cfg, &entries, transfer, |state, s| {
        taint_sinks(a, state, s.lo, s.hi, &mut reported, out);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loblint::lint_sources;

    fn findings_for(files: &[(&str, &str)], rule: &str) -> Vec<Finding> {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(rel, content)| (rel.to_string(), content.to_string()))
            .collect();
        lint_sources(&sources)
            .into_iter()
            .filter(|f| f.rule == rule)
            .collect()
    }

    // ---- lock-order ---------------------------------------------------

    #[test]
    fn opposite_acquisition_orders_form_a_cycle() {
        let files = [(
            "crates/core/src/locks.rs",
            "fn ab(x: &S, y: &S) { let g = x.alpha.lock(); let h = y.beta.lock(); use2(g, h); }\n\
             fn ba(x: &S, y: &S) { let g = y.beta.lock(); let h = x.alpha.lock(); use2(g, h); }\n",
        )];
        let found = findings_for(&files, "lock-order");
        let cycles: Vec<_> = found
            .iter()
            .filter(|f| f.message.contains("cycle"))
            .collect();
        assert_eq!(cycles.len(), 1, "{found:?}");
        assert!(cycles[0].message.contains("core::alpha"));
        assert!(cycles[0].message.contains("core::beta"));
        assert!(
            !cycles[0].evidence.is_empty(),
            "cycle findings carry the acquisition chain: {cycles:?}"
        );
    }

    #[test]
    fn mutation_drill_consistent_order_is_quiet() {
        let files = [(
            "crates/core/src/locks.rs",
            "fn ab(x: &S, y: &S) { let g = x.alpha.lock(); let h = y.beta.lock(); use2(g, h); }\n\
             fn ab2(x: &S, y: &S) { let g = x.alpha.lock(); let h = y.beta.lock(); use2(g, h); }\n",
        )];
        assert_eq!(findings_for(&files, "lock-order"), Vec::<Finding>::new());
    }

    #[test]
    fn reacquiring_a_held_lock_is_a_self_deadlock() {
        let files = [(
            "crates/core/src/locks.rs",
            "fn f(x: &S) { let g = x.alpha.lock(); let h = x.alpha.lock(); use2(g, h); }\n",
        )];
        let found = findings_for(&files, "lock-order");
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("re-acquires"));
    }

    #[test]
    fn nesting_through_a_call_is_an_edge() {
        // inner() takes beta; outer holds alpha across a call to it, and
        // another fn nests them the other way: cycle through the graph.
        let files = [(
            "crates/core/src/locks.rs",
            "fn inner(y: &S) { let h = y.beta.lock(); h.touch(); }\n\
             fn outer(x: &S, y: &S) { let g = x.alpha.lock(); inner(y); g.touch(); }\n\
             fn other(x: &S, y: &S) { let g = y.beta.lock(); let h = x.alpha.lock(); use2(g, h); }\n",
        )];
        let found = findings_for(&files, "lock-order");
        let cycles: Vec<_> = found
            .iter()
            .filter(|f| f.message.contains("cycle"))
            .collect();
        assert_eq!(cycles.len(), 1, "{found:?}");
        assert!(
            cycles[0]
                .evidence
                .iter()
                .any(|e| e.contains("via `inner()`")),
            "{cycles:?}"
        );
    }

    #[test]
    fn canonical_order_violation_is_reported_and_fix_is_quiet() {
        // A page pin taken first, the DB lock second: inner-before-outer.
        let decl = "pub struct SharedDb { inner: Mutex<Db> }\n";
        let bad = [(
            "crates/core/src/shared.rs",
            format!(
                "{decl}impl SharedDb {{ fn f(&self, pool: &mut Pool, p: PageId) {{ \
                 let g = pool.guard(p); let h = self.inner.lock(); h.touch(g); }} }}\n"
            ),
        )];
        let bad: Vec<(&str, &str)> = bad.iter().map(|(r, c)| (*r, c.as_str())).collect();
        let found = findings_for(&bad, "lock-order");
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("canonical lock order"));
        assert!(found[0]
            .evidence
            .iter()
            .any(|e| e.contains("canonical order:")));

        // Mutation drill: outer-then-inner follows the table.
        let good = [(
            "crates/core/src/shared.rs",
            format!(
                "{decl}impl SharedDb {{ fn f(&self, pool: &mut Pool, p: PageId) {{ \
                 let h = self.inner.lock(); let g = pool.guard(p); h.touch(g); }} }}\n"
            ),
        )];
        let good: Vec<(&str, &str)> = good.iter().map(|(r, c)| (*r, c.as_str())).collect();
        assert_eq!(findings_for(&good, "lock-order"), Vec::<Finding>::new());
    }

    #[test]
    fn declaration_names_beat_receiver_spelling() {
        // `db.inner.lock()` from outside the impl still names the
        // resource `SharedDb.inner` because the declaration says so.
        let files = [(
            "crates/core/src/shared.rs",
            "pub struct SharedDb { inner: Mutex<Db> }\n\
             fn f(db: &SharedDb, pool: &mut Pool, p: PageId) { \
             let g = pool.guard(p); let h = db.inner.lock(); h.touch(g); }\n",
        )];
        let found = findings_for(&files, "lock-order");
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("SharedDb.inner"), "{found:?}");
    }

    #[test]
    fn arc_wrapped_rwlock_still_declares_the_shared_db_lock() {
        // The two-tier handle is `inner: Arc<RwLock<Db>>`; the `Arc`
        // wrapper must not hide the declaration, and `.write()` on it
        // must name `SharedDb.inner` — here acquired *under* a page
        // pin, which the canonical table forbids.
        let decl = "pub struct SharedDb { inner: Arc<RwLock<Db>> }\n";
        let bad = format!(
            "{decl}fn f(db: &SharedDb, pool: &mut Pool, p: PageId) {{ \
             let g = pool.guard(p); let h = db.inner.write(); h.touch(g); }}\n"
        );
        let found = findings_for(
            &[("crates/core/src/shared_fix.rs", bad.as_str())],
            "lock-order",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("SharedDb.inner"), "{found:?}");
        assert!(found[0].message.contains("canonical lock order"));

        // Mutation drill: DB lock first, pin second is the sanctioned
        // order and must be quiet.
        let good = format!(
            "{decl}fn f(db: &SharedDb, pool: &mut Pool, p: PageId) {{ \
             let h = db.inner.write(); let g = pool.guard(p); h.touch(g); }}\n"
        );
        assert_eq!(
            findings_for(
                &[("crates/core/src/shared_fix.rs", good.as_str())],
                "lock-order"
            ),
            Vec::<Finding>::new()
        );
    }

    #[test]
    fn shard_latch_above_pool_ctl_violates_canonical_order() {
        // The sharded pool's discipline is ctl -> shard: taking the
        // control mutex while a shard's page latch is held inverts the
        // table (and deadlocks against a concurrent fix()).
        let decl = "struct Shard { pages: RwLock<PageTable> }\n\
                    pub struct BufferPool { ctl: Mutex<PoolInner> }\n";
        let bad = format!(
            "{decl}impl BufferPool {{ fn bad(&self, slot: &Shard) {{ \
             let g = slot.pages.write(); let h = self.ctl.lock(); use2(g, h); }} }}\n"
        );
        let found = findings_for(
            &[("crates/bufpool/src/pool_fix.rs", bad.as_str())],
            "lock-order",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("Shard.pages"), "{found:?}");
        assert!(found[0].message.contains("BufferPool.ctl"), "{found:?}");
        assert!(found[0].message.contains("canonical lock order"));

        // Mutation drill: ctl first, shard latch second is the real
        // pool's order and must be quiet.
        let good = format!(
            "{decl}impl BufferPool {{ fn good(&self, slot: &Shard) {{ \
             let h = self.ctl.lock(); let g = slot.pages.write(); use2(g, h); }} }}\n"
        );
        assert_eq!(
            findings_for(
                &[("crates/bufpool/src/pool_fix.rs", good.as_str())],
                "lock-order"
            ),
            Vec::<Finding>::new()
        );
    }

    // ---- guard-across-io ----------------------------------------------

    #[test]
    fn shard_latch_held_across_io_wrapper_is_flagged() {
        // A shard page latch live across a cost-counted wrapper call
        // serializes that shard behind simulated I/O.
        let decl = "struct Shard { pages: RwLock<PageTable> }\n";
        let bad = format!(
            "{decl}impl Pool {{ fn refill(&self, slot: &Shard, p: PageId) {{ \
             let g = slot.pages.write(); self.read_pages(p); g.touch(); }} }}\n"
        );
        let found = findings_for(
            &[("crates/bufpool/src/pool_fix.rs", bad.as_str())],
            "guard-across-io",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("Shard.pages"), "{found:?}");
        assert!(found[0].message.contains("read_pages"));

        // Mutation drill: dropping the latch before the I/O is quiet.
        let dropped = format!(
            "{decl}impl Pool {{ fn refill(&self, slot: &Shard, p: PageId) {{ \
             let g = slot.pages.write(); g.touch(); drop(g); self.read_pages(p); }} }}\n"
        );
        assert_eq!(
            findings_for(
                &[("crates/bufpool/src/pool_fix.rs", dropped.as_str())],
                "guard-across-io"
            ),
            Vec::<Finding>::new()
        );

        // Mutation drill: the sanctioned bufpool wrappers themselves
        // (here a fn *named* like one) stay exempt — they pin across
        // raw I/O by design.
        let wrapper = format!(
            "{decl}impl Pool {{ fn read_buffered(&self, slot: &Shard, p: PageId) {{ \
             let g = slot.pages.write(); self.read_pages(p); g.touch(); }} }}\n"
        );
        assert_eq!(
            findings_for(
                &[("crates/bufpool/src/pool_fix.rs", wrapper.as_str())],
                "guard-across-io"
            ),
            Vec::<Finding>::new()
        );
    }

    #[test]
    fn guard_held_across_wrapper_call_is_flagged() {
        let files = [(
            "crates/core/src/gx.rs",
            "struct G { lk: Mutex<u32> }\n\
             impl G { fn f(&self, pool: &mut Pool, p: PageId) { \
             let g = self.lk.lock(); pool.read_pages(p); g.touch(); } }\n",
        )];
        let found = findings_for(&files, "guard-across-io");
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("read_pages"));
        assert!(found[0].message.contains("G.lk"));
        assert!(!found[0].evidence.is_empty());
    }

    #[test]
    fn mutation_drill_dropping_the_guard_first_is_quiet() {
        let files = [(
            "crates/core/src/gx.rs",
            "struct G { lk: Mutex<u32> }\n\
             impl G { fn f(&self, pool: &mut Pool, p: PageId) { \
             let g = self.lk.lock(); g.touch(); drop(g); pool.read_pages(p); } }\n",
        )];
        assert_eq!(
            findings_for(&files, "guard-across-io"),
            Vec::<Finding>::new()
        );
    }

    #[test]
    fn page_pin_across_std_fs_is_flagged() {
        let files = [(
            "crates/core/src/gx.rs",
            "fn f(pool: &mut Pool, p: PageId, path: &Path) { \
             let g = pool.guard_mut(p); std::fs::write(path, &g[..]); }\n",
        )];
        let found = findings_for(&files, "guard-across-io");
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("page pin"));
        assert!(found[0].message.contains("std::fs"));
    }

    // ---- panic-while-locked -------------------------------------------

    #[test]
    fn indexing_under_a_guard_is_flagged() {
        let files = [(
            "crates/core/src/pl.rs",
            "struct P { lk: Mutex<u32> }\n\
             impl P { fn f(&self, v: &[u8], i: usize) -> u8 {\n\
             let g = self.lk.lock();\n\
             let b = v[i];\n\
             g.set(b);\n\
             b } }\n",
        )];
        let found = findings_for(&files, "panic-while-locked");
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 4);
        assert!(found[0].message.contains("P.lk"));
    }

    #[test]
    fn mutation_drill_panic_work_before_the_lock_is_quiet() {
        let files = [(
            "crates/core/src/pl.rs",
            "struct P { lk: Mutex<u32> }\n\
             impl P { fn f(&self, v: &[u8], i: usize) -> u8 {\n\
             let b = v[i];\n\
             let g = self.lk.lock();\n\
             g.set(b);\n\
             b } }\n",
        )];
        assert_eq!(
            findings_for(&files, "panic-while-locked"),
            Vec::<Finding>::new()
        );
    }

    #[test]
    fn unwrap_and_panic_macro_under_guard_are_flagged() {
        let files = [(
            "crates/core/src/pl.rs",
            "struct P { lk: Mutex<u32> }\n\
             impl P { fn f(&self) { let g = self.lk.lock(); g.get().unwrap(); } \
             fn h(&self) { let g = self.lk.lock(); if g.bad() { panic!(\"boom\"); } } }\n",
        )];
        let found = findings_for(&files, "panic-while-locked");
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().any(|f| f.message.contains(".unwrap()")));
        assert!(found.iter().any(|f| f.message.contains("`panic!`")));
    }

    #[test]
    fn indexing_under_a_shard_latch_is_flagged() {
        // A panic under a shard's page latch poisons that shard for
        // every later fix() that hashes to it.
        let decl = "struct Shard { pages: RwLock<PageTable> }\n";
        let bad = format!(
            "{decl}fn f(slot: &Shard, v: &[u8], i: usize) -> u8 {{\n\
             let g = slot.pages.write();\n\
             let b = v[i];\n\
             g.set(b);\n\
             b }}\n"
        );
        let found = findings_for(
            &[("crates/bufpool/src/pool_fix.rs", bad.as_str())],
            "panic-while-locked",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("Shard.pages"), "{found:?}");

        // Mutation drill: the same indexing before the latch is quiet.
        let good = format!(
            "{decl}fn f(slot: &Shard, v: &[u8], i: usize) -> u8 {{\n\
             let b = v[i];\n\
             let g = slot.pages.write();\n\
             g.set(b);\n\
             b }}\n"
        );
        assert_eq!(
            findings_for(
                &[("crates/bufpool/src/pool_fix.rs", good.as_str())],
                "panic-while-locked"
            ),
            Vec::<Finding>::new()
        );
    }

    #[test]
    fn latch_closure_is_a_region_too() {
        // A thread-local RefCell latch: panic inside the .with closure.
        let files = [(
            "crates/obs/src/pl.rs",
            "thread_local! { static SINKX: RefCell<u32> = RefCell::new(0); }\n\
             fn f(v: &[u8], i: usize) -> u8 { SINKX.with(|s| v[i]) }\n",
        )];
        let found = findings_for(&files, "panic-while-locked");
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("obs::SINKX"), "{found:?}");
    }

    // ---- disk-taint ---------------------------------------------------

    #[test]
    fn tainted_index_is_flagged_with_taint_path() {
        let files = [(
            "crates/core/src/dt.rs",
            "fn f(page: &[u8], store: &[u8]) -> u8 {\n\
             let idx = decode(page);\n\
             store[idx]\n}\n",
        )];
        let found = findings_for(&files, "disk-taint");
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 3);
        assert!(found[0].message.contains("`decode`"));
        assert!(
            found[0].evidence.iter().any(|e| e.contains("tainted by")),
            "{found:?}"
        );
    }

    #[test]
    fn mutation_drill_bounds_check_sanitizes() {
        let files = [(
            "crates/core/src/dt.rs",
            "fn f(page: &[u8], store: &[u8]) -> u8 {\n\
             let idx = decode(page);\n\
             if idx < store.len() { return store[idx]; }\n\
             0\n}\n",
        )];
        assert_eq!(findings_for(&files, "disk-taint"), Vec::<Finding>::new());
    }

    #[test]
    fn taint_survives_a_join_from_one_branch() {
        let files = [(
            "crates/core/src/dt.rs",
            "fn f(page: &[u8], store: &[u8], cold: bool) -> u8 {\n\
             let mut idx = 0;\n\
             if cold { idx = decode(page); }\n\
             store[idx]\n}\n",
        )];
        let found = findings_for(&files, "disk-taint");
        assert_eq!(found.len(), 1, "one tainted path suffices: {found:?}");
        assert_eq!(found[0].line, 4);
    }

    #[test]
    fn direct_source_in_sink_position_is_flagged() {
        let files = [(
            "crates/core/src/dt.rs",
            "fn f(page: &[u8], store: &[u8]) -> u8 { store[get_u16(page, 0)] }\n",
        )];
        let found = findings_for(&files, "disk-taint");
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("get_u16"));
    }

    #[test]
    fn tainted_page_id_and_offset_arithmetic_are_sinks() {
        let files = [(
            "crates/core/src/dt.rs",
            "fn f(page: &[u8]) -> PageId {\n\
             let p = get_u32(page, 4);\n\
             PageId::new(AREA, p)\n}\n\
             fn g(page: &[u8], base_off: u64) -> u64 {\n\
             let d = get_u64(page, 0);\n\
             base_off + d\n}\n",
        )];
        let found = findings_for(&files, "disk-taint");
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().any(|f| f.message.contains("PageId")));
        assert!(found.iter().any(|f| f.message.contains("arithmetic")));
    }

    #[test]
    fn checked_via_min_or_validator_is_quiet() {
        let files = [(
            "crates/core/src/dt.rs",
            "fn f(page: &[u8], store: &[u8]) -> u8 {\n\
             let idx = decode(page);\n\
             let idx = idx.min(store.len() - 1);\n\
             store[idx]\n}\n\
             fn g(page: &[u8], store: &[u8]) -> u8 {\n\
             let idx = decode(page);\n\
             check_bounds(idx, store.len());\n\
             store[idx]\n}\n",
        )];
        assert_eq!(findings_for(&files, "disk-taint"), Vec::<Finding>::new());
    }
}
