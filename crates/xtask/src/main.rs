//! `cargo xtask`-style workspace automation (std-only, no dependencies).
//!
//! Subcommands:
//!
//! * `loblint [--json] [--out <path>] [--root <dir>] [--baseline <path>]
//!   [--no-baseline] [--update-baseline] [--rule <name>]
//!   [--explain <rule>] [--stats]` — run the project-specific static analysis
//!   pass over every workspace `.rs` source. Findings frozen in
//!   `loblint.baseline` are reported but do not fail the run; exit
//!   code 0 means no *new* findings, 1 means new findings were
//!   reported, 2 means the pass itself could not run (bad root,
//!   unreadable files). `--update-baseline` regenerates the baseline
//!   deterministically (sorted) and reports resolved entries.
//!   `--rule` runs a single rule in isolation; `--explain` prints a
//!   rule's documentation entry and exits; `--stats` prints a per-rule
//!   finding-count and baseline-delta table.
//! * `check-lint-json <path>` — validate a `loblint --json` document
//!   against the `loblint-findings/v2` schema (same exit codes).
//! * `lint-sarif <path> [--out <path>]` — convert a `loblint --json`
//!   document to SARIF 2.1.0 for code-scanning UIs; validates both the
//!   input (v2 schema) and the emitted SARIF before writing.
//! * `check-bench-json <path>` — validate a bench binary's `--json-out`
//!   document against the `lobstore-bench-report/v1|v2` schema.
//! * `bench-compare <baseline.json> <new.json> [--threshold-pct <n>]` —
//!   the perf-regression gate: fail when simulated scan time regresses
//!   past the threshold (default 20 %) or health series blow up against
//!   the baseline (DESIGN.md §14).
//!
//! See `loblint::RULES` for the rule set and `DESIGN.md` ("Correctness
//! tooling" and "Static analysis") for the rationale.

mod benchcompare;
mod benchjson;
mod effectrules;
mod flowrules;
mod lintjson;
mod lobflow;
mod loblint;
mod lobsyn;
mod sarif;

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("loblint") => {
            let mut opts = loblint::Opts {
                root: PathBuf::from("."),
                json: false,
                out: None,
                baseline: None,
                no_baseline: false,
                update_baseline: false,
                rule: None,
                explain: None,
                stats: false,
            };
            let mut rest = args;
            while let Some(arg) = rest.next() {
                let mut value_arg = |name: &str| match rest.next() {
                    Some(v) => Ok(v),
                    None => {
                        eprintln!("loblint: {name} needs an argument");
                        Err(ExitCode::from(2))
                    }
                };
                match arg.as_str() {
                    "--json" => opts.json = true,
                    "--stats" => opts.stats = true,
                    "--no-baseline" => opts.no_baseline = true,
                    "--update-baseline" => opts.update_baseline = true,
                    "--root" => match value_arg("--root") {
                        Ok(p) => opts.root = PathBuf::from(p),
                        Err(c) => return c,
                    },
                    "--out" => match value_arg("--out") {
                        Ok(p) => opts.out = Some(PathBuf::from(p)),
                        Err(c) => return c,
                    },
                    "--baseline" => match value_arg("--baseline") {
                        Ok(p) => opts.baseline = Some(PathBuf::from(p)),
                        Err(c) => return c,
                    },
                    "--rule" => match value_arg("--rule") {
                        Ok(r) => opts.rule = Some(r),
                        Err(c) => return c,
                    },
                    "--explain" => match value_arg("--explain") {
                        Ok(r) => opts.explain = Some(r),
                        Err(c) => return c,
                    },
                    other => {
                        eprintln!("loblint: unknown argument `{other}`");
                        return ExitCode::from(2);
                    }
                }
            }
            loblint::run(&opts)
        }
        Some("check-lint-json") => match args.next() {
            Some(path) => lintjson::run(std::path::Path::new(&path)),
            None => {
                eprintln!("check-lint-json: needs the path of a loblint --json document");
                ExitCode::from(2)
            }
        },
        Some("lint-sarif") => {
            let mut input = None;
            let mut out = None;
            let mut rest = args;
            while let Some(arg) = rest.next() {
                if arg == "--out" {
                    match rest.next() {
                        Some(p) => out = Some(PathBuf::from(p)),
                        None => {
                            eprintln!("lint-sarif: --out needs an argument");
                            return ExitCode::from(2);
                        }
                    }
                } else if input.is_none() {
                    input = Some(PathBuf::from(arg));
                } else {
                    eprintln!("lint-sarif: unexpected argument `{arg}`");
                    return ExitCode::from(2);
                }
            }
            match input {
                Some(path) => sarif::run(&path, out.as_deref()),
                None => {
                    eprintln!("lint-sarif: needs the path of a loblint --json document");
                    ExitCode::from(2)
                }
            }
        }
        Some("check-bench-json") => match args.next() {
            Some(path) => benchjson::run(std::path::Path::new(&path)),
            None => {
                eprintln!("check-bench-json: needs the path of a --json-out report");
                ExitCode::from(2)
            }
        },
        Some("bench-compare") => {
            let mut paths = Vec::new();
            let mut threshold = benchcompare::DEFAULT_THRESHOLD_PCT;
            let mut rest = args;
            while let Some(arg) = rest.next() {
                if arg == "--threshold-pct" {
                    match rest.next().and_then(|v| v.parse::<f64>().ok()) {
                        Some(t) if t >= 0.0 => threshold = t,
                        _ => {
                            eprintln!("bench-compare: --threshold-pct needs a non-negative number");
                            return ExitCode::from(2);
                        }
                    }
                } else {
                    paths.push(PathBuf::from(arg));
                }
            }
            match paths.as_slice() {
                [baseline, new] => benchcompare::run(baseline, new, threshold),
                _ => {
                    eprintln!("bench-compare: needs exactly <baseline.json> <new.json>");
                    ExitCode::from(2)
                }
            }
        }
        Some(other) => {
            eprintln!(
                "xtask: unknown subcommand `{other}` (try `loblint`, `check-lint-json`, \
                 `lint-sarif`, `check-bench-json`, `bench-compare`)"
            );
            ExitCode::from(2)
        }
        None => {
            eprintln!(
                "usage: cargo run -p xtask -- loblint [--json] [--out <path>] [--root <dir>] \
                 [--baseline <path>] [--no-baseline] [--update-baseline] [--rule <name>] \
                 [--explain <rule>] [--stats]\n       \
                 cargo run -p xtask -- check-lint-json <path>\n       \
                 cargo run -p xtask -- lint-sarif <path> [--out <path>]\n       \
                 cargo run -p xtask -- check-bench-json <path>\n       \
                 cargo run -p xtask -- bench-compare <baseline.json> <new.json> \
                 [--threshold-pct <n>]"
            );
            ExitCode::from(2)
        }
    }
}
