//! `cargo xtask`-style workspace automation (std-only, no dependencies).
//!
//! Subcommands:
//!
//! * `loblint [--json] [--root <dir>]` — run the project-specific static
//!   analysis pass over every workspace `.rs` source. Exit code 0 means
//!   clean, 1 means findings were reported, 2 means the pass itself could
//!   not run (bad root, unreadable files).
//! * `check-bench-json <path>` — validate a bench binary's `--json-out`
//!   document against the `lobstore-bench-report/v1` schema (same exit
//!   code convention).
//!
//! See `loblint::RULES` for the rule set and `DESIGN.md` ("Correctness
//! tooling" and "Observability") for the rationale.

mod benchjson;
mod loblint;

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("loblint") => {
            let mut json = false;
            let mut root = String::from(".");
            let mut rest = args;
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--json" => json = true,
                    "--root" => match rest.next() {
                        Some(dir) => root = dir,
                        None => {
                            eprintln!("loblint: --root needs a directory argument");
                            return ExitCode::from(2);
                        }
                    },
                    other => {
                        eprintln!("loblint: unknown argument `{other}`");
                        return ExitCode::from(2);
                    }
                }
            }
            loblint::run(std::path::Path::new(&root), json)
        }
        Some("check-bench-json") => match args.next() {
            Some(path) => benchjson::run(std::path::Path::new(&path)),
            None => {
                eprintln!("check-bench-json: needs the path of a --json-out report");
                ExitCode::from(2)
            }
        },
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}` (try `loblint`, `check-bench-json`)");
            ExitCode::from(2)
        }
        None => {
            eprintln!(
                "usage: cargo run -p xtask -- loblint [--json] [--root <dir>]\n       \
                 cargo run -p xtask -- check-bench-json <path>"
            );
            ExitCode::from(2)
        }
    }
}
