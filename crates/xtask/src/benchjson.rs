//! `check-bench-json` — validate a machine-readable bench report.
//!
//! Every bench binary emits (with `--json-out <path>`) one JSON document
//! in the `lobstore-bench-report/v1` or `/v2` schema; CI runs a small
//! bench and pushes its output through this validator so the schema
//! cannot drift silently. The checks are structural: schema tag, binary
//! name, scale block, one record per table row with string cells, string
//! notes, and — for v2 — well-formed health time series (scheme/name
//! tags, numeric summary, `[tick, value]` points with monotonic ticks).
//! The full field-by-field reference lives in `docs/SCHEMAS.md`.

use std::path::Path;
use std::process::ExitCode;

use lobstore_obs::json::{self, Value};
use lobstore_obs::{BENCH_REPORT_SCHEMA, BENCH_REPORT_SCHEMA_V2};

/// Validate `doc` as a `lobstore-bench-report/v1|v2` document. Returns
/// every problem found (empty = valid).
pub fn validate(doc: &Value) -> Vec<String> {
    let mut problems = Vec::new();
    let mut fail = |msg: String| problems.push(msg);

    let mut v2 = false;
    match doc.get("schema").and_then(Value::as_str) {
        Some(s) if s == BENCH_REPORT_SCHEMA => {}
        Some(s) if s == BENCH_REPORT_SCHEMA_V2 => v2 = true,
        Some(s) => fail(format!(
            "schema is {s:?}, expected {BENCH_REPORT_SCHEMA:?} or {BENCH_REPORT_SCHEMA_V2:?}"
        )),
        None => fail("missing string field `schema`".to_string()),
    }
    match doc.get("bin").and_then(Value::as_str) {
        Some(b) if !b.is_empty() => {}
        _ => fail("missing non-empty string field `bin`".to_string()),
    }
    if doc.get("title").and_then(Value::as_str).is_none() {
        fail("missing string field `title`".to_string());
    }
    match doc.get("wall_clock_us").and_then(Value::as_u64) {
        Some(n) if n > 0 => {}
        _ => fail(
            "`wall_clock_us` must be a positive integer (microseconds of wall time)".to_string(),
        ),
    }

    match doc.get("scale") {
        Some(scale) => {
            for field in ["object_bytes", "ops", "mark_every"] {
                match scale.get(field).and_then(Value::as_u64) {
                    Some(n) if n > 0 => {}
                    _ => fail(format!("scale.{field} must be a positive integer")),
                }
            }
        }
        None => fail("missing object field `scale`".to_string()),
    }

    match doc.get("records").and_then(Value::as_arr) {
        Some(records) => {
            if records.is_empty() {
                fail("`records` is empty — the run produced no table rows".to_string());
            }
            for (i, rec) in records.iter().enumerate() {
                if rec.get("table").and_then(Value::as_u64).is_none() {
                    fail(format!("records[{i}].table must be an integer"));
                }
                if rec.get("title").and_then(Value::as_str).is_none() {
                    fail(format!("records[{i}].title must be a string"));
                }
                match rec.get("values").and_then(Value::as_obj) {
                    Some(values) if !values.is_empty() => {
                        for (k, v) in values {
                            if v.as_str().is_none() {
                                fail(format!("records[{i}].values[{k:?}] must be a string cell"));
                            }
                        }
                    }
                    _ => fail(format!("records[{i}].values must be a non-empty object")),
                }
            }
        }
        None => fail("missing array field `records`".to_string()),
    }

    match doc.get("notes").and_then(Value::as_arr) {
        Some(notes) => {
            for (i, n) in notes.iter().enumerate() {
                if n.as_str().is_none() {
                    fail(format!("notes[{i}] must be a string"));
                }
            }
        }
        None => fail("missing array field `notes`".to_string()),
    }

    match doc.get("series").and_then(Value::as_arr) {
        Some(series) if v2 => {
            if series.is_empty() {
                fail("v2 report has an empty `series` array — emit v1 instead".to_string());
            }
            for (i, s) in series.iter().enumerate() {
                for field in ["scheme", "name"] {
                    match s.get(field).and_then(Value::as_str) {
                        Some(v) if !v.is_empty() => {}
                        _ => fail(format!("series[{i}].{field} must be a non-empty string")),
                    }
                }
                if s.get("dropped").and_then(Value::as_u64).is_none() {
                    fail(format!(
                        "series[{i}].dropped must be a non-negative integer"
                    ));
                }
                match s.get("summary").and_then(Value::as_obj) {
                    Some(summary) => {
                        for field in ["p50", "p90", "p99", "max", "last"] {
                            if summary
                                .iter()
                                .find(|(k, _)| k == field)
                                .and_then(|(_, v)| v.as_num())
                                .is_none()
                            {
                                fail(format!("series[{i}].summary.{field} must be a number"));
                            }
                        }
                    }
                    None => fail(format!("series[{i}].summary must be an object")),
                }
                match s.get("points").and_then(Value::as_arr) {
                    Some(points) => {
                        if points.is_empty() {
                            fail(format!("series[{i}].points is empty"));
                        }
                        let mut prev_tick = None;
                        for (j, p) in points.iter().enumerate() {
                            let pair = p.as_arr().filter(|a| a.len() == 2);
                            let tick = pair.and_then(|a| a[0].as_u64());
                            let value = pair.and_then(|a| a[1].as_num());
                            if tick.is_none() || value.is_none() {
                                fail(format!(
                                    "series[{i}].points[{j}] must be a [tick, value] pair"
                                ));
                                continue;
                            }
                            if prev_tick.is_some() && tick <= prev_tick {
                                fail(format!(
                                    "series[{i}].points[{j}] tick is not strictly increasing"
                                ));
                            }
                            prev_tick = tick;
                        }
                    }
                    None => fail(format!("series[{i}].points must be an array")),
                }
            }
        }
        Some(_) => fail("v1 report must not carry a `series` field".to_string()),
        None if v2 => fail("v2 report is missing the `series` array".to_string()),
        None => {}
    }

    problems
}

/// Entry point for `cargo run -p xtask -- check-bench-json <path>`.
/// Exit code 0 = valid, 1 = invalid document, 2 = cannot read or parse.
pub fn run(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check-bench-json: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let doc = match json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("check-bench-json: {} is not JSON: {e:?}", path.display());
            return ExitCode::from(2);
        }
    };
    let problems = validate(&doc);
    if problems.is_empty() {
        let records = doc
            .get("records")
            .and_then(Value::as_arr)
            .map_or(0, <[Value]>::len);
        let series = doc
            .get("series")
            .and_then(Value::as_arr)
            .map_or(0, <[Value]>::len);
        let schema = doc.get("schema").and_then(Value::as_str).unwrap_or("?");
        println!(
            "ok: {} is a valid {schema} report ({records} records, {series} series)",
            path.display()
        );
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("check-bench-json: {p}");
        }
        eprintln!(
            "check-bench-json: {} problem(s) in {} — schema reference: docs/SCHEMAS.md",
            problems.len(),
            path.display()
        );
        ExitCode::from(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_doc() -> Value {
        json::parse(
            r#"{
                "schema": "lobstore-bench-report/v1",
                "bin": "fig5",
                "title": "Figure 5",
                "wall_clock_us": 120000,
                "scale": {"object_bytes": 1048576, "ops": 1000, "mark_every": 200},
                "records": [
                    {"table": 0, "title": "", "values": {"append KB": "3", "ESM/1": "55.0"}}
                ],
                "notes": ["Note: shapes match §4.2."]
            }"#,
        )
        .unwrap()
    }

    fn valid_v2_doc() -> Value {
        json::parse(
            r#"{
                "schema": "lobstore-bench-report/v2",
                "bin": "aging",
                "title": "Aging",
                "wall_clock_us": 120000,
                "scale": {"object_bytes": 1048576, "ops": 1000, "mark_every": 200},
                "records": [
                    {"table": 0, "title": "post-aging scan",
                     "values": {"scheme": "ESM/16", "wall MB/s": "100.0", "sim s": "1.55"}}
                ],
                "notes": [],
                "series": [
                    {"scheme": "ESM/16", "name": "health.leaf.frag_ratio", "dropped": 0,
                     "summary": {"p50": 0.1, "p90": 0.2, "p99": 0.2, "max": 0.2, "last": 0.15},
                     "points": [[100, 0.1], [200, 0.2], [300, 0.15]]}
                ]
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn valid_report_passes() {
        assert_eq!(validate(&valid_doc()), Vec::<String>::new());
    }

    #[test]
    fn valid_v2_report_passes() {
        assert_eq!(validate(&valid_v2_doc()), Vec::<String>::new());
    }

    #[test]
    fn v2_requires_series_and_v1_rejects_them() {
        // v2 without series.
        let mut fields: Vec<(String, Value)> = match valid_v2_doc() {
            Value::Obj(f) => f,
            _ => unreachable!(),
        };
        let series = fields.iter().position(|(k, _)| k == "series").unwrap();
        let (_, series_val) = fields.remove(series);
        let problems = validate(&Value::Obj(fields));
        assert!(
            problems.iter().any(|p| p.contains("missing the `series`")),
            "{problems:?}"
        );
        // v1 with series.
        let mut fields: Vec<(String, Value)> = match valid_doc() {
            Value::Obj(f) => f,
            _ => unreachable!(),
        };
        fields.push(("series".to_string(), series_val));
        let problems = validate(&Value::Obj(fields));
        assert!(
            problems.iter().any(|p| p.contains("must not carry")),
            "{problems:?}"
        );
    }

    #[test]
    fn v2_series_structure_is_checked() {
        let doc = json::parse(
            r#"{
                "schema": "lobstore-bench-report/v2",
                "bin": "aging",
                "title": "t",
                "wall_clock_us": 5,
                "scale": {"object_bytes": 1, "ops": 1, "mark_every": 1},
                "records": [{"table": 0, "title": "", "values": {"a": "b"}}],
                "notes": [],
                "series": [
                    {"scheme": "", "name": "health.x", "dropped": 0,
                     "summary": {"p50": 1, "p90": 1, "p99": 1, "max": 1},
                     "points": [[200, 0.2], [100, 0.1], [300, "bad"]]}
                ]
            }"#,
        )
        .unwrap();
        let problems = validate(&doc);
        assert!(
            problems.iter().any(|p| p.contains("series[0].scheme")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("summary.last")),
            "{problems:?}"
        );
        assert!(
            problems
                .iter()
                .any(|p| p.contains("not strictly increasing")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("[tick, value] pair")),
            "{problems:?}"
        );
    }

    #[test]
    fn wrong_schema_and_missing_fields_are_reported() {
        let doc = json::parse(r#"{"schema": "nope/v9"}"#).unwrap();
        let problems = validate(&doc);
        assert!(
            problems.iter().any(|p| p.contains("schema")),
            "{problems:?}"
        );
        assert!(problems.iter().any(|p| p.contains("`bin`")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("scale")), "{problems:?}");
        assert!(
            problems.iter().any(|p| p.contains("records")),
            "{problems:?}"
        );
        assert!(problems.iter().any(|p| p.contains("notes")), "{problems:?}");
    }

    #[test]
    fn empty_records_and_non_string_cells_fail() {
        let doc = json::parse(
            r#"{
                "schema": "lobstore-bench-report/v1",
                "bin": "x",
                "title": "t",
                "wall_clock_us": 5,
                "scale": {"object_bytes": 1, "ops": 1, "mark_every": 1},
                "records": [{"table": 0, "title": "", "values": {"a": 3}}],
                "notes": []
            }"#,
        )
        .unwrap();
        let problems = validate(&doc);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("string cell"));
    }

    #[test]
    fn missing_wall_clock_fails() {
        let mut fields: Vec<(String, Value)> = match valid_doc() {
            Value::Obj(f) => f,
            _ => unreachable!(),
        };
        fields.retain(|(k, _)| k != "wall_clock_us");
        let problems = validate(&Value::Obj(fields.clone()));
        assert!(
            problems.iter().any(|p| p.contains("wall_clock_us")),
            "{problems:?}"
        );
        fields.push(("wall_clock_us".to_string(), Value::from(0u64)));
        let problems = validate(&Value::Obj(fields));
        assert!(
            problems.iter().any(|p| p.contains("wall_clock_us")),
            "{problems:?}"
        );
    }

    #[test]
    fn zero_scale_fails() {
        let doc = json::parse(
            r#"{
                "schema": "lobstore-bench-report/v1",
                "bin": "x",
                "title": "t",
                "wall_clock_us": 5,
                "scale": {"object_bytes": 0, "ops": 1, "mark_every": 1},
                "records": [{"table": 0, "title": "", "values": {"a": "b"}}],
                "notes": []
            }"#,
        )
        .unwrap();
        let problems = validate(&doc);
        assert!(
            problems.iter().any(|p| p.contains("scale.object_bytes")),
            "{problems:?}"
        );
    }
}
