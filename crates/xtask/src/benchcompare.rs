//! `bench-compare` — the performance-regression gate.
//!
//! Compares a fresh bench report against a committed baseline and fails
//! (exit 1) when the new run is materially worse:
//!
//! * **Scan-rate gate** — for every record whose title contains "scan"
//!   and whose cells include `scheme` and `sim s`, the simulated scan
//!   time may not regress more than the threshold (default 20 %).
//!   The gate keys on *simulated* seconds, which are deterministic given
//!   the seed — wall-clock MB/s varies with the host and is reported
//!   informationally only.
//! * **Health gate** (v2 reports) — for every `(scheme, series)` pair
//!   present in both reports, the final `frag_ratio` may not rise by
//!   more than 0.10 absolute, and final `utilization`/`contiguity` may
//!   not fall by more than 0.10 absolute. Fragmentation creeping up
//!   between runs at identical scale means an allocator regression, not
//!   noise.
//! * **Reader-scaling floor** — every series in the *new* report whose
//!   name ends in `scaling_ratio` (the concurrent-vs-serialized reader
//!   throughput ratio from `concurrent_mvcc`) must end at or above
//!   [`SCALING_FLOOR`]. This is an absolute floor, not a diff: losing
//!   reader scalability is a regression even if the committed baseline
//!   also lost it.
//!
//! Reports must come from the same binary at the same scale; comparing
//! anything else is a usage error (exit 2), not a pass.

use std::path::Path;
use std::process::ExitCode;

use lobstore_obs::json::{self, Value};

/// Default scan-time regression threshold, percent.
pub const DEFAULT_THRESHOLD_PCT: f64 = 20.0;
/// Absolute drift allowed in final health-series values.
pub const HEALTH_DRIFT: f64 = 0.10;
/// Minimum final concurrent-vs-serialized reader throughput ratio: 8
/// snapshot scanners on the shared read tier must beat the serialized
/// exclusive-lock discipline by at least this factor.
pub const SCALING_FLOOR: f64 = 3.0;

/// One scan measurement keyed by `(record title, scheme)`.
fn scan_cells(doc: &Value) -> Vec<((String, String), f64)> {
    let mut out = Vec::new();
    let Some(records) = doc.get("records").and_then(Value::as_arr) else {
        return out;
    };
    for rec in records {
        let Some(title) = rec.get("title").and_then(Value::as_str) else {
            continue;
        };
        if !title.contains("scan") {
            continue;
        }
        let scheme = rec
            .get("values")
            .and_then(|v| v.get("scheme"))
            .and_then(Value::as_str);
        let sim_s = rec
            .get("values")
            .and_then(|v| v.get("sim s"))
            .and_then(Value::as_str)
            .and_then(|s| s.parse::<f64>().ok());
        if let (Some(scheme), Some(sim_s)) = (scheme, sim_s) {
            out.push(((title.to_string(), scheme.to_string()), sim_s));
        }
    }
    out
}

/// Final (`last`) summary value of every series, keyed by
/// `(scheme, series name)`.
fn series_lasts(doc: &Value) -> Vec<((String, String), f64)> {
    let mut out = Vec::new();
    let Some(series) = doc.get("series").and_then(Value::as_arr) else {
        return out;
    };
    for s in series {
        let scheme = s.get("scheme").and_then(Value::as_str);
        let name = s.get("name").and_then(Value::as_str);
        let last = s
            .get("summary")
            .and_then(|v| v.get("last"))
            .and_then(Value::as_num);
        if let (Some(scheme), Some(name), Some(last)) = (scheme, name, last) {
            out.push(((scheme.to_string(), name.to_string()), last));
        }
    }
    out
}

fn lookup(pairs: &[((String, String), f64)], key: &(String, String)) -> Option<f64> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
}

/// Compare `new` against `base`. Returns `Err` for usage errors
/// (mismatched bin/scale, no comparable measurements) and `Ok(problems)`
/// otherwise; an empty problem list means the gate passes.
pub fn compare(base: &Value, new: &Value, threshold_pct: f64) -> Result<Vec<String>, String> {
    for field in ["bin", "schema"] {
        let b = base.get(field).and_then(Value::as_str);
        let n = new.get(field).and_then(Value::as_str);
        if field == "bin" && (b.is_none() || b != n) {
            return Err(format!("`{field}` differs: baseline {b:?} vs new {n:?}"));
        }
    }
    for field in ["object_bytes", "ops", "mark_every"] {
        let b = base
            .get("scale")
            .and_then(|s| s.get(field))
            .and_then(Value::as_u64);
        let n = new
            .get("scale")
            .and_then(|s| s.get(field))
            .and_then(Value::as_u64);
        if b.is_none() || b != n {
            return Err(format!(
                "scale.{field} differs: baseline {b:?} vs new {n:?} — \
                 rerun the bench at the baseline's scale"
            ));
        }
    }

    let base_scans = scan_cells(base);
    let new_scans = scan_cells(new);
    if base_scans.is_empty() {
        return Err("baseline has no scan records with `scheme`/`sim s` cells".to_string());
    }

    let mut problems = Vec::new();
    for (key, base_sim) in &base_scans {
        let Some(new_sim) = lookup(&new_scans, key) else {
            problems.push(format!(
                "{} [{}]: present in baseline but missing from the new report",
                key.0, key.1
            ));
            continue;
        };
        if *base_sim <= 0.0 {
            continue;
        }
        let regress_pct = (new_sim / base_sim - 1.0) * 100.0;
        if regress_pct > threshold_pct {
            problems.push(format!(
                "{} [{}]: sim scan time regressed {regress_pct:.1}% \
                 ({base_sim:.2}s -> {new_sim:.2}s, threshold {threshold_pct:.0}%)",
                key.0, key.1
            ));
        }
    }

    let base_series = series_lasts(base);
    let new_series = series_lasts(new);
    for ((scheme, name), new_last) in &new_series {
        if name.ends_with("scaling_ratio") && *new_last < SCALING_FLOOR {
            problems.push(format!(
                "{name} [{scheme}]: reader scaling ratio {new_last:.2}x is below the \
                 {SCALING_FLOOR:.0}x floor"
            ));
        }
    }
    for (key, base_last) in &base_series {
        let Some(new_last) = lookup(&new_series, key) else {
            // Series sets may evolve; only shared series are gated.
            continue;
        };
        let (scheme, name) = (&key.0, &key.1);
        if name.ends_with("frag_ratio") && new_last - base_last > HEALTH_DRIFT {
            problems.push(format!(
                "{name} [{scheme}]: final fragmentation rose {base_last:.3} -> {new_last:.3} \
                 (allowed drift {HEALTH_DRIFT})"
            ));
        }
        if (name.ends_with("utilization") || name.ends_with("contiguity"))
            && base_last - new_last > HEALTH_DRIFT
        {
            problems.push(format!(
                "{name} [{scheme}]: final value fell {base_last:.3} -> {new_last:.3} \
                 (allowed drift {HEALTH_DRIFT})"
            ));
        }
    }

    Ok(problems)
}

fn load(path: &Path) -> Result<Value, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    json::parse(&text).map_err(|e| format!("{} is not JSON: {e:?}", path.display()))
}

/// Entry point for
/// `cargo run -p xtask -- bench-compare <baseline.json> <new.json>
/// [--threshold-pct <n>]`.
/// Exit 0 = within threshold, 1 = regression, 2 = cannot compare.
pub fn run(baseline: &Path, new: &Path, threshold_pct: f64) -> ExitCode {
    let (base_doc, new_doc) = match (load(baseline), load(new)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench-compare: {e}");
            return ExitCode::from(2);
        }
    };
    match compare(&base_doc, &new_doc, threshold_pct) {
        Err(e) => {
            eprintln!("bench-compare: {e}");
            ExitCode::from(2)
        }
        Ok(problems) if problems.is_empty() => {
            let scans = scan_cells(&base_doc).len();
            let series = series_lasts(&base_doc).len();
            println!(
                "ok: {} within {threshold_pct:.0}% of {} ({scans} scan cells, {series} series \
                 compared)",
                new.display(),
                baseline.display()
            );
            ExitCode::SUCCESS
        }
        Ok(problems) => {
            for p in &problems {
                eprintln!("bench-compare: {p}");
            }
            eprintln!(
                "bench-compare: {} regression(s) vs {}",
                problems.len(),
                baseline.display()
            );
            ExitCode::from(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(sim_esm: f64, frag_last: f64, util_last: f64) -> Value {
        json::parse(&format!(
            r#"{{
                "schema": "lobstore-bench-report/v2",
                "bin": "aging",
                "title": "Aging",
                "wall_clock_us": 1000,
                "scale": {{"object_bytes": 1048576, "ops": 1000, "mark_every": 200}},
                "records": [
                    {{"table": 0, "title": "post-aging scan",
                      "values": {{"scheme": "ESM/16", "wall MB/s": "999.0", "sim s": "{sim_esm}"}}}},
                    {{"table": 0, "title": "post-aging scan",
                      "values": {{"scheme": "EOS/16", "wall MB/s": "999.0", "sim s": "1.00"}}}}
                ],
                "notes": [],
                "series": [
                    {{"scheme": "ESM/16", "name": "health.leaf.frag_ratio", "dropped": 0,
                      "summary": {{"p50": 0.1, "p90": 0.1, "p99": 0.1, "max": 0.1,
                                   "last": {frag_last}}},
                      "points": [[100, {frag_last}]]}},
                    {{"scheme": "ESM/16", "name": "health.leaf.utilization", "dropped": 0,
                      "summary": {{"p50": 0.5, "p90": 0.5, "p99": 0.5, "max": 0.5,
                                   "last": {util_last}}},
                      "points": [[100, {util_last}]]}}
                ]
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_reports_pass() {
        let base = report(1.50, 0.05, 0.60);
        assert_eq!(
            compare(&base, &base, DEFAULT_THRESHOLD_PCT).unwrap(),
            Vec::<String>::new()
        );
    }

    #[test]
    fn small_drift_passes_large_regression_fails() {
        let base = report(1.50, 0.05, 0.60);
        // +10% sim time, tiny health drift: fine.
        let ok = report(1.65, 0.08, 0.55);
        assert!(compare(&base, &ok, DEFAULT_THRESHOLD_PCT)
            .unwrap()
            .is_empty());
        // +40% sim time: the scan gate fires.
        let slow = report(2.10, 0.05, 0.60);
        let problems = compare(&base, &slow, DEFAULT_THRESHOLD_PCT).unwrap();
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("regressed 40.0%"), "{problems:?}");
    }

    #[test]
    fn health_blowup_fails() {
        let base = report(1.50, 0.05, 0.60);
        let fragged = report(1.50, 0.30, 0.60);
        let problems = compare(&base, &fragged, DEFAULT_THRESHOLD_PCT).unwrap();
        assert!(
            problems.iter().any(|p| p.contains("fragmentation rose")),
            "{problems:?}"
        );
        let hollow = report(1.50, 0.05, 0.40);
        let problems = compare(&base, &hollow, DEFAULT_THRESHOLD_PCT).unwrap();
        assert!(
            problems.iter().any(|p| p.contains("value fell")),
            "{problems:?}"
        );
    }

    #[test]
    fn missing_scheme_in_new_report_fails() {
        let base = report(1.50, 0.05, 0.60);
        let mut fields = match report(1.50, 0.05, 0.60) {
            Value::Obj(f) => f,
            _ => unreachable!(),
        };
        for (k, v) in &mut fields {
            if k == "records" {
                if let Value::Arr(recs) = v {
                    recs.truncate(1); // drop the EOS/16 scan row
                }
            }
        }
        let problems = compare(&base, &Value::Obj(fields), DEFAULT_THRESHOLD_PCT).unwrap();
        assert!(
            problems
                .iter()
                .any(|p| p.contains("missing from the new report")),
            "{problems:?}"
        );
    }

    #[test]
    fn mismatched_bin_or_scale_is_a_usage_error() {
        let base = report(1.50, 0.05, 0.60);
        let mut fields = match report(1.50, 0.05, 0.60) {
            Value::Obj(f) => f,
            _ => unreachable!(),
        };
        for (k, v) in &mut fields {
            if k == "bin" {
                *v = Value::Str("throughput".to_string());
            }
        }
        assert!(compare(&base, &Value::Obj(fields), DEFAULT_THRESHOLD_PCT).is_err());

        let mut fields = match report(1.50, 0.05, 0.60) {
            Value::Obj(f) => f,
            _ => unreachable!(),
        };
        for (k, v) in &mut fields {
            if k == "scale" {
                if let Value::Obj(scale) = v {
                    for (sk, sv) in scale {
                        if sk == "ops" {
                            *sv = Value::from(999u64);
                        }
                    }
                }
            }
        }
        assert!(compare(&base, &Value::Obj(fields), DEFAULT_THRESHOLD_PCT).is_err());
    }

    fn scaling_report(ratio_last: f64) -> Value {
        json::parse(&format!(
            r#"{{
                "schema": "lobstore-bench-report/v2",
                "bin": "concurrent_mvcc",
                "title": "Concurrent MVCC",
                "wall_clock_us": 1000,
                "scale": {{"object_bytes": 2097152, "ops": 1000, "mark_every": 200}},
                "records": [
                    {{"table": 0, "title": "pinned snapshot scan",
                      "values": {{"scheme": "EOS/16", "wall MB/s": "999.0",
                                  "sim s": "1.00"}}}}
                ],
                "notes": [],
                "series": [
                    {{"scheme": "EOS/16", "name": "reader.scaling_ratio", "dropped": 0,
                      "summary": {{"p50": 1.0, "p90": 1.0, "p99": 1.0, "max": {ratio_last},
                                   "last": {ratio_last}}},
                      "points": [[8, {ratio_last}]]}}
                ]
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn scaling_ratio_floor_gates_the_new_report() {
        let base = scaling_report(13.2);
        let healthy = scaling_report(4.1);
        assert!(compare(&base, &healthy, DEFAULT_THRESHOLD_PCT)
            .unwrap()
            .is_empty());
        // The floor is absolute: even a baseline below it doesn't excuse
        // a new report below it.
        let flat = scaling_report(2.4);
        let problems = compare(&flat, &flat, DEFAULT_THRESHOLD_PCT).unwrap();
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("below the 3x floor"), "{problems:?}");
    }

    #[test]
    fn v1_reports_compare_on_scan_records_alone() {
        let v1 = |sim: f64| {
            json::parse(&format!(
                r#"{{
                    "schema": "lobstore-bench-report/v1",
                    "bin": "throughput",
                    "title": "t",
                    "wall_clock_us": 1000,
                    "scale": {{"object_bytes": 1048576, "ops": 1000, "mark_every": 200}},
                    "records": [
                        {{"table": 0, "title": "sequential scan",
                          "values": {{"scheme": "ESM/16", "wall MB/s": "5.0",
                                      "sim s": "{sim}"}}}}
                    ],
                    "notes": []
                }}"#
            ))
            .unwrap()
        };
        let base = v1(1.55);
        assert!(compare(&base, &v1(1.60), DEFAULT_THRESHOLD_PCT)
            .unwrap()
            .is_empty());
        let problems = compare(&base, &v1(2.50), DEFAULT_THRESHOLD_PCT).unwrap();
        assert_eq!(problems.len(), 1, "{problems:?}");
    }
}
