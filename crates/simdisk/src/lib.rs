//! Simulated page-addressed disk with an analytical seek/transfer cost model.
//!
//! This crate is the lowest layer of `lobstore`, the reproduction of
//! Biliris, *"The Performance of Three Database Storage Structures for
//! Managing Large Objects"* (SIGMOD 1992). The paper evaluates the three
//! storage structures on a **simulated** disk whose cost model separates
//! seek time from transfer time (§4.1, Table 1):
//!
//! * one seek (33 ms, including rotational delay) is charged for every
//!   disk access (I/O call), and
//! * data transfers at 1 KB per millisecond, i.e. 4 ms per 4 KB page.
//!
//! Reading a 3-page segment in one call therefore costs `33 + 4×3 = 45` ms,
//! while reading the same pages with three calls costs `(33 + 4) × 3 = 111`
//! ms — the distinction that motivates segment-based storage in the first
//! place.
//!
//! Unlike the paper's prototype (which kept no leaf data and only counted
//! I/O calls), [`SimDisk`] stores the *real bytes* of every page so that
//! all higher-level algorithms are verifiable end to end; simulated time
//! is accumulated in [`IoStats`] from the [`CostModel`] parameters.
#![forbid(unsafe_code)]

mod convert;
mod cost;
mod disk;
mod image;
mod stats;
mod trace;

pub use convert::{bytes, cast};
pub use cost::CostModel;
pub use disk::SimDisk;
pub use stats::IoStats;
pub use trace::{TraceEvent, TraceKind};

/// Size of a disk page (block) in bytes. The paper runs all experiments on
/// 4 KB pages (§4.1) and the on-page layouts of the count tree assume it.
pub const PAGE_SIZE: usize = 4096;

/// [`PAGE_SIZE`] as a `u64`, for byte-offset arithmetic that lives in
/// `u64` space (object sizes, file offsets).
pub const PAGE_SIZE_U64: u64 = PAGE_SIZE as u64;

/// Identifier of a database area.
///
/// The evaluation uses two areas (§4.1): one for the leaf segments holding
/// the large-object bytes, and one for everything else (index pages, buddy
/// directories, object roots).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct AreaId(pub u8);

impl AreaId {
    /// Conventional area for index pages, object roots and directories.
    pub const META: AreaId = AreaId(0);
    /// Conventional area for the leaf segments of large objects.
    pub const LEAF: AreaId = AreaId(1);
}

impl std::fmt::Display for AreaId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// Address of one disk page: an area plus a page number within that area.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PageId {
    pub area: AreaId,
    pub page: u32,
}

impl PageId {
    /// Build a page address from an area and a page number.
    pub const fn new(area: AreaId, page: u32) -> Self {
        PageId { area, page }
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.area, self.page)
    }
}

/// Number of pages needed to hold `bytes` bytes.
#[inline]
pub fn pages_for_bytes(bytes: u64) -> u32 {
    cast::to_u32(bytes.div_ceil(PAGE_SIZE_U64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_for_bytes_rounds_up() {
        assert_eq!(pages_for_bytes(0), 0);
        assert_eq!(pages_for_bytes(1), 1);
        assert_eq!(pages_for_bytes(4096), 1);
        assert_eq!(pages_for_bytes(4097), 2);
        assert_eq!(pages_for_bytes(10 * 1024 * 1024), 2560);
    }

    #[test]
    fn page_id_display() {
        let pid = PageId::new(AreaId::LEAF, 42);
        assert_eq!(pid.to_string(), "A1:42");
    }

    #[test]
    fn area_ordering_is_by_number() {
        assert!(AreaId::META < AreaId::LEAF);
    }
}
