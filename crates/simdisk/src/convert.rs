//! Checked narrowing conversions and fixed-width byte parsing for page
//! and offset arithmetic.
//!
//! `loblint` bans bare truncating `as` casts and `try_into().unwrap()`
//! in library code; these helpers centralize the two patterns behind
//! names that state the intent. The checked casts panic with a clear
//! message when the value genuinely does not fit — which in page
//! arithmetic means a structural invariant is already broken, so there
//! is no meaningful recovery.

/// Checked narrowing casts for page/byte-offset arithmetic.
pub mod cast {
    /// `u64` byte count/offset to `usize`, checked. Infallible on the
    /// 64-bit targets this workspace supports.
    #[track_caller]
    #[inline]
    pub fn to_usize(v: u64) -> usize {
        match usize::try_from(v) {
            Ok(x) => x,
            Err(_) => panic!("byte offset {v} exceeds usize"),
        }
    }

    /// `u64` page number/count to `u32`, checked.
    #[track_caller]
    #[inline]
    pub fn to_u32(v: u64) -> u32 {
        match u32::try_from(v) {
            Ok(x) => x,
            Err(_) => panic!("page arithmetic value {v} exceeds u32"),
        }
    }

    /// `usize` length to `u32`, checked.
    #[track_caller]
    #[inline]
    pub fn usize_to_u32(v: usize) -> u32 {
        match u32::try_from(v) {
            Ok(x) => x,
            Err(_) => panic!("length {v} exceeds u32"),
        }
    }

    /// `usize` in-page offset to `u16`, checked (slotted-page layouts).
    #[track_caller]
    #[inline]
    pub fn usize_to_u16(v: usize) -> u16 {
        match u16::try_from(v) {
            Ok(x) => x,
            Err(_) => panic!("in-page offset {v} exceeds u16"),
        }
    }

    /// `u32` to `usize`, a widening conversion on every supported
    /// target; spelled as a function so page-indexing code carries no
    /// bare `as` cast.
    #[inline]
    pub fn u32_to_usize(v: u32) -> usize {
        match usize::try_from(v) {
            Ok(x) => x,
            Err(_) => panic!("u32 {v} exceeds usize on a sub-32-bit target"),
        }
    }
}

/// Panic-by-slice-index little-endian field readers. Unlike
/// `try_into().unwrap()` these carry no `unwrap` and index directly, so
/// an undersized slice fails with a plain bounds message.
pub mod bytes {
    /// Read a little-endian `u16` at the start of `b`.
    #[track_caller]
    #[inline]
    pub fn le_u16(b: &[u8]) -> u16 {
        // Panic-by-index is this module's documented contract.
        // loblint: allow(panic-path)
        u16::from_le_bytes([b[0], b[1]])
    }

    /// Read a little-endian `u32` at the start of `b`.
    #[track_caller]
    #[inline]
    pub fn le_u32(b: &[u8]) -> u32 {
        // loblint: allow(panic-path)
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Read a little-endian `u64` at the start of `b`.
    #[track_caller]
    #[inline]
    pub fn le_u64(b: &[u8]) -> u64 {
        // loblint: allow(panic-path)
        u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn casts_pass_in_range_values() {
        assert_eq!(cast::to_usize(4096), 4096usize);
        assert_eq!(cast::to_u32(123), 123u32);
        assert_eq!(cast::usize_to_u32(77), 77u32);
        assert_eq!(cast::usize_to_u16(4095), 4095u16);
        assert_eq!(cast::u32_to_usize(9), 9usize);
    }

    #[test]
    #[should_panic(expected = "exceeds u32")]
    fn to_u32_panics_on_overflow() {
        cast::to_u32(u64::from(u32::MAX) + 1);
    }

    #[test]
    #[should_panic(expected = "exceeds u16")]
    fn usize_to_u16_panics_on_overflow() {
        cast::usize_to_u16(1 << 16);
    }

    #[test]
    fn byte_readers_parse_little_endian() {
        let b = [0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0xFF];
        assert_eq!(bytes::le_u16(&b), 0x0201);
        assert_eq!(bytes::le_u32(&b), 0x0403_0201);
        assert_eq!(bytes::le_u64(&b), 0x0807_0605_0403_0201);
        assert_eq!(bytes::le_u16(&b[7..]), 0xFF08);
    }

    #[test]
    #[should_panic]
    fn byte_readers_panic_on_short_slice() {
        bytes::le_u32(&[1, 2]);
    }
}
