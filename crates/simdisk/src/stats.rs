//! I/O accounting: calls, pages, and simulated time.

use std::ops::Sub;

use lobstore_obs::json::{self, Value};

/// Cumulative I/O statistics of a [`crate::SimDisk`].
///
/// Every read or write *call* bumps the call counter once (one seek) and
/// the page counters by the number of pages moved. `time_us` accumulates
/// the simulated cost per the disk's [`crate::CostModel`].
///
/// Experiments usually take a snapshot before an operation and subtract
/// (`after - before`) to get the operation's cost; [`IoStats`] implements
/// `Sub` for exactly that.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Number of read I/O calls (each charged one seek).
    pub read_calls: u64,
    /// Number of write I/O calls (each charged one seek).
    pub write_calls: u64,
    /// Total pages transferred by reads.
    pub pages_read: u64,
    /// Total pages transferred by writes.
    pub pages_written: u64,
    /// Simulated elapsed I/O time, in microseconds.
    pub time_us: u64,
}

impl IoStats {
    /// Total number of I/O calls (seeks).
    #[inline]
    pub fn calls(&self) -> u64 {
        self.read_calls + self.write_calls
    }

    /// Total pages transferred in either direction.
    #[inline]
    pub fn pages(&self) -> u64 {
        self.pages_read + self.pages_written
    }

    /// Simulated time in milliseconds.
    #[inline]
    pub fn time_ms(&self) -> f64 {
        self.time_us as f64 / 1_000.0
    }

    /// Simulated time in seconds.
    #[inline]
    pub fn time_s(&self) -> f64 {
        self.time_us as f64 / 1_000_000.0
    }

    /// The stats as a JSON [`Value`] object, field names matching the
    /// struct. Bench reports and `lobctl stats --json` embed this.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("read_calls".to_string(), Value::from(self.read_calls)),
            ("write_calls".to_string(), Value::from(self.write_calls)),
            ("pages_read".to_string(), Value::from(self.pages_read)),
            ("pages_written".to_string(), Value::from(self.pages_written)),
            ("time_us".to_string(), Value::from(self.time_us)),
        ])
    }

    /// The stats as one JSON object string; see [`Self::to_value`].
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Parse a JSON object produced by [`Self::to_json`]. Returns `None`
    /// if `s` is not valid JSON or any of the five fields is missing or
    /// not a non-negative integer.
    pub fn from_json(s: &str) -> Option<IoStats> {
        let v = json::parse(s).ok()?;
        let field = |name: &str| v.get(name).and_then(Value::as_u64);
        Some(IoStats {
            read_calls: field("read_calls")?,
            write_calls: field("write_calls")?,
            pages_read: field("pages_read")?,
            pages_written: field("pages_written")?,
            time_us: field("time_us")?,
        })
    }
}

impl Sub for IoStats {
    type Output = IoStats;

    /// Delta between two snapshots. Panics in debug builds if `rhs` is not
    /// an earlier snapshot of the same counter stream.
    fn sub(self, rhs: IoStats) -> IoStats {
        IoStats {
            read_calls: self.read_calls - rhs.read_calls,
            write_calls: self.write_calls - rhs.write_calls,
            pages_read: self.pages_read - rhs.pages_read,
            pages_written: self.pages_written - rhs.pages_written,
            time_us: self.time_us - rhs.time_us,
        }
    }
}

impl std::ops::Add for IoStats {
    type Output = IoStats;

    fn add(self, rhs: IoStats) -> IoStats {
        // Counters are monotone; saturate rather than wrap if a run ever
        // accumulates past u64::MAX.
        IoStats {
            read_calls: self.read_calls.saturating_add(rhs.read_calls),
            write_calls: self.write_calls.saturating_add(rhs.write_calls),
            pages_read: self.pages_read.saturating_add(rhs.pages_read),
            pages_written: self.pages_written.saturating_add(rhs.pages_written),
            time_us: self.time_us.saturating_add(rhs.time_us),
        }
    }
}

impl std::fmt::Display for IoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} calls ({}r/{}w), {} pages ({}r/{}w), {:.3} ms",
            self.calls(),
            self.read_calls,
            self.write_calls,
            self.pages(),
            self.pages_read,
            self.pages_written,
            self.time_ms()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rc: u64, wc: u64, pr: u64, pw: u64, t: u64) -> IoStats {
        IoStats {
            read_calls: rc,
            write_calls: wc,
            pages_read: pr,
            pages_written: pw,
            time_us: t,
        }
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = sample(10, 5, 40, 20, 1_000);
        let b = sample(4, 2, 16, 8, 400);
        let d = a - b;
        assert_eq!(d, sample(6, 3, 24, 12, 600));
        assert_eq!(d.calls(), 9);
        assert_eq!(d.pages(), 36);
    }

    #[test]
    fn add_is_inverse_of_sub() {
        let a = sample(7, 7, 7, 7, 7);
        let b = sample(1, 2, 3, 4, 5);
        assert_eq!((a - b) + b, a);
    }

    #[test]
    fn json_roundtrips() {
        let s = sample(10, 5, 40, 20, 1_234_567);
        let j = s.to_json();
        assert_eq!(IoStats::from_json(&j), Some(s));
        // default roundtrips too
        let d = IoStats::default();
        assert_eq!(IoStats::from_json(&d.to_json()), Some(d));
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        assert_eq!(IoStats::from_json("not json"), None);
        assert_eq!(IoStats::from_json("{}"), None);
        assert_eq!(
            IoStats::from_json(r#"{"read_calls": 1, "write_calls": 2}"#),
            None,
            "missing fields"
        );
        assert_eq!(
            IoStats::from_json(
                r#"{"read_calls": -1, "write_calls": 0, "pages_read": 0,
                    "pages_written": 0, "time_us": 0}"#
            ),
            None,
            "negative counter"
        );
    }

    #[test]
    fn time_conversions() {
        let s = sample(0, 0, 0, 0, 22_300_000);
        assert!((s.time_s() - 22.3).abs() < 1e-9);
        assert!((s.time_ms() - 22_300.0).abs() < 1e-9);
    }
}
