//! Disk-image serialization: save a [`SimDisk`]'s full state to a writer
//! and load it back. Only materialized pages are stored, so images stay
//! proportional to actual content.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! [magic  8B "LOBIMG01"]
//! [seek_us u64][transfer_us_per_kb u64]
//! [n_areas u8]
//! per area:
//!   [n_pages u32]
//!   n_pages × ( [page_no u32][PAGE_SIZE bytes] )
//! ```

use std::io::{self, Read, Write};

use crate::cost::CostModel;
use crate::disk::SimDisk;
use crate::{cast, AreaId, PAGE_SIZE};

const MAGIC: &[u8; 8] = b"LOBIMG01";

impl SimDisk {
    /// Serialize the disk (cost model + every materialized page).
    pub fn write_image(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        let cost = self.cost_model();
        w.write_all(&cost.seek_us.to_le_bytes())?;
        w.write_all(&cost.transfer_us_per_kb.to_le_bytes())?;
        w.write_all(&[self.n_areas()])?;
        for a in 0..self.n_areas() {
            let area = AreaId(a);
            let pages = self.materialized_page_numbers(area);
            w.write_all(&cast::usize_to_u32(pages.len()).to_le_bytes())?;
            let mut buf = [0u8; PAGE_SIZE];
            for page in pages {
                w.write_all(&page.to_le_bytes())?;
                self.peek(area, page, &mut buf);
                w.write_all(&buf)?;
            }
        }
        Ok(())
    }

    /// Load a disk from an image produced by [`Self::write_image`]. The
    /// image's cost model is restored; statistics start at zero.
    pub fn read_image(r: &mut impl Read) -> io::Result<SimDisk> {
        let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not a lobstore disk image"));
        }
        let mut u64buf = [0u8; 8];
        r.read_exact(&mut u64buf)?;
        let seek_us = u64::from_le_bytes(u64buf);
        r.read_exact(&mut u64buf)?;
        let transfer_us_per_kb = u64::from_le_bytes(u64buf);
        let mut n_areas = [0u8; 1];
        r.read_exact(&mut n_areas)?;
        let disk = SimDisk::new(
            n_areas[0],
            CostModel {
                seek_us,
                transfer_us_per_kb,
            },
        );
        let mut u32buf = [0u8; 4];
        let mut page_buf = [0u8; PAGE_SIZE];
        for a in 0..n_areas[0] {
            r.read_exact(&mut u32buf)?;
            let n_pages = u32::from_le_bytes(u32buf);
            for _ in 0..n_pages {
                r.read_exact(&mut u32buf)?;
                let page_no = u32::from_le_bytes(u32buf);
                r.read_exact(&mut page_buf)?;
                disk.poke(AreaId(a), page_no, &page_buf);
            }
        }
        Ok(disk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_roundtrips_pages_and_cost_model() {
        let d = SimDisk::new(2, CostModel::default());
        d.poke(AreaId(0), 3, &[7u8; PAGE_SIZE]);
        d.poke(AreaId(1), 100, &[9u8; 100]);
        d.poke(AreaId(1), 0, b"hello");
        let mut img = Vec::new();
        d.write_image(&mut img).unwrap();

        let d2 = SimDisk::read_image(&mut img.as_slice()).unwrap();
        assert_eq!(d2.cost_model(), CostModel::default());
        assert_eq!(d2.n_areas(), 2);
        let mut buf = [0u8; PAGE_SIZE];
        d2.peek(AreaId(0), 3, &mut buf);
        assert_eq!(buf, [7u8; PAGE_SIZE]);
        d2.peek(AreaId(1), 100, &mut buf);
        assert_eq!(&buf[..100], &[9u8; 100]);
        d2.peek(AreaId(1), 0, &mut buf);
        assert_eq!(&buf[..5], b"hello");
        // Unmaterialized pages are still zero.
        d2.peek(AreaId(0), 50, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn image_size_tracks_content() {
        let d = SimDisk::new(1, CostModel::FREE);
        let mut empty = Vec::new();
        d.write_image(&mut empty).unwrap();
        d.poke(AreaId(0), 0, &[1u8; PAGE_SIZE]);
        let mut one = Vec::new();
        d.write_image(&mut one).unwrap();
        assert_eq!(one.len() - empty.len(), 4 + PAGE_SIZE);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(SimDisk::read_image(&mut &b"not an image"[..]).is_err());
        let mut truncated = Vec::new();
        let d = SimDisk::new(1, CostModel::FREE);
        d.poke(AreaId(0), 0, &[1u8; 10]);
        d.write_image(&mut truncated).unwrap();
        truncated.truncate(truncated.len() - 100);
        assert!(SimDisk::read_image(&mut truncated.as_slice()).is_err());
    }
}
