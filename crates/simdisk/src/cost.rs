//! The analytical I/O cost model of §4.1 (Table 1).

use crate::PAGE_SIZE;

/// Disk cost parameters, fixed for a whole simulation run.
///
/// Costs are kept in integer **microseconds** so that every experiment is
/// exactly reproducible (no floating-point accumulation error). The paper's
/// defaults make every quantity an integral number of milliseconds anyway:
/// a seek is 33 ms and a 4 KB page transfers in 4 ms.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of one disk access (seek + rotational delay), in µs.
    /// Paper default: 33 ms.
    pub seek_us: u64,
    /// Transfer cost per kilobyte, in µs. Paper default: 1 ms/KB.
    pub transfer_us_per_kb: u64,
}

impl Default for CostModel {
    /// The Table 1 parameters: 33 ms seek, 1 KB/ms transfer.
    fn default() -> Self {
        CostModel {
            seek_us: 33_000,
            transfer_us_per_kb: 1_000,
        }
    }
}

impl CostModel {
    /// A cost model in which I/O is free. Useful for tests that only check
    /// functional behaviour.
    pub const FREE: CostModel = CostModel {
        seek_us: 0,
        transfer_us_per_kb: 0,
    };

    /// Transfer cost of one full page, in µs.
    #[inline]
    pub fn page_transfer_us(&self) -> u64 {
        (PAGE_SIZE as u64 / 1024) * self.transfer_us_per_kb
    }

    /// Total cost of a single I/O call moving `pages` contiguous pages:
    /// one seek plus the transfer time.
    #[inline]
    pub fn io_cost_us(&self, pages: u32) -> u64 {
        self.seek_us + u64::from(pages) * self.page_transfer_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_three_page_segment() {
        // §4.1: reading a 3-block (12 KB) segment costs 33 + 4×3 = 45 ms;
        // the same blocks in 3 calls cost (33 + 4) × 3 = 111 ms.
        let m = CostModel::default();
        assert_eq!(m.io_cost_us(3), 45_000);
        assert_eq!(3 * m.io_cost_us(1), 111_000);
    }

    #[test]
    fn page_transfer_is_4ms() {
        assert_eq!(CostModel::default().page_transfer_us(), 4_000);
    }

    #[test]
    fn free_model_costs_nothing() {
        assert_eq!(CostModel::FREE.io_cost_us(1000), 0);
    }
}
