//! Optional I/O tracing, used by tests to assert exact call patterns
//! (e.g. that a boundary-mismatched big read really is a 3-step I/O).

use crate::AreaId;

/// Direction of a traced I/O call.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TraceKind {
    Read,
    Write,
}

/// One disk access: `pages` contiguous pages starting at `start` in `area`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub kind: TraceKind,
    pub area: AreaId,
    pub start: u32,
    pub pages: u32,
    /// Simulated cost of this single call, in µs.
    pub cost_us: u64,
}

/// A bounded in-memory trace of disk accesses.
///
/// Events past the capacity are **counted, not stored**: a test that
/// asserts on an exact call pattern must check [`Trace::dropped`] (via
/// `SimDisk::trace_dropped`) to be sure its buffer was big enough,
/// instead of passing vacuously against a silently truncated trace.
#[derive(Debug, Default)]
pub(crate) struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    pub(crate) fn new(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    pub(crate) fn record(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Number of events discarded because the trace was full.
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    pub(crate) fn take(&mut self) -> Vec<TraceEvent> {
        self.dropped = 0;
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_respects_capacity() {
        let mut t = Trace::new(2);
        for i in 0..5 {
            t.record(TraceEvent {
                kind: TraceKind::Read,
                area: AreaId::META,
                start: i,
                pages: 1,
                cost_us: 0,
            });
        }
        assert_eq!(t.dropped(), 3, "overflow is counted, not silent");
        let evs = t.take();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].start, 0);
        assert_eq!(evs[1].start, 1);
        // take() drains and resets the dropped count
        assert!(t.take().is_empty());
        assert_eq!(t.dropped(), 0);
    }
}
