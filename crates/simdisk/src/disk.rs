//! The simulated disk itself.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError, RwLock};

use crate::cost::CostModel;
use crate::stats::IoStats;
use crate::trace::{Trace, TraceEvent, TraceKind};
use crate::{cast, AreaId, PAGE_SIZE};

type PageBox = Box<[u8; PAGE_SIZE]>;

/// How far past the contiguous frontier a write may land and still grow
/// the arena (rather than falling back to the sparse map): 4096 pages of
/// zero-filled slack at most (16 MB), so densely packed areas stay in one
/// allocation while a stray far-off write cannot balloon memory.
const ARENA_GROW_SLACK_PAGES: usize = 4096;

/// One database area: an extent-backed page store.
///
/// Pages `[0, arena_pages)` live contiguously in `arena` (page `p` at
/// byte offset `p * PAGE_SIZE`), so a multi-page run moves with one
/// `copy_from_slice` instead of one map lookup and copy per page. Writes
/// far beyond the frontier land in the `sparse` fallback map and are
/// migrated into the arena when it later grows over them.
///
/// Pages are still materialized lazily — a never-written page reads as
/// zeroes, like a freshly formatted volume — with one bit per arena page
/// tracking what has actually been written (`materialized_*` metrics and
/// the image format depend on this, so the arena's zero slack is not
/// "materialized").
#[derive(Default)]
struct Area {
    arena: Vec<u8>,
    /// One bit per arena page: has it ever been written?
    present: Vec<u64>,
    /// Pages beyond the arena frontier. Invariant: every key is
    /// `>= arena_pages()`.
    sparse: std::collections::BTreeMap<u32, PageBox>,
}

impl Area {
    fn arena_pages(&self) -> usize {
        self.arena.len() / PAGE_SIZE
    }

    fn bit(&self, idx: usize) -> bool {
        (self.present[idx / 64] >> (idx % 64)) & 1 == 1
    }

    fn set_bit(&mut self, idx: usize) {
        self.present[idx / 64] |= 1 << (idx % 64);
    }

    /// Grow the arena to hold pages `[0, pages)`, migrating sparse pages
    /// that now fall inside the frontier.
    fn grow_arena(&mut self, pages: usize) {
        if pages <= self.arena_pages() {
            return;
        }
        // `pages` fits the 32-bit page-number space, so the byte product
        // fits a 64-bit usize.
        // loblint: allow(arith-overflow)
        self.arena.resize(pages * PAGE_SIZE, 0);
        self.present.resize(pages.div_ceil(64), 0);
        let beyond = self.sparse.split_off(&cast::usize_to_u32(pages));
        let moved = std::mem::replace(&mut self.sparse, beyond);
        for (page, content) in moved {
            let idx = cast::u32_to_usize(page);
            self.arena[idx * PAGE_SIZE..(idx + 1) * PAGE_SIZE].copy_from_slice(&content[..]);
            self.set_bit(idx);
        }
    }

    /// Store `data` on pages starting at `start`; a partial final page
    /// keeps its remaining bytes (read-modify-write).
    fn copy_in(&mut self, start: u32, data: &[u8]) {
        let n_pages = data.len().div_ceil(PAGE_SIZE);
        let first = cast::u32_to_usize(start);
        if first <= self.arena_pages() + ARENA_GROW_SLACK_PAGES {
            self.grow_arena(first + n_pages);
            let off = first * PAGE_SIZE;
            self.arena[off..off + data.len()].copy_from_slice(data);
            for p in first..first + n_pages {
                self.set_bit(p);
            }
        } else {
            for (i, chunk) in data.chunks(PAGE_SIZE).enumerate() {
                let page = self
                    .sparse
                    .entry(start + cast::usize_to_u32(i))
                    .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
                page[..chunk.len()].copy_from_slice(chunk);
            }
        }
    }

    /// Fetch pages starting at `start` into `out`. Never materializes;
    /// absent pages read as zeroes (arena slack already holds zeroes).
    fn copy_out(&self, start: u32, out: &mut [u8]) {
        let first = cast::u32_to_usize(start);
        let arena_bytes = self
            .arena_pages()
            .saturating_sub(first)
            .saturating_mul(PAGE_SIZE)
            .min(out.len());
        if arena_bytes > 0 {
            let off = first * PAGE_SIZE;
            // `arena_bytes` was clamped to both the arena extent past
            // `off` and `out.len()` above, so neither slice can be out
            // of range.
            // loblint: allow(arith-overflow, panic-path)
            out[..arena_bytes].copy_from_slice(&self.arena[off..off + arena_bytes]);
        }
        // `first + served pages` stays within the 32-bit page space.
        // loblint: allow(arith-overflow)
        let next = first + arena_bytes / PAGE_SIZE;
        // `arena_bytes <= out.len()` by the clamp above.
        // loblint: allow(panic-path)
        for (i, chunk) in out[arena_bytes..].chunks_mut(PAGE_SIZE).enumerate() {
            match self.sparse.get(&cast::usize_to_u32(next + i)) {
                // `chunk.len() <= PAGE_SIZE`, the length of `p`.
                // loblint: allow(panic-path)
                Some(p) => chunk.copy_from_slice(&p[..chunk.len()]),
                None => chunk.fill(0),
            }
        }
    }

    fn materialized_count(&self) -> usize {
        self.present
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum::<usize>()
            + self.sparse.len()
    }

    fn materialized_numbers(&self) -> Vec<u32> {
        // Arena pages (bit-set, ascending) first, then sparse keys — the
        // sparse invariant keeps the concatenation sorted.
        let mut out: Vec<u32> = (0..self.arena_pages())
            .filter(|&i| self.bit(i))
            .map(cast::usize_to_u32)
            .collect();
        out.extend(self.sparse.keys().copied());
        out
    }
}

/// One area behind its own reader/writer latch, so concurrent readers of
/// *different* (or even the same) area proceed in parallel: `copy_out`
/// never materializes pages, so a read call only needs the read side.
struct AreaSlot {
    store: RwLock<Area>,
}

/// The five [`IoStats`] counters as atomics, so accounting works through
/// `&self` from concurrent readers without a lock on the hot path.
#[derive(Default)]
struct AtomicIoStats {
    read_calls: AtomicU64,
    write_calls: AtomicU64,
    pages_read: AtomicU64,
    pages_written: AtomicU64,
    time_us: AtomicU64,
}

impl AtomicIoStats {
    fn snapshot(&self) -> IoStats {
        IoStats {
            read_calls: self.read_calls.load(Ordering::Acquire),
            write_calls: self.write_calls.load(Ordering::Acquire),
            pages_read: self.pages_read.load(Ordering::Acquire),
            pages_written: self.pages_written.load(Ordering::Acquire),
            time_us: self.time_us.load(Ordering::Acquire),
        }
    }

    fn reset(&self) {
        self.read_calls.store(0, Ordering::Release);
        self.write_calls.store(0, Ordering::Release);
        self.pages_read.store(0, Ordering::Release);
        self.pages_written.store(0, Ordering::Release);
        self.time_us.store(0, Ordering::Release);
    }
}

/// A simulated multi-area disk that stores real page contents and accounts
/// for every access with the paper's seek/transfer cost model.
///
/// The unit of I/O is the page; one *call* moves `n` physically contiguous
/// pages of a single area and is charged one seek plus `n` page transfers
/// (§3.3, §4.1). There is no notion of caching here — that is the buffer
/// manager's job one layer up.
///
/// Every operation takes `&self`: areas sit behind per-area `RwLock`s
/// (reads share, writes exclude), the statistics are atomics, and the
/// optional trace is mutex-guarded. Single-threaded callers see exactly
/// the pre-latch behavior — same costs, same counter ordering, same
/// trace stream.
pub struct SimDisk {
    areas: Vec<AreaSlot>,
    cost: CostModel,
    stats: AtomicIoStats,
    trace: Mutex<Option<Trace>>,
}

impl SimDisk {
    /// Create a disk with `n_areas` empty areas and the given cost model.
    pub fn new(n_areas: u8, cost: CostModel) -> Self {
        SimDisk {
            areas: (0..n_areas)
                .map(|_| AreaSlot {
                    store: RwLock::new(Area::default()),
                })
                .collect(),
            cost,
            stats: AtomicIoStats::default(),
            trace: Mutex::new(None),
        }
    }

    /// A two-area disk (META + LEAF) with the paper's default cost model.
    pub fn paper_default() -> Self {
        SimDisk::new(2, CostModel::default())
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Cumulative statistics since creation (or the last [`Self::reset_stats`]).
    pub fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    /// Zero all counters. Page contents are unaffected.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Start recording up to `capacity` I/O calls; see [`Self::take_trace`].
    pub fn enable_trace(&self, capacity: usize) {
        let trace = Trace::new(capacity);
        let mut g = self.trace.lock().unwrap_or_else(PoisonError::into_inner);
        *g = Some(trace);
    }

    /// Drain the recorded trace (empty if tracing was never enabled).
    /// Also resets the dropped-event count.
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        let mut g = self.trace.lock().unwrap_or_else(PoisonError::into_inner);
        g.as_mut().map(Trace::take).unwrap_or_default()
    }

    /// Number of I/O calls the trace discarded because its buffer was
    /// full since the last [`Self::take_trace`]. A test asserting on an
    /// exact trace must check this is zero, or its assertions run
    /// against a truncated event stream.
    pub fn trace_dropped(&self) -> u64 {
        let g = self.trace.lock().unwrap_or_else(PoisonError::into_inner);
        g.as_ref().map(Trace::dropped).unwrap_or(0)
    }

    fn slot(&self, area: AreaId) -> &AreaSlot {
        self.areas
            .get(area.0 as usize)
            .unwrap_or_else(|| panic!("no such disk area {area}"))
    }

    fn charge(&self, kind: TraceKind, area: AreaId, start: u32, pages: u32) {
        let cost = self.cost.io_cost_us(pages);
        // Monotone counters: saturation past u64::MAX is not observable
        // in practice, so plain atomic adds keep the hot path lock-free.
        match kind {
            TraceKind::Read => {
                self.stats.read_calls.fetch_add(1, Ordering::AcqRel);
                self.stats
                    .pages_read
                    .fetch_add(u64::from(pages), Ordering::AcqRel);
            }
            TraceKind::Write => {
                self.stats.write_calls.fetch_add(1, Ordering::AcqRel);
                self.stats
                    .pages_written
                    .fetch_add(u64::from(pages), Ordering::AcqRel);
            }
        }
        self.stats.time_us.fetch_add(cost, Ordering::AcqRel);
        // Observability: per-area call/page counters (static names so the
        // hot path never allocates) and cost-shape histograms.
        let (calls_name, pages_name) = match (kind, area.0) {
            (TraceKind::Read, 0) => ("simdisk.meta.read_calls", "simdisk.meta.pages_read"),
            (TraceKind::Read, 1) => ("simdisk.leaf.read_calls", "simdisk.leaf.pages_read"),
            (TraceKind::Read, _) => ("simdisk.other.read_calls", "simdisk.other.pages_read"),
            (TraceKind::Write, 0) => ("simdisk.meta.write_calls", "simdisk.meta.pages_written"),
            (TraceKind::Write, 1) => ("simdisk.leaf.write_calls", "simdisk.leaf.pages_written"),
            (TraceKind::Write, _) => ("simdisk.other.write_calls", "simdisk.other.pages_written"),
        };
        lobstore_obs::counter_add(calls_name, 1);
        lobstore_obs::counter_add(pages_name, u64::from(pages));
        lobstore_obs::histogram_record("simdisk.seek_us", self.cost.seek_us);
        lobstore_obs::histogram_record("simdisk.transfer_us", cost - self.cost.seek_us);
        lobstore_obs::histogram_record("simdisk.call_pages", u64::from(pages));
        let event = TraceEvent {
            kind,
            area,
            start,
            pages,
            cost_us: cost,
        };
        let mut g = self.trace.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(t) = g.as_mut() {
            t.record(event);
        }
    }

    /// One read call: fetch `ceil(out.len() / PAGE_SIZE)` contiguous pages
    /// starting at `start_page` into `out`.
    ///
    /// Cost: one seek + one page transfer per page touched, even if `out`
    /// ends mid-page — the disk always moves whole pages.
    ///
    /// # Panics
    /// If `out` is empty or the area does not exist.
    pub fn read(&self, area: AreaId, start_page: u32, out: &mut [u8]) {
        assert!(!out.is_empty(), "zero-length disk read");
        let n_pages = cast::usize_to_u32(out.len().div_ceil(PAGE_SIZE));
        self.charge(TraceKind::Read, area, start_page, n_pages);
        let slot = self.slot(area);
        let a = slot.store.read().unwrap_or_else(PoisonError::into_inner);
        a.copy_out(start_page, out);
    }

    /// One write call: store `data` on `ceil(data.len() / PAGE_SIZE)`
    /// contiguous pages starting at `start_page`.
    ///
    /// If `data` ends mid-page, the remaining bytes of the final page are
    /// left untouched (read-modify-write of the trailing page); the cost
    /// still charges the whole page, as the disk moves whole pages.
    ///
    /// # Panics
    /// If `data` is empty or the area does not exist.
    pub fn write(&self, area: AreaId, start_page: u32, data: &[u8]) {
        assert!(!data.is_empty(), "zero-length disk write");
        let n_pages = cast::usize_to_u32(data.len().div_ceil(PAGE_SIZE));
        self.charge(TraceKind::Write, area, start_page, n_pages);
        let slot = self.slot(area);
        let mut a = slot.store.write().unwrap_or_else(PoisonError::into_inner);
        a.copy_in(start_page, data);
    }

    /// One write call covering `pages.len()` physically contiguous pages
    /// supplied as separate whole-page buffers (e.g. buffer-pool frames).
    ///
    /// Cost-identical to [`Self::write`] of one contiguous run of the
    /// same length — one seek plus one transfer per page — but spares the
    /// caller from staging the frames into a contiguous buffer first.
    ///
    /// # Panics
    /// If `pages` is empty or the area does not exist.
    pub fn write_gather(&self, area: AreaId, start_page: u32, pages: &[&[u8; PAGE_SIZE]]) {
        assert!(!pages.is_empty(), "zero-length disk write");
        self.charge(
            TraceKind::Write,
            area,
            start_page,
            cast::usize_to_u32(pages.len()),
        );
        let slot = self.slot(area);
        let mut a = slot.store.write().unwrap_or_else(PoisonError::into_inner);
        for (i, p) in pages.iter().enumerate() {
            // The run was charged above; `start_page + pages.len()` fits
            // the page space or `charge` would have rejected the area.
            // loblint: allow(arith-overflow)
            a.copy_in(start_page + cast::usize_to_u32(i), &p[..]);
        }
    }

    /// Cost-free read used by verification code and by the buffer manager
    /// when overlaying already-resident pages. Not part of the simulated
    /// I/O stream.
    pub fn peek(&self, area: AreaId, start_page: u32, out: &mut [u8]) {
        let slot = self.slot(area);
        let a = slot.store.read().unwrap_or_else(PoisonError::into_inner);
        a.copy_out(start_page, out);
    }

    /// Cost-free write, for tests and debugging only.
    pub fn poke(&self, area: AreaId, start_page: u32, data: &[u8]) {
        let slot = self.slot(area);
        let mut a = slot.store.write().unwrap_or_else(PoisonError::into_inner);
        a.copy_in(start_page, data);
    }

    /// Number of pages ever materialized in `area` (a memory-usage metric,
    /// not a cost metric).
    pub fn materialized_pages(&self, area: AreaId) -> usize {
        let slot = self.slot(area);
        let a = slot.store.read().unwrap_or_else(PoisonError::into_inner);
        a.materialized_count()
    }

    /// Page numbers of every materialized page in `area`, ascending.
    pub fn materialized_page_numbers(&self, area: AreaId) -> Vec<u32> {
        let slot = self.slot(area);
        let a = slot.store.read().unwrap_or_else(PoisonError::into_inner);
        a.materialized_numbers()
    }

    /// Number of areas on this disk.
    pub fn n_areas(&self) -> u8 {
        self.areas.len() as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> SimDisk {
        SimDisk::paper_default()
    }

    #[test]
    fn read_of_unwritten_pages_is_zeroes() {
        let d = disk();
        let mut buf = vec![0xAAu8; PAGE_SIZE * 2];
        d.read(AreaId::META, 7, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_then_read_roundtrips() {
        let d = disk();
        let data: Vec<u8> = (0..PAGE_SIZE * 3).map(|i| (i % 251) as u8).collect();
        d.write(AreaId::LEAF, 10, &data);
        let mut out = vec![0u8; data.len()];
        d.read(AreaId::LEAF, 10, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn costs_match_paper_examples() {
        let d = disk();
        let mut buf = vec![0u8; PAGE_SIZE * 3];
        d.read(AreaId::LEAF, 0, &mut buf);
        // One call, 3 pages: 33 + 4*3 = 45 ms.
        assert_eq!(d.stats().time_us, 45_000);
        d.reset_stats();
        for p in 0..3 {
            d.read(AreaId::LEAF, p, &mut buf[..PAGE_SIZE]);
        }
        // Three calls of 1 page: (33 + 4) * 3 = 111 ms.
        assert_eq!(d.stats().time_us, 111_000);
        assert_eq!(d.stats().read_calls, 3);
        assert_eq!(d.stats().pages_read, 3);
    }

    #[test]
    fn partial_page_write_preserves_rest_of_page() {
        let d = disk();
        let full = vec![0xFFu8; PAGE_SIZE];
        d.write(AreaId::META, 0, &full);
        d.write(AreaId::META, 0, &[1, 2, 3]);
        let mut out = vec![0u8; PAGE_SIZE];
        d.read(AreaId::META, 0, &mut out);
        assert_eq!(&out[..3], &[1, 2, 3]);
        assert!(out[3..].iter().all(|&b| b == 0xFF));
        // Both writes charged one full page.
        assert_eq!(d.stats().pages_written, 2);
    }

    #[test]
    fn partial_page_read_charges_whole_page() {
        let d = disk();
        let mut small = [0u8; 100];
        d.read(AreaId::META, 0, &mut small);
        assert_eq!(d.stats().pages_read, 1);
        assert_eq!(d.stats().time_us, 37_000); // 33 + 4 ms
    }

    #[test]
    fn peek_and_poke_are_free() {
        let d = disk();
        d.poke(AreaId::META, 0, &[9u8; 64]);
        let mut out = [0u8; 64];
        d.peek(AreaId::META, 0, &mut out);
        assert_eq!(out, [9u8; 64]);
        assert_eq!(d.stats(), IoStats::default());
    }

    #[test]
    fn trace_records_calls() {
        let d = disk();
        d.enable_trace(16);
        d.write(AreaId::LEAF, 5, &[0u8; PAGE_SIZE * 2]);
        let mut buf = [0u8; 10];
        d.read(AreaId::LEAF, 5, &mut buf);
        let t = d.take_trace();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].kind, TraceKind::Write);
        assert_eq!(t[0].pages, 2);
        assert_eq!(t[1].kind, TraceKind::Read);
        assert_eq!(t[1].pages, 1);
    }

    #[test]
    fn trace_overflow_is_counted() {
        let d = disk();
        d.enable_trace(2);
        assert_eq!(d.trace_dropped(), 0);
        let mut buf = [0u8; 8];
        for p in 0..5 {
            d.read(AreaId::META, p, &mut buf);
        }
        assert_eq!(d.trace_dropped(), 3);
        assert_eq!(d.take_trace().len(), 2);
        assert_eq!(d.trace_dropped(), 0, "take_trace resets the count");
    }

    #[test]
    fn trace_dropped_is_zero_without_tracing() {
        let d = disk();
        let mut buf = [0u8; 8];
        d.read(AreaId::META, 0, &mut buf);
        assert_eq!(d.trace_dropped(), 0);
    }

    #[test]
    fn charge_bumps_per_area_obs_counters() {
        lobstore_obs::reset();
        let d = disk();
        d.write(AreaId::LEAF, 0, &[0u8; PAGE_SIZE * 3]);
        let mut buf = [0u8; PAGE_SIZE];
        d.read(AreaId::META, 0, &mut buf);
        assert_eq!(lobstore_obs::counter_value("simdisk.leaf.write_calls"), 1);
        assert_eq!(lobstore_obs::counter_value("simdisk.leaf.pages_written"), 3);
        assert_eq!(lobstore_obs::counter_value("simdisk.meta.read_calls"), 1);
        assert_eq!(lobstore_obs::counter_value("simdisk.meta.pages_read"), 1);
        let snap = lobstore_obs::snapshot();
        let pages = snap.histogram("simdisk.call_pages").expect("histogram");
        assert_eq!(pages.count, 2);
        assert_eq!(pages.sum, 4);
    }

    #[test]
    #[should_panic(expected = "no such disk area")]
    fn bad_area_panics() {
        let d = SimDisk::new(1, CostModel::FREE);
        let mut buf = [0u8; 1];
        d.read(AreaId(3), 0, &mut buf);
    }

    #[test]
    fn materialized_pages_counts_lazily() {
        let d = disk();
        assert_eq!(d.materialized_pages(AreaId::LEAF), 0);
        d.write(AreaId::LEAF, 100, &[0u8; PAGE_SIZE]);
        assert_eq!(d.materialized_pages(AreaId::LEAF), 1);
        let mut buf = [0u8; 8];
        d.read(AreaId::LEAF, 0, &mut buf); // reads don't materialize
        assert_eq!(d.materialized_pages(AreaId::LEAF), 1);
    }

    #[test]
    fn far_write_falls_back_to_sparse_and_migrates_on_growth() {
        let d = disk();
        let far = (ARENA_GROW_SLACK_PAGES as u32) + 50_000;
        d.write(AreaId::LEAF, far, &[7u8; PAGE_SIZE]);
        d.write(AreaId::LEAF, far + 1, &[8u8; 100]);
        assert_eq!(d.materialized_pages(AreaId::LEAF), 2);
        assert_eq!(
            d.materialized_page_numbers(AreaId::LEAF),
            vec![far, far + 1]
        );
        // Sparse pages read back (and partial final pages read as zero).
        let mut out = vec![0xAAu8; 3 * PAGE_SIZE];
        d.read(AreaId::LEAF, far, &mut out);
        assert!(out[..PAGE_SIZE].iter().all(|&b| b == 7));
        assert!(out[PAGE_SIZE..PAGE_SIZE + 100].iter().all(|&b| b == 8));
        assert!(out[PAGE_SIZE + 100..].iter().all(|&b| b == 0));
        // A dense write train marches the arena over the sparse pages;
        // their content must survive the migration.
        let step = ARENA_GROW_SLACK_PAGES as u32;
        let mut at = 0u32;
        while at <= far + 2 {
            d.poke(AreaId::LEAF, at, &[1u8; PAGE_SIZE]);
            at += step;
        }
        let mut back = vec![0u8; PAGE_SIZE + 100];
        d.peek(AreaId::LEAF, far, &mut back);
        assert!(back[..PAGE_SIZE].iter().all(|&b| b == 7));
        assert!(back[PAGE_SIZE..].iter().all(|&b| b == 8));
    }

    #[test]
    fn arena_and_sparse_reads_span_the_frontier() {
        let d = disk();
        d.write(AreaId::LEAF, 0, &[3u8; 2 * PAGE_SIZE]); // arena: pages 0..2
        let far = (ARENA_GROW_SLACK_PAGES as u32) * 3;
        d.write(AreaId::LEAF, far, &[4u8; PAGE_SIZE]); // sparse
        let mut out = vec![0xAAu8; PAGE_SIZE * 4];
        d.read(AreaId::LEAF, 1, &mut out);
        assert!(out[..PAGE_SIZE].iter().all(|&b| b == 3), "arena page");
        assert!(
            out[PAGE_SIZE..].iter().all(|&b| b == 0),
            "past the frontier"
        );
    }

    #[test]
    fn write_gather_is_one_call_of_n_pages() {
        let d = disk();
        d.enable_trace(4);
        let a: PageBox = Box::new([5u8; PAGE_SIZE]);
        let b: PageBox = Box::new([6u8; PAGE_SIZE]);
        d.write_gather(AreaId::LEAF, 9, &[&a, &b]);
        assert_eq!(d.stats().write_calls, 1);
        assert_eq!(d.stats().pages_written, 2);
        assert_eq!(d.stats().time_us, 33_000 + 2 * 4_000);
        let t = d.take_trace();
        assert_eq!(
            (t[0].kind, t[0].start, t[0].pages),
            (TraceKind::Write, 9, 2)
        );
        let mut out = vec![0u8; 2 * PAGE_SIZE];
        d.peek(AreaId::LEAF, 9, &mut out);
        assert!(out[..PAGE_SIZE].iter().all(|&b| b == 5));
        assert!(out[PAGE_SIZE..].iter().all(|&b| b == 6));
    }

    #[test]
    fn concurrent_readers_see_consistent_pages_and_stats() {
        let d = std::sync::Arc::new(disk());
        let data: Vec<u8> = (0..PAGE_SIZE * 2).map(|i| (i % 241) as u8).collect();
        d.write(AreaId::LEAF, 0, &data);
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let d = d.clone();
                let data = data.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let mut out = vec![0u8; data.len()];
                        d.read(AreaId::LEAF, 0, &mut out);
                        assert_eq!(out, data);
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().expect("reader");
        }
        let s = d.stats();
        assert_eq!(s.read_calls, 200);
        assert_eq!(s.pages_read, 400);
        assert_eq!(s.write_calls, 1);
    }
}
