//! Binary entry point for `lobctl`; all logic lives in the library so it
//! can be tested in-process.

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = lobstore_cli::run(&args);
    std::io::stdout()
        .write_all(&outcome.stdout)
        .expect("stdout");
    eprint!("{}", outcome.stderr);
    std::process::exit(outcome.status);
}
