//! `lobctl <image> check` — offline consistency checking (an `fsck` for
//! database images).
//!
//! Verifies, for a database reached through its catalog:
//!
//! 1. every object's own structural invariants (count-tree consistency,
//!    fill factors, segment bounds);
//! 2. that no two objects claim the same LEAF pages;
//! 3. that the LEAF allocator's map matches exactly the pages reachable
//!    from objects (no leaks, no dangling references);
//! 4. the same for META pages (catalog chain + object roots + interior
//!    index pages).
//!
//! The CLI maps results to exit codes the way `fsck` does: 0 when the
//! image is consistent, 1 when findings were reported, 2 when the image
//! could not be read at all. `--json` emits the findings in the same
//! `{"count": N, "findings": [...]}` shape the workspace linter uses.

use std::collections::HashMap;

use lobstore_core::{open_object, Catalog, Db};

/// One problem found by the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Finding {
    ObjectBroken { name: String, detail: String },
    LeafOverlap { page: u32, owners: Vec<String> },
    LeafLeaked { page: u32 },
    LeafDangling { name: String, page: u32 },
    MetaLeaked { page: u32 },
    MetaDangling { owner: String, page: u32 },
    AllocLogBroken { detail: String },
}

impl Finding {
    /// Stable machine-readable name of this finding class (the `kind`
    /// field of the JSON output).
    pub fn kind(&self) -> &'static str {
        match self {
            Finding::ObjectBroken { .. } => "object-broken",
            Finding::LeafOverlap { .. } => "leaf-overlap",
            Finding::LeafLeaked { .. } => "leaf-leaked",
            Finding::LeafDangling { .. } => "leaf-dangling",
            Finding::MetaLeaked { .. } => "meta-leaked",
            Finding::MetaDangling { .. } => "meta-dangling",
            Finding::AllocLogBroken { .. } => "alloc-log-broken",
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Finding::ObjectBroken { name, detail } => {
                write!(f, "object '{name}' failed invariants: {detail}")
            }
            Finding::LeafOverlap { page, owners } => {
                write!(
                    f,
                    "leaf page {page} claimed by multiple objects: {owners:?}"
                )
            }
            Finding::LeafLeaked { page } => {
                write!(f, "leaf page {page} allocated but unreachable (leak)")
            }
            Finding::LeafDangling { name, page } => {
                write!(f, "object '{name}' references unallocated leaf page {page}")
            }
            Finding::MetaLeaked { page } => {
                write!(f, "meta page {page} allocated but unreachable (leak)")
            }
            Finding::MetaDangling { owner, page } => {
                write!(f, "'{owner}' references unallocated meta page {page}")
            }
            Finding::AllocLogBroken { detail } => {
                write!(f, "allocation log failed verification: {detail}")
            }
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render findings as `{"count": N, "findings": [...]}`, one object per
/// finding carrying its stable [`Finding::kind`] and the human-readable
/// message.
pub fn findings_to_json(findings: &[Finding]) -> String {
    if findings.is_empty() {
        return "{\"count\": 0, \"findings\": []}".to_string();
    }
    let items: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "    {{\"kind\": \"{}\", \"message\": \"{}\"}}",
                f.kind(),
                json_escape(&f.to_string())
            )
        })
        .collect();
    format!(
        "{{\"count\": {}, \"findings\": [\n{}\n]}}",
        findings.len(),
        items.join(",\n")
    )
}

/// Run `f`, converting a panic into an error message. Deep page-parsing
/// code asserts on structurally impossible values (entry counts beyond
/// page capacity and the like); the checker must stay total on garbage
/// input, so those asserts become findings rather than aborts.
fn catching<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// Run all checks; an empty result means the database is consistent.
pub fn check_database(db: &mut Db, cat: &mut Catalog) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Reachability maps: page → owner name.
    let mut leaf_owner: HashMap<u32, String> = HashMap::new();
    let mut meta_owner: HashMap<u32, String> = HashMap::new();

    // Pages owned by the MVCC machinery rather than any object: the
    // allocation-log chain (META) and frees deferred while a snapshot
    // still pins an old version (DESIGN.md §16). Both are allocated on
    // purpose and must not be reported as leaks.
    for page in db.alloc_log_pages() {
        meta_owner.insert(page, "<alloc-log>".to_string());
    }
    for ext in db.deferred_extents() {
        let map = if ext.area == lobstore_simdisk::AreaId::META {
            &mut meta_owner
        } else {
            &mut leaf_owner
        };
        for p in ext.start..ext.end() {
            map.insert(p, "<deferred-free>".to_string());
        }
    }
    if let Err(e) = db.verify_alloc_log() {
        findings.push(Finding::AllocLogBroken {
            detail: e.to_string(),
        });
    }

    match catching(|| cat.pages(db)) {
        Ok(Ok(pages)) => {
            for p in pages {
                meta_owner.insert(p, "<catalog>".to_string());
            }
        }
        Ok(Err(e)) => {
            findings.push(Finding::ObjectBroken {
                name: "<catalog>".into(),
                detail: e.to_string(),
            });
            return findings;
        }
        Err(msg) => {
            findings.push(Finding::ObjectBroken {
                name: "<catalog>".into(),
                detail: format!("checker panicked: {msg}"),
            });
            return findings;
        }
    }

    let entries = match catching(|| cat.list(db)) {
        Ok(Ok(e)) => e,
        Ok(Err(e)) => {
            findings.push(Finding::ObjectBroken {
                name: "<catalog>".into(),
                detail: e.to_string(),
            });
            return findings;
        }
        Err(msg) => {
            findings.push(Finding::ObjectBroken {
                name: "<catalog>".into(),
                detail: format!("checker panicked: {msg}"),
            });
            return findings;
        }
    };

    for entry in &entries {
        let walked = catching(|| {
            let obj = match open_object(db, entry.kind, entry.root_page) {
                Ok(o) => o,
                Err(e) => {
                    findings.push(Finding::ObjectBroken {
                        name: entry.name.clone(),
                        detail: e.to_string(),
                    });
                    return;
                }
            };
            if let Err(e) = obj.check_invariants(db) {
                findings.push(Finding::ObjectBroken {
                    name: entry.name.clone(),
                    detail: e.to_string(),
                });
            }
            for page in obj.index_page_numbers(db) {
                meta_owner.insert(page, entry.name.clone());
            }
            for seg in obj.segments(db) {
                for p in seg.start_page..seg.start_page + seg.pages {
                    if let Some(prev) = leaf_owner.insert(p, entry.name.clone()) {
                        if prev != entry.name {
                            findings.push(Finding::LeafOverlap {
                                page: p,
                                owners: vec![prev, entry.name.clone()],
                            });
                        }
                    }
                }
            }
        });
        if let Err(msg) = walked {
            findings.push(Finding::ObjectBroken {
                name: entry.name.clone(),
                detail: format!("checker panicked: {msg}"),
            });
        }
    }

    // Allocator vs reachability, LEAF area.
    let mut leaf_allocated = std::collections::HashSet::new();
    for ext in db.leaf_allocated_ranges() {
        for p in ext.start..ext.end() {
            leaf_allocated.insert(p);
        }
    }
    for (&page, name) in &leaf_owner {
        if !leaf_allocated.contains(&page) {
            findings.push(Finding::LeafDangling {
                name: name.clone(),
                page,
            });
        }
    }
    for &page in &leaf_allocated {
        if !leaf_owner.contains_key(&page) {
            findings.push(Finding::LeafLeaked { page });
        }
    }

    // META area: allocated pages must be exactly the reachable set.
    // (Directory pages are the allocator's own and are not in its map.)
    let mut meta_allocated = std::collections::HashSet::new();
    for ext in db.meta_allocated_ranges() {
        for p in ext.start..ext.end() {
            meta_allocated.insert(p);
        }
    }
    for (&page, owner) in &meta_owner {
        if !meta_allocated.contains(&page) {
            findings.push(Finding::MetaDangling {
                owner: owner.clone(),
                page,
            });
        }
    }
    for &page in &meta_allocated {
        if !meta_owner.contains_key(&page) {
            findings.push(Finding::MetaLeaked { page });
        }
    }

    findings.sort_by_key(|f| format!("{f:?}"));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobstore_core::{DbConfig, ManagerSpec, StorageKind};

    fn setup() -> (Db, Catalog) {
        let mut db = Db::new(DbConfig::default());
        let mut cat = Catalog::create(&mut db).unwrap();
        for (name, spec) in [
            ("a", ManagerSpec::esm(4)),
            ("b", ManagerSpec::eos(16)),
            ("c", ManagerSpec::starburst()),
        ] {
            let mut obj = spec.create(&mut db).unwrap();
            obj.append(&mut db, &vec![7u8; 100_000]).unwrap();
            obj.trim(&mut db).unwrap();
            cat.put(&mut db, name, obj.kind(), obj.root_page()).unwrap();
        }
        (db, cat)
    }

    #[test]
    fn healthy_database_has_no_findings() {
        let (mut db, mut cat) = setup();
        let findings = check_database(&mut db, &mut cat);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn detects_leaked_leaf_pages() {
        let (mut db, mut cat) = setup();
        // Allocate pages that no object references.
        let _leak = db.alloc_leaf(3);
        let findings = check_database(&mut db, &mut cat);
        let leaks = findings
            .iter()
            .filter(|f| matches!(f, Finding::LeafLeaked { .. }))
            .count();
        assert_eq!(leaks, 3, "{findings:?}");
    }

    #[test]
    fn detects_dangling_references() {
        let (mut db, mut cat) = setup();
        // Free a segment out from under object "b".
        let e = cat.get(&mut db, "b").unwrap().unwrap();
        let obj = open_object(&mut db, e.kind, e.root_page).unwrap();
        let seg = obj.segments(&db)[0];
        db.free_leaf(lobstore_core::Extent::new(
            lobstore_simdisk::AreaId::LEAF,
            seg.start_page,
            1,
        ));
        let findings = check_database(&mut db, &mut cat);
        assert!(
            findings
                .iter()
                .any(|f| matches!(f, Finding::LeafDangling { .. })),
            "{findings:?}"
        );
    }

    #[test]
    fn detects_corrupt_object_roots() {
        let (mut db, mut cat) = setup();
        let e = cat.get(&mut db, "a").unwrap().unwrap();
        // Stamp garbage over the root's magic.
        db.with_meta_page_mut(e.root_page, |p| p[0..4].copy_from_slice(b"XXXX"));
        let findings = check_database(&mut db, &mut cat);
        assert!(
            findings.iter().any(|f| matches!(
                f,
                Finding::ObjectBroken { name, .. } if name == "a"
            )),
            "{findings:?}"
        );
    }

    #[test]
    fn json_output_shape() {
        assert_eq!(findings_to_json(&[]), "{\"count\": 0, \"findings\": []}");
        let findings = [
            Finding::LeafLeaked { page: 9 },
            Finding::ObjectBroken {
                name: "a\"b".into(),
                detail: "broken".into(),
            },
        ];
        let json = findings_to_json(&findings);
        assert!(json.contains("\"count\": 2"), "{json}");
        assert!(json.contains("\"kind\": \"leaf-leaked\""), "{json}");
        assert!(json.contains("\"kind\": \"object-broken\""), "{json}");
        assert!(json.contains("a\\\"b"), "quotes escaped: {json}");
    }

    #[test]
    fn alloc_log_and_deferred_pages_are_not_leaks() {
        let mut db = Db::new(DbConfig {
            alloc_log: true,
            ..DbConfig::default()
        });
        let mut cat = Catalog::create(&mut db).unwrap();
        let mut obj = ManagerSpec::esm(4).create(&mut db).unwrap();
        obj.append(&mut db, &vec![1u8; 120_000]).unwrap();
        cat.put(&mut db, "a", obj.kind(), obj.root_page()).unwrap();
        assert!(
            !db.alloc_log_pages().is_empty(),
            "log chain exists once configured"
        );
        // Pin a snapshot, then shrink the object so frees are deferred.
        let snap = db.snapshot();
        obj.delete(&mut db, 0, 60_000).unwrap();
        assert!(!db.deferred_extents().is_empty(), "frees were deferred");
        let findings = check_database(&mut db, &mut cat);
        assert!(findings.is_empty(), "{findings:?}");
        db.release_snapshot(snap);
        let findings = check_database(&mut db, &mut cat);
        assert!(findings.is_empty(), "clean after reclamation: {findings:?}");
    }

    #[test]
    fn detects_a_broken_alloc_log() {
        let mut db = Db::new(DbConfig {
            alloc_log: true,
            ..DbConfig::default()
        });
        let mut cat = Catalog::create(&mut db).unwrap();
        let mut obj = ManagerSpec::eos(16).create(&mut db).unwrap();
        obj.append(&mut db, &vec![2u8; 40_000]).unwrap();
        cat.put(&mut db, "a", obj.kind(), obj.root_page()).unwrap();
        // Stamp garbage over the log head's magic: the chain walk stops
        // dead, so the replayed allocation map can no longer match the
        // live allocators.
        let head = db.alloc_log_pages()[0];
        db.with_meta_page_mut(head, |p| p[0..4].copy_from_slice(b"XXXX"));
        let findings = check_database(&mut db, &mut cat);
        assert!(
            findings
                .iter()
                .any(|f| matches!(f, Finding::AllocLogBroken { .. })),
            "{findings:?}"
        );
    }

    #[test]
    fn detects_kind_confusion() {
        let (mut db, mut cat) = setup();
        // Re-register object "a" under the wrong kind.
        let e = cat.get(&mut db, "a").unwrap().unwrap();
        cat.remove(&mut db, "a").unwrap();
        cat.put(&mut db, "a", StorageKind::Starburst, e.root_page)
            .unwrap();
        let findings = check_database(&mut db, &mut cat);
        assert!(!findings.is_empty());
    }
}
