//! `lobctl` — manage named large objects in a lobstore database image.
//!
//! A database image is a single file (the `lobstore-simdisk` image
//! format). Objects are addressed by name through a [`Catalog`] whose
//! first page is, by convention, the first META page the freshly
//! initialized database allocates.
//!
//! ```text
//! lobctl <image> init
//! lobctl <image> create <name> esm <leaf_pages> | eos <threshold> | starburst
//! lobctl <image> ls
//! lobctl <image> put <name> <file>             append a file's bytes
//! lobctl <image> cat <name> [<off> <len>]      bytes to stdout
//! lobctl <image> insert <name> <off> <file>    splice a file in
//! lobctl <image> cut <name> <off> <len>        delete a byte range
//! lobctl <image> stat <name>                   size, utilization, segments
//! lobctl <image> rm <name>                     destroy object + name
//! lobctl <image> info                          database totals
//! lobctl <image> stats [--json] [--watch <n>]  per-scheme storage summary
//! lobctl <image> check [--json]                consistency check (fsck)
//! ```
//!
//! `check` exits 0 when the image is consistent, 1 when it reported
//! findings, and 2 when the image could not be read at all.
//!
//! Every mutating command reports the simulated I/O it cost, so the CLI
//! doubles as a hands-on explorer of the paper's cost model.

mod check;

pub use check::{check_database, findings_to_json, Finding};

use std::io::Write as _;

use lobstore_core::{Catalog, Db, DbConfig, LargeObject, ManagerSpec, StorageKind};

/// Exit status plus everything printed, for testability.
pub struct Outcome {
    pub status: i32,
    pub stdout: Vec<u8>,
    pub stderr: String,
}

impl Outcome {
    fn ok(stdout: Vec<u8>) -> Outcome {
        Outcome {
            status: 0,
            stdout,
            stderr: String::new(),
        }
    }

    fn err(msg: impl Into<String>) -> Outcome {
        Outcome {
            status: 1,
            stdout: Vec::new(),
            stderr: msg.into(),
        }
    }
}

/// By convention the catalog sits on the first META data page (the dir
/// page of space 0 is page 0, so the first allocation returns page 1).
const CATALOG_ROOT: u32 = 1;

/// Run one `lobctl` invocation. `args` excludes the program name.
pub fn run(args: &[String]) -> Outcome {
    let usage =
        "usage: lobctl <image> <init|create|ls|put|cat|insert|cut|stat|rm|info|stats|check> ...";
    if args.len() < 2 {
        return Outcome::err(usage);
    }
    let image = &args[0];
    let cmd = args[1].as_str();
    let rest = &args[2..];

    if cmd == "init" {
        let mut db = Db::new(DbConfig::default());
        let cat = match Catalog::create(&mut db) {
            Ok(c) => c,
            Err(e) => return Outcome::err(e.to_string()),
        };
        debug_assert_eq!(cat.root_page(), CATALOG_ROOT);
        return match db.save_to_path(image) {
            Ok(()) => Outcome::ok(format!("initialized {image}\n").into_bytes()),
            Err(e) => Outcome::err(e.to_string()),
        };
    }

    // Every other command works on an existing image. `check` signals an
    // unreadable image with exit status 2 (fsck convention) so scripts can
    // tell "could not even look" from "looked and found problems".
    let unreadable = |msg: String| {
        let mut o = Outcome::err(msg);
        if cmd == "check" {
            o.status = 2;
        }
        o
    };
    let mut db = match Db::load_from_path(image, DbConfig::default()) {
        Ok(db) => db,
        Err(e) => return unreadable(format!("cannot open {image}: {e}")),
    };
    let mut cat = match Catalog::open(&mut db, CATALOG_ROOT) {
        Ok(c) => c,
        Err(e) => return unreadable(format!("{image} has no catalog: {e}")),
    };

    let before = db.io_stats();
    let mut out: Vec<u8> = Vec::new();
    let mutating;

    macro_rules! bail {
        ($($t:tt)*) => { return Outcome::err(format!($($t)*)) };
    }
    macro_rules! need {
        ($n:expr, $what:expr) => {
            if rest.len() != $n {
                bail!("{}", $what);
            }
        };
    }

    match cmd {
        "create" => {
            mutating = true;
            if rest.len() < 2 {
                bail!("usage: create <name> esm <leaf_pages> | eos <threshold> | starburst");
            }
            let name = &rest[0];
            let spec = match (rest[1].as_str(), rest.get(2)) {
                ("esm", Some(p)) => match p.parse() {
                    Ok(p) => ManagerSpec::esm(p),
                    Err(_) => bail!("bad leaf page count '{p}'"),
                },
                ("eos", Some(t)) => match t.parse() {
                    Ok(t) => ManagerSpec::eos(t),
                    Err(_) => bail!("bad threshold '{t}'"),
                },
                ("starburst", None) => ManagerSpec::starburst(),
                _ => bail!("unknown kind; use: esm <pages> | eos <threshold> | starburst"),
            };
            let obj = match spec.create(&mut db) {
                Ok(o) => o,
                Err(e) => bail!("{e}"),
            };
            if let Err(e) = cat.put(&mut db, name, obj.kind(), obj.root_page()) {
                bail!("{e}");
            }
            let _ = writeln!(out, "created {name} ({})", spec.label());
        }
        "ls" => {
            mutating = false;
            let entries = match cat.list(&mut db) {
                Ok(e) => e,
                Err(e) => bail!("{e}"),
            };
            for e in entries {
                let mut obj = match lobstore_core::open_object(&mut db, e.kind, e.root_page) {
                    Ok(o) => o,
                    Err(err) => bail!("{err}"),
                };
                let size = obj.size(&mut db);
                let u = obj.utilization(&db);
                let _ = writeln!(
                    out,
                    "{:<24} {:>10} B  {:<9} util {:>5.1}%",
                    e.name,
                    size,
                    e.kind.to_string(),
                    u.ratio() * 100.0
                );
                let _ = &mut obj;
            }
        }
        "put" | "insert" => {
            mutating = true;
            let (name, off, file) = if cmd == "put" {
                need!(2, "usage: put <name> <file>");
                (&rest[0], None, &rest[1])
            } else {
                need!(3, "usage: insert <name> <off> <file>");
                let off: u64 = match rest[1].parse() {
                    Ok(o) => o,
                    Err(_) => bail!("bad offset '{}'", rest[1]),
                };
                (&rest[0], Some(off), &rest[2])
            };
            let bytes = match std::fs::read(file) {
                Ok(b) => b,
                Err(e) => bail!("cannot read {file}: {e}"),
            };
            let mut obj = match open_named(&mut db, &mut cat, name) {
                Ok(o) => o,
                Err(e) => return e,
            };
            let result = match off {
                None => obj.append(&mut db, &bytes),
                Some(off) => obj.insert(&mut db, off, &bytes),
            };
            if let Err(e) = result {
                bail!("{e}");
            }
            let _ = writeln!(out, "{} bytes -> {name}", bytes.len());
        }
        "cat" => {
            mutating = false;
            if rest.is_empty() || rest.len() == 2 || rest.len() > 3 {
                bail!("usage: cat <name> [<off> <len>]");
            }
            let obj = match open_named(&mut db, &mut cat, &rest[0]) {
                Ok(o) => o,
                Err(e) => return e,
            };
            let size = obj.size(&mut db);
            let (off, len) = if rest.len() == 3 {
                match (rest[1].parse::<u64>(), rest[2].parse::<u64>()) {
                    (Ok(o), Ok(l)) => (o, l),
                    _ => bail!("bad off/len"),
                }
            } else {
                (0, size)
            };
            let mut buf = vec![0u8; len as usize];
            if let Err(e) = obj.read(&mut db, off, &mut buf) {
                bail!("{e}");
            }
            out.extend_from_slice(&buf);
        }
        "cut" => {
            mutating = true;
            need!(3, "usage: cut <name> <off> <len>");
            let (off, len) = match (rest[1].parse::<u64>(), rest[2].parse::<u64>()) {
                (Ok(o), Ok(l)) => (o, l),
                _ => bail!("bad off/len"),
            };
            let mut obj = match open_named(&mut db, &mut cat, &rest[0]) {
                Ok(o) => o,
                Err(e) => return e,
            };
            if let Err(e) = obj.delete(&mut db, off, len) {
                bail!("{e}");
            }
            let _ = writeln!(out, "cut {len} bytes at {off} from {}", rest[0]);
        }
        "stat" => {
            mutating = false;
            need!(1, "usage: stat <name>");
            let obj = match open_named(&mut db, &mut cat, &rest[0]) {
                Ok(o) => o,
                Err(e) => return e,
            };
            let size = obj.size(&mut db);
            let u = obj.utilization(&db);
            let _ = writeln!(out, "{}: {} ({} bytes)", rest[0], obj.kind(), size);
            let _ = writeln!(
                out,
                "  data pages {}  index pages {}  utilization {:.1}%",
                u.data_pages,
                u.index_pages,
                u.ratio() * 100.0
            );
            let segs = obj.segments(&db);
            let _ = writeln!(out, "  {} segment(s):", segs.len());
            for s in segs.iter().take(32) {
                let _ = writeln!(
                    out,
                    "    @{:<12} page {:<8} {:>10} B in {:>5} page(s)",
                    s.offset, s.start_page, s.bytes, s.pages
                );
            }
            if segs.len() > 32 {
                let _ = writeln!(out, "    ... {} more", segs.len() - 32);
            }
        }
        "rm" => {
            mutating = true;
            need!(1, "usage: rm <name>");
            let mut obj = match open_named(&mut db, &mut cat, &rest[0]) {
                Ok(o) => o,
                Err(e) => return e,
            };
            if let Err(e) = obj.destroy(&mut db) {
                bail!("{e}");
            }
            if let Err(e) = cat.remove(&mut db, &rest[0]) {
                bail!("{e}");
            }
            let _ = writeln!(out, "removed {}", rest[0]);
        }
        "check" => {
            mutating = false;
            let json = match rest {
                [] => false,
                [flag] if flag == "--json" => true,
                _ => bail!("usage: check [--json]"),
            };
            let findings = check::check_database(&mut db, &mut cat);
            if json {
                let _ = writeln!(out, "{}", check::findings_to_json(&findings));
            } else if findings.is_empty() {
                let _ = writeln!(out, "ok: catalog, objects, and space maps are consistent");
            } else {
                for f in &findings {
                    let _ = writeln!(out, "PROBLEM: {f}");
                }
            }
            if !findings.is_empty() {
                let stderr = format!("{} problem(s) found\n", findings.len());
                return Outcome {
                    status: 1,
                    stdout: out,
                    stderr,
                };
            }
        }
        "stats" => {
            mutating = false;
            let mut json = false;
            let mut watch: Option<u32> = None;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--json" => json = true,
                    "--watch" => {
                        match rest.get(i + 1).and_then(|v| v.parse::<u32>().ok()) {
                            Some(n) if n > 0 => watch = Some(n),
                            _ => bail!("usage: stats [--json] [--watch <n>]"),
                        }
                        i += 1;
                    }
                    _ => bail!("usage: stats [--json] [--watch <n>]"),
                }
                i += 1;
            }
            if let Some(n) = watch {
                if json {
                    bail!("stats: --watch and --json are mutually exclusive");
                }
                // Sampled mode: one compact health line per pass,
                // re-opening the image each time so a writer between
                // passes shows up. Deliberately no sleeping — callers
                // pace the loop (watch(1)-style wrappers, tests).
                let _ = writeln!(
                    out,
                    "{:>4} {:>11} {:>10} {:>12} {:>10} {:>11}",
                    "pass", "leaf alloc", "leaf frag", "largest run", "leaf util", "meta alloc"
                );
                for pass in 0..n {
                    let snap = match Db::load_from_path(image, DbConfig::default()) {
                        Ok(db) => db,
                        Err(e) => bail!("cannot re-open {image}: {e}"),
                    };
                    let leaf = snap.leaf_frag_stats();
                    let meta = snap.meta_frag_stats();
                    let _ = writeln!(
                        out,
                        "{:>4} {:>11} {:>10.3} {:>12} {:>9.1}% {:>11}",
                        pass,
                        leaf.allocated_pages,
                        leaf.frag_ratio(),
                        leaf.largest_free_run,
                        leaf.utilization() * 100.0,
                        meta.allocated_pages,
                    );
                }
                let cost = db.io_stats() - before;
                let stderr = format!(
                    "[simulated I/O: {} calls, {} pages, {:.1} ms]\n",
                    cost.calls(),
                    cost.pages(),
                    cost.time_ms()
                );
                return Outcome {
                    status: 0,
                    stdout: out,
                    stderr,
                };
            }
            let entries = match cat.list(&mut db) {
                Ok(e) => e,
                Err(e) => bail!("{e}"),
            };
            // One accumulator per scheme, in StorageKind order.
            let kinds = [StorageKind::Esm, StorageKind::Starburst, StorageKind::Eos];
            let mut objects = [0u64; 3];
            let mut object_bytes = [0u64; 3];
            let mut alloc_pages = [0u64; 3];
            // log2 buckets over segment page counts: bucket b holds
            // segments of 2^b ..= 2^(b+1)-1 pages.
            let mut seg_hist = [0u64; 33];
            for e in &entries {
                let obj = match lobstore_core::open_object(&mut db, e.kind, e.root_page) {
                    Ok(o) => o,
                    Err(err) => bail!("{err}"),
                };
                let size = obj.size(&mut db);
                let u = obj.utilization(&db);
                let k = kinds.iter().position(|&k| k == e.kind).unwrap_or(0);
                objects[k] += 1;
                object_bytes[k] += size;
                alloc_pages[k] += u.data_pages + u.index_pages;
                for s in obj.segments(&db) {
                    let b = 63 - u64::from(s.pages.max(1)).leading_zeros() as usize;
                    seg_hist[b.min(32)] += 1;
                }
            }
            let page = lobstore_simdisk::PAGE_SIZE as u64;
            let util = |k: usize| {
                if alloc_pages[k] == 0 {
                    1.0
                } else {
                    object_bytes[k] as f64 / (alloc_pages[k] * page) as f64
                }
            };
            let leaf = db.leaf_frag_stats();
            let meta = db.meta_frag_stats();
            if json {
                use lobstore_obs::json::Value;
                let schemes = kinds
                    .iter()
                    .enumerate()
                    .map(|(k, kind)| {
                        Value::Obj(vec![
                            ("scheme".to_string(), Value::from(kind_name(*kind))),
                            ("objects".to_string(), Value::from(objects[k])),
                            ("object_bytes".to_string(), Value::from(object_bytes[k])),
                            (
                                "allocated_bytes".to_string(),
                                Value::from(alloc_pages[k] * page),
                            ),
                            ("utilization".to_string(), Value::Num(util(k))),
                        ])
                    })
                    .collect();
                let hist = seg_hist
                    .iter()
                    .enumerate()
                    .filter(|&(_, &n)| n > 0)
                    .map(|(b, &n)| {
                        Value::Obj(vec![
                            ("min_pages".to_string(), Value::from(1u64 << b)),
                            ("max_pages".to_string(), Value::from((1u64 << (b + 1)) - 1)),
                            ("segments".to_string(), Value::from(n)),
                        ])
                    })
                    .collect();
                let doc = Value::Obj(vec![
                    ("schema".to_string(), Value::from("lobstore-stats/v2")),
                    ("schemes".to_string(), Value::Arr(schemes)),
                    ("segment_pages_log2".to_string(), Value::Arr(hist)),
                    (
                        "fragmentation".to_string(),
                        Value::Obj(vec![
                            ("leaf".to_string(), frag_to_value(&leaf)),
                            ("meta".to_string(), frag_to_value(&meta)),
                        ]),
                    ),
                    ("io".to_string(), (db.io_stats() - before).to_value()),
                ]);
                let _ = writeln!(out, "{}", doc.to_json());
            } else {
                let _ = writeln!(
                    out,
                    "{:<10} {:>8} {:>14} {:>14} {:>7}",
                    "scheme", "objects", "bytes", "allocated", "util"
                );
                for (k, kind) in kinds.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "{:<10} {:>8} {:>14} {:>14} {:>6.1}%",
                        kind_name(*kind),
                        objects[k],
                        object_bytes[k],
                        alloc_pages[k] * page,
                        util(k) * 100.0
                    );
                }
                let _ = writeln!(out, "segment sizes (pages, log2 buckets):");
                for (b, &n) in seg_hist.iter().enumerate() {
                    if n > 0 {
                        let _ =
                            writeln!(out, "  {:>6}-{:<6} : {n}", 1u64 << b, (1u64 << (b + 1)) - 1);
                    }
                }
                let _ = writeln!(out, "fragmentation:");
                for (area, st) in [("leaf", &leaf), ("meta", &meta)] {
                    let _ = writeln!(
                        out,
                        "  {area:<5} alloc {:>8} free {:>8} frag {:>5.3} largest run {:>7}",
                        st.allocated_pages,
                        st.free_pages,
                        st.frag_ratio(),
                        st.largest_free_run
                    );
                    let runs: Vec<u64> = st.free_runs.iter().map(|&r| u64::from(r)).collect();
                    if !runs.is_empty() {
                        let h = lobstore_obs::HistogramSnapshot::from_values("free_runs", &runs);
                        let _ = writeln!(
                            out,
                            "  {area:<5} free runs {:>4}: p50 {:>9.0} p90 {:>9.0} p99 {:>9.0} \
                             max {:>7}",
                            runs.len(),
                            h.p50().unwrap_or(0.0),
                            h.p90().unwrap_or(0.0),
                            h.p99().unwrap_or(0.0),
                            h.max
                        );
                    }
                }
            }
        }
        "info" => {
            mutating = false;
            let n = match cat.len(&mut db) {
                Ok(n) => n,
                Err(e) => bail!("{e}"),
            };
            let _ = writeln!(out, "objects:     {n}");
            let _ = writeln!(out, "leaf pages:  {}", db.leaf_pages_allocated());
            let _ = writeln!(out, "meta pages:  {}", db.meta_pages_allocated());
            let _ = writeln!(
                out,
                "cost model:  {} ms seek, {} us/KB transfer",
                db.config().cost.seek_us / 1000,
                db.config().cost.transfer_us_per_kb
            );
        }
        other => return Outcome::err(format!("unknown command '{other}'\n{usage}")),
    }

    let cost = db.io_stats() - before;
    if mutating {
        if let Err(e) = db.save_to_path(image) {
            return Outcome::err(format!("cannot save {image}: {e}"));
        }
    }
    // Cost note on stderr so `cat` output stays clean on stdout.
    let stderr = format!(
        "[simulated I/O: {} calls, {} pages, {:.1} ms]\n",
        cost.calls(),
        cost.pages(),
        cost.time_ms()
    );
    Outcome {
        status: 0,
        stdout: out,
        stderr,
    }
}

fn open_named(db: &mut Db, cat: &mut Catalog, name: &str) -> Result<Box<dyn LargeObject>, Outcome> {
    let entry = cat
        .get(db, name)
        .map_err(|e| Outcome::err(e.to_string()))?
        .ok_or_else(|| Outcome::err(format!("no object named '{name}'")))?;
    lobstore_core::open_object(db, entry.kind, entry.root_page)
        .map_err(|e| Outcome::err(e.to_string()))
}

/// Render one area's [`lobstore_core::FragStats`] for `stats --json`,
/// including free-run-length quantiles from the log2 histogram.
fn frag_to_value(st: &lobstore_core::FragStats) -> lobstore_obs::json::Value {
    use lobstore_obs::json::Value;
    let runs: Vec<u64> = st.free_runs.iter().map(|&r| u64::from(r)).collect();
    let mut fields = vec![
        ("spaces".to_string(), Value::from(u64::from(st.spaces))),
        (
            "allocated_pages".to_string(),
            Value::from(st.allocated_pages),
        ),
        ("free_pages".to_string(), Value::from(st.free_pages)),
        (
            "largest_free_run_pages".to_string(),
            Value::from(u64::from(st.largest_free_run)),
        ),
        ("frag_ratio".to_string(), Value::Num(st.frag_ratio())),
        ("utilization".to_string(), Value::Num(st.utilization())),
        ("free_runs".to_string(), Value::from(runs.len() as u64)),
    ];
    if !runs.is_empty() {
        let h = lobstore_obs::HistogramSnapshot::from_values("free_runs", &runs);
        for (name, v) in [("p50", h.p50()), ("p90", h.p90()), ("p99", h.p99())] {
            fields.push((
                format!("free_run_{name}"),
                Value::Num(v.unwrap_or_default()),
            ));
        }
    }
    Value::Obj(fields)
}

/// Label helper reused by tests.
pub fn kind_name(kind: StorageKind) -> &'static str {
    match kind {
        StorageKind::Esm => "ESM",
        StorageKind::Eos => "EOS",
        StorageKind::Starburst => "Starburst",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("lobctl-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn full_session() {
        let img = tmp("session.lob");
        let _ = std::fs::remove_file(&img);
        assert_eq!(run(&argv(&[&img, "init"])).status, 0);
        assert_eq!(run(&argv(&[&img, "create", "doc", "eos", "16"])).status, 0);

        let payload = tmp("payload.bin");
        std::fs::write(&payload, b"hello large object world").unwrap();
        assert_eq!(run(&argv(&[&img, "put", "doc", &payload])).status, 0);

        let cat_out = run(&argv(&[&img, "cat", "doc"]));
        assert_eq!(cat_out.status, 0);
        assert_eq!(cat_out.stdout, b"hello large object world");
        assert!(cat_out.stderr.contains("simulated I/O"));

        std::fs::write(&payload, b"BIG ").unwrap();
        assert_eq!(
            run(&argv(&[&img, "insert", "doc", "6", &payload])).status,
            0
        );
        let cat_out = run(&argv(&[&img, "cat", "doc"]));
        assert_eq!(cat_out.stdout, b"hello BIG large object world");

        assert_eq!(run(&argv(&[&img, "cut", "doc", "0", "6"])).status, 0);
        let cat_out = run(&argv(&[&img, "cat", "doc", "0", "3"]));
        assert_eq!(cat_out.stdout, b"BIG");

        let ls = run(&argv(&[&img, "ls"]));
        assert!(String::from_utf8_lossy(&ls.stdout).contains("doc"));
        let stat = run(&argv(&[&img, "stat", "doc"]));
        let stat_text = String::from_utf8_lossy(&stat.stdout).into_owned();
        assert!(stat_text.contains("EOS"), "{stat_text}");
        assert!(stat_text.contains("segment"), "{stat_text}");

        let chk = run(&argv(&[&img, "check"]));
        assert_eq!(chk.status, 0, "{}", String::from_utf8_lossy(&chk.stdout));
        assert!(String::from_utf8_lossy(&chk.stdout).contains("ok:"));

        assert_eq!(run(&argv(&[&img, "rm", "doc"])).status, 0);
        let ls = run(&argv(&[&img, "ls"]));
        assert!(!String::from_utf8_lossy(&ls.stdout).contains("doc"));
        let info = run(&argv(&[&img, "info"]));
        let info_text = String::from_utf8_lossy(&info.stdout).into_owned();
        assert!(info_text.contains("objects:     0"), "{info_text}");
        assert!(info_text.contains("leaf pages:  0"), "{info_text}");
    }

    #[test]
    fn check_exit_codes_and_json() {
        let img = tmp("check-codes.lob");
        let _ = std::fs::remove_file(&img);

        // Missing or garbage image: "could not even look" is exit 2.
        assert_eq!(run(&argv(&[&img, "check"])).status, 2);
        std::fs::write(&img, b"not a database image").unwrap();
        assert_eq!(run(&argv(&[&img, "check", "--json"])).status, 2);
        let _ = std::fs::remove_file(&img);

        run(&argv(&[&img, "init"]));
        run(&argv(&[&img, "create", "doc", "esm", "4"]));
        let payload = tmp("check-codes.bin");
        std::fs::write(&payload, vec![1u8; 20_000]).unwrap();
        assert_eq!(run(&argv(&[&img, "put", "doc", &payload])).status, 0);

        let clean = run(&argv(&[&img, "check", "--json"]));
        assert_eq!(clean.status, 0, "{}", clean.stderr);
        assert_eq!(
            String::from_utf8_lossy(&clean.stdout).trim(),
            "{\"count\": 0, \"findings\": []}"
        );
        assert_eq!(run(&argv(&[&img, "check", "--bogus"])).status, 1);

        // Leak pages no object references, then persist the damage.
        let mut db = Db::load_from_path(&img, DbConfig::default()).unwrap();
        let _leak = db.alloc_leaf(2);
        db.save_to_path(&img).unwrap();

        let bad = run(&argv(&[&img, "check"]));
        assert_eq!(bad.status, 1);
        assert!(
            String::from_utf8_lossy(&bad.stdout).contains("PROBLEM:"),
            "{}",
            String::from_utf8_lossy(&bad.stdout)
        );
        assert!(bad.stderr.contains("problem(s) found"), "{}", bad.stderr);

        let bad_json = run(&argv(&[&img, "check", "--json"]));
        assert_eq!(bad_json.status, 1);
        let text = String::from_utf8_lossy(&bad_json.stdout).into_owned();
        assert!(text.contains("\"kind\": \"leaf-leaked\""), "{text}");
    }

    #[test]
    fn stats_summarizes_per_scheme() {
        let img = tmp("stats.lob");
        let _ = std::fs::remove_file(&img);
        run(&argv(&[&img, "init"]));
        run(&argv(&[&img, "create", "a", "esm", "4"]));
        run(&argv(&[&img, "create", "b", "eos", "16"]));
        let payload = tmp("stats-payload.bin");
        std::fs::write(&payload, vec![9u8; 30_000]).unwrap();
        for name in ["a", "b"] {
            assert_eq!(run(&argv(&[&img, "put", name, &payload])).status, 0);
        }

        let text = run(&argv(&[&img, "stats"]));
        assert_eq!(text.status, 0, "{}", text.stderr);
        let text = String::from_utf8_lossy(&text.stdout).into_owned();
        assert!(text.contains("ESM"), "{text}");
        assert!(text.contains("segment sizes"), "{text}");
        assert!(text.contains("fragmentation:"), "{text}");
        assert!(text.contains("largest run"), "{text}");

        let js = run(&argv(&[&img, "stats", "--json"]));
        assert_eq!(js.status, 0, "{}", js.stderr);
        let v = lobstore_obs::json::parse(std::str::from_utf8(&js.stdout).unwrap()).unwrap();
        use lobstore_obs::json::Value;
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some("lobstore-stats/v2")
        );
        let schemes = v.get("schemes").and_then(Value::as_arr).unwrap();
        assert_eq!(schemes.len(), 3);
        let esm = schemes
            .iter()
            .find(|s| s.get("scheme").and_then(Value::as_str) == Some("ESM"))
            .unwrap();
        assert_eq!(esm.get("objects").and_then(Value::as_u64), Some(1));
        assert_eq!(
            esm.get("object_bytes").and_then(Value::as_u64),
            Some(30_000)
        );
        let alloc = esm.get("allocated_bytes").and_then(Value::as_u64).unwrap();
        assert!(alloc >= 30_000, "allocation covers the object: {alloc}");
        let util = esm.get("utilization").and_then(Value::as_num).unwrap();
        assert!(util > 0.0 && util <= 1.0);
        let hist = v.get("segment_pages_log2").and_then(Value::as_arr).unwrap();
        assert!(!hist.is_empty(), "two objects must have segments");
        let total: u64 = hist
            .iter()
            .map(|b| b.get("segments").and_then(Value::as_u64).unwrap())
            .sum();
        assert!(total >= 2);
        assert!(
            v.get("io").and_then(|io| io.get("pages_read")).is_some(),
            "io cost reported via IoStats::to_value"
        );
        let frag = v.get("fragmentation").expect("v2 carries fragmentation");
        for area in ["leaf", "meta"] {
            let a = frag.get(area).unwrap_or_else(|| panic!("{area} stats"));
            assert!(a.get("allocated_pages").and_then(Value::as_u64).is_some());
            let ratio = a.get("frag_ratio").and_then(Value::as_num).unwrap();
            assert!((0.0..=1.0).contains(&ratio), "{area}: {ratio}");
        }
        let leaf = frag.get("leaf").unwrap();
        assert!(
            leaf.get("allocated_pages").and_then(Value::as_u64).unwrap() > 0,
            "two stored objects allocate leaf pages"
        );
        assert!(
            leaf.get("free_run_p50").and_then(Value::as_num).is_some(),
            "free-run quantiles present when runs exist"
        );
        assert_eq!(run(&argv(&[&img, "stats", "--bogus"])).status, 1);
    }

    #[test]
    fn stats_watch_prints_one_line_per_pass() {
        let img = tmp("stats-watch.lob");
        let _ = std::fs::remove_file(&img);
        run(&argv(&[&img, "init"]));
        run(&argv(&[&img, "create", "a", "esm", "4"]));
        let payload = tmp("stats-watch.bin");
        std::fs::write(&payload, vec![3u8; 40_000]).unwrap();
        assert_eq!(run(&argv(&[&img, "put", "a", &payload])).status, 0);

        let w = run(&argv(&[&img, "stats", "--watch", "3"]));
        assert_eq!(w.status, 0, "{}", w.stderr);
        let text = String::from_utf8_lossy(&w.stdout).into_owned();
        assert_eq!(text.lines().count(), 4, "header + 3 passes: {text}");
        assert!(text.contains("leaf frag"), "{text}");
        // Steady image: every pass reports identical health numbers.
        let lines: Vec<&str> = text.lines().skip(1).collect();
        let tail = |l: &str| l.split_whitespace().skip(1).collect::<Vec<_>>().join(" ");
        assert_eq!(tail(lines[0]), tail(lines[1]));
        assert_eq!(tail(lines[1]), tail(lines[2]));

        assert_eq!(run(&argv(&[&img, "stats", "--watch", "0"])).status, 1);
        assert_eq!(
            run(&argv(&[&img, "stats", "--watch", "2", "--json"])).status,
            1,
            "--watch and --json are mutually exclusive"
        );
    }

    #[test]
    fn errors_are_reported() {
        let img = tmp("errors.lob");
        let _ = std::fs::remove_file(&img);
        assert_eq!(run(&argv(&["missing.lob", "ls"])).status, 1);
        assert_eq!(run(&argv(&[&img, "nonsense"])).status, 1);
        run(&argv(&[&img, "init"]));
        assert_eq!(run(&argv(&[&img, "cat", "ghost"])).status, 1);
        assert_eq!(run(&argv(&[&img, "create", "x", "esm"])).status, 1);
        assert_eq!(run(&argv(&[&img, "create", "x", "esm", "4"])).status, 0);
        assert_eq!(
            run(&argv(&[&img, "create", "x", "eos", "4"])).status,
            1,
            "duplicate names rejected"
        );
        let big_cut = run(&argv(&[&img, "cut", "x", "0", "99"]));
        assert_eq!(big_cut.status, 1, "cut beyond the object fails");
    }

    #[test]
    fn objects_of_all_kinds_coexist() {
        let img = tmp("kinds.lob");
        let _ = std::fs::remove_file(&img);
        run(&argv(&[&img, "init"]));
        run(&argv(&[&img, "create", "a", "esm", "4"]));
        run(&argv(&[&img, "create", "b", "eos", "64"]));
        run(&argv(&[&img, "create", "c", "starburst"]));
        let payload = tmp("kinds-payload.bin");
        std::fs::write(&payload, vec![7u8; 50_000]).unwrap();
        for name in ["a", "b", "c"] {
            assert_eq!(run(&argv(&[&img, "put", name, &payload])).status, 0);
        }
        let ls = String::from_utf8(run(&argv(&[&img, "ls"])).stdout).unwrap();
        assert!(
            ls.contains("ESM") && ls.contains("EOS") && ls.contains("Starburst"),
            "{ls}"
        );
        for name in ["a", "b", "c"] {
            let out = run(&argv(&[&img, "cat", name, "49000", "100"]));
            assert_eq!(out.stdout, vec![7u8; 100], "{name}");
        }
    }
}
