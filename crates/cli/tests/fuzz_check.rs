//! The consistency checker must be total on garbage input: corrupting
//! bytes of a valid image may make it unreadable or may produce findings,
//! but must never panic. A second set of properties corrupts pages the
//! checker explicitly vouches for (catalog page, tree roots, buddy
//! directories) and asserts the damage is actually *reported*.

use lobstore_cli::check_database;
use lobstore_core::{Catalog, Db, DbConfig, ManagerSpec};
use proptest::prelude::*;

/// By convention the catalog sits on the first META data page.
const CATALOG_ROOT: u32 = 1;

/// Build a small healthy database (one object per manager) and return it
/// serialized to image bytes.
fn healthy_image() -> Vec<u8> {
    let mut db = Db::new(DbConfig::default());
    let mut cat = Catalog::create(&mut db).unwrap();
    for (name, spec) in [
        ("a", ManagerSpec::esm(4)),
        ("b", ManagerSpec::eos(16)),
        ("c", ManagerSpec::starburst()),
    ] {
        let mut obj = spec.create(&mut db).unwrap();
        obj.append(&mut db, &vec![0xA5u8; 60_000]).unwrap();
        cat.put(&mut db, name, obj.kind(), obj.root_page()).unwrap();
    }
    let mut img = Vec::new();
    db.save_image(&mut img).unwrap();
    img
}

/// Load corrupted image bytes and run the checker. `None` means the image
/// was rejected before checking (also an acceptable outcome); any panic
/// propagates and fails the property.
fn load_and_check(img: &[u8]) -> Option<Vec<lobstore_cli::Finding>> {
    let mut db = Db::load_image(&mut &img[..], DbConfig::default()).ok()?;
    let mut cat = Catalog::open(&mut db, CATALOG_ROOT).ok()?;
    Some(check_database(&mut db, &mut cat))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    // XOR random bytes anywhere in the image — header, catalog page, tree
    // nodes, buddy directories, data — and demand the whole
    // load/open/check pipeline terminates without panicking.
    #[test]
    fn checker_is_total_on_random_corruption(
        corruptions in prop::collection::vec((any::<usize>(), 1u8..=255), 1..16)
    ) {
        let mut img = healthy_image();
        let len = img.len();
        for &(pos, xor) in &corruptions {
            img[pos % len] ^= xor;
        }
        let _ = load_and_check(&img);
    }

    // Stamp garbage over an object root's magic word: the checker must
    // still terminate AND must report the object as broken.
    #[test]
    fn corrupt_tree_root_is_reported(
        (victim, garbage) in (0usize..3, 1u32..=u32::MAX)
    ) {
        let mut db = Db::new(DbConfig::default());
        let mut cat = Catalog::create(&mut db).unwrap();
        let mut roots = Vec::new();
        for (name, spec) in [
            ("a", ManagerSpec::esm(4)),
            ("b", ManagerSpec::eos(16)),
            ("c", ManagerSpec::starburst()),
        ] {
            let mut obj = spec.create(&mut db).unwrap();
            obj.append(&mut db, &vec![0xA5u8; 60_000]).unwrap();
            cat.put(&mut db, name, obj.kind(), obj.root_page()).unwrap();
            roots.push(obj.root_page());
        }
        db.with_meta_page_mut(roots[victim], |p| {
            for (b, g) in p[0..4].iter_mut().zip(garbage.to_le_bytes()) {
                *b ^= g.max(1);
            }
        });
        let findings = check_database(&mut db, &mut cat);
        prop_assert!(!findings.is_empty(), "magic corruption went unreported");
    }
}

// Wreck the META buddy directory (page 0 of the META area): after an
// image round-trip the allocator sees no spaces at all, so every catalog
// and index page the objects still reference must be reported dangling.
#[test]
fn corrupt_buddy_directory_is_reported() {
    let img = healthy_image();
    let mut db = Db::load_image(&mut img.as_slice(), DbConfig::default()).unwrap();
    db.with_meta_page_mut(0, |p| p[0..4].copy_from_slice(b"XXXX"));
    let mut img2 = Vec::new();
    db.save_image(&mut img2).unwrap();

    let findings = load_and_check(&img2).expect("content pages are intact");
    assert!(!findings.is_empty(), "directory corruption went unreported");
}

// Flipping a count byte in the catalog's entry area must surface either as
// an open failure or as at least one finding — never as silence.
#[test]
fn corrupt_catalog_page_is_reported() {
    let img = healthy_image();
    let mut db = Db::load_image(&mut img.as_slice(), DbConfig::default()).unwrap();
    // Byte 4 is the low byte of the catalog page's n_entries field, so
    // the packed entry area no longer matches the advertised count.
    db.with_meta_page_mut(CATALOG_ROOT, |p| p[4] = p[4].wrapping_add(1));
    let mut img2 = Vec::new();
    db.save_image(&mut img2).unwrap();

    if let Some(findings) = load_and_check(&img2) {
        assert!(!findings.is_empty(), "catalog corruption went unreported");
    }
}
