//! End-to-end test of the real `lobctl` binary via std::process.

use std::process::Command;

fn lobctl(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lobctl"))
        .args(args)
        .output()
        .expect("spawn lobctl")
}

#[test]
fn binary_end_to_end() {
    let dir = std::env::temp_dir().join("lobctl-binary-test");
    std::fs::create_dir_all(&dir).unwrap();
    let img = dir.join("db.lob");
    let img = img.to_str().unwrap();
    let _ = std::fs::remove_file(img);

    let out = lobctl(&[img, "init"]);
    assert!(out.status.success(), "{out:?}");

    let out = lobctl(&[img, "create", "clip", "starburst"]);
    assert!(out.status.success());

    let payload = dir.join("clip.bin");
    std::fs::write(&payload, vec![0xABu8; 200_000]).unwrap();
    let out = lobctl(&[img, "put", "clip", payload.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("simulated I/O"),
        "cost note expected on stderr"
    );

    let out = lobctl(&[img, "cat", "clip", "199990", "10"]);
    assert!(out.status.success());
    assert_eq!(out.stdout, vec![0xABu8; 10]);

    let out = lobctl(&[img, "stat", "clip"]);
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("Starburst"), "{text}");
    assert!(text.contains("200000 bytes"), "{text}");

    // Bad usage exits nonzero with a message.
    let out = lobctl(&[img, "cat"]);
    assert!(!out.status.success());
    assert!(!out.stderr.is_empty());

    let out = lobctl(&[img, "rm", "clip"]);
    assert!(out.status.success());
    let out = lobctl(&[img, "info"]);
    assert!(String::from_utf8_lossy(&out.stdout).contains("objects:     0"));
}
