//! End-to-end test of the real `lobctl` binary via std::process.

use std::process::Command;

fn lobctl(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lobctl"))
        .args(args)
        .output()
        .expect("spawn lobctl")
}

#[test]
fn binary_end_to_end() {
    let dir = std::env::temp_dir().join("lobctl-binary-test");
    std::fs::create_dir_all(&dir).unwrap();
    let img = dir.join("db.lob");
    let img = img.to_str().unwrap();
    let _ = std::fs::remove_file(img);

    let out = lobctl(&[img, "init"]);
    assert!(out.status.success(), "{out:?}");

    let out = lobctl(&[img, "create", "clip", "starburst"]);
    assert!(out.status.success());

    let payload = dir.join("clip.bin");
    std::fs::write(&payload, vec![0xABu8; 200_000]).unwrap();
    let out = lobctl(&[img, "put", "clip", payload.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("simulated I/O"),
        "cost note expected on stderr"
    );

    let out = lobctl(&[img, "cat", "clip", "199990", "10"]);
    assert!(out.status.success());
    assert_eq!(out.stdout, vec![0xABu8; 10]);

    let out = lobctl(&[img, "stat", "clip"]);
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("Starburst"), "{text}");
    assert!(text.contains("200000 bytes"), "{text}");

    // Bad usage exits nonzero with a message.
    let out = lobctl(&[img, "cat"]);
    assert!(!out.status.success());
    assert!(!out.stderr.is_empty());

    let out = lobctl(&[img, "rm", "clip"]);
    assert!(out.status.success());
    let out = lobctl(&[img, "info"]);
    assert!(String::from_utf8_lossy(&out.stdout).contains("objects:     0"));
}

// `check` follows the fsck exit-code convention: 0 consistent, 1 findings
// reported, 2 image unreadable.
#[test]
fn check_exit_codes_through_the_binary() {
    let dir = std::env::temp_dir().join("lobctl-binary-check-test");
    std::fs::create_dir_all(&dir).unwrap();
    let img_path = dir.join("db.lob");
    let img = img_path.to_str().unwrap();
    let _ = std::fs::remove_file(img);

    // Unreadable: missing file, then a file that is not an image.
    let out = lobctl(&[img, "check"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    std::fs::write(img, b"garbage, not an image").unwrap();
    let out = lobctl(&[img, "check", "--json"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let _ = std::fs::remove_file(img);

    // A healthy image checks clean, in text and in JSON.
    assert!(lobctl(&[img, "init"]).status.success());
    assert!(lobctl(&[img, "create", "doc", "eos", "16"])
        .status
        .success());
    let payload = dir.join("doc.bin");
    std::fs::write(&payload, vec![0x5Au8; 50_000]).unwrap();
    assert!(lobctl(&[img, "put", "doc", payload.to_str().unwrap()])
        .status
        .success());
    let out = lobctl(&[img, "check"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("ok:"));
    let out = lobctl(&[img, "check", "--json"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        "{\"count\": 0, \"findings\": []}"
    );

    // Stamp garbage over the object root's magic: findings are exit 1.
    {
        use lobstore_core::{Catalog, Db, DbConfig};
        let mut db = Db::load_from_path(img, DbConfig::default()).unwrap();
        let cat = Catalog::open(&mut db, 1).unwrap();
        let entry = cat.get(&mut db, "doc").unwrap().unwrap();
        db.with_meta_page_mut(entry.root_page, |p| p[0..4].copy_from_slice(b"XXXX"));
        db.save_to_path(img).unwrap();
    }
    let out = lobctl(&[img, "check"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("PROBLEM:"));
    assert!(String::from_utf8_lossy(&out.stderr).contains("problem(s) found"));
    let out = lobctl(&[img, "check", "--json"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let json = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(json.contains("\"kind\": \"object-broken\""), "{json}");
}
