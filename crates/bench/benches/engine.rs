//! Criterion micro-benchmarks: wall-clock cost of engine operations.
//!
//! The per-figure binaries report *simulated* I/O time (deterministic);
//! these benches track the real CPU cost of the engine itself — useful
//! for catching performance regressions in the tree, allocator, and
//! buffer-pool code paths.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use lobstore_core::{Db, DbConfig};
use lobstore_workload::{build_object, fill_bytes, ManagerSpec};

fn fresh() -> Db {
    Db::new(DbConfig::default())
}

const OBJ: u64 = 1 << 20; // 1 MB objects keep each iteration snappy

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("build_1mb_16k_appends");
    for spec in [
        ManagerSpec::esm(4),
        ManagerSpec::eos(4),
        ManagerSpec::starburst(),
    ] {
        g.bench_function(spec.label(), |b| {
            b.iter_batched(
                fresh,
                |mut db| {
                    let (obj, rep) = build_object(&mut db, &spec, OBJ, 16 * 1024).unwrap();
                    black_box((obj.root_page(), rep.io));
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_random_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("read_10k_random");
    for spec in [
        ManagerSpec::esm(4),
        ManagerSpec::eos(16),
        ManagerSpec::starburst(),
    ] {
        let mut db = fresh();
        let (obj, _) = build_object(&mut db, &spec, OBJ, 64 * 1024).unwrap();
        let mut buf = vec![0u8; 10_000];
        let mut at = 0u64;
        g.bench_function(spec.label(), |b| {
            b.iter(|| {
                at = (at * 6_364_136_223_846_793_005 + 1) % (OBJ - 10_000);
                obj.read(&mut db, at, &mut buf).unwrap();
                black_box(buf[0]);
            });
        });
    }
    g.finish();
}

fn bench_insert_delete(c: &mut Criterion) {
    let mut g = c.benchmark_group("insert_delete_1k");
    g.sample_size(20);
    for spec in [ManagerSpec::esm(4), ManagerSpec::eos(4)] {
        let mut db = fresh();
        let (mut obj, _) = build_object(&mut db, &spec, OBJ, 64 * 1024).unwrap();
        let mut chunk = vec![0u8; 1_000];
        fill_bytes(&mut chunk, 1);
        let mut at = 0u64;
        g.bench_function(spec.label(), |b| {
            b.iter(|| {
                at = (at * 2_862_933_555_777_941_757 + 3) % (OBJ / 2);
                obj.insert(&mut db, at, &chunk).unwrap();
                obj.delete(&mut db, at, 1_000).unwrap();
            });
        });
    }
    g.finish();
}

fn bench_sequential_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan_64k_chunks");
    g.sample_size(30);
    for spec in [ManagerSpec::esm(16), ManagerSpec::eos(16)] {
        let mut db = fresh();
        let (obj, _) = build_object(&mut db, &spec, OBJ, 64 * 1024).unwrap();
        g.bench_function(spec.label(), |b| {
            b.iter(|| {
                let rep =
                    lobstore_workload::sequential_scan(&mut db, obj.as_ref(), 64 * 1024).unwrap();
                black_box(rep.bytes);
            });
        });
    }
    g.finish();
}

fn bench_buddy_allocator(c: &mut Criterion) {
    let mut g = c.benchmark_group("buddy");
    g.bench_function("alloc_free_cycle_8p", |b| {
        let mut db = fresh();
        b.iter(|| {
            let e = db.alloc_leaf(8);
            db.free_leaf(black_box(e));
        });
    });
    g.bench_function("alloc_free_mixed_sizes", |b| {
        let mut db = fresh();
        let mut held: Vec<lobstore_core::Extent> = Vec::new();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            if held.len() > 32 {
                db.free_leaf(held.swap_remove((i as usize * 7) % held.len()));
            } else {
                held.push(db.alloc_leaf(1 + (i % 60)));
            }
        });
    });
    g.finish();
}

fn bench_buffer_pool(c: &mut Criterion) {
    use lobstore_bufpool::{BufferPool, PoolConfig};
    use lobstore_simdisk::{AreaId, CostModel, PageId, SimDisk};
    let mut g = c.benchmark_group("bufpool");
    g.bench_function("fix_hit", |b| {
        let pool = BufferPool::new(SimDisk::new(1, CostModel::FREE), PoolConfig::default());
        let pid = PageId::new(AreaId(0), 0);
        let r = pool.fix(pid);
        pool.unfix(r);
        b.iter(|| {
            let r = pool.fix(black_box(pid));
            pool.unfix(r);
        });
    });
    g.bench_function("fix_miss_evict", |b| {
        let pool = BufferPool::new(SimDisk::new(1, CostModel::FREE), PoolConfig::default());
        let mut p = 0u32;
        b.iter(|| {
            p = p.wrapping_add(13) % 10_000; // always a miss
            let r = pool.fix(PageId::new(AreaId(0), black_box(p)));
            pool.unfix(r);
        });
    });
    g.bench_function("read_segment_4p_buffered", |b| {
        let mut pool = BufferPool::new(SimDisk::new(1, CostModel::FREE), PoolConfig::default());
        pool.disk_mut().poke(AreaId(0), 0, &vec![7u8; 16 * 4096]);
        let mut out = vec![0u8; 12_000];
        let mut off = 0u64;
        b.iter(|| {
            off = (off + 977) % 50_000;
            pool.read_segment(AreaId(0), 0, black_box(off), &mut out);
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_random_read,
    bench_insert_delete,
    bench_sequential_scan,
    bench_buddy_allocator,
    bench_buffer_pool
);
criterion_main!(benches);
