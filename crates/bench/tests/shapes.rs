//! Shape assertions: the qualitative findings of §4 must hold at reduced
//! scale, so regressions in any layer surface as a failed claim rather
//! than a silently wrong figure.

use lobstore_bench::{run_update_sweep, Scale};
use lobstore_workload::{ManagerSpec, MixedReport, OpKind};

fn tiny() -> Scale {
    Scale {
        object_bytes: 1 << 20,
        ops: 800,
        mark_every: 200,
    }
}

fn last_util(rep: &MixedReport) -> f64 {
    rep.marks.last().unwrap().utilization
}

fn avg(rep: &MixedReport, kind: OpKind) -> f64 {
    rep.avg_ms(kind, &rep.marks).expect("ops of this kind ran")
}

/// Figure 7.c: for 100 KB operations, small ESM leaves hold much better
/// utilization than large ones (≈96 % vs ≈75 % in the paper).
#[test]
fn fig7c_small_leaves_win_utilization_for_big_ops() {
    let sweep = run_update_sweep(
        &[ManagerSpec::esm(1), ManagerSpec::esm(64)],
        tiny(),
        100_000,
    );
    let (u1, u64_) = (last_util(&sweep[0].1), last_util(&sweep[1].1));
    assert!(u1 > 0.90, "ESM/1 utilization {u1:.3}");
    assert!(u64_ < 0.85, "ESM/64 utilization {u64_:.3}");
    assert!(u1 - u64_ > 0.10, "gap too small: {u1:.3} vs {u64_:.3}");
}

/// Figure 8: EOS utilization is ordered by threshold, with T=64 nearly
/// perfect, for every operation size.
#[test]
fn fig8_eos_utilization_ordered_by_threshold() {
    for mean in [10_000u64, 100_000] {
        let sweep = run_update_sweep(&[ManagerSpec::eos(1), ManagerSpec::eos(64)], tiny(), mean);
        let (u1, u64_) = (last_util(&sweep[0].1), last_util(&sweep[1].1));
        assert!(u64_ > u1, "mean {mean}: T=64 {u64_:.3} vs T=1 {u1:.3}");
        assert!(u64_ > 0.95, "mean {mean}: T=64 {u64_:.3}");
    }
}

/// Figure 9.c: 100 KB reads cost far more on 1-page leaves than 64-page
/// leaves (random page fetches vs sequential segment reads).
#[test]
fn fig9c_read_cost_falls_with_leaf_size() {
    let sweep = run_update_sweep(
        &[ManagerSpec::esm(1), ManagerSpec::esm(64)],
        tiny(),
        100_000,
    );
    let (r1, r64) = (
        avg(&sweep[0].1, OpKind::Read),
        avg(&sweep[1].1, OpKind::Read),
    );
    assert!(
        r1 > 2.5 * r64,
        "ESM/1 reads {r1:.0} ms should dwarf ESM/64 {r64:.0} ms"
    );
}

/// §4.4.2: for the same setting, EOS reads cost no more than ESM reads
/// (EOS keeps inserted bytes in one variable-size segment).
#[test]
fn eos_reads_beat_esm_for_small_segments() {
    let mean = 100_000u64;
    let esm = run_update_sweep(&[ManagerSpec::esm(1)], tiny(), mean);
    let eos = run_update_sweep(&[ManagerSpec::eos(1)], tiny(), mean);
    let (re, ro) = (avg(&esm[0].1, OpKind::Read), avg(&eos[0].1, OpKind::Read));
    assert!(ro < re, "EOS/1 {ro:.0} ms must beat ESM/1 {re:.0} ms");
}

/// Figure 11.c: the best ESM leaf size for 100 KB inserts is the one
/// closest to the insert size (16 pages), and 1-page leaves are poor.
#[test]
fn fig11c_insert_cost_minimized_near_insert_size() {
    let sweep = run_update_sweep(
        &[
            ManagerSpec::esm(1),
            ManagerSpec::esm(16),
            ManagerSpec::esm(64),
        ],
        tiny(),
        100_000,
    );
    let i1 = avg(&sweep[0].1, OpKind::Insert);
    let i16 = avg(&sweep[1].1, OpKind::Insert);
    let i64_ = avg(&sweep[2].1, OpKind::Insert);
    assert!(
        i16 < i64_,
        "16-page {i16:.0} ms must beat 64-page {i64_:.0} ms"
    );
    assert!(i16 < i1, "16-page {i16:.0} ms must beat 1-page {i1:.0} ms");
}

/// Figure 12: EOS insert cost is flat for T ∈ {1,4} and rises beyond.
#[test]
fn fig12_eos_insert_cost_rises_above_t4() {
    let sweep = run_update_sweep(
        &[
            ManagerSpec::eos(1),
            ManagerSpec::eos(4),
            ManagerSpec::eos(64),
        ],
        tiny(),
        10_000,
    );
    let i1 = avg(&sweep[0].1, OpKind::Insert);
    let i4 = avg(&sweep[1].1, OpKind::Insert);
    let i64_ = avg(&sweep[2].1, OpKind::Insert);
    assert!(
        (i1 - i4).abs() < 0.35 * i1.max(i4),
        "T=1 ({i1:.0}) and T=4 ({i4:.0}) should be close"
    );
    assert!(
        i64_ > 1.5 * i4,
        "T=64 ({i64_:.0}) must exceed T=4 ({i4:.0})"
    );
}

/// §4.4.3: delete trends mirror insert trends for EOS.
#[test]
fn deletes_mirror_inserts() {
    let sweep = run_update_sweep(&[ManagerSpec::eos(4), ManagerSpec::eos(64)], tiny(), 10_000);
    let d4 = avg(&sweep[0].1, OpKind::Delete);
    let d64 = avg(&sweep[1].1, OpKind::Delete);
    assert!(
        d64 > d4,
        "T=64 deletes ({d64:.0}) must cost more than T=4 ({d4:.0})"
    );
}
