//! Figure 11 (a/b/c): ESM insert I/O cost under the mixed workload.
//!
//! Expected shape (§4.4.3): the best leaf size tracks the insert size
//! (1/4-page leaves for 100-byte inserts, 4-page for 10 KB, 16-page for
//! 100 KB); 64-page leaves are the most expensive for small inserts
//! because large parts of the segment must be rewritten; 1-page leaves
//! are poor for 100 KB inserts because 25 new pages land as random I/O.

use lobstore_bench::{
    esm_specs, finalize, fmt_ms, print_banner, print_mark_table, run_update_sweep, Scale,
    MEAN_OP_SIZES,
};

fn main() {
    let scale = Scale::from_args();
    print_banner(
        "Figure 11: ESM insert I/O cost (ms) vs number of operations",
        scale,
    );
    for (panel, &mean) in ["a", "b", "c"].iter().zip(&MEAN_OP_SIZES) {
        let sweep = run_update_sweep(&esm_specs(), scale, mean);
        print_mark_table(
            &format!("(11.{panel}) mean operation size {mean} bytes"),
            &sweep,
            |m| fmt_ms(m.insert_ms),
        );
    }
    finalize();
}
