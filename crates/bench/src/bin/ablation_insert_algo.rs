//! Ablation (§3.4): ESM *basic* vs *improved* byte-insert algorithm.
//!
//! \[Care86\]'s claim, adopted by the paper: the improved algorithm gains
//! significant storage utilization at minimal additional insert cost.

use lobstore_bench::{finalize, fmt_ms, fmt_pct, fresh_db, note, print_banner, print_table, Scale};
use lobstore_core::{EsmInsertAlgo, EsmObject, EsmParams};
use lobstore_workload::{build_by_appends, MixedConfig, MixedWorkload, OpKind};

fn main() {
    let scale = Scale::from_args();
    print_banner("Ablation: ESM basic vs improved insert algorithm", scale);

    let mut rows = Vec::new();
    for (leaf_pages, mean) in [(1u32, 100u64), (1, 10_000), (4, 10_000), (16, 100_000)] {
        for algo in [EsmInsertAlgo::Basic, EsmInsertAlgo::Improved] {
            let mut db = fresh_db();
            let mut obj = EsmObject::create(&mut db, EsmParams { leaf_pages }).expect("create");
            obj.insert_algo = algo;
            build_by_appends(
                &mut db,
                &mut obj,
                scale.object_bytes,
                leaf_pages as usize * 4096,
            )
            .expect("build");
            let mut w = MixedWorkload::new(MixedConfig {
                ops: scale.ops,
                mark_every: scale.mark_every,
                mean_op_bytes: mean,
                ..MixedConfig::default()
            });
            let rep = w.run(&mut db, &mut obj).expect("mixed");
            let last = rep.marks.last().expect("marks");
            rows.push(vec![
                format!("ESM/{leaf_pages} {algo:?} @{mean}B"),
                fmt_pct(last.utilization),
                fmt_ms(rep.avg_ms(OpKind::Insert, &rep.marks)),
            ]);
        }
    }
    print_table(
        &[
            "config".to_string(),
            "utilization".to_string(),
            "avg insert (ms)".to_string(),
        ],
        &rows,
    );
    note("Expected: Improved holds noticeably higher utilization for ~equal insert cost.");
    finalize();
}
