//! Delete I/O cost for ESM and EOS (§4.4.3 discusses these without
//! graphs — "the trends mentioned for inserts are also valid for the
//! delete operations"; the graphs lived in the technical report).

use lobstore_bench::{
    eos_specs, esm_specs, finalize, fmt_ms, print_banner, print_mark_table, run_update_sweep,
    Scale, MEAN_OP_SIZES,
};

fn main() {
    let scale = Scale::from_args();
    print_banner("Deletes (tech-report figures): delete I/O cost (ms)", scale);
    for (name, specs) in [("ESM", esm_specs()), ("EOS", eos_specs())] {
        for &mean in &MEAN_OP_SIZES {
            let sweep = run_update_sweep(&specs, scale, mean);
            print_mark_table(
                &format!("{name}, mean operation size {mean} bytes"),
                &sweep,
                |m| fmt_ms(m.delete_ms),
            );
        }
    }
    finalize();
}
