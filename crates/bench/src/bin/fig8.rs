//! Figure 8 (a/b/c): EOS storage utilization under the mixed workload,
//! for thresholds T = 1/4/16/64 pages.
//!
//! Expected shape (§4.4.1): the larger the threshold the better the
//! utilization, regardless of operation size — T=16 holds above ~98 %,
//! T=64 is essentially 100 %, T=1 is clearly the worst.

use lobstore_bench::{
    eos_specs, finalize, fmt_pct, print_banner, print_mark_table, run_update_sweep, Scale,
    MEAN_OP_SIZES,
};

fn main() {
    let scale = Scale::from_args();
    print_banner(
        "Figure 8: EOS storage utilization vs number of operations",
        scale,
    );
    for (panel, &mean) in ["a", "b", "c"].iter().zip(&MEAN_OP_SIZES) {
        let sweep = run_update_sweep(&eos_specs(), scale, mean);
        print_mark_table(
            &format!("(8.{panel}) mean operation size {mean} bytes"),
            &sweep,
            |m| fmt_pct(m.utilization),
        );
    }
    finalize();
}
