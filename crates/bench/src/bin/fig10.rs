//! Figure 10 (a/b/c): EOS random-read I/O cost under the mixed workload.
//!
//! Expected shape (§4.4.2): right after the build the cost is independent
//! of T (segments are still large); as updates degrade segments toward
//! ~T pages the curves separate — larger thresholds read cheaper, and a
//! threshold of 16 is enough to match Starburst (Table 2).

use lobstore_bench::{
    eos_specs, finalize, fmt_ms, print_banner, print_mark_table, run_update_sweep, Scale,
    MEAN_OP_SIZES,
};

fn main() {
    let scale = Scale::from_args();
    print_banner(
        "Figure 10: EOS read I/O cost (ms) vs number of operations",
        scale,
    );
    for (panel, &mean) in ["a", "b", "c"].iter().zip(&MEAN_OP_SIZES) {
        let sweep = run_update_sweep(&eos_specs(), scale, mean);
        print_mark_table(
            &format!("(10.{panel}) mean operation size {mean} bytes"),
            &sweep,
            |m| fmt_ms(m.read_ms),
        );
    }
    finalize();
}
