//! Ablation (§3.3): update costs with and without shadowing.
//!
//! The paper includes shadowing so segment size influences update cost
//! ("with shadowing, updating one page of a 64-block segment is ~6-7x
//! more costly than one page of a 2-block segment"). Turning it off makes
//! small in-place updates nearly free of the segment-size effect.

use lobstore_bench::{finalize, fmt_ms, note, print_banner, print_table, Scale};
use lobstore_core::{Db, DbConfig};
use lobstore_workload::{build_object, fill_bytes, ManagerSpec};

fn main() {
    let scale = Scale::from_args();
    print_banner("Ablation: shadowing on/off — 100-byte replace cost", scale);

    let mut rows = Vec::new();
    for spec in [
        ManagerSpec::esm(1),
        ManagerSpec::esm(16),
        ManagerSpec::esm(64),
        ManagerSpec::eos(16),
    ] {
        let mut cells = vec![spec.label()];
        for shadowing in [true, false] {
            let mut db = Db::new(DbConfig {
                shadowing,
                ..DbConfig::default()
            });
            let append = match spec {
                ManagerSpec::Esm { leaf_pages } => leaf_pages as usize * 4096,
                _ => 256 * 1024,
            };
            let (mut obj, _) =
                build_object(&mut db, &spec, scale.object_bytes, append).expect("build");
            let mut patch = [0u8; 100];
            let n = 200u64;
            let before = db.io_stats();
            for i in 0..n {
                fill_bytes(&mut patch, i);
                let off = (i * 48_271) % (scale.object_bytes - 100);
                obj.replace(&mut db, off, &patch).expect("replace");
            }
            let avg = (db.io_stats() - before).time_ms() / n as f64;
            cells.push(fmt_ms(Some(avg)));
        }
        rows.push(cells);
    }
    print_table(
        &[
            "config".to_string(),
            "shadowed (ms)".to_string(),
            "in place (ms)".to_string(),
        ],
        &rows,
    );
    note("Expected: with shadowing the cost grows with segment size; without it, it barely does.");
    finalize();
}
