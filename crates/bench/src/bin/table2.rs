//! Table 2: Starburst random-read I/O cost for mean operation sizes
//! 100 B / 10 KB / 100 KB.
//!
//! The Starburst structure is fully reorganized by every update, so read
//! cost does not depend on update history (§4.4.2); one update after the
//! build puts the object into its steady state (maximum-size segments).
//! Paper values: 37 / 54 / 201 ms.

use lobstore_bench::{
    finalize, fmt_ms, fresh_db, note, print_banner, print_table, Scale, MEAN_OP_SIZES,
};
use lobstore_workload::{build_object, random_reads, ManagerSpec};

fn main() {
    let scale = Scale::from_args();
    print_banner("Table 2: Starburst read I/O cost", scale);

    let mut db = fresh_db();
    let (mut obj, _) = build_object(
        &mut db,
        &ManagerSpec::starburst(),
        scale.object_bytes,
        256 * 1024,
    )
    .expect("build");
    // One length-changing update reorganizes into max-size segments.
    obj.insert(&mut db, scale.object_bytes / 2, b"steady state")
        .expect("insert");
    obj.delete(&mut db, scale.object_bytes / 2, 12)
        .expect("delete");

    let reads = (scale.ops / 10).max(100);
    let headers = vec![
        "mean op size (bytes)".to_string(),
        "100".to_string(),
        "10K".to_string(),
        "100K".to_string(),
    ];
    let mut row = vec!["read I/O cost (ms)".to_string()];
    for (i, &mean) in MEAN_OP_SIZES.iter().enumerate() {
        let rep = random_reads(&mut db, obj.as_ref(), reads, mean, 7 + i as u64).expect("reads");
        row.push(fmt_ms(Some(rep.avg_read_ms())));
    }
    print_table(&headers, &[row]);
    note("Paper reports: 37 / 54 / 201 ms.");
    finalize();
}
