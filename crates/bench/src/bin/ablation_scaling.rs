//! Scaling (§4.2, §4.4.3): build cost is linear in object size for every
//! manager; steady-state update cost is independent of object size for
//! ESM/EOS but grows linearly for Starburst (≈2.5 min per update at
//! 100 MB, §4.4.3).
//!
//! ESM/EOS are warmed with a few updates first so the doubling-built
//! segments have degraded to their steady-state sizes — the paper's
//! update figures likewise measure a structure under churn, not the
//! pristine build.

use lobstore_bench::{finalize, fmt_s, fresh_db, note, print_banner, print_table, Scale};
use lobstore_core::{Db, LargeObject};
use lobstore_workload::{build_object, fill_bytes, ManagerSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One insert+delete round at random positions (object size stable).
fn churn(obj: &mut dyn LargeObject, db: &mut Db, rng: &mut StdRng, buf: &mut [u8]) {
    let size = obj.size(db);
    let len = rng.gen_range(5_000..=15_000u64);
    fill_bytes(&mut buf[..len as usize], size);
    obj.insert(db, rng.gen_range(0..=size), &buf[..len as usize])
        .expect("insert");
    let size = obj.size(db);
    obj.delete(db, rng.gen_range(0..=size - len), len)
        .expect("delete");
}

fn main() {
    let scale = Scale::from_args();
    print_banner(
        "Scaling: build time and steady-state update cost vs object size",
        scale,
    );

    let sizes_mb: Vec<u64> = [1u64, 2, 5, 10, 20]
        .into_iter()
        .filter(|&mb| (mb << 20) <= 2 * scale.object_bytes)
        .collect();

    let specs = [
        ManagerSpec::esm(16),
        ManagerSpec::eos(16),
        ManagerSpec::starburst(),
    ];
    let mut headers = vec!["MB".to_string()];
    for s in &specs {
        headers.push(format!("{} build (s)", s.label()));
        headers.push(format!("{} update (s)", s.label()));
    }

    let mut rows = Vec::new();
    for &mb in &sizes_mb {
        let bytes = mb << 20;
        let mut row = vec![mb.to_string()];
        for spec in &specs {
            let mut db = fresh_db();
            let (mut obj, rep) = build_object(&mut db, spec, bytes, 64 * 1024).expect("build");
            row.push(fmt_s(rep.seconds()));

            let mut rng = StdRng::seed_from_u64(mb);
            let mut buf = vec![0u8; 15_000];
            // Warm up: Starburst's cost is already steady; ESM/EOS need a
            // few updates so built segments degrade to their churn sizes.
            let is_star = matches!(spec, ManagerSpec::Starburst { .. });
            let warmups = if is_star { 1 } else { 25 };
            for _ in 0..warmups {
                churn(obj.as_mut(), &mut db, &mut rng, &mut buf);
            }
            let n = if is_star { 3 } else { 10 };
            let before = db.io_stats();
            for _ in 0..n {
                churn(obj.as_mut(), &mut db, &mut rng, &mut buf);
            }
            // Each round is one insert plus one delete; report per update.
            let avg_s = (db.io_stats() - before).time_s() / (2.0 * n as f64);
            row.push(format!("{avg_s:.2}"));
        }
        rows.push(row);
    }
    print_table(&headers, &rows);
    note("Expected: build columns scale linearly; ESM/EOS update flat; Starburst update linear.");
    finalize();
}
