//! Figure 5: time to build the object by successive fixed-size appends,
//! for ESM leaf sizes 1/4/16/64 and the shared Starburst/EOS growth curve.
//!
//! Expected shape (§4.2): larger appends are faster everywhere; ESM shows
//! a sawtooth — exact leaf-multiple appends (4 K into 1-page leaves, 16 K
//! into 4-page leaves, …) are local minima, mismatched sizes trigger the
//! redistribution and cost several times more; Starburst/EOS match or
//! beat ESM's best case at every append size.

use lobstore_bench::{
    esm_specs, finalize, fmt_s, fresh_db, note, print_banner, print_table, Scale, PAPER_APPEND_KB,
};
use lobstore_workload::{build_object, ManagerSpec};

fn main() {
    let scale = Scale::from_args();
    print_banner(
        "Figure 5: object creation time (seconds) vs append size",
        scale,
    );

    let mut specs = esm_specs();
    specs.push(ManagerSpec::starburst());
    specs.push(ManagerSpec::eos(4));

    let mut headers = vec!["append KB".to_string()];
    headers.extend(specs.iter().map(ManagerSpec::label));

    let mut rows = Vec::new();
    for &kb in &PAPER_APPEND_KB {
        let mut row = vec![kb.to_string()];
        for spec in &specs {
            let mut db = fresh_db();
            let (mut obj, rep) =
                build_object(&mut db, spec, scale.object_bytes, kb * 1024).expect("build");
            row.push(fmt_s(rep.seconds()));
            obj.check_invariants(&db).expect("invariants after build");
            obj.destroy(&mut db).expect("destroy");
        }
        rows.push(row);
    }
    print_table(&headers, &rows);
    note("Note: the Starburst and EOS columns should coincide (same growth pattern, §4.2).");
    finalize();
}
