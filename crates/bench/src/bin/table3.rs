//! Table 3: Starburst insert and delete I/O cost.
//!
//! Every length-changing update copies the tail of the object — in the
//! steady state (one maximum-size segment for a 10 MB object) that is a
//! whole-object copy through the 512 KB staging buffer, so the cost is
//! the same for every operation size and for inserts and deletes alike.
//! Paper value: 22.3 s across the board; it scales linearly with object
//! size (≈2.5 min at 100 MB, §4.4.3).

use lobstore_bench::{
    finalize, fmt_s, fresh_db, note, print_banner, print_table, Scale, MEAN_OP_SIZES,
};
use lobstore_workload::{build_object, fill_bytes, ManagerSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let scale = Scale::from_args();
    print_banner("Table 3: Starburst insert and delete I/O cost", scale);

    // Each update copies the whole object, so a handful of operations per
    // size gives an exact average.
    let ops_per_size = 10usize;
    let mut rng = StdRng::seed_from_u64(3);

    let headers = vec![
        "mean op size (bytes)".to_string(),
        "100".to_string(),
        "10K".to_string(),
        "100K".to_string(),
    ];
    let mut insert_row = vec!["insert I/O cost (s)".to_string()];
    let mut delete_row = vec!["delete I/O cost (s)".to_string()];

    for &mean in &MEAN_OP_SIZES {
        let mut db = fresh_db();
        let (mut obj, _) = build_object(
            &mut db,
            &ManagerSpec::starburst(),
            scale.object_bytes,
            256 * 1024,
        )
        .expect("build");
        let mut buf = vec![0u8; (mean + mean / 2) as usize + 1];
        let mut insert_us = 0u64;
        let mut delete_us = 0u64;
        for i in 0..ops_per_size {
            let size = obj.size(&mut db);
            let len = rng.gen_range((mean / 2).max(1)..=mean + mean / 2);
            fill_bytes(&mut buf[..len as usize], i as u64);
            let off = rng.gen_range(0..=size);
            let before = db.io_stats();
            obj.insert(&mut db, off, &buf[..len as usize])
                .expect("insert");
            insert_us += (db.io_stats() - before).time_us;

            // The paper's rule: each delete removes what the previous
            // insert added, keeping the object size stable.
            let size = obj.size(&mut db);
            let off = rng.gen_range(0..=size - len);
            let before = db.io_stats();
            obj.delete(&mut db, off, len).expect("delete");
            delete_us += (db.io_stats() - before).time_us;
        }
        let n = ops_per_size as f64;
        insert_row.push(fmt_s(insert_us as f64 / 1e6 / n));
        delete_row.push(fmt_s(delete_us as f64 / 1e6 / n));
    }
    print_table(&headers, &[insert_row, delete_row]);
    note("Paper reports: 22.3 s for every operation size (at 10 MB).");
    finalize();
}
