//! Figure 9 (a/b/c): ESM random-read I/O cost under the mixed workload.
//! Each mark is the average cost of the reads since the previous mark.
//!
//! Expected shape (§4.4.2): for 100-byte reads all leaf sizes are close
//! (1-page slightly worse: more index pages, more pool misses); for 10 KB
//! reads the 1-page cost is roughly double the 4-page cost; for 100 KB
//! reads larger leaves win clearly.

use lobstore_bench::{
    esm_specs, finalize, fmt_ms, print_banner, print_mark_table, run_update_sweep, Scale,
    MEAN_OP_SIZES,
};

fn main() {
    let scale = Scale::from_args();
    print_banner(
        "Figure 9: ESM read I/O cost (ms) vs number of operations",
        scale,
    );
    for (panel, &mean) in ["a", "b", "c"].iter().zip(&MEAN_OP_SIZES) {
        let sweep = run_update_sweep(&esm_specs(), scale, mean);
        print_mark_table(
            &format!("(9.{panel}) mean operation size {mean} bytes"),
            &sweep,
            |m| fmt_ms(m.read_ms),
        );
    }
    finalize();
}
