//! Aging: fragmentation over create/delete/append churn, per scheme.
//!
//! The paper's update experiment (§4.4) runs 10 000 operations against
//! one object; fragmentation studies (Sears & van Ingen, PAPERS.md) show
//! degradation only develops under object *turnover* at much longer
//! horizons. This binary runs the churn workload at 10× the configured
//! op count over a pool of objects per scheme, samples storage health at
//! every mark (`health.*` gauges and time series, DESIGN.md §14), and
//! ends with a post-aging streamed scan — the number the regression gate
//! (`xtask bench-compare`) tracks between runs.
//!
//! The JSON report uses `lobstore-bench-report/v2`: v1 plus a `series`
//! array with the sampled `health.*` series of each scheme.

use std::time::Instant;

use lobstore_bench::{finalize, fresh_db, note, print_banner, print_titled_table, Scale};
use lobstore_workload::{stream_scan, ChurnConfig, ChurnWorkload, ManagerSpec};

/// Streamed-scan chunk for the post-aging scan (matches `throughput`).
const STREAM_CHUNK: usize = 4 * 1024;
/// Churn runs this many times the configured `--ops`.
const CHURN_MULTIPLIER: usize = 10;
/// Health marks recorded per scheme over the run.
const MARKS: usize = 20;

fn mbps(bytes: u64, elapsed: std::time::Duration) -> f64 {
    bytes as f64 / (1 << 20) as f64 / elapsed.as_secs_f64().max(1e-9)
}

fn main() {
    let scale = Scale::from_args();
    let churn_ops = scale.ops * CHURN_MULTIPLIER;
    print_banner(
        "Aging: fragmentation under create/delete/append churn",
        scale,
    );
    note(&format!(
        "Churn: {churn_ops} ops per scheme (10x the paper's count) over an 8-object pool; \
         health sampled at {MARKS} marks."
    ));

    let specs = [
        ManagerSpec::esm(16),
        ManagerSpec::eos(16),
        ManagerSpec::starburst(),
    ];
    let frag_headers: Vec<String> = [
        "ops",
        "frag ratio",
        "largest free run",
        "free pages",
        "contiguity",
        "object util",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    let scan_headers: Vec<String> = ["scheme", "wall MB/s", "sim s"]
        .iter()
        .map(ToString::to_string)
        .collect();

    let mut scan_rows = Vec::new();
    for spec in &specs {
        // Fresh registry per scheme so each scheme's series are its own.
        lobstore_obs::reset();
        let mut db = fresh_db();
        // Dense allocator series from the Db-driven periodic sampler,
        // on top of the per-mark samples the churn driver takes.
        db.set_health_sampling((churn_ops / 50).max(1) as u64);

        let mut churn = ChurnWorkload::new(ChurnConfig {
            ops: churn_ops,
            mark_every: (churn_ops / MARKS).max(1),
            initial_object_bytes: (scale.object_bytes / 16).max(64 * 1024),
            ..ChurnConfig::default()
        });
        let (pool, rep) = churn.run(&mut db, spec).expect("churn");
        for obj in &pool {
            obj.check_invariants(&db).expect("invariants after churn");
        }

        let rows: Vec<Vec<String>> = rep
            .marks
            .iter()
            .map(|m| {
                vec![
                    m.ops_done.to_string(),
                    format!("{:.3}", m.frag_ratio),
                    m.largest_free_run.to_string(),
                    m.free_pages.to_string(),
                    format!("{:.3}", m.contiguity),
                    format!("{:.3}", m.object_utilization),
                ]
            })
            .collect();
        print_titled_table(
            &format!("fragmentation over time — {}", spec.label()),
            &frag_headers,
            &rows,
        );

        // Post-aging scan of the largest surviving object: the rate a
        // reader gets after the store has aged. Best of three passes for
        // the wall rate; the simulated cost is deterministic.
        let biggest = pool
            .iter()
            .max_by_key(|o| o.utilization(&db).object_bytes)
            .expect("non-empty pool");
        let mut best = 0.0f64;
        let mut sim_s = 0.0;
        for _ in 0..3 {
            let t = Instant::now();
            let scan = stream_scan(&mut db, biggest.as_ref(), STREAM_CHUNK).expect("scan");
            best = best.max(mbps(scan.bytes, t.elapsed()));
            sim_s = scan.seconds();
        }
        scan_rows.push(vec![
            spec.label(),
            format!("{best:.1}"),
            format!("{sim_s:.2}"),
        ]);

        // Attach every sampled health series to the v2 report.
        for series in lobstore_obs::series_snapshot_all() {
            if series.name.starts_with("health.") {
                lobstore_bench::add_series(&spec.label(), series);
            }
        }
    }

    print_titled_table("post-aging scan", &scan_headers, &scan_rows);
    note(
        "Expected shape: frag ratio grows then plateaus as freed extents are reused; \
         EOS/Starburst contiguity degrades faster than fixed-leaf ESM under turnover.",
    );
    note(
        "Gate: xtask bench-compare fails a run whose post-aging scan regresses >20% \
         or whose health series blow up against the baseline.",
    );
    finalize();
}
