//! §4.6 summary claim: with a large enough threshold (T = 64), EOS
//! matches Starburst's read cost and storage utilization while its
//! length-changing updates cost roughly 30× less.

use lobstore_bench::{
    finalize, fmt_ms, fmt_pct, fmt_s, fresh_db, note, print_banner, print_table, Scale,
};
use lobstore_workload::{
    build_object, fill_bytes, random_reads, ManagerSpec, MixedConfig, MixedWorkload, OpKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let scale = Scale::from_args();
    print_banner("§4.6 summary: EOS (T=64) vs Starburst vs ESM/16", scale);
    let mean = 10_000u64;

    let mut rows = Vec::new();
    for spec in [
        ManagerSpec::eos(64),
        ManagerSpec::esm(16),
        ManagerSpec::starburst(),
    ] {
        let mut db = fresh_db();
        let append = match spec {
            ManagerSpec::Esm { leaf_pages } => leaf_pages as usize * 4096,
            _ => 256 * 1024,
        };
        let (mut obj, _) = build_object(&mut db, &spec, scale.object_bytes, append).expect("build");

        let (read_ms, insert_s, util) = if matches!(spec, ManagerSpec::Starburst { .. }) {
            // Starburst updates copy the whole object; a few suffice.
            let mut rng = StdRng::seed_from_u64(46);
            let mut buf = vec![0u8; (mean * 2) as usize];
            let mut insert_us = 0u64;
            let n = 6u32;
            for i in 0..n {
                let size = obj.size(&mut db);
                let len = rng.gen_range(mean / 2..=mean * 3 / 2);
                fill_bytes(&mut buf[..len as usize], u64::from(i));
                let off = rng.gen_range(0..=size);
                let before = db.io_stats();
                obj.insert(&mut db, off, &buf[..len as usize])
                    .expect("insert");
                insert_us += (db.io_stats() - before).time_us;
                let size = obj.size(&mut db);
                obj.delete(&mut db, rng.gen_range(0..=size - len), len)
                    .expect("delete");
            }
            let reads = random_reads(&mut db, obj.as_ref(), 300, mean, 46).expect("reads");
            (
                Some(reads.avg_read_ms()),
                insert_us as f64 / 1e6 / f64::from(n),
                obj.utilization(&db).ratio(),
            )
        } else {
            let mut w = MixedWorkload::new(MixedConfig {
                ops: scale.ops,
                mark_every: scale.mark_every,
                mean_op_bytes: mean,
                ..MixedConfig::default()
            });
            let rep = w.run(&mut db, obj.as_mut()).expect("mixed");
            let last = rep.marks.last().expect("marks");
            let read = rep.avg_ms(OpKind::Read, &rep.marks);
            let ins = rep.avg_ms(OpKind::Insert, &rep.marks).unwrap_or(0.0) / 1_000.0;
            (read, ins, last.utilization)
        };
        rows.push(vec![
            spec.label(),
            fmt_ms(read_ms),
            fmt_s(insert_s),
            fmt_pct(util),
        ]);
    }

    print_table(
        &[
            "manager".to_string(),
            "avg 10K read (ms)".to_string(),
            "avg insert (s)".to_string(),
            "utilization".to_string(),
        ],
        &rows,
    );
    note(
        "Expected: EOS/64 reads & utilization ≈ Starburst, with update cost ~30x lower;\n\
         ESM cannot optimize reads and utilization at once (§4.6).",
    );
    finalize();
}
