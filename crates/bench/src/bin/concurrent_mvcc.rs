//! Snapshot-reader bandwidth under writer churn (DESIGN.md §16).
//!
//! The paper's engine is single-client; MVCC object versioning adds the
//! one concurrency feature a large-object store actually needs: a
//! long-running reader (backup, export, streaming scan) that must not
//! block — or be corrupted by — a writer. This binary pins a snapshot,
//! then scans it repeatedly from one thread while another thread churns
//! the same object through [`SharedDb`], verifying every scan returns
//! byte-identical content (checksummed) and reporting the reader's
//! wall-clock bandwidth plus the MVCC bookkeeping the churn generated.
//!
//! The JSON report uses `lobstore-bench-report/v2`: v1 plus per-scheme
//! `mvcc.*` series (reader rate and deferred-page backlog per scan).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use lobstore_bench::{add_series, finalize, note, print_banner, print_titled_table, Scale};
use lobstore_core::{open_object, Db, DbConfig, SharedDb, SnapshotReader};
use lobstore_workload::ManagerSpec;

/// Bytes appended per writer append op.
const APPEND_BYTES: usize = 16 * 1024;
/// Bytes spliced in per writer insert op (near the tail, §3.5 pattern).
const INSERT_BYTES: usize = 8 * 1024;
/// Bytes removed per writer delete op.
const DELETE_BYTES: u64 = 24 * 1024;
/// Reader scan chunk.
const CHUNK: usize = 64 * 1024;

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = if h == 0 { 0xcbf2_9ce4_8422_2325 } else { h };
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn pattern(len: usize, seed: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 31 + seed * 17 + 5) % 254) as u8)
        .collect()
}

fn main() {
    let scale = Scale::from_args();
    print_banner("Concurrent MVCC: snapshot scans under writer churn", scale);
    note(&format!(
        "One pinned snapshot scanned in {} KB chunks while a writer runs {} churn ops \
         (append {} KB / insert {} KB / delete {} KB, balanced); every scan is checksummed \
         against the snapshot's content.",
        CHUNK / 1024,
        scale.ops,
        APPEND_BYTES / 1024,
        INSERT_BYTES / 1024,
        DELETE_BYTES / 1024,
    ));

    let specs = [
        ManagerSpec::esm(16),
        ManagerSpec::eos(16),
        ManagerSpec::starburst(),
    ];
    let headers: Vec<String> = [
        "scheme",
        "reader MB/s",
        "scans",
        "writer ops/s",
        "versions",
        "archived",
        "deferred",
        "reclaimed",
        "log records",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();

    let mut rows = Vec::new();
    for spec in &specs {
        lobstore_obs::reset();
        let mut db = Db::new(DbConfig {
            alloc_log: true,
            ..DbConfig::default()
        });
        let mut obj = spec.create(&mut db).expect("create");
        let mut expect_sum = 0u64;
        let mut built = 0u64;
        let mut seed = 0usize;
        while built < scale.object_bytes {
            let n = ((scale.object_bytes - built) as usize).min(256 * 1024);
            let chunk = pattern(n, seed);
            obj.append(&mut db, &chunk).expect("build");
            expect_sum = fnv1a(expect_sum, &chunk);
            built += n as u64;
            seed += 1;
        }
        db.checkpoint();
        let kind = obj.kind();
        let root = obj.root_page();
        let snap_size = built;

        let shared = SharedDb::new(db);
        let snap = shared.with(|db| db.snapshot());
        let done = Arc::new(AtomicBool::new(false));

        // Writer: balanced churn near the tail (append/insert/delete in
        // rotation keeps the object size roughly stable and each op
        // cheap — rewrites touch only the final 32 KB). The metrics
        // registry is thread-local, so the thread returns its own
        // counter snapshot and the deferred-page backlog series it
        // sampled between ops.
        let writer = {
            let shared = shared.clone();
            let done = done.clone();
            let ops = scale.ops;
            std::thread::spawn(move || {
                let mut obj = shared
                    .with(|db| open_object(db, kind, root))
                    .expect("open for writing");
                let t = Instant::now();
                for i in 0..ops {
                    match i % 3 {
                        0 => {
                            let bytes = pattern(APPEND_BYTES, i);
                            shared.with(|db| obj.append(db, &bytes)).expect("append");
                        }
                        1 => {
                            let bytes = pattern(INSERT_BYTES, i + 1);
                            shared
                                .with(|db| {
                                    let size = obj.size(db);
                                    let off = size.saturating_sub(32 * 1024);
                                    obj.insert(db, off, &bytes)
                                })
                                .expect("insert");
                        }
                        _ => {
                            shared
                                .with(|db| {
                                    let size = obj.size(db);
                                    let len = DELETE_BYTES.min(size / 2);
                                    if len == 0 {
                                        return Ok(());
                                    }
                                    obj.delete(db, size - len, len)
                                })
                                .expect("delete");
                        }
                    }
                    let backlog = lobstore_obs::gauge_value("mvcc.deferred_pages").unwrap_or(0.0);
                    lobstore_obs::series_record("mvcc.deferred_pages", i as u64 + 1, backlog);
                }
                done.store(true, Ordering::Release);
                (
                    t.elapsed(),
                    lobstore_obs::snapshot(),
                    lobstore_obs::series_snapshot("mvcc.deferred_pages"),
                )
            })
        };

        // Reader: scan the pinned snapshot end-to-end until the writer
        // finishes (at least once), checksumming every pass.
        let reader = {
            let shared = shared.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut r = shared
                    .with(|db| SnapshotReader::new(db, &snap, root))
                    .expect("snapshot reader");
                assert_eq!(r.size(), snap_size, "snapshot pins the built size");
                let mut buf = vec![0u8; CHUNK];
                let mut scans = 0u64;
                let mut bytes = 0u64;
                let t = Instant::now();
                while !done.load(Ordering::Acquire) || scans == 0 {
                    r.seek(0);
                    let mut sum = 0u64;
                    loop {
                        let n = shared.with(|db| r.read(db, &mut buf));
                        if n == 0 {
                            break;
                        }
                        sum = fnv1a(sum, &buf[..n]);
                        bytes += n as u64;
                    }
                    assert_eq!(
                        sum, expect_sum,
                        "scan {scans} diverged from the snapshot's bytes"
                    );
                    scans += 1;
                    let mbps = bytes as f64 / (1 << 20) as f64 / t.elapsed().as_secs_f64();
                    lobstore_obs::series_record("mvcc.reader_mbps", scans, mbps);
                }
                (
                    scans,
                    bytes,
                    t.elapsed(),
                    snap,
                    lobstore_obs::series_snapshot("mvcc.reader_mbps"),
                )
            })
        };

        let (write_wall, wm, backlog_series) = writer.join().expect("writer thread");
        let (scans, bytes, read_wall, snap, rate_series) = reader.join().expect("reader thread");
        shared.with(|db| db.release_snapshot(snap));
        shared.with(|db| db.checkpoint());

        // Reclamation runs on this thread (the release above), churn
        // bookkeeping on the writer's: merge the interesting counters.
        let m = lobstore_obs::snapshot();
        rows.push(vec![
            spec.label(),
            format!(
                "{:.1}",
                bytes as f64 / (1 << 20) as f64 / read_wall.as_secs_f64().max(1e-9)
            ),
            scans.to_string(),
            format!(
                "{:.0}",
                scale.ops as f64 / write_wall.as_secs_f64().max(1e-9)
            ),
            wm.counter("core.mvcc.versions_committed").to_string(),
            wm.counter("core.mvcc.pages_archived").to_string(),
            wm.counter("core.mvcc.frees_deferred").to_string(),
            (m.counter("core.mvcc.frees_reclaimed") + wm.counter("core.mvcc.frees_reclaimed"))
                .to_string(),
            wm.counter("core.alloclog.records").to_string(),
        ]);

        for series in [rate_series, backlog_series].into_iter().flatten() {
            add_series(&spec.label(), series);
        }
    }

    print_titled_table("snapshot scans vs writer churn", &headers, &rows);
    note(
        "Expected shape: reader bandwidth is lock-bound, not version-bound — scans stay \
         byte-stable while versions commit; deferred pages grow with the pin and drain to \
         zero after release.",
    );
    finalize();
}
