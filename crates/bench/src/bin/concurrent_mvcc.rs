//! Reader-scaling under writer churn (DESIGN.md §16–§17).
//!
//! The paper's engine is single-client; MVCC object versioning plus the
//! two-tier [`SharedDb`] lock add the concurrency a large-object store
//! actually needs: long-running snapshot scans (backup, export,
//! streaming reads) that proceed on the shared **read** side while
//! writers churn on the exclusive side. Three phases:
//!
//! 1. **Pinned scan, simulated cost** — per scheme, one single-threaded
//!    streaming scan of a pinned snapshot via `SharedSnapshotReader`.
//!    The simulated seconds are deterministic given the seed; `xtask
//!    bench-compare` gates them against the committed `BENCH_10.json`.
//! 2. **Snapshot reads vs writer churn** — per scheme, one concurrent
//!    reader streams the pinned snapshot (checksummed every pass)
//!    while a writer runs the balanced append/insert/delete rotation;
//!    reports reader bandwidth and the MVCC bookkeeping.
//! 3. **Reader scaling** — 1/2/4/8 concurrent scanners under writer
//!    churn, each thread count run twice: *serialized* (every chunk
//!    through the exclusive write tier — the old `Mutex<Db>` behavior)
//!    and *concurrent* (streaming on the read tier). The aggregate
//!    MB/s ratio per thread count is emitted as the
//!    `reader.scaling_ratio` series; `bench-compare` enforces a ≥3×
//!    floor at 8 threads.
//!
//! The JSON report uses `lobstore-bench-report/v2`: v1 plus the
//! per-scheme `mvcc.*` churn series and the `reader.*` scaling series.
//! Wall-clock tables are informational; only the phase-1 simulated
//! seconds and the scaling-ratio floor are gated.

use std::io::{BufRead, Seek, SeekFrom};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use lobstore_bench::{add_series, finalize, note, print_banner, print_titled_table, Scale};
use lobstore_core::{open_object, Db, DbConfig, SharedDb, SnapshotReader, StorageKind};
use lobstore_workload::ManagerSpec;

/// Bytes appended per writer append op.
const APPEND_BYTES: usize = 16 * 1024;
/// Bytes spliced in per writer insert op (near the tail, §3.5 pattern).
const INSERT_BYTES: usize = 8 * 1024;
/// Bytes removed per writer delete op (balances the rotation to ~0 net).
const DELETE_BYTES: u64 = 24 * 1024;
/// Churn-phase reader scan chunk.
const CHUNK: usize = 64 * 1024;
/// Scaling-phase scan chunk: small on purpose, so the serialized mode
/// pays one exclusive lock handoff per chunk — the cost being measured.
const SCALING_CHUNK: usize = 16 * 1024;
/// Fixed scan passes per scaling scanner (fixed work per thread).
const SCALING_PASSES: usize = 12;
/// Fixed scaling-phase object size, independent of `--mb`: small enough
/// to fit a reader's 4 MB read-ahead window. Pass 1 pays the full
/// descent + segment-read cost; later passes show the design point —
/// a pinned scanner re-reads without entering any `SharedDb` lock,
/// while the serialized discipline re-pays the exclusive lock and the
/// staging copies for every chunk of every pass.
const SCALING_OBJECT_BYTES: u64 = 2 << 20;
/// Reader-thread counts swept by the scaling phase.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = if h == 0 { 0xcbf2_9ce4_8422_2325 } else { h };
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn pattern(len: usize, seed: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 31 + seed * 17 + 5) % 254) as u8)
        .collect()
}

/// `SharedDb::with` with a non-blocking probe first: a failed probe is
/// a real lock wait, counted as `bench.lock_waits` in this thread's
/// registry before falling back to the blocking path.
fn with_probed<R>(shared: &SharedDb, mut f: impl FnMut(&mut Db) -> R) -> R {
    if let Some(r) = shared.try_with(&mut f) {
        return r;
    }
    lobstore_obs::counter_add("bench.lock_waits", 1);
    shared.with(f)
}

/// Build one object at `scale` (alloc-log on, checkpointed) and wrap
/// the database for sharing. Returns the shared handle, the object's
/// identity, and the built content's size and checksum.
fn build(spec: &ManagerSpec, scale: Scale) -> (SharedDb, StorageKind, u32, u64, u64) {
    let mut db = Db::new(DbConfig {
        alloc_log: true,
        ..DbConfig::default()
    });
    let mut obj = spec.create(&mut db).expect("create");
    let mut sum = 0u64;
    let mut built = 0u64;
    let mut seed = 0usize;
    while built < scale.object_bytes {
        let n = ((scale.object_bytes - built) as usize).min(256 * 1024);
        let chunk = pattern(n, seed);
        obj.append(&mut db, &chunk).expect("build");
        sum = fnv1a(sum, &chunk);
        built += n as u64;
        seed += 1;
    }
    db.checkpoint();
    let kind = obj.kind();
    let root = obj.root_page();
    (SharedDb::new(db), kind, root, built, sum)
}

/// Pre-generated churn payloads. Building them once per writer thread
/// keeps the churn loop lock-bound: each op is acquire + storage work
/// back-to-back, so serialized readers face genuine writer lock
/// occupancy rather than gaps where the writer is off building `Vec`s.
struct ChurnPats {
    append: Vec<u8>,
    insert: Vec<u8>,
}

fn churn_pats() -> ChurnPats {
    ChurnPats {
        append: pattern(APPEND_BYTES, 7),
        insert: pattern(INSERT_BYTES, 11),
    }
}

/// One balanced writer churn op (append/insert/delete rotation, net
/// size change ~0), issued through the probing write tier.
fn churn_op(
    shared: &SharedDb,
    obj: &mut Box<dyn lobstore_core::LargeObject>,
    i: usize,
    pats: &ChurnPats,
) {
    match i % 3 {
        0 => {
            with_probed(shared, |db| obj.append(db, &pats.append)).expect("append");
        }
        1 => {
            with_probed(shared, |db| {
                let size = obj.size(db);
                let off = size.saturating_sub(32 * 1024);
                obj.insert(db, off, &pats.insert)
            })
            .expect("insert");
        }
        _ => {
            with_probed(shared, |db| {
                let size = obj.size(db);
                let len = DELETE_BYTES.min(size / 2);
                if len == 0 {
                    return Ok(());
                }
                obj.delete(db, size - len, len)
            })
            .expect("delete");
        }
    }
}

fn main() {
    let scale = Scale::from_args();
    print_banner("Reader scaling: snapshot scans under writer churn", scale);
    note(&format!(
        "Pinned snapshots scanned in {} KB chunks while a writer runs churn ops \
         (append {} KB / insert {} KB / delete {} KB, balanced); every scan is checksummed. \
         The scaling phase reruns 1/2/4/8 scanners in {} KB chunks, serialized \
         (exclusive lock per chunk) vs concurrent (read tier).",
        CHUNK / 1024,
        APPEND_BYTES / 1024,
        INSERT_BYTES / 1024,
        DELETE_BYTES / 1024,
        SCALING_CHUNK / 1024,
    ));

    let specs = [
        ManagerSpec::esm(16),
        ManagerSpec::eos(16),
        ManagerSpec::starburst(),
    ];

    // ---- Phase 1 + 2: per-scheme pinned scan and churn ------------------
    let mut scan_rows = Vec::new();
    let mut churn_rows = Vec::new();
    for spec in &specs {
        let (shared, kind, root, size, expect_sum) = build(spec, scale);

        // Deterministic single-threaded pinned scan: simulated seconds
        // depend only on the seed and the cost model, never the host.
        lobstore_obs::reset();
        let sim0 = shared.with(|db| db.io_stats());
        let t0 = Instant::now();
        let mut r = shared.snapshot_reader(root).expect("pin snapshot");
        assert_eq!(r.size(), size, "snapshot pins the built size");
        let mut sum = 0u64;
        let mut got = 0u64;
        loop {
            let chunk = r.fill_buf().expect("refill");
            if chunk.is_empty() {
                break;
            }
            sum = fnv1a(sum, chunk);
            got += chunk.len() as u64;
            let n = chunk.len();
            r.consume(n);
        }
        assert_eq!(got, size, "pinned scan covers the object");
        assert_eq!(sum, expect_sum, "pinned scan diverged from built bytes");
        let wall = t0.elapsed();
        let sim = shared.with(|db| db.io_stats()) - sim0;
        r.close();
        scan_rows.push(vec![
            spec.label(),
            format!(
                "{:.1}",
                size as f64 / (1 << 20) as f64 / wall.as_secs_f64().max(1e-9)
            ),
            format!("{:.2}", sim.time_s()),
        ]);

        // Concurrent churn: pin before the writer starts, stream on the
        // read tier until the writer finishes, checksumming every pass.
        let reader_cursor = shared.snapshot_reader(root).expect("pin for churn");
        let done = Arc::new(AtomicBool::new(false));
        let writer = {
            let shared = shared.clone();
            let done = done.clone();
            let ops = scale.ops;
            std::thread::spawn(move || {
                lobstore_obs::reset();
                let mut obj = with_probed(&shared, |db| open_object(db, kind, root))
                    .expect("open for writing");
                let pats = churn_pats();
                let t = Instant::now();
                for i in 0..ops {
                    churn_op(&shared, &mut obj, i, &pats);
                    let backlog = lobstore_obs::gauge_value("mvcc.deferred_pages").unwrap_or(0.0);
                    lobstore_obs::series_record("mvcc.deferred_pages", i as u64 + 1, backlog);
                }
                done.store(true, Ordering::Release);
                (
                    t.elapsed(),
                    lobstore_obs::snapshot(),
                    lobstore_obs::series_snapshot("mvcc.deferred_pages"),
                )
            })
        };
        let reader = {
            let done = done.clone();
            let mut r = reader_cursor;
            std::thread::spawn(move || {
                lobstore_obs::reset();
                let mut scans = 0u64;
                let mut bytes = 0u64;
                let t = Instant::now();
                while !done.load(Ordering::Acquire) || scans == 0 {
                    r.seek(SeekFrom::Start(0)).expect("rewind");
                    let mut sum = 0u64;
                    loop {
                        let chunk = r.fill_buf().expect("refill");
                        if chunk.is_empty() {
                            break;
                        }
                        let take = chunk.len().min(CHUNK);
                        sum = fnv1a(sum, &chunk[..take]);
                        bytes += take as u64;
                        r.consume(take);
                    }
                    assert_eq!(
                        sum, expect_sum,
                        "scan {scans} diverged from the snapshot's bytes"
                    );
                    scans += 1;
                    let mbps = bytes as f64 / (1 << 20) as f64 / t.elapsed().as_secs_f64();
                    lobstore_obs::series_record("mvcc.reader_mbps", scans, mbps);
                }
                (
                    scans,
                    bytes,
                    t.elapsed(),
                    r,
                    lobstore_obs::snapshot(),
                    lobstore_obs::series_snapshot("mvcc.reader_mbps"),
                )
            })
        };

        let (write_wall, wm, backlog_series) = writer.join().expect("writer thread");
        let (scans, bytes, read_wall, cursor, rm, rate_series) =
            reader.join().expect("reader thread");

        // Reclamation runs on this thread (the close below), churn
        // bookkeeping on the workers': fold every thread-local registry
        // into this one and read the fleet totals.
        lobstore_obs::reset();
        cursor.close();
        shared.with(|db| db.checkpoint());
        lobstore_obs::merge_thread_registry(&wm);
        lobstore_obs::merge_thread_registry(&rm);
        let m = lobstore_obs::snapshot();
        churn_rows.push(vec![
            spec.label(),
            format!(
                "{:.1}",
                bytes as f64 / (1 << 20) as f64 / read_wall.as_secs_f64().max(1e-9)
            ),
            scans.to_string(),
            format!(
                "{:.0}",
                scale.ops as f64 / write_wall.as_secs_f64().max(1e-9)
            ),
            m.counter("core.mvcc.versions_committed").to_string(),
            m.counter("core.mvcc.pages_archived").to_string(),
            m.counter("core.mvcc.frees_deferred").to_string(),
            m.counter("core.mvcc.frees_reclaimed").to_string(),
            m.counter("bench.lock_waits").to_string(),
            m.counter("core.alloclog.records").to_string(),
        ]);

        for series in [rate_series, backlog_series].into_iter().flatten() {
            add_series(&spec.label(), series);
        }
    }

    let scan_headers: Vec<String> = ["scheme", "wall MB/s", "sim s"]
        .iter()
        .map(ToString::to_string)
        .collect();
    print_titled_table("pinned snapshot scan", &scan_headers, &scan_rows);

    let churn_headers: Vec<String> = [
        "scheme",
        "reader MB/s",
        "passes",
        "writer ops/s",
        "versions",
        "archived",
        "deferred",
        "reclaimed",
        "lock waits",
        "log records",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    print_titled_table(
        "snapshot reads vs writer churn",
        &churn_headers,
        &churn_rows,
    );

    // ---- Phase 3: reader scaling sweep (EOS/16) -------------------------
    let spec = ManagerSpec::eos(16);
    let scaling_scale = Scale {
        object_bytes: SCALING_OBJECT_BYTES,
        ..scale
    };
    let (shared, kind, root, _, _) = build(&spec, scaling_scale);
    let mut scaling_rows = Vec::new();
    let mut ratio_points = Vec::new();
    for &threads in &THREAD_COUNTS {
        let (ser_mbps, ser_waits) = scaling_run(&shared, kind, root, threads, false);
        let (conc_mbps, conc_waits) = scaling_run(&shared, kind, root, threads, true);
        let ratio = conc_mbps / ser_mbps.max(1e-9);
        ratio_points.push((threads as u64, ser_mbps, conc_mbps, ratio));
        scaling_rows.push(vec![
            threads.to_string(),
            format!("{ser_mbps:.1}"),
            format!("{conc_mbps:.1}"),
            format!("{ratio:.2}x"),
            ser_waits.to_string(),
            conc_waits.to_string(),
        ]);
    }
    let scaling_headers: Vec<String> = [
        "threads",
        "serialized MB/s",
        "concurrent MB/s",
        "speedup",
        "ser waits",
        "conc waits",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    print_titled_table(
        "reader throughput by thread count (wall clock)",
        &scaling_headers,
        &scaling_rows,
    );

    lobstore_obs::reset();
    for (threads, ser, conc, ratio) in &ratio_points {
        lobstore_obs::series_record("reader.agg_mbps.serialized", *threads, *ser);
        lobstore_obs::series_record("reader.agg_mbps.concurrent", *threads, *conc);
        lobstore_obs::series_record("reader.scaling_ratio", *threads, *ratio);
    }
    for name in [
        "reader.agg_mbps.serialized",
        "reader.agg_mbps.concurrent",
        "reader.scaling_ratio",
    ] {
        if let Some(series) = lobstore_obs::series_snapshot(name) {
            add_series(&spec.label(), series);
        }
    }
    drop(shared);

    print_titled_table(
        "summary",
        &["measure".to_string(), "value".to_string()],
        &[vec![
            "speedup at 8 threads".to_string(),
            format!("{:.2}x", ratio_points.last().map_or(0.0, |p| p.3)),
        ]],
    );
    note(
        "Expected shape: serialized throughput is flat or falling with thread count (every \
         chunk pays an exclusive handoff against the writer), concurrent throughput holds, so \
         the speedup grows with threads; bench-compare enforces >= 3x at 8 threads. Scans stay \
         byte-stable while versions commit; deferred pages drain to zero after release.",
    );
    finalize();
}

/// One scaling measurement: `threads` scanners each stream the pinned
/// object `SCALING_PASSES` times under writer churn — through the
/// exclusive write tier when `concurrent` is false (the old serialized
/// `Mutex<Db>` discipline), on the shared read tier when true. Returns
/// (aggregate scanner MB/s, failed lock probes).
fn scaling_run(
    shared: &SharedDb,
    kind: StorageKind,
    root: u32,
    threads: usize,
    concurrent: bool,
) -> (f64, u64) {
    let done = Arc::new(AtomicBool::new(false));
    let writer = {
        let shared = shared.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            lobstore_obs::reset();
            let mut obj =
                with_probed(&shared, |db| open_object(db, kind, root)).expect("open for writing");
            let pats = churn_pats();
            let mut i = 0usize;
            while !done.load(Ordering::Acquire) {
                churn_op(&shared, &mut obj, i, &pats);
                i += 1;
            }
            lobstore_obs::snapshot()
        })
    };

    let t = Instant::now();
    let mut scanners = Vec::new();
    for _ in 0..threads {
        let shared = shared.clone();
        scanners.push(std::thread::spawn(move || {
            lobstore_obs::reset();
            let mut bytes = 0u64;
            let mut first_sum = None;
            if concurrent {
                let mut r = shared.snapshot_reader(root).expect("pin");
                for pass in 0..SCALING_PASSES {
                    r.seek(SeekFrom::Start(0)).expect("rewind");
                    let mut sum = 0u64;
                    loop {
                        let chunk = r.fill_buf().expect("refill");
                        if chunk.is_empty() {
                            break;
                        }
                        let take = chunk.len().min(SCALING_CHUNK);
                        // Checksum a prefix only: the scaling phase
                        // measures lock behavior, not hashing speed;
                        // byte-level stability is phase 2's assertion.
                        sum = fnv1a(sum, &chunk[..take.min(64)]);
                        bytes += take as u64;
                        r.consume(take);
                    }
                    assert_eq!(
                        *first_sum.get_or_insert(sum),
                        sum,
                        "pass {pass}: pinned bytes changed under churn"
                    );
                }
            } else {
                let (snap, mut r) = with_probed(&shared, |db| {
                    let snap = db.snapshot();
                    let r = SnapshotReader::new(db, &snap, root).expect("reader");
                    (snap, r)
                });
                let mut buf = vec![0u8; SCALING_CHUNK];
                for pass in 0..SCALING_PASSES {
                    r.seek(0);
                    let mut sum = 0u64;
                    loop {
                        let n = with_probed(&shared, |db| r.read(db, &mut buf));
                        if n == 0 {
                            break;
                        }
                        sum = fnv1a(sum, &buf[..n.min(64)]);
                        bytes += n as u64;
                    }
                    assert_eq!(
                        *first_sum.get_or_insert(sum),
                        sum,
                        "pass {pass}: pinned bytes changed under churn"
                    );
                }
                let mut snap = Some(snap);
                with_probed(&shared, |db| {
                    if let Some(s) = snap.take() {
                        db.release_snapshot(s);
                    }
                });
            }
            (bytes, lobstore_obs::snapshot())
        }));
    }

    let mut total_bytes = 0u64;
    let mut registries = Vec::new();
    for h in scanners {
        let (bytes, mine) = h.join().expect("scanner thread");
        total_bytes += bytes;
        registries.push(mine);
    }
    let wall = t.elapsed();
    done.store(true, Ordering::Release);
    registries.push(writer.join().expect("writer thread"));

    lobstore_obs::reset();
    for mine in &registries {
        lobstore_obs::merge_thread_registry(mine);
    }
    let waits = lobstore_obs::snapshot().counter("bench.lock_waits");
    (
        total_bytes as f64 / (1 << 20) as f64 / wall.as_secs_f64().max(1e-9),
        waits,
    )
}
