//! Figure 6: time to sequentially scan the whole object in fixed-size
//! chunks (the n-byte scan runs over the object created by n-byte
//! appends, as in §4.3).
//!
//! Expected shape: below one page all curves coincide; ESM/1 is flat and
//! worst (every page fetch seeks); larger ESM leaves plateau once the
//! scan size exceeds the leaf size; Starburst/EOS track or beat ESM's
//! best case. The floor is the pure transfer time (≈10 s for 10 MB).

use lobstore_bench::{
    esm_specs, finalize, fmt_s, fresh_db, note, print_banner, print_table, Scale, PAPER_APPEND_KB,
};
use lobstore_workload::{build_object, sequential_scan, ManagerSpec};

fn main() {
    let scale = Scale::from_args();
    print_banner(
        "Figure 6: sequential scan time (seconds) vs scan size",
        scale,
    );

    let mut specs = esm_specs();
    specs.push(ManagerSpec::starburst());
    specs.push(ManagerSpec::eos(4));

    let mut headers = vec!["scan KB".to_string()];
    headers.extend(specs.iter().map(ManagerSpec::label));

    let mut rows = Vec::new();
    for &kb in &PAPER_APPEND_KB {
        let mut row = vec![kb.to_string()];
        for spec in &specs {
            let mut db = fresh_db();
            let (mut obj, _) =
                build_object(&mut db, spec, scale.object_bytes, kb * 1024).expect("build");
            let rep = sequential_scan(&mut db, obj.as_ref(), kb * 1024).expect("scan");
            row.push(fmt_s(rep.seconds()));
            obj.destroy(&mut db).expect("destroy");
        }
        rows.push(row);
    }
    print_table(&headers, &rows);
    note(&format!(
        "Transfer-rate floor: {:.1} s for this object size.",
        scale.object_bytes as f64 / 1024.0 / 1000.0
    ));
    finalize();
}
