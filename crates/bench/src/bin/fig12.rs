//! Figure 12 (a/b/c): EOS insert I/O cost under the mixed workload.
//!
//! Expected shape (§4.4.3): thresholds 1–4 cost the same (the new bytes
//! go to their own right-sized segment); above 4 the cost climbs with T
//! because of the extra page reshuffling the merge rule demands.

use lobstore_bench::{
    eos_specs, finalize, fmt_ms, print_banner, print_mark_table, run_update_sweep, Scale,
    MEAN_OP_SIZES,
};

fn main() {
    let scale = Scale::from_args();
    print_banner(
        "Figure 12: EOS insert I/O cost (ms) vs number of operations",
        scale,
    );
    for (panel, &mean) in ["a", "b", "c"].iter().zip(&MEAN_OP_SIZES) {
        let sweep = run_update_sweep(&eos_specs(), scale, mean);
        print_mark_table(
            &format!("(12.{panel}) mean operation size {mean} bytes"),
            &sweep,
            |m| fmt_ms(m.insert_ms),
        );
    }
    finalize();
}
