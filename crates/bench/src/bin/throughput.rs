//! Throughput: wall-clock MB/s of the real data path, per scheme,
//! alongside the simulated I/O cost the paper models.
//!
//! The paper's tables are about *simulated* seek/transfer time; this
//! binary measures how fast the engine itself moves bytes (monotonic
//! clock), seeding the repo's performance trajectory. Four workloads per
//! scheme:
//!
//! * **create** — exact-fit build by 256 KB appends;
//! * **sequential scan** — streamed 4 KB reads through `ObjectReader`
//!   (the §1 "play the recording" pattern; the headline number);
//! * **bulk read** — 256 KB byte-range reads via `LargeObject::read`;
//! * **random read** — Table 2's 10 KB mean random probes.
//!
//! With `--baseline-json <prior report>` the scan rates of the prior run
//! are printed next to the current ones as a speedup trajectory.

use std::time::Instant;

use lobstore_bench::{
    baseline_json, finalize, fresh_db, note, print_banner, print_titled_table, Scale,
};
use lobstore_obs::json::{self, Value};
use lobstore_workload::{build_object, random_reads, sequential_scan, stream_scan, ManagerSpec};

/// Streamed-scan chunk: a client consuming the object like a file.
const STREAM_CHUNK: usize = 4 * 1024;
/// Bulk byte-range read size.
const BULK_CHUNK: usize = 256 * 1024;

fn mbps(bytes: u64, elapsed: std::time::Duration) -> f64 {
    bytes as f64 / (1 << 20) as f64 / elapsed.as_secs_f64().max(1e-9)
}

fn row(label: &str, wall_mbps: f64, sim_s: f64) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{wall_mbps:.1}"),
        format!("{sim_s:.2}"),
    ]
}

fn main() {
    let scale = Scale::from_args();
    print_banner("Throughput: wall-clock data-path rates", scale);

    let specs = [
        ManagerSpec::esm(16),
        ManagerSpec::eos(16),
        ManagerSpec::starburst(),
    ];
    let headers: Vec<String> = ["scheme", "wall MB/s", "sim s"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let rand_headers: Vec<String> = ["scheme", "wall MB/s", "sim ms/op"]
        .iter()
        .map(ToString::to_string)
        .collect();

    let mut create_rows = Vec::new();
    let mut scan_rows = Vec::new();
    let mut bulk_rows = Vec::new();
    let mut rand_rows = Vec::new();
    let mut scan_now: Vec<(String, f64)> = Vec::new();

    for spec in &specs {
        let mut db = fresh_db();
        let t = Instant::now();
        let (obj, build_rep) =
            build_object(&mut db, spec, scale.object_bytes, 256 * 1024).expect("build");
        create_rows.push(row(
            &spec.label(),
            mbps(scale.object_bytes, t.elapsed()),
            build_rep.seconds(),
        ));

        // Streamed scan: best of seven passes. One pass moves the whole
        // object in a few milliseconds, so single runs are dominated by
        // scheduler noise (and the first pass may still be faulting
        // pages into the buffer pool); the max over several passes
        // estimates the rate the data path actually sustains.
        let mut best = 0.0f64;
        let mut sim_s = 0.0;
        for _ in 0..7 {
            let t = Instant::now();
            let rep = stream_scan(&mut db, obj.as_ref(), STREAM_CHUNK).expect("stream scan");
            best = best.max(mbps(rep.bytes, t.elapsed()));
            sim_s = rep.seconds();
        }
        scan_rows.push(row(&spec.label(), best, sim_s));
        scan_now.push((spec.label(), best));

        let t = Instant::now();
        let rep = sequential_scan(&mut db, obj.as_ref(), BULK_CHUNK).expect("bulk read");
        bulk_rows.push(row(
            &spec.label(),
            mbps(rep.bytes, t.elapsed()),
            rep.seconds(),
        ));

        let count = (scale.ops / 10).max(100);
        let t = Instant::now();
        let rep = random_reads(&mut db, obj.as_ref(), count, 10_000, 42).expect("random reads");
        rand_rows.push(vec![
            spec.label(),
            format!("{:.1}", mbps(rep.bytes, t.elapsed())),
            format!("{:.1}", rep.avg_read_ms()),
        ]);
    }

    print_titled_table("create", &headers, &create_rows);
    print_titled_table("sequential scan", &headers, &scan_rows);
    print_titled_table("bulk read", &headers, &bulk_rows);
    print_titled_table("random read", &rand_headers, &rand_rows);

    if let Some(path) = baseline_json() {
        match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|t| json::parse(&t).map_err(|e| format!("{e:?}")))
        {
            Ok(doc) => print_trajectory(&doc, &scan_now),
            Err(e) => note(&format!(
                "Note: cannot read baseline {}: {e}",
                path.display()
            )),
        }
    }
    note("Streamed scans read 4 KB chunks through ObjectReader; wall rates use a monotonic clock.");
    finalize();
}

/// Print current vs. baseline sequential-scan rates and the speedup.
fn print_trajectory(baseline: &Value, scan_now: &[(String, f64)]) {
    let mut base: Vec<(String, f64)> = Vec::new();
    if let Some(records) = baseline.get("records").and_then(Value::as_arr) {
        for rec in records {
            if rec.get("title").and_then(Value::as_str) != Some("sequential scan") {
                continue;
            }
            let Some(values) = rec.get("values") else {
                continue;
            };
            let scheme = values.get("scheme").and_then(Value::as_str);
            let rate = values
                .get("wall MB/s")
                .and_then(Value::as_str)
                .and_then(|s| s.parse::<f64>().ok());
            if let (Some(scheme), Some(rate)) = (scheme, rate) {
                base.push((scheme.to_string(), rate));
            }
        }
    }
    if base.is_empty() {
        note("Note: baseline report has no `sequential scan` records to compare against.");
        return;
    }
    let headers: Vec<String> = ["scheme", "baseline MB/s", "now MB/s", "speedup"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let mut rows = Vec::new();
    for (scheme, now) in scan_now {
        let Some((_, before)) = base.iter().find(|(s, _)| s == scheme) else {
            continue;
        };
        rows.push(vec![
            scheme.clone(),
            format!("{before:.1}"),
            format!("{now:.1}"),
            format!("{:.2}x", now / before.max(1e-9)),
        ]);
    }
    print_titled_table("scan trajectory", &headers, &rows);
    note("Trajectory compares streamed sequential-scan wall rates against the baseline report.");
}
