//! Figure 7 (a/b/c): ESM storage utilization under the mixed workload,
//! for mean operation sizes 100 B / 10 KB / 100 KB and leaf sizes
//! 1/4/16/64 pages.
//!
//! Expected shape (§4.4.1): utilization starts near 100 % and degrades as
//! updates break leaves; for small ops all leaf sizes settle in the low
//! 80 %s; for 100 KB ops the ordering inverts decisively — 1-page leaves
//! stay near 96 % while 64-page leaves fall toward 75 %.

use lobstore_bench::{
    esm_specs, finalize, fmt_pct, print_banner, print_mark_table, run_update_sweep, Scale,
    MEAN_OP_SIZES,
};

fn main() {
    let scale = Scale::from_args();
    print_banner(
        "Figure 7: ESM storage utilization vs number of operations",
        scale,
    );
    for (panel, &mean) in ["a", "b", "c"].iter().zip(&MEAN_OP_SIZES) {
        let sweep = run_update_sweep(&esm_specs(), scale, mean);
        print_mark_table(
            &format!("(7.{panel}) mean operation size {mean} bytes"),
            &sweep,
            |m| fmt_pct(m.utilization),
        );
    }
    finalize();
}
