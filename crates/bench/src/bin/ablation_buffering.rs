//! Ablation (§3.3/§4.5): page-grained reads vs the \[Care86\] prototype
//! assumption of whole-leaf I/O. The paper's detailed model reads only
//! the pages holding the requested bytes, which is what reveals the
//! advantage of large leaves for reads.

use lobstore_bench::{finalize, fmt_ms, fresh_db, note, print_banner, print_table, Scale};
use lobstore_core::{EsmObject, EsmParams};
use lobstore_workload::{build_by_appends, random_reads};

fn main() {
    let scale = Scale::from_args();
    print_banner(
        "Ablation: page-grained vs whole-leaf read I/O in ESM",
        scale,
    );

    let mut rows = Vec::new();
    for leaf_pages in [4u32, 16, 64] {
        for whole in [false, true] {
            let mut db = fresh_db();
            let mut obj = EsmObject::create(&mut db, EsmParams { leaf_pages }).expect("create");
            build_by_appends(
                &mut db,
                &mut obj,
                scale.object_bytes,
                leaf_pages as usize * 4096,
            )
            .expect("build");
            obj.whole_leaf_io = whole;
            let mut cells = vec![format!(
                "ESM/{leaf_pages} {}",
                if whole { "whole-leaf" } else { "page-grained" }
            )];
            for (i, mean) in [100u64, 10_000, 100_000].into_iter().enumerate() {
                let rep = random_reads(&mut db, &obj, 300, mean, 11 + i as u64).expect("reads");
                cells.push(fmt_ms(Some(rep.avg_read_ms())));
            }
            rows.push(cells);
        }
    }
    print_table(
        &[
            "config".to_string(),
            "100 B (ms)".to_string(),
            "10 KB (ms)".to_string(),
            "100 KB (ms)".to_string(),
        ],
        &rows,
    );
    note("Expected: whole-leaf I/O erases the large-leaf read advantage (§4.5).");
    finalize();
}
