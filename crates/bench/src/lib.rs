//! Shared harness for the per-figure benchmark binaries.
//!
//! Every binary regenerates one table or figure of Biliris SIGMOD '92.
//! Absolute numbers depend only on the Table 1 cost model, so runs are
//! deterministic; the *shapes* (who wins, by what factor, where the
//! crossovers fall) are the reproduction targets — see EXPERIMENTS.md.
//!
//! All binaries accept:
//!
//! ```text
//! --mb <N>         object size in MB        (default 10, the paper's)
//! --ops <N>        mixed-workload ops       (default 10000)
//! --quick          1 MB / 1000 ops smoke scale
//! --csv <dir>      also write every table as CSV into <dir>
//! --out-dir <dir>  directory for the human-readable report text
//!                  (default `results/`; created on demand)
//! --json-out <p>   also write a machine-readable JSON report to <p>
//!                  (schema `lobstore-bench-report/v1`)
//! --baseline-json <p>  a prior run's JSON report to compare against
//!                  (used by `throughput` to print the speedup trajectory)
//! ```
//!
//! Every printed banner, table, and note is also accumulated into an
//! in-process report; [`finalize`] (called at the end of every binary)
//! writes it as `<out-dir>/<bin>.txt` and, with `--json-out`, as one
//! JSON document with a record per table row (see DESIGN.md,
//! "Observability").

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use lobstore_core::{Db, DbConfig};
use lobstore_obs::json::Value;
use lobstore_obs::SeriesSnapshot;
use lobstore_workload::ManagerSpec;

pub use lobstore_obs::{BENCH_REPORT_SCHEMA, BENCH_REPORT_SCHEMA_V2};

/// Directory for machine-readable CSV copies of every printed table
/// (`--csv <dir>`); tables are numbered per process in print order.
static CSV_DIR: OnceLock<Option<std::path::PathBuf>> = OnceLock::new();
static CSV_SEQ: AtomicUsize = AtomicUsize::new(0);

/// One printed table, retained for the JSON report.
struct TableRecord {
    table: usize,
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

/// Everything the running binary has printed, accumulated for
/// [`finalize`].
#[derive(Default)]
struct ReportState {
    title: String,
    scale: Option<Scale>,
    tables: Vec<TableRecord>,
    notes: Vec<String>,
    text: String,
    /// Title to attach to the next table (set by [`print_mark_table`]).
    next_table_title: Option<String>,
    /// Sampled time series attached via [`add_series`], as
    /// `(scheme label, series)`. Non-empty series upgrade the JSON
    /// report to `lobstore-bench-report/v2`.
    series: Vec<(String, SeriesSnapshot)>,
    out_dir: Option<PathBuf>,
    json_out: Option<PathBuf>,
    /// Monotonic start of the run, set by [`print_banner`]; the elapsed
    /// time becomes the report's `wall_clock_us` field.
    started: Option<std::time::Instant>,
    baseline_json: Option<PathBuf>,
}

static REPORT: Mutex<Option<ReportState>> = Mutex::new(None);

fn with_report<R>(f: impl FnOnce(&mut ReportState) -> R) -> R {
    let mut guard = REPORT.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(ReportState::default))
}

/// Print `line` and retain it for the `<out-dir>/<bin>.txt` report.
fn emit_line(line: &str) {
    println!("{line}");
    with_report(|r| {
        r.text.push_str(line);
        r.text.push('\n');
    });
}

/// The running binary's name (file stem of `argv[0]`).
fn bin_name() -> String {
    std::env::args()
        .next()
        .and_then(|p| {
            std::path::Path::new(&p)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
        })
        .unwrap_or_else(|| "bench".to_string())
}

/// The exact append/scan sizes of Figure 5's x-axis (in KB), from the
/// paper's footnote 2.
pub const PAPER_APPEND_KB: [usize; 21] = [
    3, 4, 5, 6, 7, 8, 10, 12, 14, 16, 20, 24, 28, 32, 50, 64, 100, 128, 200, 256, 512,
];

/// ESM leaf sizes evaluated by the paper (§4.1).
pub const ESM_LEAF_PAGES: [u32; 4] = [1, 4, 16, 64];

/// EOS segment-size thresholds evaluated by the paper (§4.1).
pub const EOS_THRESHOLDS: [u32; 4] = [1, 4, 16, 64];

/// Mean operation sizes of §4.4 (bytes).
pub const MEAN_OP_SIZES: [u64; 3] = [100, 10_000, 100_000];

/// Experiment scale, adjustable from the command line.
#[derive(Copy, Clone, Debug)]
pub struct Scale {
    pub object_bytes: u64,
    pub ops: usize,
    pub mark_every: usize,
}

impl Scale {
    /// The paper's scale: a 10 MB object, 10 000 operations, marks every
    /// 2 000.
    pub fn paper() -> Scale {
        Scale {
            object_bytes: 10 << 20,
            ops: 10_000,
            mark_every: 2_000,
        }
    }

    /// Reduced scale for smoke runs.
    pub fn quick() -> Scale {
        Scale {
            object_bytes: 1 << 20,
            ops: 1_000,
            mark_every: 200,
        }
    }

    /// Parse `--mb`, `--ops`, `--quick` from the process arguments.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        let mut scale = Scale::paper();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => scale = Scale::quick(),
                "--mb" => {
                    i += 1;
                    let mb: u64 = args[i].parse().expect("--mb takes a number");
                    scale.object_bytes = mb << 20;
                }
                "--ops" => {
                    i += 1;
                    scale.ops = args[i].parse().expect("--ops takes a number");
                    scale.mark_every = (scale.ops / 5).max(1);
                }
                "--csv" => {
                    i += 1;
                    let dir = std::path::PathBuf::from(&args[i]);
                    std::fs::create_dir_all(&dir).expect("create --csv directory");
                    let _ = CSV_DIR.set(Some(dir));
                }
                "--out-dir" => {
                    i += 1;
                    let dir = PathBuf::from(&args[i]);
                    with_report(|r| r.out_dir = Some(dir));
                }
                "--json-out" => {
                    i += 1;
                    let path = PathBuf::from(&args[i]);
                    with_report(|r| r.json_out = Some(path));
                }
                "--baseline-json" => {
                    i += 1;
                    let path = PathBuf::from(&args[i]);
                    with_report(|r| r.baseline_json = Some(path));
                }
                other => {
                    panic!(
                        "unknown argument {other} \
                         (try --mb N, --ops N, --quick, --csv DIR, --out-dir DIR, \
                         --json-out PATH, --baseline-json PATH)"
                    )
                }
            }
            i += 1;
        }
        scale
    }

    pub fn object_mb(&self) -> f64 {
        self.object_bytes as f64 / (1 << 20) as f64
    }
}

/// A fresh paper-default database.
pub fn fresh_db() -> Db {
    Db::new(DbConfig::default())
}

/// Print the Table 1 banner every figure shares (also recorded as the
/// report's title and scale).
pub fn print_banner(title: &str, scale: Scale) {
    with_report(|r| {
        r.title = title.to_string();
        r.scale = Some(scale);
        r.started.get_or_insert_with(std::time::Instant::now);
    });
    emit_line(&format!("== {title} =="));
    emit_line(
        "   4K pages | 12-page pool | 4-page buffering limit | 33 ms seek | 1 KB/ms transfer",
    );
    emit_line(&format!(
        "   object {:.0} MB | {} ops, marks every {}\n",
        scale.object_mb(),
        scale.ops,
        scale.mark_every
    ));
}

/// Print a trailing remark (expected shapes, paper values) and retain it
/// in the report's `notes` array.
pub fn note(msg: &str) {
    with_report(|r| r.notes.push(msg.to_string()));
    emit_line(msg);
}

/// The `--baseline-json` path, if one was given: a prior run's report to
/// compare against (used by the throughput trajectory).
pub fn baseline_json() -> Option<PathBuf> {
    with_report(|r| r.baseline_json.clone())
}

/// Attach one sampled time series (tagged with the scheme it was
/// measured under) to the report. Any attached series upgrades the
/// `--json-out` document to `lobstore-bench-report/v2`, whose `series`
/// array `xtask bench-compare` diffs between runs.
pub fn add_series(scheme: &str, series: SeriesSnapshot) {
    with_report(|r| r.series.push((scheme.to_string(), series)));
}

/// Write the accumulated report: always `<out-dir>/<bin>.txt` (the
/// directory defaults to `results/` and is created on demand), plus the
/// versioned JSON document when `--json-out` was given. Every binary
/// calls this once, last.
pub fn finalize() {
    let bin = bin_name();
    with_report(|r| {
        let out_dir = r
            .out_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("results"));
        if let Err(e) = std::fs::create_dir_all(&out_dir) {
            eprintln!("warning: cannot create {}: {e}", out_dir.display());
        } else {
            let txt = out_dir.join(format!("{bin}.txt"));
            if let Err(e) = std::fs::write(&txt, &r.text) {
                eprintln!("warning: cannot write {}: {e}", txt.display());
            }
        }
        if let Some(path) = r.json_out.clone() {
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            let wall_us = r
                .started
                .map_or(1, |t| t.elapsed().as_micros().max(1) as u64);
            let doc = report_json(&bin, r, wall_us);
            if let Err(e) = std::fs::write(&path, doc.to_json() + "\n") {
                eprintln!("warning: cannot write {}: {e}", path.display());
            }
        }
    });
}

/// The report as a `lobstore-bench-report/v1` JSON document (v2 when
/// series were attached): one record per table row, `values` keyed by
/// the column headers. `wall_clock_us` is the binary's monotonic elapsed
/// time, reported next to the simulated costs in the records.
fn report_json(bin: &str, r: &ReportState, wall_clock_us: u64) -> Value {
    let scale = r.scale.unwrap_or_else(Scale::paper);
    let mut records = Vec::new();
    for t in &r.tables {
        for row in &t.rows {
            let values = Value::Obj(
                t.headers
                    .iter()
                    .zip(row)
                    .map(|(h, c)| (h.clone(), Value::from(c.as_str())))
                    .collect(),
            );
            records.push(Value::Obj(vec![
                ("table".to_string(), Value::from(t.table as u64)),
                ("title".to_string(), Value::from(t.title.as_str())),
                ("values".to_string(), values),
            ]));
        }
    }
    let schema = if r.series.is_empty() {
        lobstore_obs::BENCH_REPORT_SCHEMA
    } else {
        lobstore_obs::BENCH_REPORT_SCHEMA_V2
    };
    let mut fields = vec![
        ("schema".to_string(), Value::from(schema)),
        ("bin".to_string(), Value::from(bin)),
        ("title".to_string(), Value::from(r.title.as_str())),
        ("wall_clock_us".to_string(), Value::from(wall_clock_us)),
        (
            "scale".to_string(),
            Value::Obj(vec![
                ("object_bytes".to_string(), Value::from(scale.object_bytes)),
                ("ops".to_string(), Value::from(scale.ops as u64)),
                (
                    "mark_every".to_string(),
                    Value::from(scale.mark_every as u64),
                ),
            ]),
        ),
        ("records".to_string(), Value::Arr(records)),
        (
            "notes".to_string(),
            Value::Arr(r.notes.iter().map(|n| Value::from(n.as_str())).collect()),
        ),
    ];
    if !r.series.is_empty() {
        let series = r
            .series
            .iter()
            .map(|(scheme, s)| {
                // Prepend the scheme tag to the series' own fields.
                let mut entry = vec![("scheme".to_string(), Value::from(scheme.as_str()))];
                match s.to_value() {
                    Value::Obj(fields) => entry.extend(fields),
                    other => entry.push(("series".to_string(), other)),
                }
                Value::Obj(entry)
            })
            .collect();
        fields.push(("series".to_string(), Value::Arr(series)));
    }
    Value::Obj(fields)
}

/// Column specs of the standard manager sweeps.
pub fn esm_specs() -> Vec<ManagerSpec> {
    ESM_LEAF_PAGES
        .iter()
        .map(|&p| ManagerSpec::esm(p))
        .collect()
}

pub fn eos_specs() -> Vec<ManagerSpec> {
    EOS_THRESHOLDS
        .iter()
        .map(|&t| ManagerSpec::eos(t))
        .collect()
}

/// Run the §4.4 update experiment for every spec: build the object with
/// exact-fit appends (initial utilization ≈ 100 %), trim, then apply the
/// 40/30/30 mixed workload with mean operation size `mean`, collecting a
/// mark every `scale.mark_every` ops. Returns `(label, report)` pairs.
pub fn run_update_sweep(
    specs: &[ManagerSpec],
    scale: Scale,
    mean: u64,
) -> Vec<(String, lobstore_workload::MixedReport)> {
    use lobstore_workload::{build_object, MixedConfig, MixedWorkload};
    specs
        .iter()
        .map(|spec| {
            let mut db = fresh_db();
            // Exact-fit build keeps ESM leaves full; 256 KB for the rest.
            let append = match *spec {
                ManagerSpec::Esm { leaf_pages } => leaf_pages as usize * 4096,
                _ => 256 * 1024,
            };
            let (mut obj, _) =
                build_object(&mut db, spec, scale.object_bytes, append).expect("build");
            let mut w = MixedWorkload::new(MixedConfig {
                ops: scale.ops,
                mark_every: scale.mark_every,
                mean_op_bytes: mean,
                ..MixedConfig::default()
            });
            let report = w.run(&mut db, obj.as_mut()).expect("mixed workload");
            obj.check_invariants(&db)
                .expect("invariants after workload");
            (spec.label(), report)
        })
        .collect()
}

/// Print one mark-by-mark table for `metric` over the sweep results.
pub fn print_mark_table(
    title: &str,
    sweep: &[(String, lobstore_workload::MixedReport)],
    metric: impl Fn(&lobstore_workload::Mark) -> String,
) {
    with_report(|r| r.next_table_title = Some(title.to_string()));
    emit_line(title);
    let mut headers = vec!["ops".to_string()];
    headers.extend(sweep.iter().map(|(l, _)| l.clone()));
    let n_marks = sweep[0].1.marks.len();
    let mut rows = Vec::with_capacity(n_marks);
    for i in 0..n_marks {
        let mut row = vec![sweep[0].1.marks[i].ops_done.to_string()];
        for (_, rep) in sweep {
            row.push(metric(&rep.marks[i]));
        }
        rows.push(row);
    }
    print_table(&headers, &rows);
}

/// [`print_table`] with a title line; the title also names the table's
/// records in the JSON report (so downstream tools can find them).
pub fn print_titled_table(title: &str, headers: &[String], rows: &[Vec<String>]) {
    with_report(|r| r.next_table_title = Some(title.to_string()));
    emit_line(title);
    print_table(headers, rows);
}

/// Render an aligned text table: `headers` then rows of equal length.
/// The table is also retained as a set of JSON report records.
pub fn print_table(headers: &[String], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    write_csv(headers, rows);
    with_report(|r| {
        let table = r.tables.len();
        let title = r.next_table_title.take().unwrap_or_default();
        r.tables.push(TableRecord {
            table,
            title,
            headers: headers.to_vec(),
            rows: rows.to_vec(),
        });
    });
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{cell:>w$}"));
        }
        s
    };
    emit_line(&line(headers));
    emit_line(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    for row in rows {
        emit_line(&line(row));
    }
    emit_line("");
}

/// Write a CSV copy of a printed table into the `--csv` directory (if
/// one was given), named `<binary>_<sequence>.csv`.
fn write_csv(headers: &[String], rows: &[Vec<String>]) {
    let Some(Some(dir)) = CSV_DIR
        .get()
        .map(Option::as_ref)
        .map(|d| d.map(|p| p.to_path_buf()))
    else {
        return;
    };
    let bin = std::env::args()
        .next()
        .and_then(|p| {
            std::path::Path::new(&p)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
        })
        .unwrap_or_else(|| "table".to_string());
    let n = CSV_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("{bin}_{n:02}.csv"));
    let mut out = String::new();
    let quote = |c: &str| {
        if c.contains(',') || c.contains('"') {
            format!("\"{}\"", c.replace('"', "\"\""))
        } else {
            c.to_string()
        }
    };
    out.push_str(
        &headers
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
}

/// Format an optional millisecond value.
pub fn fmt_ms(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), |ms| format!("{ms:.1}"))
}

/// Format seconds.
pub fn fmt_s(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a utilization ratio as a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        assert_eq!(PAPER_APPEND_KB.len(), 21);
        assert_eq!(Scale::paper().object_bytes, 10 * 1024 * 1024);
    }

    #[test]
    fn spec_sweeps() {
        assert_eq!(esm_specs().len(), 4);
        assert_eq!(eos_specs().len(), 4);
        assert_eq!(esm_specs()[2].label(), "ESM/16");
    }

    #[test]
    fn report_json_round_trips_tables_and_notes() {
        let r = ReportState {
            title: "Figure X".to_string(),
            scale: Some(Scale::quick()),
            tables: vec![TableRecord {
                table: 0,
                title: "read cost".to_string(),
                headers: vec!["ops".to_string(), "ESM/1".to_string()],
                rows: vec![
                    vec!["200".to_string(), "37.0".to_string()],
                    vec!["400".to_string(), "38.5".to_string()],
                ],
            }],
            notes: vec!["expected shape: flat".to_string()],
            ..ReportState::default()
        };
        let doc = report_json("figx", &r, 1234);
        let v = lobstore_obs::json::parse(&doc.to_json()).unwrap();
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some(BENCH_REPORT_SCHEMA)
        );
        assert_eq!(v.get("bin").and_then(Value::as_str), Some("figx"));
        assert_eq!(v.get("wall_clock_us").and_then(Value::as_u64), Some(1234));
        assert_eq!(
            v.get("scale")
                .and_then(|s| s.get("object_bytes"))
                .and_then(Value::as_u64),
            Some(1 << 20)
        );
        let records = v.get("records").and_then(Value::as_arr).unwrap();
        assert_eq!(records.len(), 2, "one record per table row");
        let first = &records[0];
        assert_eq!(first.get("table").and_then(Value::as_u64), Some(0));
        assert_eq!(
            first.get("title").and_then(Value::as_str),
            Some("read cost")
        );
        assert_eq!(
            first
                .get("values")
                .and_then(|o| o.get("ESM/1"))
                .and_then(Value::as_str),
            Some("37.0")
        );
        let notes = v.get("notes").and_then(Value::as_arr).unwrap();
        assert_eq!(notes.len(), 1);
    }

    #[test]
    fn report_json_upgrades_to_v2_with_series() {
        use lobstore_obs::SeriesPoint;
        let r = ReportState {
            title: "Aging".to_string(),
            scale: Some(Scale::quick()),
            tables: vec![TableRecord {
                table: 0,
                title: "post-aging scan".to_string(),
                headers: vec!["scheme".to_string(), "sim s".to_string()],
                rows: vec![vec!["ESM/16".to_string(), "1.5".to_string()]],
            }],
            series: vec![(
                "ESM/16".to_string(),
                SeriesSnapshot {
                    name: "health.leaf.frag_ratio".to_string(),
                    dropped: 0,
                    points: vec![
                        SeriesPoint {
                            tick: 100,
                            value: 0.1,
                        },
                        SeriesPoint {
                            tick: 200,
                            value: 0.2,
                        },
                    ],
                },
            )],
            ..ReportState::default()
        };
        let doc = report_json("aging", &r, 99);
        let v = lobstore_obs::json::parse(&doc.to_json()).unwrap();
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some(BENCH_REPORT_SCHEMA_V2)
        );
        let series = v.get("series").and_then(Value::as_arr).unwrap();
        assert_eq!(series.len(), 1);
        let s = &series[0];
        assert_eq!(s.get("scheme").and_then(Value::as_str), Some("ESM/16"));
        assert_eq!(
            s.get("name").and_then(Value::as_str),
            Some("health.leaf.frag_ratio")
        );
        assert_eq!(
            s.get("points").and_then(Value::as_arr).map(<[Value]>::len),
            Some(2)
        );
        assert_eq!(
            s.get("summary")
                .and_then(|x| x.get("last"))
                .and_then(Value::as_num),
            Some(0.2)
        );
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ms(None), "-");
        assert_eq!(fmt_ms(Some(37.04)), "37.0");
        assert_eq!(fmt_pct(0.985), "98.5%");
        assert_eq!(fmt_s(22.34), "22.3");
    }
}
