//! Multi-page segment I/O: the hybrid buffering policy of §3.2.
//!
//! * Requests touching at most [`PoolConfig::max_buffered_seg`] pages are
//!   buffered: each maximal run of non-resident pages is fetched with one
//!   I/O call into pool frames, and the bytes are copied to the caller.
//! * Larger requests bypass the pool: interior pages go directly into the
//!   caller's buffer in one I/O call, and — when the requested byte range
//!   does not match page boundaries (Figure 4) — the partial first/last
//!   pages are staged through the pool, giving the paper's 3-step I/O.
//!
//! Everything here takes `&self`: the direct paths (`read_pages`,
//! `read_direct`'s interior step) only consult the pool for dirty
//! overlays, so version-pinned snapshot readers can stream segments
//! concurrently under the shared side of the database lock.

use std::sync::PoisonError;

use lobstore_simdisk::{cast, AreaId, PageId, PAGE_SIZE, PAGE_SIZE_U64};

use crate::pool::{BufferPool, FrameRef};

impl BufferPool {
    /// Read `out.len()` bytes starting at byte `byte_off` of the segment
    /// that begins at `start_page` in `area`, applying the hybrid policy.
    pub fn read_segment(&self, area: AreaId, start_page: u32, byte_off: u64, out: &mut [u8]) {
        if out.is_empty() {
            return;
        }
        let len = out.len() as u64;
        let first = start_page + cast::to_u32(byte_off / PAGE_SIZE_U64);
        let last = start_page + cast::to_u32((byte_off + len - 1) / PAGE_SIZE_U64);
        let n_pages = last - first + 1;
        // Offset of the requested range within the first page.
        let head_skip = cast::to_usize(byte_off % PAGE_SIZE_U64);

        if n_pages <= self.cfg.max_buffered_seg
            && self.available_frames() >= cast::u32_to_usize(n_pages)
        {
            self.read_buffered(area, first, n_pages, head_skip, out);
        } else {
            self.read_direct(area, first, last, head_skip, out);
        }
    }

    /// Buffered path: pin resident pages, fetch each missing run with one
    /// call, copy the byte range out of the frames.
    ///
    /// A missing run of *whole* pages that lands entirely inside `out` is
    /// scatter-read straight into the caller's buffer and the frames are
    /// filled from it — one copy instead of disk→staging→frame→caller.
    /// Only runs clipped by a partial first or last page still stage
    /// through a temporary buffer. The I/O calls issued (and therefore
    /// the simulated cost) are identical either way.
    fn read_buffered(
        &self,
        area: AreaId,
        first: u32,
        n_pages: u32,
        head_skip: usize,
        out: &mut [u8],
    ) {
        let n = cast::u32_to_usize(n_pages);
        let mut refs: Vec<Option<FrameRef>> = Vec::with_capacity(n);
        // Pass 1: pin what is already resident so eviction can't steal it.
        for i in 0..n_pages {
            let pid = PageId::new(area, first + i);
            if self.contains(pid) {
                refs.push(Some(self.fix(pid)));
            } else {
                refs.push(None);
            }
        }
        // Pass 2: fetch each maximal missing run with a single I/O call.
        let mut in_place = vec![false; n];
        let mut i = 0usize;
        while i < refs.len() {
            if refs[i].is_some() {
                i += 1;
                continue;
            }
            let run_start = i;
            while i < refs.len() && refs[i].is_none() {
                i += 1;
            }
            let run_len = i - run_start;
            let start_page = first + cast::usize_to_u32(run_start);
            let (out_off, from, _) = page_span(run_start, head_skip, out.len());
            let (_, _, last_take) = page_span(run_start + run_len - 1, head_skip, out.len());
            if from == 0 && last_take == PAGE_SIZE {
                // Whole pages, fully inside `out`: scatter read.
                let dst = &mut out[out_off..out_off + run_len * PAGE_SIZE];
                let installed = self.read_scatter(area, start_page, dst);
                for (j, r) in installed.into_iter().enumerate() {
                    refs[run_start + j] = Some(r);
                    in_place[run_start + j] = true;
                }
            } else {
                // Boundary run: stage through a buffer sized to the run.
                let mut tmp = vec![0u8; run_len * PAGE_SIZE];
                self.disk.read(area, start_page, &mut tmp);
                for (j, chunk) in tmp.chunks(PAGE_SIZE).enumerate() {
                    let pid = PageId::new(area, start_page + cast::usize_to_u32(j));
                    refs[run_start + j] = Some(self.install_clean(pid, chunk));
                }
            }
        }
        // Pass 3: copy from frames for pages not already filled in place,
        // and release every pin.
        let mut copied = 0usize;
        for (i, r) in refs.iter().enumerate() {
            let r = match r {
                Some(r) => *r,
                None => unreachable!("pass 2 installed a frame for every missing page"),
            };
            let (out_off, from, take) = page_span(i, head_skip, out.len());
            debug_assert_eq!(out_off, copied);
            if !in_place[i] {
                self.with_page(r, |page| {
                    out[copied..copied + take].copy_from_slice(&page[from..from + take]);
                });
            }
            copied += take;
            if copied == out.len() {
                break;
            }
        }
        debug_assert_eq!(copied, out.len());
        for r in refs.into_iter().flatten() {
            self.unfix(r);
        }
    }

    /// Scatter read (cost-counted wrapper): one I/O call reading a run of
    /// whole pages directly into `dst`, then installing each page into a
    /// pool frame *from* `dst`. The caller's bytes are already in place;
    /// the frames are filled with one copy each and no staging buffer.
    fn read_scatter(&self, area: AreaId, start_page: u32, dst: &mut [u8]) -> Vec<FrameRef> {
        debug_assert!(!dst.is_empty() && dst.len().is_multiple_of(PAGE_SIZE));
        self.disk.read(area, start_page, dst);
        dst.chunks(PAGE_SIZE)
            .enumerate()
            .map(|(j, page)| {
                self.install_clean(PageId::new(area, start_page + cast::usize_to_u32(j)), page)
            })
            .collect()
    }

    /// Direct path with 3-step I/O on boundary mismatch.
    fn read_direct(&self, area: AreaId, first: u32, last: u32, head_skip: usize, out: &mut [u8]) {
        let len = out.len();
        let tail_end = (head_skip + len) % PAGE_SIZE; // 0 == aligned
        let head_partial = head_skip != 0;
        let tail_partial =
            tail_end != 0 && last > first || (last == first && (head_partial || tail_end != 0));

        // Single-page direct request (only possible when the pool had no
        // room): stage through one frame.
        if last == first {
            let r = self.fix(PageId::new(area, first));
            self.with_page(r, |page| {
                out.copy_from_slice(&page[head_skip..head_skip + len]);
            });
            self.unfix(r);
            return;
        }

        let mut pos = 0usize;
        let mut mid_first = first;
        let mut mid_last = last;

        // Step 1: partial first page through the pool.
        if head_partial {
            let r = self.fix(PageId::new(area, first));
            let take = PAGE_SIZE - head_skip;
            self.with_page(r, |page| {
                out[..take].copy_from_slice(&page[head_skip..]);
            });
            self.unfix(r);
            pos = take;
            mid_first = first + 1;
        }
        // Step 3 bookkeeping: partial last page via the pool.
        let tail_take = if tail_partial { tail_end } else { 0 };
        if tail_partial {
            mid_last = last - 1;
        }
        // Step 2: interior pages straight into the caller's buffer.
        if mid_first <= mid_last {
            let mid_pages = cast::u32_to_usize(mid_last - mid_first + 1);
            let mid_len = mid_pages * PAGE_SIZE;
            self.disk
                .read(area, mid_first, &mut out[pos..pos + mid_len]);
            // Overlay any resident *dirty* pages: the pool copy is newer
            // than the disk copy we just read.
            self.overlay_dirty(area, mid_first, mid_pages, &mut out[pos..pos + mid_len]);
            pos += mid_len;
        }
        if tail_partial {
            let r = self.fix(PageId::new(area, last));
            self.with_page(r, |page| {
                out[pos..pos + tail_take].copy_from_slice(&page[..tail_take]);
            });
            self.unfix(r);
            pos += tail_take;
        }
        debug_assert_eq!(pos, len);
    }

    /// Overlay the resident **dirty** pages of a whole-page run onto the
    /// bytes just read from disk (the frame copy is newer). One `ctl`
    /// acquisition covers the whole run — dirty residents are rare on
    /// the scan path, and per-page locking would put every concurrent
    /// scanner through the control latch once per page.
    fn overlay_dirty(&self, area: AreaId, first: u32, n_pages: usize, out: &mut [u8]) {
        let g = self.ctl.lock().unwrap_or_else(PoisonError::into_inner);
        for i in 0..n_pages {
            let pid = PageId::new(area, first + cast::usize_to_u32(i));
            if g.resident_dirty(pid).is_none() {
                continue;
            }
            // Holding `ctl` pins residency; copy under the shard latch.
            // `out` spans exactly `n_pages` pages, so the slice bounds
            // cannot panic here.
            // loblint: allow(panic-while-locked)
            self.copy_page_into(pid, &mut out[i * PAGE_SIZE..(i + 1) * PAGE_SIZE]);
        }
    }

    /// Read `n_pages` whole pages directly into `out` with one I/O call —
    /// for internal staging buffers (e.g. Starburst's 512 KB copy buffer)
    /// where page-grained reads need no boundary staging, and for the
    /// `&self` snapshot-scan path, which must not fix frames.
    pub fn read_pages(&self, area: AreaId, start_page: u32, n_pages: u32, out: &mut [u8]) {
        assert!(n_pages > 0);
        assert!(out.len() >= cast::u32_to_usize(n_pages) * PAGE_SIZE);
        let out = &mut out[..cast::u32_to_usize(n_pages) * PAGE_SIZE];
        self.disk.read(area, start_page, out);
        self.overlay_dirty(area, start_page, cast::u32_to_usize(n_pages), out);
    }

    /// Write `data` to contiguous pages starting at `start_page` with one
    /// I/O call, bypassing the pool. Resident copies of fully-overwritten
    /// pages are dropped; a dirty resident copy of a *partially* covered
    /// trailing page is flushed first so its unwritten bytes survive the
    /// disk-side read-modify-write.
    pub fn write_direct(&self, area: AreaId, start_page: u32, data: &[u8]) {
        assert!(!data.is_empty(), "zero-length direct write");
        let n_pages = cast::usize_to_u32(data.len().div_ceil(PAGE_SIZE));
        let partial_tail = !data.len().is_multiple_of(PAGE_SIZE);
        if partial_tail {
            // `n_pages >= 1` (data is non-empty) and the write below
            // targets exactly this page range.
            // loblint: allow(arith-overflow)
            let tail_pid = PageId::new(area, start_page + n_pages - 1);
            // Only a *dirty* resident tail needs the pre-flush, and
            // `flush_page` checks exactly that.
            self.flush_page(tail_pid);
        }
        self.disk.write(area, start_page, data);
        self.discard_range(area, start_page, n_pages);
    }

    /// Flush the dirty resident pages of the page range `[start,
    /// start+n_pages)`, writing each maximal contiguous dirty run with a
    /// single sequential I/O call (§3.3: "the dirty pages of the segment
    /// are simply flushed to disk at the end of the operation").
    pub fn flush_range(&self, area: AreaId, start: u32, n_pages: u32) {
        // The caller's flush range lies within the area's page space.
        // loblint: allow(arith-overflow)
        let end = start + n_pages;
        let mut g = self.ctl.lock().unwrap_or_else(PoisonError::into_inner);
        let mut p = start;
        while p < end {
            let Some((run_start, run_len)) = g.next_dirty_run(area, p, end) else {
                break;
            };
            // Stage the run's frame bytes into one contiguous buffer and
            // write it with a single sequential call — the same one-call,
            // `run_len`-page charge the old gather write produced.
            let staged = self.gather_run(area, run_start, run_len);
            self.disk.write(area, run_start, &staged);
            g.mark_run_clean(area, run_start, run_len);
            lobstore_obs::counter_add("bufpool.dirty_writebacks", u64::from(run_len));
            // The run lies inside `[start, end)`, which the caller sized.
            p = run_start + run_len;
        }
    }

    /// Copy a run of resident pages into one contiguous staging buffer,
    /// page by page under the shard latches. The caller holds `ctl`, so
    /// residency cannot change mid-copy.
    fn gather_run(&self, area: AreaId, start: u32, run_len: u32) -> Vec<u8> {
        let n = cast::u32_to_usize(run_len);
        let mut buf = vec![0u8; n * PAGE_SIZE];
        for (i, chunk) in buf.chunks_mut(PAGE_SIZE).enumerate() {
            self.copy_page_into(PageId::new(area, start + cast::usize_to_u32(i)), chunk);
        }
        buf
    }
}

/// Where page `i` of a buffered request lands: byte offset in `out`,
/// offset of the first requested byte within the page, and how many
/// bytes of the page are requested.
fn page_span(i: usize, head_skip: usize, out_len: usize) -> (usize, usize, usize) {
    let (out_off, from) = if i == 0 {
        (0, head_skip)
    } else {
        (PAGE_SIZE - head_skip + (i - 1) * PAGE_SIZE, 0)
    };
    // `from < PAGE_SIZE` and `out_off < out_len` for every page index
    // the read loop produces.
    // loblint: allow(arith-overflow)
    (out_off, from, (PAGE_SIZE - from).min(out_len - out_off))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use lobstore_simdisk::{CostModel, SimDisk, TraceKind};

    const A: AreaId = AreaId::LEAF;

    fn pool() -> BufferPool {
        BufferPool::new(SimDisk::new(2, CostModel::default()), PoolConfig::default())
    }

    /// Write a recognizable pattern of `n` pages at `start` directly to disk.
    fn seed(pool: &BufferPool, start: u32, n_pages: usize) -> Vec<u8> {
        let data: Vec<u8> = (0..n_pages * PAGE_SIZE)
            .map(|i| ((i * 31 + 7) % 253) as u8)
            .collect();
        pool.disk().poke(A, start, &data);
        data
    }

    #[test]
    fn small_read_is_buffered_in_one_call() {
        let p = pool();
        let data = seed(&p, 0, 3);
        let mut out = vec![0u8; 3 * PAGE_SIZE];
        p.read_segment(A, 0, 0, &mut out);
        assert_eq!(out, data);
        let s = p.io_stats();
        assert_eq!(s.read_calls, 1, "3-page segment read in one call");
        assert_eq!(s.pages_read, 3);
        // Pages now resident: a re-read is free.
        p.read_segment(A, 0, 0, &mut out);
        assert_eq!(p.io_stats().read_calls, 1);
    }

    #[test]
    fn small_unaligned_read_copies_correct_bytes() {
        let p = pool();
        let data = seed(&p, 4, 2);
        let mut out = vec![0u8; 1000];
        p.read_segment(A, 4, 3700, &mut out);
        assert_eq!(out[..], data[3700..4700]);
        assert_eq!(p.io_stats().read_calls, 1);
        assert_eq!(p.io_stats().pages_read, 2);
    }

    #[test]
    fn large_aligned_read_is_one_direct_call() {
        let p = pool();
        let data = seed(&p, 0, 8);
        let mut out = vec![0u8; 8 * PAGE_SIZE];
        p.disk().enable_trace(8);
        p.read_segment(A, 0, 0, &mut out);
        assert_eq!(out, data);
        let t = p.disk().take_trace();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].pages, 8);
        // Nothing was buffered.
        assert!(!p.contains(PageId::new(A, 0)));
        assert!(!p.contains(PageId::new(A, 7)));
    }

    #[test]
    fn large_mismatched_read_is_three_step() {
        let p = pool();
        let data = seed(&p, 0, 8);
        // Bytes 100 .. 8*4096-100: both boundaries are mid-page.
        let len = 8 * PAGE_SIZE - 200;
        let mut out = vec![0u8; len];
        p.disk().enable_trace(8);
        p.read_segment(A, 0, 100, &mut out);
        assert_eq!(out[..], data[100..100 + len]);
        let t = p.disk().take_trace();
        // §3.2 / Figure 4: read L (1 page), read the 6 interior pages
        // directly, read R (1 page) = 3 calls, 8 pages.
        assert_eq!(t.len(), 3, "expected 3-step I/O, got {t:?}");
        assert_eq!(t.iter().map(|e| e.pages).collect::<Vec<_>>(), vec![1, 6, 1]);
        assert_eq!(t.iter().map(|e| u64::from(e.pages)).sum::<u64>(), 8);
        // Cost check from §4.4.2 analysis: 3 seeks + 8 pages.
        assert_eq!(p.io_stats().time_us, 3 * 33_000 + 8 * 4_000);
        // Boundary pages were staged through the pool.
        assert!(p.contains(PageId::new(A, 0)));
        assert!(p.contains(PageId::new(A, 7)));
        assert!(!p.contains(PageId::new(A, 3)));
    }

    #[test]
    fn large_read_with_aligned_head_is_two_step() {
        let p = pool();
        let data = seed(&p, 0, 6);
        let len = 5 * PAGE_SIZE + 10; // starts aligned, ends mid-page
        let mut out = vec![0u8; len];
        p.disk().enable_trace(8);
        p.read_segment(A, 0, 0, &mut out);
        assert_eq!(out[..], data[..len]);
        let t = p.disk().take_trace();
        assert_eq!(t.len(), 2);
        assert_eq!(t.iter().map(|e| e.pages).collect::<Vec<_>>(), vec![5, 1]);
    }

    #[test]
    fn buffered_read_reuses_resident_pages() {
        let p = pool();
        seed(&p, 0, 4);
        // Make page 1 resident.
        let r = p.fix(PageId::new(A, 1));
        p.unfix(r);
        p.disk().reset_stats();
        let mut out = vec![0u8; 4 * PAGE_SIZE];
        p.read_segment(A, 0, 0, &mut out);
        // Missing runs: [0] and [2,3] → 2 calls, 3 pages.
        assert_eq!(p.io_stats().read_calls, 2);
        assert_eq!(p.io_stats().pages_read, 3);
    }

    #[test]
    fn direct_read_overlays_dirty_resident_pages() {
        let p = pool();
        seed(&p, 0, 8);
        // Dirty page 3 in the pool: newer than disk.
        let r = p.fix(PageId::new(A, 3));
        p.with_page_mut(r, |page| page.fill(0xEE));
        p.unfix(r);
        let mut out = vec![0u8; 8 * PAGE_SIZE];
        p.read_segment(A, 0, 0, &mut out);
        assert!(out[3 * PAGE_SIZE..4 * PAGE_SIZE].iter().all(|&b| b == 0xEE));
    }

    #[test]
    fn write_direct_is_one_call_and_invalidates() {
        let p = pool();
        seed(&p, 0, 4);
        let r = p.fix(PageId::new(A, 2));
        p.unfix(r);
        let new = vec![0x55u8; 4 * PAGE_SIZE];
        p.disk().reset_stats();
        p.write_direct(A, 0, &new);
        assert_eq!(p.io_stats().write_calls, 1);
        assert_eq!(p.io_stats().pages_written, 4);
        assert!(!p.contains(PageId::new(A, 2)), "stale copy dropped");
        let mut out = vec![0u8; 4 * PAGE_SIZE];
        p.disk().peek(A, 0, &mut out);
        assert_eq!(out, new);
    }

    #[test]
    fn write_direct_partial_tail_preserves_dirty_resident_rest() {
        let p = pool();
        // Page 1 resident and dirty with 0xAA everywhere.
        let r = p.fix(PageId::new(A, 1));
        p.with_page_mut(r, |page| page.fill(0xAA));
        p.unfix(r);
        // Direct write covering page 0 fully and the first 100 bytes of page 1.
        let data = vec![0x11u8; PAGE_SIZE + 100];
        p.write_direct(A, 0, &data);
        let mut out = vec![0u8; 2 * PAGE_SIZE];
        p.disk().peek(A, 0, &mut out);
        assert!(out[..PAGE_SIZE + 100].iter().all(|&b| b == 0x11));
        assert!(
            out[PAGE_SIZE + 100..].iter().all(|&b| b == 0xAA),
            "dirty resident tail bytes must survive"
        );
    }

    #[test]
    fn flush_range_groups_contiguous_dirty_pages() {
        let p = pool();
        // Dirty pages 0,1,2 and 5 (3 is clean-resident, 4 absent).
        for q in [0u32, 1, 2, 5] {
            let r = p.fix_new(PageId::new(A, q));
            p.with_page_mut(r, |page| page[0] = q as u8 + 1);
            p.unfix(r);
        }
        let r = p.fix(PageId::new(A, 3));
        p.unfix(r);
        p.disk().reset_stats();
        p.disk().enable_trace(8);
        p.flush_range(A, 0, 6);
        let t = p.disk().take_trace();
        let writes: Vec<_> = t.iter().filter(|e| e.kind == TraceKind::Write).collect();
        assert_eq!(writes.len(), 2, "runs [0..3] and [5] → 2 calls");
        assert_eq!(writes[0].pages, 3);
        assert_eq!(writes[1].pages, 1);
        // Everything clean now; flushing again is free.
        p.disk().reset_stats();
        p.flush_range(A, 0, 6);
        assert_eq!(p.io_stats().write_calls, 0);
    }

    #[test]
    fn flush_range_gather_writes_frame_content() {
        let p = pool();
        for q in 0..3u32 {
            let r = p.fix_new(PageId::new(A, q));
            p.with_page_mut(r, |page| page.fill(0x10 + q as u8));
            p.unfix(r);
        }
        p.flush_range(A, 0, 3);
        let mut out = vec![0u8; 3 * PAGE_SIZE];
        p.disk().peek(A, 0, &mut out);
        for q in 0..3usize {
            assert!(
                out[q * PAGE_SIZE..(q + 1) * PAGE_SIZE]
                    .iter()
                    .all(|&b| b == 0x10 + q as u8),
                "page {q} content must reach disk via the gather write"
            );
        }
        assert_eq!(p.io_stats().write_calls, 1);
        assert_eq!(p.io_stats().pages_written, 3);
    }

    #[test]
    fn buffered_read_mixing_scatter_and_boundary_runs() {
        // 4-page span read at byte offset 100: the first missing run
        // starts on the partial head page (staged), while a later run of
        // whole pages goes through the scatter path. Content and call
        // counts must match the pre-scatter behavior exactly.
        let p = pool();
        let data = seed(&p, 0, 4);
        // Page 1 resident so the misses split into runs [0] and [2,3].
        let r = p.fix(PageId::new(A, 1));
        p.unfix(r);
        p.disk().reset_stats();
        // Ends exactly at the page-3 boundary, so run [2,3] is whole
        // pages (scatter) while run [0] is clipped by the head (staged).
        let len = 4 * PAGE_SIZE - 100;
        let mut out = vec![0u8; len];
        p.read_segment(A, 0, 100, &mut out);
        assert_eq!(out[..], data[100..100 + len]);
        assert_eq!(p.io_stats().read_calls, 2, "runs [0] and [2,3]");
        assert_eq!(p.io_stats().pages_read, 3);
        // All four pages were installed and a re-read is free.
        p.disk().reset_stats();
        p.read_segment(A, 0, 100, &mut out);
        assert_eq!(p.io_stats().read_calls, 0);
        assert_eq!(out[..], data[100..100 + len]);
    }

    #[test]
    fn read_pages_overlays_dirty_and_charges_one_call() {
        let p = pool();
        seed(&p, 0, 4);
        let r = p.fix(PageId::new(A, 1));
        p.with_page_mut(r, |page| page.fill(0x77));
        p.unfix(r);
        let mut out = vec![0u8; 4 * PAGE_SIZE];
        p.disk().reset_stats();
        p.read_pages(A, 0, 4, &mut out);
        assert_eq!(p.io_stats().read_calls, 1);
        assert!(out[PAGE_SIZE..2 * PAGE_SIZE].iter().all(|&b| b == 0x77));
    }

    #[test]
    fn single_page_fallback_when_pool_unavailable() {
        // A 3-frame pool where 2 frames are pinned: a 2-page buffered read
        // cannot be accommodated and falls to the direct path.
        let p = BufferPool::new(
            SimDisk::new(2, CostModel::default()),
            PoolConfig {
                frames: 3,
                max_buffered_seg: 4,
            },
        );
        let data = seed(&p, 0, 2);
        let _pin1 = p.fix(PageId::new(AreaId::META, 100));
        let _pin2 = p.fix(PageId::new(AreaId::META, 101));
        p.disk().reset_stats();
        let mut out = vec![0u8; PAGE_SIZE + 200];
        p.read_segment(A, 0, 50, &mut out);
        assert_eq!(out[..], data[50..50 + PAGE_SIZE + 200]);
    }

    #[test]
    fn concurrent_read_pages_sees_stable_bytes() {
        // The `&self` direct path is the snapshot-scan workhorse: several
        // threads reading disjoint and overlapping ranges must all see the
        // seeded bytes with no pool mutation at all.
        let p = pool();
        let data = seed(&p, 0, 8);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let (p, data) = (&p, &data);
                s.spawn(move || {
                    let start = t % 4;
                    let mut out = vec![0u8; 4 * PAGE_SIZE];
                    for _ in 0..25 {
                        p.read_pages(A, start, 4, &mut out);
                        let lo = cast::u32_to_usize(start) * PAGE_SIZE;
                        assert_eq!(out[..], data[lo..lo + 4 * PAGE_SIZE]);
                    }
                });
            }
        });
    }
}
