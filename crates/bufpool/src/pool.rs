//! The page-level buffer pool: fix/unfix, LRU replacement, flushing.
//!
//! # Concurrency structure
//!
//! The pool is shared (`&self` everywhere) and splits its state two ways:
//!
//! * **Control block** (`ctl: Mutex<PoolInner>`): the frame table,
//!   residency map, LRU clock and hit/miss counters. Every replacement
//!   decision runs under this one mutex, which keeps the victim choice —
//!   and therefore the simulated I/O stream and golden traces — exactly
//!   as deterministic as the old `&mut self` pool.
//! * **Page bytes** (`shards: [Shard; 16]`): the actual 4 KiB boxes live
//!   in per-shard tables behind `RwLock` latches, keyed by `PageId`.
//!   Readers of different pages (or shared readers of the same page)
//!   copy bytes in parallel without touching the control mutex.
//!
//! Lock hierarchy (must be acquired top-to-bottom, released bottom-up):
//! page pin (`guard*`) → `BufferPool.ctl` → `Shard.pages` → the disk's
//! own area locks. `PageGuard`/`PageGuardMut` hold the shard latch for
//! their lifetime and release it *before* re-taking `ctl` to drop the
//! pin.
//!
//! A pinned page is never evicted and never leaves its shard, so holding
//! a pin is enough to reach the bytes with only the shard latch.

use std::collections::HashMap;
use std::sync::{Mutex, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use lobstore_simdisk::{cast, IoStats, PageId, SimDisk, PAGE_SIZE};

use crate::frame::FrameMeta;

/// Number of page-byte shards. A power of two so `shard_of` stays a
/// multiply-and-mask; 16 is plenty for the core counts this simulation
/// targets while keeping the memory overhead of the latches trivial.
const SHARDS: usize = 16;

/// One page worth of heap bytes.
type PageBox = Box<[u8; PAGE_SIZE]>;

/// Pool sizing parameters. The study fixes these to 12 frames with a
/// 4-page segment-buffering limit (§4.1, Table 1).
#[derive(Copy, Clone, Debug)]
pub struct PoolConfig {
    /// Number of page frames in the pool.
    pub frames: usize,
    /// Largest segment (in pages) that is buffered whole in one I/O call;
    /// larger segments bypass the pool (§3.2).
    pub max_buffered_seg: u32,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            frames: 12,
            max_buffered_seg: 4,
        }
    }
}

/// Hit/miss and write-back counters of the pool itself (the disk keeps the
/// authoritative time/cost counters).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `fix` or segment-read requests satisfied without disk I/O.
    pub hits: u64,
    /// Requests that had to touch the disk.
    pub misses: u64,
    /// Dirty pages written back by eviction.
    pub eviction_writes: u64,
}

/// Handle to a fixed frame. Obtained from [`BufferPool::fix`] /
/// [`BufferPool::fix_new`]; must be released with [`BufferPool::unfix`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FrameRef(pub(crate) usize);

/// Which shard holds the bytes of `pid`. Deterministic, so the mapping
/// can be reasoned about in tests and the DESIGN shard diagram.
fn shard_of(pid: PageId) -> usize {
    cast::u32_to_usize(pid.page)
        .wrapping_mul(0x9e37_79b9)
        .wrapping_add(usize::from(pid.area.0))
        % SHARDS
}

/// One latched slice of the page-byte store.
struct Shard {
    /// Page bytes of every resident page hashed to this shard.
    pages: RwLock<PageTable>,
}

/// The byte table of one shard: resident page → its heap box.
#[derive(Default)]
struct PageTable {
    pages: HashMap<PageId, PageBox>,
}

impl PageTable {
    fn page(&self, pid: PageId) -> &[u8; PAGE_SIZE] {
        self.pages
            .get(&pid)
            // Invariant, not an error path: the caller holds a pin.
            // loblint: allow(unwrap)
            .expect("pinned page must be resident in its shard")
    }

    fn page_mut(&mut self, pid: PageId) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .get_mut(&pid)
            // loblint: allow(unwrap)
            .expect("pinned page must be resident in its shard")
    }

    fn insert(&mut self, pid: PageId, data: PageBox) {
        let prev = self.pages.insert(pid, data);
        debug_assert!(prev.is_none(), "page installed twice");
    }

    fn take(&mut self, pid: PageId) -> PageBox {
        self.pages
            .remove(&pid)
            // loblint: allow(unwrap)
            .expect("detached page must be resident in its shard")
    }

    fn zero(&mut self, pid: PageId) {
        self.page_mut(pid).fill(0);
    }

    fn fill_from(&mut self, pid: PageId, content: &[u8]) {
        self.page_mut(pid).copy_from_slice(content);
    }

    fn copy_to(&self, pid: PageId, out: &mut [u8]) {
        let n = out.len();
        out.copy_from_slice(&self.page(pid)[..n]);
    }
}

/// Replacement metadata: everything the old single-borrow pool kept in
/// `&mut self`, now behind `BufferPool.ctl`. All methods are lock-free
/// helpers — the caller holds the control mutex.
pub(crate) struct PoolInner {
    frames: Vec<FrameMeta>,
    /// Resident pages → frame index.
    map: HashMap<PageId, usize>,
    clock: u64,
    stats: PoolStats,
    /// Heap boxes of the free frames; eviction returns a box here, a miss
    /// takes one out. `spare.len()` equals the number of free frames.
    spare: Vec<PageBox>,
}

impl PoolInner {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn resident(&self, pid: PageId) -> Option<usize> {
        self.map.get(&pid).copied()
    }

    pub(crate) fn resident_dirty(&self, pid: PageId) -> Option<usize> {
        let idx = self.resident(pid)?;
        if self.frames[idx].dirty {
            Some(idx)
        } else {
            None
        }
    }

    /// Count a hit, re-pin the frame, refresh LRU. Returns the stats
    /// snapshot for the obs mirror.
    fn repin_hit(&mut self, idx: usize) -> PoolStats {
        self.stats.hits += 1;
        let t = self.tick();
        let f = &mut self.frames[idx];
        f.pins += 1;
        f.last_used = t;
        self.stats
    }

    fn count_miss(&mut self) -> PoolStats {
        self.stats.misses += 1;
        self.stats
    }

    /// Re-pin an already-resident frame, forcing its dirty bit — used by
    /// the resident fast paths of `fix_new` (dirty) and `install_clean`
    /// (clean).
    fn repin(&mut self, idx: usize, dirty: bool) {
        let t = self.tick();
        let f = &mut self.frames[idx];
        f.dirty = dirty;
        f.pins += 1;
        f.last_used = t;
    }

    /// Pick a victim frame: a free frame if any, otherwise the LRU unpinned
    /// **clean** frame, otherwise the LRU unpinned dirty frame (§3.2: "we
    /// start first by freeing the least recently used clean pages followed
    /// by dirty pages"). Panics if every frame is pinned — a configuration
    /// error for this single-writer simulation.
    fn pick_victim(&self) -> usize {
        if let Some(i) = self.frames.iter().position(FrameMeta::is_free) {
            return i;
        }
        let lru_of = |frames: &[FrameMeta], want_dirty: bool| {
            frames
                .iter()
                .enumerate()
                .filter(|(_, f)| f.pins == 0 && f.dirty == want_dirty)
                .min_by_key(|(_, f)| f.last_used)
                .map(|(i, _)| i)
        };
        match lru_of(&self.frames, false).or_else(|| lru_of(&self.frames, true)) {
            Some(i) => i,
            None => panic!("buffer pool exhausted: every frame is pinned"),
        }
    }

    /// Forget the page held by frame `idx`, returning its id and whether
    /// it was dirty. `None` if the frame was already free.
    fn detach(&mut self, idx: usize) -> Option<(PageId, bool)> {
        let f = &mut self.frames[idx];
        let pid = f.pid.take()?;
        let dirty = f.dirty;
        f.dirty = false;
        self.map.remove(&pid);
        Some((pid, dirty))
    }

    fn take_spare(&mut self) -> PageBox {
        self.spare
            .pop()
            // loblint: allow(unwrap)
            .expect("eviction must leave a spare page box")
    }

    fn take_spare_zeroed(&mut self) -> PageBox {
        let mut b = self.take_spare();
        b.fill(0);
        b
    }

    fn take_spare_filled(&mut self, content: &[u8]) -> PageBox {
        let mut b = self.take_spare();
        b.copy_from_slice(content);
        b
    }

    fn install(&mut self, idx: usize, pid: PageId, dirty: bool) -> FrameRef {
        let t = self.tick();
        let f = &mut self.frames[idx];
        f.pid = Some(pid);
        f.dirty = dirty;
        f.pins = 1;
        f.last_used = t;
        self.map.insert(pid, idx);
        FrameRef(idx)
    }

    fn unpin(&mut self, idx: usize, dirtied: bool) {
        let f = &mut self.frames[idx];
        if dirtied {
            f.dirty = true;
        }
        assert!(f.pins > 0, "unfix of unpinned frame");
        f.pins -= 1;
    }

    fn pinned_pid(&self, idx: usize) -> PageId {
        let f = &self.frames[idx];
        debug_assert!(f.pins > 0, "access to unfixed frame");
        // loblint: allow(unwrap)
        f.pid.expect("fixed frame holds a page")
    }

    /// Like [`Self::pinned_pid`] but also marks the frame dirty — the
    /// write-access twin, preserving the old `page_mut` semantics of
    /// dirtying at access time.
    fn dirty_pinned_pid(&mut self, idx: usize) -> PageId {
        let f = &mut self.frames[idx];
        debug_assert!(f.pins > 0, "access to unfixed frame");
        f.dirty = true;
        // loblint: allow(unwrap)
        f.pid.expect("fixed frame holds a page")
    }

    fn set_clean(&mut self, idx: usize) {
        self.frames[idx].dirty = false;
    }

    fn set_clean_pid(&mut self, pid: PageId) {
        if let Some(idx) = self.resident(pid) {
            self.set_clean(idx);
        }
    }

    fn remove_unpinned(&mut self, pid: PageId) -> Option<usize> {
        let idx = self.map.remove(&pid)?;
        let f = &mut self.frames[idx];
        assert_eq!(f.pins, 0, "discard of a fixed page {pid}");
        f.pid = None;
        f.dirty = false;
        Some(idx)
    }

    /// Detach every frame without write-back; panics on a surviving pin.
    fn crash_detach_all(&mut self) -> Vec<PageId> {
        let mut pids = Vec::new();
        for f in &mut self.frames {
            assert_eq!(f.pins, 0, "crash with a fixed frame");
            if let Some(pid) = f.pid.take() {
                pids.push(pid);
            }
            f.dirty = false;
            f.last_used = 0;
        }
        self.map.clear();
        pids
    }

    fn available(&self) -> usize {
        self.frames.iter().filter(|f| f.pins == 0).count()
    }

    /// Page ids of every dirty frame, in frame-index order (the order the
    /// old pool flushed them, which golden traces depend on).
    fn dirty_pids(&self) -> Vec<PageId> {
        self.frames
            .iter()
            .filter(|f| f.dirty)
            .filter_map(|f| f.pid)
            .collect()
    }

    /// First maximal run of resident-dirty pages in `[from, end)`, as
    /// `(start, len)`.
    pub(crate) fn next_dirty_run(
        &self,
        area: lobstore_simdisk::AreaId,
        from: u32,
        end: u32,
    ) -> Option<(u32, u32)> {
        let mut p = from;
        while p < end {
            if self.resident_dirty(PageId::new(area, p)).is_some() {
                let start = p;
                let mut len = 0u32;
                while p < end && self.resident_dirty(PageId::new(area, p)).is_some() {
                    len += 1;
                    p += 1;
                }
                return Some((start, len));
            }
            p += 1;
        }
        None
    }

    pub(crate) fn mark_run_clean(&mut self, area: lobstore_simdisk::AreaId, start: u32, len: u32) {
        for p in start..start.saturating_add(len) {
            self.set_clean_pid(PageId::new(area, p));
        }
    }
}

/// The buffer manager. Owns the simulated disk; all I/O above the disk
/// goes through here. Shared: every operation takes `&self` (see the
/// module docs for the locking structure).
pub struct BufferPool {
    pub(crate) disk: SimDisk,
    pub(crate) cfg: PoolConfig,
    /// Control block: frame table, residency map, LRU state, counters.
    pub(crate) ctl: Mutex<PoolInner>,
    /// Latched page-byte store, indexed by `shard_of(pid)`.
    shards: Vec<Shard>,
}

impl BufferPool {
    /// A pool of `cfg.frames` empty frames over `disk`.
    ///
    /// # Panics
    /// If `cfg.frames < 2`.
    pub fn new(disk: SimDisk, cfg: PoolConfig) -> Self {
        assert!(cfg.frames >= 2, "pool needs at least 2 frames");
        BufferPool {
            disk,
            cfg,
            ctl: Mutex::new(PoolInner {
                frames: (0..cfg.frames).map(|_| FrameMeta::empty()).collect(),
                map: HashMap::with_capacity(cfg.frames),
                clock: 0,
                stats: PoolStats::default(),
                spare: (0..cfg.frames)
                    .map(|_| -> PageBox { Box::new([0u8; PAGE_SIZE]) })
                    .collect(),
            }),
            shards: (0..SHARDS)
                .map(|_| Shard {
                    pages: RwLock::new(PageTable::default()),
                })
                .collect(),
        }
    }

    /// The paper's configuration: two areas, default cost model, 12 frames,
    /// 4-page buffering limit.
    pub fn paper_default() -> Self {
        BufferPool::new(SimDisk::paper_default(), PoolConfig::default())
    }

    /// The sizing parameters this pool was built with.
    pub fn config(&self) -> PoolConfig {
        self.cfg
    }

    /// Cumulative I/O statistics of the underlying disk.
    pub fn io_stats(&self) -> IoStats {
        self.disk.stats()
    }

    /// Pool-level hit/miss counters.
    pub fn pool_stats(&self) -> PoolStats {
        let g = self.ctl.lock().unwrap_or_else(PoisonError::into_inner);
        g.stats
    }

    /// Direct access to the disk (for tracing and verification).
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    /// Mutable access to the disk. Retained for API compatibility — the
    /// disk itself is now fully shared, so [`Self::disk`] suffices.
    pub fn disk_mut(&mut self) -> &mut SimDisk {
        &mut self.disk
    }

    /// Number of frames that are currently unpinned (evictable or free).
    pub fn available_frames(&self) -> usize {
        let g = self.ctl.lock().unwrap_or_else(PoisonError::into_inner);
        g.available()
    }

    /// Whether `pid` is resident.
    pub fn contains(&self, pid: PageId) -> bool {
        let g = self.ctl.lock().unwrap_or_else(PoisonError::into_inner);
        g.resident(pid).is_some()
    }

    fn shard(&self, pid: PageId) -> &Shard {
        &self.shards[shard_of(pid)]
    }

    /// Move `data` into `pid`'s shard slot.
    fn put_page(&self, pid: PageId, data: PageBox) {
        let slot = self.shard(pid);
        let mut t = slot.pages.write().unwrap_or_else(PoisonError::into_inner);
        t.insert(pid, data);
    }

    /// Remove `pid`'s bytes from its shard, returning the box.
    fn take_page(&self, pid: PageId) -> PageBox {
        let slot = self.shard(pid);
        let mut t = slot.pages.write().unwrap_or_else(PoisonError::into_inner);
        t.take(pid)
    }

    fn zero_page(&self, pid: PageId) {
        let slot = self.shard(pid);
        let mut t = slot.pages.write().unwrap_or_else(PoisonError::into_inner);
        t.zero(pid);
    }

    fn fill_page(&self, pid: PageId, content: &[u8]) {
        let slot = self.shard(pid);
        let mut t = slot.pages.write().unwrap_or_else(PoisonError::into_inner);
        t.fill_from(pid, content);
    }

    /// Copy a resident page's bytes out under the shard read latch. The
    /// caller must guarantee residency (a pin, or the control mutex).
    pub(crate) fn copy_page_into(&self, pid: PageId, out: &mut [u8]) {
        let slot = self.shard(pid);
        let t = slot.pages.read().unwrap_or_else(PoisonError::into_inner);
        t.copy_to(pid, out);
    }

    /// Choose and clear a victim frame; the caller holds the control
    /// mutex. Leaves one spare page box for the caller to fill.
    fn victim(&self, inner: &mut PoolInner) -> usize {
        let idx = inner.pick_victim();
        self.evict(inner, idx);
        idx
    }

    /// Write back (if dirty) and forget the page in frame `idx`.
    fn evict(&self, inner: &mut PoolInner, idx: usize) {
        let Some((pid, dirty)) = inner.detach(idx) else {
            return;
        };
        let data = self.take_page(pid);
        if dirty {
            self.disk.write(pid.area, pid.page, data.as_slice());
            inner.stats.eviction_writes += 1;
            lobstore_obs::counter_add("bufpool.eviction_writes", 1);
            lobstore_obs::counter_add("bufpool.dirty_writebacks", 1);
        }
        inner.spare.push(data);
    }

    /// Record one fix outcome in the observability registry and refresh
    /// the derived hit-ratio gauge.
    fn note_fix(hit: bool, stats: PoolStats) {
        lobstore_obs::counter_add(
            if hit {
                "bufpool.hits"
            } else {
                "bufpool.misses"
            },
            1,
        );
        let total = stats.hits + stats.misses;
        if total > 0 {
            lobstore_obs::gauge_set("bufpool.hit_ratio", stats.hits as f64 / total as f64);
        }
    }

    /// Fix `pid` in the pool, reading it from disk on a miss (one 1-page
    /// I/O call). Returns a handle for [`Self::with_page`] /
    /// [`Self::with_page_mut`].
    pub fn fix(&self, pid: PageId) -> FrameRef {
        let mut g = self.ctl.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(idx) = g.resident(pid) {
            let stats = g.repin_hit(idx);
            drop(g);
            Self::note_fix(true, stats);
            return FrameRef(idx);
        }
        let stats = g.count_miss();
        Self::note_fix(false, stats);
        let inner = &mut *g;
        let idx = self.victim(inner);
        let mut data = inner.take_spare();
        self.disk.read(pid.area, pid.page, data.as_mut_slice());
        self.put_page(pid, data);
        inner.install(idx, pid, false)
    }

    /// Fix `pid` **without** reading it from disk — for pages the caller is
    /// about to initialize completely (freshly allocated index pages,
    /// shadow copies). The frame starts zeroed and dirty.
    pub fn fix_new(&self, pid: PageId) -> FrameRef {
        let mut g = self.ctl.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(idx) = g.resident(pid) {
            // Page already resident (e.g. a recycled page number): reuse the
            // frame but reset its content.
            g.repin(idx, true);
            self.zero_page(pid);
            return FrameRef(idx);
        }
        let inner = &mut *g;
        let idx = self.victim(inner);
        let data = inner.take_spare_zeroed();
        self.put_page(pid, data);
        inner.install(idx, pid, true)
    }

    /// Install a full page of `content` (just read from disk) into a
    /// frame, pinned once and clean. Unlike [`Self::fix_new`] + copy, the
    /// frame is never zero-filled first — the copy overwrites every byte.
    ///
    /// # Panics
    /// If `content` is not exactly one page.
    pub(crate) fn install_clean(&self, pid: PageId, content: &[u8]) -> FrameRef {
        assert_eq!(content.len(), PAGE_SIZE, "install_clean needs a full page");
        let mut g = self.ctl.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(idx) = g.resident(pid) {
            // Already resident (possible only if the caller raced itself;
            // kept for safety): refresh the content, count another pin.
            g.repin(idx, false);
            self.fill_page(pid, content);
            return FrameRef(idx);
        }
        let inner = &mut *g;
        let idx = self.victim(inner);
        let data = inner.take_spare_filled(content);
        self.put_page(pid, data);
        inner.install(idx, pid, false)
    }

    /// The page a fixed frame holds.
    fn pinned_pid(&self, r: FrameRef) -> PageId {
        let g = self.ctl.lock().unwrap_or_else(PoisonError::into_inner);
        g.pinned_pid(r.0)
    }

    /// The page a fixed frame holds, marking it dirty.
    fn dirty_pinned_pid(&self, r: FrameRef) -> PageId {
        let mut g = self.ctl.lock().unwrap_or_else(PoisonError::into_inner);
        g.dirty_pinned_pid(r.0)
    }

    /// Run `body` with read access to a fixed frame's bytes, under the
    /// page's shard latch. `body` must not call back into the pool.
    pub fn with_page<R>(&self, r: FrameRef, body: impl FnOnce(&[u8; PAGE_SIZE]) -> R) -> R {
        let pid = self.pinned_pid(r);
        let slot = self.shard(pid);
        let t = slot.pages.read().unwrap_or_else(PoisonError::into_inner);
        body(t.page(pid))
    }

    /// Run `body` with write access to a fixed frame's bytes, under the
    /// page's exclusive shard latch; marks the page dirty. `body` must not
    /// call back into the pool.
    pub fn with_page_mut<R>(&self, r: FrameRef, body: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R) -> R {
        let pid = self.dirty_pinned_pid(r);
        let slot = self.shard(pid);
        let mut t = slot.pages.write().unwrap_or_else(PoisonError::into_inner);
        body(t.page_mut(pid))
    }

    /// Release one fix on the frame.
    pub fn unfix(&self, r: FrameRef) {
        let mut g = self.ctl.lock().unwrap_or_else(PoisonError::into_inner);
        g.unpin(r.0, false);
    }

    /// Guard drop path: release one fix, optionally marking the frame
    /// dirty first (writes that went through a `PageGuardMut`).
    fn release_pin(&self, r: FrameRef, dirtied: bool) {
        let mut g = self.ctl.lock().unwrap_or_else(PoisonError::into_inner);
        g.unpin(r.0, dirtied);
    }

    /// If `pid` is resident and dirty, write it to disk (one 1-page call).
    pub fn flush_page(&self, pid: PageId) {
        let mut g = self.ctl.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(idx) = g.resident_dirty(pid) else {
            return;
        };
        {
            let slot = self.shard(pid);
            let t = slot.pages.read().unwrap_or_else(PoisonError::into_inner);
            self.disk.write(pid.area, pid.page, t.page(pid).as_slice());
        }
        g.set_clean(idx);
        lobstore_obs::counter_add("bufpool.dirty_writebacks", 1);
    }

    /// Write back every dirty frame (one call per page).
    pub fn flush_all(&self) {
        let mut g = self.ctl.lock().unwrap_or_else(PoisonError::into_inner);
        for pid in g.dirty_pids() {
            {
                let slot = self.shard(pid);
                let t = slot.pages.read().unwrap_or_else(PoisonError::into_inner);
                self.disk.write(pid.area, pid.page, t.page(pid).as_slice());
            }
            g.set_clean_pid(pid);
            lobstore_obs::counter_add("bufpool.dirty_writebacks", 1);
        }
    }

    /// Drop `pid` from the pool without writing it back — used when the
    /// page has been freed or superseded by a shadow copy.
    ///
    /// # Panics
    /// If the page is currently fixed.
    pub fn discard(&self, pid: PageId) {
        let mut g = self.ctl.lock().unwrap_or_else(PoisonError::into_inner);
        if g.remove_unpinned(pid).is_none() {
            return;
        }
        let data = self.take_page(pid);
        g.spare.push(data);
    }

    /// Simulate a crash: every frame is discarded **without** write-back,
    /// as if the machine lost power. Dirty, unflushed state is gone; only
    /// what reached the disk survives. Used by recovery tests to verify
    /// the shadowing discipline of the storage managers (§3.3).
    ///
    /// # Panics
    /// If any frame is still fixed (a fixed frame mid-crash would be a
    /// harness bug, not a simulated condition).
    pub fn crash(&self) {
        let mut g = self.ctl.lock().unwrap_or_else(PoisonError::into_inner);
        for pid in g.crash_detach_all() {
            let data = self.take_page(pid);
            g.spare.push(data);
        }
    }

    /// Cost-free inspection of a page's *current* content: the resident
    /// frame if any (even dirty), else the disk copy. For verification and
    /// metrics code only — never part of the simulated I/O stream.
    pub fn peek_page(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) {
        if self.peek_resident(pid, out) {
            return;
        }
        self.disk.peek(pid.area, pid.page, out);
    }

    fn peek_resident(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) -> bool {
        let g = self.ctl.lock().unwrap_or_else(PoisonError::into_inner);
        if g.resident(pid).is_none() {
            return false;
        }
        self.copy_page_into(pid, out.as_mut_slice());
        true
    }

    /// Discard every resident page of an extent (used when a whole segment
    /// is freed).
    pub fn discard_range(&self, area: lobstore_simdisk::AreaId, start: u32, pages: u32) {
        for p in start..start.saturating_add(pages) {
            self.discard(PageId::new(area, p));
        }
    }

    /// Fix `pid` and return a read guard: derefs to the page bytes and
    /// releases the fix when dropped. The guard holds the page's shard
    /// latch for its whole lifetime, so the borrow is latched, not a
    /// `&mut self` borrow of the pool — independent pages stay reachable.
    pub fn guard(&self, pid: PageId) -> PageGuard<'_> {
        let r = self.fix(pid);
        let slot = self.shard(pid);
        let latch = slot.pages.read().unwrap_or_else(PoisonError::into_inner);
        PageGuard {
            pool: self,
            pid,
            r,
            latch: Some(latch),
        }
    }

    /// Fix `pid` and return a write guard; mutable access marks the page
    /// dirty, exactly as [`Self::with_page_mut`] does.
    pub fn guard_mut(&self, pid: PageId) -> PageGuardMut<'_> {
        let r = self.fix(pid);
        let slot = self.shard(pid);
        let latch = slot.pages.write().unwrap_or_else(PoisonError::into_inner);
        PageGuardMut {
            pool: self,
            pid,
            r,
            dirtied: false,
            latch: Some(latch),
        }
    }

    /// Like [`Self::guard_mut`] but over [`Self::fix_new`]: no disk read,
    /// the frame starts zeroed and dirty.
    pub fn guard_new(&self, pid: PageId) -> PageGuardMut<'_> {
        let r = self.fix_new(pid);
        let slot = self.shard(pid);
        let latch = slot.pages.write().unwrap_or_else(PoisonError::into_inner);
        PageGuardMut {
            pool: self,
            pid,
            r,
            dirtied: false,
            latch: Some(latch),
        }
    }
}

/// RAII read access to one fixed page. Created by [`BufferPool::guard`];
/// holds the page's shard **read latch** (shared — concurrent readers of
/// any page proceed in parallel) plus one fix. Both are released on drop,
/// latch first, so the lock hierarchy is never inverted.
pub struct PageGuard<'a> {
    pool: &'a BufferPool,
    pid: PageId,
    r: FrameRef,
    latch: Option<RwLockReadGuard<'a, PageTable>>,
}

impl std::ops::Deref for PageGuard<'_> {
    type Target = [u8; PAGE_SIZE];
    fn deref(&self) -> &Self::Target {
        self.latch
            .as_ref()
            // loblint: allow(unwrap)
            .expect("latch held until drop")
            .page(self.pid)
    }
}

impl Drop for PageGuard<'_> {
    fn drop(&mut self) {
        // Release the shard latch before re-entering the control mutex:
        // pins are released under `ctl`, which sits above `Shard.pages`
        // in the lock order.
        self.latch = None;
        self.pool.unfix(self.r);
    }
}

/// RAII write access to one fixed page (see [`BufferPool::guard_mut`]).
/// Holds the shard **write latch**; shared derefs do not dirty the page,
/// mutable derefs do (recorded on drop, when the pin is released).
pub struct PageGuardMut<'a> {
    pool: &'a BufferPool,
    pid: PageId,
    r: FrameRef,
    dirtied: bool,
    latch: Option<RwLockWriteGuard<'a, PageTable>>,
}

impl std::ops::Deref for PageGuardMut<'_> {
    type Target = [u8; PAGE_SIZE];
    fn deref(&self) -> &Self::Target {
        self.latch
            .as_ref()
            // loblint: allow(unwrap)
            .expect("latch held until drop")
            .page(self.pid)
    }
}

impl std::ops::DerefMut for PageGuardMut<'_> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        self.dirtied = true;
        self.latch
            .as_mut()
            // loblint: allow(unwrap)
            .expect("latch held until drop")
            .page_mut(self.pid)
    }
}

impl Drop for PageGuardMut<'_> {
    fn drop(&mut self) {
        self.latch = None;
        self.pool.release_pin(self.r, self.dirtied);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobstore_simdisk::{AreaId, CostModel, SimDisk};

    fn pool_with_frames(n: usize) -> BufferPool {
        BufferPool::new(
            SimDisk::new(2, CostModel::default()),
            PoolConfig {
                frames: n,
                max_buffered_seg: 4,
            },
        )
    }

    fn pid(p: u32) -> PageId {
        PageId::new(AreaId::META, p)
    }

    #[test]
    fn fix_miss_reads_one_page() {
        let pool = pool_with_frames(4);
        let r = pool.fix(pid(3));
        pool.unfix(r);
        assert_eq!(pool.io_stats().read_calls, 1);
        assert_eq!(pool.io_stats().pages_read, 1);
        assert_eq!(pool.pool_stats().misses, 1);
    }

    #[test]
    fn fix_hit_costs_nothing() {
        let pool = pool_with_frames(4);
        let r = pool.fix(pid(3));
        pool.unfix(r);
        let before = pool.io_stats();
        let r = pool.fix(pid(3));
        pool.unfix(r);
        assert_eq!(pool.io_stats(), before);
        assert_eq!(pool.pool_stats().hits, 1);
    }

    #[test]
    fn dirty_page_written_back_on_eviction() {
        let pool = pool_with_frames(2);
        // Dirty both frames so eviction has no clean victim.
        for p in 0..2 {
            let r = pool.fix(pid(p));
            pool.with_page_mut(r, |page| page[0] = 0xAB);
            pool.unfix(r);
        }
        let r = pool.fix(pid(2));
        pool.unfix(r);
        assert!(!pool.contains(pid(0)), "LRU dirty page evicted");
        assert_eq!(pool.pool_stats().eviction_writes, 1);
        let mut out = [0u8; 1];
        pool.disk().peek(AreaId::META, 0, &mut out);
        assert_eq!(out[0], 0xAB);
    }

    #[test]
    fn clean_pages_evicted_before_dirty() {
        let pool = pool_with_frames(2);
        // Frame A: dirty, older.
        let ra = pool.fix(pid(0));
        pool.with_page_mut(ra, |page| page[0] = 1);
        pool.unfix(ra);
        // Frame B: clean, newer.
        let rb = pool.fix(pid(1));
        pool.unfix(rb);
        // Need a victim: the clean page 1 must go even though page 0 is LRU.
        let rc = pool.fix(pid(2));
        pool.unfix(rc);
        assert!(pool.contains(pid(0)), "dirty page should survive");
        assert!(!pool.contains(pid(1)), "clean page should be evicted first");
        assert_eq!(pool.pool_stats().eviction_writes, 0);
    }

    #[test]
    fn pinned_pages_are_never_evicted() {
        let pool = pool_with_frames(2);
        let ra = pool.fix(pid(0)); // keep pinned
        let rb = pool.fix(pid(1));
        pool.unfix(rb);
        let rc = pool.fix(pid(2));
        pool.unfix(rc);
        assert!(pool.contains(pid(0)));
        pool.unfix(ra);
    }

    #[test]
    #[should_panic(expected = "every frame is pinned")]
    fn exhausted_pool_panics() {
        let pool = pool_with_frames(2);
        let _a = pool.fix(pid(0));
        let _b = pool.fix(pid(1));
        let _c = pool.fix(pid(2));
    }

    #[test]
    fn fix_new_skips_disk_read_and_is_dirty() {
        let pool = pool_with_frames(4);
        let r = pool.fix_new(pid(9));
        pool.with_page_mut(r, |page| page[0] = 7);
        pool.unfix(r);
        assert_eq!(pool.io_stats().read_calls, 0);
        pool.flush_page(pid(9));
        assert_eq!(pool.io_stats().write_calls, 1);
        // Second flush is a no-op: the page is now clean.
        pool.flush_page(pid(9));
        assert_eq!(pool.io_stats().write_calls, 1);
    }

    #[test]
    fn discard_drops_without_writeback() {
        let pool = pool_with_frames(4);
        let r = pool.fix_new(pid(5));
        pool.with_page_mut(r, |page| page[0] = 9);
        pool.unfix(r);
        pool.discard(pid(5));
        assert!(!pool.contains(pid(5)));
        assert_eq!(pool.io_stats().write_calls, 0);
        let mut out = [0u8; 1];
        pool.disk().peek(AreaId::META, 5, &mut out);
        assert_eq!(out[0], 0, "discarded content must not reach disk");
    }

    #[test]
    fn flush_all_writes_every_dirty_frame() {
        let pool = pool_with_frames(4);
        for p in 0..3 {
            let r = pool.fix_new(pid(p));
            pool.with_page_mut(r, |page| page[0] = p as u8 + 1);
            pool.unfix(r);
        }
        pool.flush_all();
        assert_eq!(pool.io_stats().write_calls, 3);
        pool.flush_all(); // everything clean now
        assert_eq!(pool.io_stats().write_calls, 3);
    }

    #[test]
    fn scripted_pattern_pins_hit_miss_eviction_counts() {
        // 3-frame pool, scripted page sequence. Every outcome is forced
        // by LRU, so the exact hit/miss/eviction counts are pinned here
        // and in the obs registry.
        lobstore_obs::reset();
        let pool = pool_with_frames(3);
        // Phase 1 — cold: fix 0,1,2 → 3 misses, pool now [0,1,2].
        for p in 0..3 {
            let r = pool.fix(pid(p));
            pool.unfix(r);
        }
        // Phase 2 — warm: fix 0,1,2 again, dirtying each → 3 hits, no
        // clean frame left.
        for p in 0..3 {
            let r = pool.fix(pid(p));
            pool.with_page_mut(r, |page| page[0] = 0xE0 | p as u8);
            pool.unfix(r);
        }
        // Phase 3 — fix 3: miss, and with every frame dirty the LRU dirty
        // page 0 is evicted with a writeback. Pool: [3,1,2].
        let r = pool.fix(pid(3));
        pool.unfix(r);
        // Phase 4 — fix 1: hit. Fix 0: miss; page 3 is the only clean
        // frame, so it is evicted without a writeback, and the re-read
        // page 0 comes back with the content written in phase 2.
        let r = pool.fix(pid(1));
        pool.unfix(r);
        let r = pool.fix(pid(0));
        let byte = pool.with_page(r, |page| page[0]);
        assert_eq!(byte, 0xE0, "writeback survived the round trip");
        pool.unfix(r);
        assert!(!pool.contains(pid(3)), "clean page 3 was the victim");
        let s = pool.pool_stats();
        assert_eq!(s.hits, 4);
        assert_eq!(s.misses, 5);
        assert_eq!(s.eviction_writes, 1, "only the dirty page 0 wrote back");
        // The obs registry mirrors PoolStats and derives the hit ratio.
        assert_eq!(lobstore_obs::counter_value("bufpool.hits"), 4);
        assert_eq!(lobstore_obs::counter_value("bufpool.misses"), 5);
        assert_eq!(lobstore_obs::counter_value("bufpool.eviction_writes"), 1);
        assert_eq!(lobstore_obs::counter_value("bufpool.dirty_writebacks"), 1);
        let ratio = lobstore_obs::gauge_value("bufpool.hit_ratio").unwrap();
        assert!(
            (ratio - 4.0 / 9.0).abs() < 1e-12,
            "4 hits / 9 fixes, got {ratio}"
        );
    }

    #[test]
    fn explicit_flushes_count_dirty_writebacks() {
        lobstore_obs::reset();
        let pool = pool_with_frames(4);
        for p in 0..2 {
            let r = pool.fix_new(pid(p));
            pool.with_page_mut(r, |page| page[0] = 1);
            pool.unfix(r);
        }
        pool.flush_page(pid(0));
        assert_eq!(lobstore_obs::counter_value("bufpool.dirty_writebacks"), 1);
        pool.flush_page(pid(0)); // clean now: no-op
        assert_eq!(lobstore_obs::counter_value("bufpool.dirty_writebacks"), 1);
        pool.flush_all(); // page 1 still dirty
        assert_eq!(lobstore_obs::counter_value("bufpool.dirty_writebacks"), 2);
        assert_eq!(lobstore_obs::counter_value("bufpool.eviction_writes"), 0);
    }

    #[test]
    fn guards_release_their_fix_on_drop() {
        let pool = pool_with_frames(2);
        {
            let mut g = pool.guard_new(pid(7));
            g[0] = 0x42;
            assert_eq!(g[0], 0x42);
        } // drop releases the pin
        assert_eq!(pool.available_frames(), 2, "no pin left behind");
        let g = pool.guard(pid(7));
        assert_eq!(g[0], 0x42);
        drop(g);
        // The dirty bit set through the write guard reaches disk.
        pool.flush_page(pid(7));
        let mut out = [0u8; PAGE_SIZE];
        pool.disk()
            .peek(lobstore_simdisk::AreaId::META, 7, &mut out);
        assert_eq!(out[0], 0x42);
    }

    #[test]
    fn read_guard_does_not_dirty_the_page() {
        let pool = pool_with_frames(2);
        let g = pool.guard(pid(1));
        assert_eq!(g[0], 0);
        drop(g);
        pool.flush_page(pid(1));
        assert_eq!(pool.io_stats().write_calls, 0, "clean page never written");
    }

    #[test]
    fn install_clean_is_pinned_resident_and_clean() {
        let pool = pool_with_frames(2);
        let content = [0x5Au8; PAGE_SIZE];
        let r = pool.install_clean(pid(3), &content);
        assert_eq!(pool.with_page(r, |page| page[100]), 0x5A);
        assert!(pool.contains(pid(3)));
        pool.unfix(r);
        pool.flush_page(pid(3));
        assert_eq!(pool.io_stats().write_calls, 0, "installed page is clean");
        // No read was charged either: content came from the caller.
        assert_eq!(pool.io_stats().read_calls, 0);
    }

    #[test]
    fn lru_order_updated_on_hit() {
        let pool = pool_with_frames(2);
        let ra = pool.fix(pid(0));
        pool.unfix(ra);
        let rb = pool.fix(pid(1));
        pool.unfix(rb);
        // Touch page 0 so page 1 becomes LRU.
        let ra = pool.fix(pid(0));
        pool.unfix(ra);
        let rc = pool.fix(pid(2));
        pool.unfix(rc);
        assert!(pool.contains(pid(0)));
        assert!(!pool.contains(pid(1)));
    }

    #[test]
    fn shared_read_guards_coexist() {
        // The old `&mut self` guards could never overlap; the latched
        // guards can, as long as both sides are readers.
        let pool = pool_with_frames(4);
        let g1 = pool.guard(pid(1));
        let g2 = pool.guard(pid(1));
        assert_eq!(g1[0], g2[0]);
        drop(g1);
        drop(g2);
        assert_eq!(pool.available_frames(), 4, "both pins released");
    }

    #[test]
    fn concurrent_guards_on_distinct_pages() {
        let pool = pool_with_frames(8);
        for p in 0..4u32 {
            let r = pool.fix_new(pid(p));
            pool.with_page_mut(r, |page| page[0] = p as u8 + 1);
            pool.unfix(r);
        }
        std::thread::scope(|s| {
            for p in 0..4u32 {
                let pool = &pool;
                s.spawn(move || {
                    for _ in 0..100 {
                        let g = pool.guard(pid(p));
                        assert_eq!(g[0], p as u8 + 1);
                    }
                });
            }
        });
        assert_eq!(pool.available_frames(), 8);
        assert_eq!(
            pool.pool_stats().misses,
            0,
            "all pages resident: guard fixes must all hit"
        );
    }
}
