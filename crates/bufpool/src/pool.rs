//! The page-level buffer pool: fix/unfix, LRU replacement, flushing.

use std::collections::HashMap;

use lobstore_simdisk::{IoStats, PageId, SimDisk, PAGE_SIZE};

use crate::frame::Frame;

/// Pool sizing parameters. The study fixes these to 12 frames with a
/// 4-page segment-buffering limit (§4.1, Table 1).
#[derive(Copy, Clone, Debug)]
pub struct PoolConfig {
    /// Number of page frames in the pool.
    pub frames: usize,
    /// Largest segment (in pages) that is buffered whole in one I/O call;
    /// larger segments bypass the pool (§3.2).
    pub max_buffered_seg: u32,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            frames: 12,
            max_buffered_seg: 4,
        }
    }
}

/// Hit/miss and write-back counters of the pool itself (the disk keeps the
/// authoritative time/cost counters).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `fix` or segment-read requests satisfied without disk I/O.
    pub hits: u64,
    /// Requests that had to touch the disk.
    pub misses: u64,
    /// Dirty pages written back by eviction.
    pub eviction_writes: u64,
}

/// Handle to a fixed frame. Obtained from [`BufferPool::fix`] /
/// [`BufferPool::fix_new`]; must be released with [`BufferPool::unfix`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FrameRef(pub(crate) usize);

/// The buffer manager. Owns the simulated disk; all I/O above the disk
/// goes through here.
pub struct BufferPool {
    pub(crate) disk: SimDisk,
    pub(crate) cfg: PoolConfig,
    pub(crate) frames: Vec<Frame>,
    /// Resident pages → frame index.
    pub(crate) map: HashMap<PageId, usize>,
    clock: u64,
    stats: PoolStats,
}

impl BufferPool {
    /// A pool of `cfg.frames` empty frames over `disk`.
    ///
    /// # Panics
    /// If `cfg.frames < 2`.
    pub fn new(disk: SimDisk, cfg: PoolConfig) -> Self {
        assert!(cfg.frames >= 2, "pool needs at least 2 frames");
        BufferPool {
            disk,
            frames: (0..cfg.frames).map(|_| Frame::empty()).collect(),
            cfg,
            map: HashMap::with_capacity(cfg.frames),
            clock: 0,
            stats: PoolStats::default(),
        }
    }

    /// The paper's configuration: two areas, default cost model, 12 frames,
    /// 4-page buffering limit.
    pub fn paper_default() -> Self {
        BufferPool::new(SimDisk::paper_default(), PoolConfig::default())
    }

    /// The sizing parameters this pool was built with.
    pub fn config(&self) -> PoolConfig {
        self.cfg
    }

    /// Cumulative I/O statistics of the underlying disk.
    pub fn io_stats(&self) -> IoStats {
        self.disk.stats()
    }

    /// Pool-level hit/miss counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.stats
    }

    /// Direct access to the disk (for tracing and verification).
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    /// Mutable access to the disk (for tracing and test seeding).
    pub fn disk_mut(&mut self) -> &mut SimDisk {
        &mut self.disk
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Number of frames that are currently unpinned (evictable or free).
    pub fn available_frames(&self) -> usize {
        self.frames.iter().filter(|f| f.pins == 0).count()
    }

    /// Whether `pid` is resident.
    pub fn contains(&self, pid: PageId) -> bool {
        self.map.contains_key(&pid)
    }

    /// Pick a victim frame: a free frame if any, otherwise the LRU unpinned
    /// **clean** frame, otherwise the LRU unpinned dirty frame (§3.2: "we
    /// start first by freeing the least recently used clean pages followed
    /// by dirty pages"). Writes back a dirty victim. Panics if every frame
    /// is pinned — a configuration error for this single-client simulation.
    fn victim(&mut self) -> usize {
        if let Some(i) = self.frames.iter().position(Frame::is_free) {
            return i;
        }
        let lru_of = |frames: &[Frame], want_dirty: bool| {
            frames
                .iter()
                .enumerate()
                .filter(|(_, f)| f.pins == 0 && f.dirty == want_dirty)
                .min_by_key(|(_, f)| f.last_used)
                .map(|(i, _)| i)
        };
        let idx = match lru_of(&self.frames, false).or_else(|| lru_of(&self.frames, true)) {
            Some(i) => i,
            None => panic!("buffer pool exhausted: every frame is pinned"),
        };
        self.evict(idx);
        idx
    }

    /// Write back (if dirty) and forget the page in frame `idx`.
    fn evict(&mut self, idx: usize) {
        let frame = &mut self.frames[idx];
        if let Some(pid) = frame.pid.take() {
            if frame.dirty {
                self.disk.write(pid.area, pid.page, &frame.data[..]);
                frame.dirty = false;
                self.stats.eviction_writes += 1;
                lobstore_obs::counter_add("bufpool.eviction_writes", 1);
                lobstore_obs::counter_add("bufpool.dirty_writebacks", 1);
            }
            self.map.remove(&pid);
        }
    }

    /// Record one fix outcome in the observability registry and refresh
    /// the derived hit-ratio gauge.
    fn note_fix(&self, hit: bool) {
        lobstore_obs::counter_add(
            if hit {
                "bufpool.hits"
            } else {
                "bufpool.misses"
            },
            1,
        );
        let total = self.stats.hits + self.stats.misses;
        if total > 0 {
            lobstore_obs::gauge_set("bufpool.hit_ratio", self.stats.hits as f64 / total as f64);
        }
    }

    /// Fix `pid` in the pool, reading it from disk on a miss (one 1-page
    /// I/O call). Returns a handle for [`Self::page`] / [`Self::page_mut`].
    pub fn fix(&mut self, pid: PageId) -> FrameRef {
        if let Some(&idx) = self.map.get(&pid) {
            self.stats.hits += 1;
            self.note_fix(true);
            let t = self.tick();
            let f = &mut self.frames[idx];
            f.pins += 1;
            f.last_used = t;
            return FrameRef(idx);
        }
        self.stats.misses += 1;
        self.note_fix(false);
        let idx = self.victim();
        self.disk
            .read(pid.area, pid.page, &mut self.frames[idx].data[..]);
        self.install(idx, pid)
    }

    /// Fix `pid` **without** reading it from disk — for pages the caller is
    /// about to initialize completely (freshly allocated index pages,
    /// shadow copies). The frame starts zeroed and dirty.
    pub fn fix_new(&mut self, pid: PageId) -> FrameRef {
        if let Some(&idx) = self.map.get(&pid) {
            // Page already resident (e.g. a recycled page number): reuse the
            // frame but reset its content.
            let t = self.tick();
            let f = &mut self.frames[idx];
            f.data.fill(0);
            f.dirty = true;
            f.pins += 1;
            f.last_used = t;
            return FrameRef(idx);
        }
        let idx = self.victim();
        self.frames[idx].data.fill(0);
        let r = self.install(idx, pid);
        self.frames[idx].dirty = true;
        r
    }

    fn install(&mut self, idx: usize, pid: PageId) -> FrameRef {
        let t = self.tick();
        let f = &mut self.frames[idx];
        f.pid = Some(pid);
        f.dirty = false;
        f.pins = 1;
        f.last_used = t;
        self.map.insert(pid, idx);
        FrameRef(idx)
    }

    /// Install a full page of `content` (just read from disk) into a
    /// frame, pinned once and clean. Unlike [`Self::fix_new`] + copy, the
    /// frame is never zero-filled first — the copy overwrites every byte.
    ///
    /// # Panics
    /// If `content` is not exactly one page.
    pub(crate) fn install_clean(&mut self, pid: PageId, content: &[u8]) -> FrameRef {
        assert_eq!(content.len(), PAGE_SIZE, "install_clean needs a full page");
        if let Some(&idx) = self.map.get(&pid) {
            // Already resident (possible only if the caller raced itself;
            // kept for safety): refresh the content, count another pin.
            let t = self.tick();
            // `idx` comes straight from the residency map.
            // loblint: allow(panic-path)
            let f = &mut self.frames[idx];
            f.data.copy_from_slice(content);
            f.dirty = false;
            f.pins += 1;
            f.last_used = t;
            return FrameRef(idx);
        }
        let idx = self.victim();
        // `victim` returns a valid frame index.
        // loblint: allow(panic-path)
        self.frames[idx].data.copy_from_slice(content);
        self.install(idx, pid)
    }

    /// Read access to a fixed frame.
    pub fn page(&self, r: FrameRef) -> &[u8; PAGE_SIZE] {
        debug_assert!(self.frames[r.0].pins > 0, "access to unfixed frame");
        &self.frames[r.0].data
    }

    /// Write access to a fixed frame; marks it dirty.
    pub fn page_mut(&mut self, r: FrameRef) -> &mut [u8; PAGE_SIZE] {
        let f = &mut self.frames[r.0];
        debug_assert!(f.pins > 0, "access to unfixed frame");
        f.dirty = true;
        &mut f.data
    }

    /// Release one fix on the frame.
    pub fn unfix(&mut self, r: FrameRef) {
        let f = &mut self.frames[r.0];
        assert!(f.pins > 0, "unfix of unpinned frame");
        f.pins -= 1;
    }

    /// If `pid` is resident and dirty, write it to disk (one 1-page call).
    pub fn flush_page(&mut self, pid: PageId) {
        if let Some(&idx) = self.map.get(&pid) {
            let f = &mut self.frames[idx];
            if f.dirty {
                self.disk.write(pid.area, pid.page, &f.data[..]);
                f.dirty = false;
                lobstore_obs::counter_add("bufpool.dirty_writebacks", 1);
            }
        }
    }

    /// Write back every dirty frame (one call per page).
    pub fn flush_all(&mut self) {
        for idx in 0..self.frames.len() {
            if let Some(pid) = self.frames[idx].pid {
                if self.frames[idx].dirty {
                    self.disk
                        .write(pid.area, pid.page, &self.frames[idx].data[..]);
                    self.frames[idx].dirty = false;
                    lobstore_obs::counter_add("bufpool.dirty_writebacks", 1);
                }
            }
        }
    }

    /// Drop `pid` from the pool without writing it back — used when the
    /// page has been freed or superseded by a shadow copy.
    ///
    /// # Panics
    /// If the page is currently fixed.
    pub fn discard(&mut self, pid: PageId) {
        if let Some(idx) = self.map.remove(&pid) {
            let f = &mut self.frames[idx];
            assert_eq!(f.pins, 0, "discard of a fixed page {pid}");
            f.pid = None;
            f.dirty = false;
        }
    }

    /// Simulate a crash: every frame is discarded **without** write-back,
    /// as if the machine lost power. Dirty, unflushed state is gone; only
    /// what reached the disk survives. Used by recovery tests to verify
    /// the shadowing discipline of the storage managers (§3.3).
    ///
    /// # Panics
    /// If any frame is still fixed (a fixed frame mid-crash would be a
    /// harness bug, not a simulated condition).
    pub fn crash(&mut self) {
        for f in &mut self.frames {
            assert_eq!(f.pins, 0, "crash with a fixed frame");
            f.pid = None;
            f.dirty = false;
            f.last_used = 0;
        }
        self.map.clear();
    }

    /// Cost-free inspection of a page's *current* content: the resident
    /// frame if any (even dirty), else the disk copy. For verification and
    /// metrics code only — never part of the simulated I/O stream.
    pub fn peek_page(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) {
        if let Some(&idx) = self.map.get(&pid) {
            out.copy_from_slice(&self.frames[idx].data[..]);
        } else {
            self.disk.peek(pid.area, pid.page, out);
        }
    }

    /// Discard every resident page of an extent (used when a whole segment
    /// is freed).
    pub fn discard_range(&mut self, area: lobstore_simdisk::AreaId, start: u32, pages: u32) {
        for p in start..start.saturating_add(pages) {
            self.discard(PageId::new(area, p));
        }
    }

    /// Fix `pid` and return a read guard: derefs to the page bytes and
    /// releases the fix when dropped. Callers borrow the frame in place
    /// instead of copying the page out.
    pub fn guard(&mut self, pid: PageId) -> PageGuard<'_> {
        let r = self.fix(pid);
        PageGuard { pool: self, r }
    }

    /// Fix `pid` and return a write guard; mutable access marks the page
    /// dirty, exactly as [`Self::page_mut`] does.
    pub fn guard_mut(&mut self, pid: PageId) -> PageGuardMut<'_> {
        let r = self.fix(pid);
        PageGuardMut { pool: self, r }
    }

    /// Like [`Self::guard_mut`] but over [`Self::fix_new`]: no disk read,
    /// the frame starts zeroed and dirty.
    pub fn guard_new(&mut self, pid: PageId) -> PageGuardMut<'_> {
        let r = self.fix_new(pid);
        PageGuardMut { pool: self, r }
    }
}

/// RAII read access to one fixed page. Created by [`BufferPool::guard`];
/// the fix is released on drop, so the borrow checker — not caller
/// discipline — guarantees every fix is paired with an unfix.
pub struct PageGuard<'a> {
    pool: &'a mut BufferPool,
    r: FrameRef,
}

impl std::ops::Deref for PageGuard<'_> {
    type Target = [u8; PAGE_SIZE];
    fn deref(&self) -> &Self::Target {
        self.pool.page(self.r)
    }
}

impl Drop for PageGuard<'_> {
    fn drop(&mut self) {
        self.pool.unfix(self.r);
    }
}

/// RAII write access to one fixed page (see [`BufferPool::guard_mut`]).
/// Shared derefs do not dirty the page; mutable derefs do.
pub struct PageGuardMut<'a> {
    pool: &'a mut BufferPool,
    r: FrameRef,
}

impl std::ops::Deref for PageGuardMut<'_> {
    type Target = [u8; PAGE_SIZE];
    fn deref(&self) -> &Self::Target {
        self.pool.page(self.r)
    }
}

impl std::ops::DerefMut for PageGuardMut<'_> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        self.pool.page_mut(self.r)
    }
}

impl Drop for PageGuardMut<'_> {
    fn drop(&mut self) {
        self.pool.unfix(self.r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobstore_simdisk::{AreaId, CostModel, SimDisk};

    fn pool_with_frames(n: usize) -> BufferPool {
        BufferPool::new(
            SimDisk::new(2, CostModel::default()),
            PoolConfig {
                frames: n,
                max_buffered_seg: 4,
            },
        )
    }

    fn pid(p: u32) -> PageId {
        PageId::new(AreaId::META, p)
    }

    #[test]
    fn fix_miss_reads_one_page() {
        let mut pool = pool_with_frames(4);
        let r = pool.fix(pid(3));
        pool.unfix(r);
        assert_eq!(pool.io_stats().read_calls, 1);
        assert_eq!(pool.io_stats().pages_read, 1);
        assert_eq!(pool.pool_stats().misses, 1);
    }

    #[test]
    fn fix_hit_costs_nothing() {
        let mut pool = pool_with_frames(4);
        let r = pool.fix(pid(3));
        pool.unfix(r);
        let before = pool.io_stats();
        let r = pool.fix(pid(3));
        pool.unfix(r);
        assert_eq!(pool.io_stats(), before);
        assert_eq!(pool.pool_stats().hits, 1);
    }

    #[test]
    fn dirty_page_written_back_on_eviction() {
        let mut pool = pool_with_frames(2);
        // Dirty both frames so eviction has no clean victim.
        for p in 0..2 {
            let r = pool.fix(pid(p));
            pool.page_mut(r)[0] = 0xAB;
            pool.unfix(r);
        }
        let r = pool.fix(pid(2));
        pool.unfix(r);
        assert!(!pool.contains(pid(0)), "LRU dirty page evicted");
        assert_eq!(pool.pool_stats().eviction_writes, 1);
        let mut out = [0u8; 1];
        pool.disk().peek(AreaId::META, 0, &mut out);
        assert_eq!(out[0], 0xAB);
    }

    #[test]
    fn clean_pages_evicted_before_dirty() {
        let mut pool = pool_with_frames(2);
        // Frame A: dirty, older.
        let ra = pool.fix(pid(0));
        pool.page_mut(ra)[0] = 1;
        pool.unfix(ra);
        // Frame B: clean, newer.
        let rb = pool.fix(pid(1));
        pool.unfix(rb);
        // Need a victim: the clean page 1 must go even though page 0 is LRU.
        let rc = pool.fix(pid(2));
        pool.unfix(rc);
        assert!(pool.contains(pid(0)), "dirty page should survive");
        assert!(!pool.contains(pid(1)), "clean page should be evicted first");
        assert_eq!(pool.pool_stats().eviction_writes, 0);
    }

    #[test]
    fn pinned_pages_are_never_evicted() {
        let mut pool = pool_with_frames(2);
        let ra = pool.fix(pid(0)); // keep pinned
        let rb = pool.fix(pid(1));
        pool.unfix(rb);
        let rc = pool.fix(pid(2));
        pool.unfix(rc);
        assert!(pool.contains(pid(0)));
        pool.unfix(ra);
    }

    #[test]
    #[should_panic(expected = "every frame is pinned")]
    fn exhausted_pool_panics() {
        let mut pool = pool_with_frames(2);
        let _a = pool.fix(pid(0));
        let _b = pool.fix(pid(1));
        let _c = pool.fix(pid(2));
    }

    #[test]
    fn fix_new_skips_disk_read_and_is_dirty() {
        let mut pool = pool_with_frames(4);
        let r = pool.fix_new(pid(9));
        pool.page_mut(r)[0] = 7;
        pool.unfix(r);
        assert_eq!(pool.io_stats().read_calls, 0);
        pool.flush_page(pid(9));
        assert_eq!(pool.io_stats().write_calls, 1);
        // Second flush is a no-op: the page is now clean.
        pool.flush_page(pid(9));
        assert_eq!(pool.io_stats().write_calls, 1);
    }

    #[test]
    fn discard_drops_without_writeback() {
        let mut pool = pool_with_frames(4);
        let r = pool.fix_new(pid(5));
        pool.page_mut(r)[0] = 9;
        pool.unfix(r);
        pool.discard(pid(5));
        assert!(!pool.contains(pid(5)));
        assert_eq!(pool.io_stats().write_calls, 0);
        let mut out = [0u8; 1];
        pool.disk().peek(AreaId::META, 5, &mut out);
        assert_eq!(out[0], 0, "discarded content must not reach disk");
    }

    #[test]
    fn flush_all_writes_every_dirty_frame() {
        let mut pool = pool_with_frames(4);
        for p in 0..3 {
            let r = pool.fix_new(pid(p));
            pool.page_mut(r)[0] = p as u8 + 1;
            pool.unfix(r);
        }
        pool.flush_all();
        assert_eq!(pool.io_stats().write_calls, 3);
        pool.flush_all(); // everything clean now
        assert_eq!(pool.io_stats().write_calls, 3);
    }

    #[test]
    fn scripted_pattern_pins_hit_miss_eviction_counts() {
        // 3-frame pool, scripted page sequence. Every outcome is forced
        // by LRU, so the exact hit/miss/eviction counts are pinned here
        // and in the obs registry.
        lobstore_obs::reset();
        let mut pool = pool_with_frames(3);
        // Phase 1 — cold: fix 0,1,2 → 3 misses, pool now [0,1,2].
        for p in 0..3 {
            let r = pool.fix(pid(p));
            pool.unfix(r);
        }
        // Phase 2 — warm: fix 0,1,2 again, dirtying each → 3 hits, no
        // clean frame left.
        for p in 0..3 {
            let r = pool.fix(pid(p));
            pool.page_mut(r)[0] = 0xE0 | p as u8;
            pool.unfix(r);
        }
        // Phase 3 — fix 3: miss, and with every frame dirty the LRU dirty
        // page 0 is evicted with a writeback. Pool: [3,1,2].
        let r = pool.fix(pid(3));
        pool.unfix(r);
        // Phase 4 — fix 1: hit. Fix 0: miss; page 3 is the only clean
        // frame, so it is evicted without a writeback, and the re-read
        // page 0 comes back with the content written in phase 2.
        let r = pool.fix(pid(1));
        pool.unfix(r);
        let r = pool.fix(pid(0));
        assert_eq!(pool.page(r)[0], 0xE0, "writeback survived the round trip");
        pool.unfix(r);
        assert!(!pool.contains(pid(3)), "clean page 3 was the victim");
        let s = pool.pool_stats();
        assert_eq!(s.hits, 4);
        assert_eq!(s.misses, 5);
        assert_eq!(s.eviction_writes, 1, "only the dirty page 0 wrote back");
        // The obs registry mirrors PoolStats and derives the hit ratio.
        assert_eq!(lobstore_obs::counter_value("bufpool.hits"), 4);
        assert_eq!(lobstore_obs::counter_value("bufpool.misses"), 5);
        assert_eq!(lobstore_obs::counter_value("bufpool.eviction_writes"), 1);
        assert_eq!(lobstore_obs::counter_value("bufpool.dirty_writebacks"), 1);
        let ratio = lobstore_obs::gauge_value("bufpool.hit_ratio").unwrap();
        assert!(
            (ratio - 4.0 / 9.0).abs() < 1e-12,
            "4 hits / 9 fixes, got {ratio}"
        );
    }

    #[test]
    fn explicit_flushes_count_dirty_writebacks() {
        lobstore_obs::reset();
        let mut pool = pool_with_frames(4);
        for p in 0..2 {
            let r = pool.fix_new(pid(p));
            pool.page_mut(r)[0] = 1;
            pool.unfix(r);
        }
        pool.flush_page(pid(0));
        assert_eq!(lobstore_obs::counter_value("bufpool.dirty_writebacks"), 1);
        pool.flush_page(pid(0)); // clean now: no-op
        assert_eq!(lobstore_obs::counter_value("bufpool.dirty_writebacks"), 1);
        pool.flush_all(); // page 1 still dirty
        assert_eq!(lobstore_obs::counter_value("bufpool.dirty_writebacks"), 2);
        assert_eq!(lobstore_obs::counter_value("bufpool.eviction_writes"), 0);
    }

    #[test]
    fn guards_release_their_fix_on_drop() {
        let mut pool = pool_with_frames(2);
        {
            let mut g = pool.guard_new(pid(7));
            g[0] = 0x42;
            assert_eq!(g[0], 0x42);
        } // drop releases the pin
        assert_eq!(pool.available_frames(), 2, "no pin left behind");
        let g = pool.guard(pid(7));
        assert_eq!(g[0], 0x42);
        drop(g);
        // The dirty bit set through the write guard reaches disk.
        pool.flush_page(pid(7));
        let mut out = [0u8; PAGE_SIZE];
        pool.disk()
            .peek(lobstore_simdisk::AreaId::META, 7, &mut out);
        assert_eq!(out[0], 0x42);
    }

    #[test]
    fn read_guard_does_not_dirty_the_page() {
        let mut pool = pool_with_frames(2);
        let g = pool.guard(pid(1));
        assert_eq!(g[0], 0);
        drop(g);
        pool.flush_page(pid(1));
        assert_eq!(pool.io_stats().write_calls, 0, "clean page never written");
    }

    #[test]
    fn install_clean_is_pinned_resident_and_clean() {
        let mut pool = pool_with_frames(2);
        let content = [0x5Au8; PAGE_SIZE];
        let r = pool.install_clean(pid(3), &content);
        assert_eq!(pool.page(r)[100], 0x5A);
        assert!(pool.contains(pid(3)));
        pool.unfix(r);
        pool.flush_page(pid(3));
        assert_eq!(pool.io_stats().write_calls, 0, "installed page is clean");
        // No read was charged either: content came from the caller.
        assert_eq!(pool.io_stats().read_calls, 0);
    }

    #[test]
    fn lru_order_updated_on_hit() {
        let mut pool = pool_with_frames(2);
        let ra = pool.fix(pid(0));
        pool.unfix(ra);
        let rb = pool.fix(pid(1));
        pool.unfix(rb);
        // Touch page 0 so page 1 becomes LRU.
        let ra = pool.fix(pid(0));
        pool.unfix(ra);
        let rc = pool.fix(pid(2));
        pool.unfix(rc);
        assert!(pool.contains(pid(0)));
        assert!(!pool.contains(pid(1)));
    }
}
