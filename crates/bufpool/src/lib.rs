//! Buffer manager for large-object storage (§3.2 of Biliris SIGMOD '92).
//!
//! The paper's buffering scheme is a *hybrid*:
//!
//! * page-level `fix`/`unfix` with a small pool (12 pages in the study),
//!   LRU replacement that frees least-recently-used **clean** pages before
//!   resorting to dirty ones (which must be written back);
//! * multi-page segment reads of up to a configurable limit (4 pages in
//!   the study) are read **in one I/O call** into contiguous pool frames;
//! * larger segments bypass the pool entirely and are copied from disk
//!   directly into the caller's space — with the **3-step I/O** of Figure 4
//!   when the requested byte range does not match page boundaries: the
//!   partial first and last pages are staged through the pool while the
//!   interior pages go straight to the caller's buffer.
//!
//! The pool owns the [`SimDisk`](lobstore_simdisk::SimDisk); every layer
//! above performs I/O through it, so the disk's
//! [`IoStats`](lobstore_simdisk::IoStats) capture the complete simulated
//! cost.
#![forbid(unsafe_code)]

mod frame;
mod pool;
mod segio;

pub use pool::{BufferPool, FrameRef, PageGuard, PageGuardMut, PoolConfig, PoolStats};
