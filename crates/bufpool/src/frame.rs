//! Pool frames: one page-sized buffer plus its control block.

use lobstore_simdisk::{PageId, PAGE_SIZE};

/// One buffer frame and its control information.
pub(crate) struct Frame {
    /// The page currently held, if any.
    pub pid: Option<PageId>,
    pub data: Box<[u8; PAGE_SIZE]>,
    /// Whether the frame content is newer than the disk copy.
    pub dirty: bool,
    /// Fix count; a fixed frame is never evicted.
    pub pins: u32,
    /// Logical timestamp of the last use, for LRU.
    pub last_used: u64,
}

impl Frame {
    /// A frame holding no page.
    pub fn empty() -> Self {
        Frame {
            pid: None,
            data: Box::new([0u8; PAGE_SIZE]),
            dirty: false,
            pins: 0,
            last_used: 0,
        }
    }

    /// Whether the frame holds no page.
    pub fn is_free(&self) -> bool {
        self.pid.is_none()
    }
}
