//! Frame control blocks: the replacement metadata of one pool frame.
//!
//! The page *bytes* no longer live here — they sit in the sharded page
//! store ([`crate::pool::BufferPool`]'s latched shards) so readers of
//! different pages never serialize on one big pool borrow. What remains
//! is the control information the replacement policy needs, all of it
//! guarded by the single pool control-block mutex.

use lobstore_simdisk::PageId;

/// Control information of one buffer frame.
pub(crate) struct FrameMeta {
    /// The page currently held, if any.
    pub pid: Option<PageId>,
    /// Whether the frame content is newer than the disk copy.
    pub dirty: bool,
    /// Fix count; a fixed frame is never evicted.
    pub pins: u32,
    /// Logical timestamp of the last use, for LRU.
    pub last_used: u64,
}

impl FrameMeta {
    /// A frame holding no page.
    pub fn empty() -> Self {
        FrameMeta {
            pid: None,
            dirty: false,
            pins: 0,
            last_used: 0,
        }
    }

    /// Whether the frame holds no page.
    pub fn is_free(&self) -> bool {
        self.pid.is_none()
    }
}
