//! Property-based checking of the hybrid segment-I/O paths: arbitrary
//! interleavings of byte-range reads, direct writes, page fixes, and
//! flushes must always return exactly the bytes of a reference model,
//! regardless of which path (buffered / direct / 3-step) each request
//! takes and what the pool happens to hold.

use lobstore_bufpool::{BufferPool, PoolConfig};
use lobstore_simdisk::{AreaId, CostModel, PageId, SimDisk, PAGE_SIZE};
use proptest::prelude::*;

const AREA: AreaId = AreaId(0);
/// Model a 24-page segment region.
const REGION_PAGES: usize = 24;
const REGION: usize = REGION_PAGES * PAGE_SIZE;

#[derive(Clone, Debug)]
enum Op {
    /// Byte-range read at (offset, len) within the region.
    Read { off: usize, len: usize },
    /// Direct write of a page-aligned run.
    WriteDirect { page: usize, pages: usize, fill: u8 },
    /// Fix a page, poke one byte through the pool, unfix.
    PokeViaPool { page: usize, at: usize, val: u8 },
    /// Flush a page range.
    FlushRange { page: usize, pages: usize },
    /// Flush everything.
    FlushAll,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0usize..REGION - 1, 1usize..40_000)
            .prop_map(|(off, len)| Op::Read { off, len }),
        2 => (0usize..REGION_PAGES - 1, 1usize..8, any::<u8>())
            .prop_map(|(page, pages, fill)| Op::WriteDirect { page, pages, fill }),
        2 => (0usize..REGION_PAGES, 0usize..PAGE_SIZE, any::<u8>())
            .prop_map(|(page, at, val)| Op::PokeViaPool { page, at, val }),
        1 => (0usize..REGION_PAGES - 1, 1usize..6)
            .prop_map(|(page, pages)| Op::FlushRange { page, pages }),
        1 => Just(Op::FlushAll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn hybrid_io_always_reads_current_bytes(ops in prop::collection::vec(op_strategy(), 1..50)) {
        let pool = BufferPool::new(
            SimDisk::new(1, CostModel::default()),
            PoolConfig { frames: 6, max_buffered_seg: 4 },
        );
        // Reference model of the region's current logical content.
        let mut model = vec![0u8; REGION];
        // Seed with a pattern.
        for (i, b) in model.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        pool.disk().poke(AREA, 0, &model.clone());

        for op in ops {
            match op {
                Op::Read { off, len } => {
                    let len = len.min(REGION - off);
                    let mut out = vec![0u8; len];
                    pool.read_segment(AREA, 0, off as u64, &mut out);
                    prop_assert_eq!(&out[..], &model[off..off + len],
                        "read {}+{} diverged", off, len);
                }
                Op::WriteDirect { page, pages, fill } => {
                    let pages = pages.min(REGION_PAGES - page);
                    let data = vec![fill; pages * PAGE_SIZE];
                    pool.write_direct(AREA, page as u32, &data);
                    model[page * PAGE_SIZE..(page + pages) * PAGE_SIZE]
                        .copy_from_slice(&data);
                }
                Op::PokeViaPool { page, at, val } => {
                    let r = pool.fix(PageId::new(AREA, page as u32));
                    pool.with_page_mut(r, |p| p[at] = val);
                    pool.unfix(r);
                    model[page * PAGE_SIZE + at] = val;
                }
                Op::FlushRange { page, pages } => {
                    let pages = pages.min(REGION_PAGES - page);
                    pool.flush_range(AREA, page as u32, pages as u32);
                }
                Op::FlushAll => pool.flush_all(),
            }
        }
        // Final flush: disk must equal the model exactly.
        pool.flush_all();
        let mut disk_bytes = vec![0u8; REGION];
        pool.disk().peek(AREA, 0, &mut disk_bytes);
        prop_assert_eq!(disk_bytes, model);
    }
}
