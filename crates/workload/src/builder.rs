//! Object construction by successive appends (§4.2).

use lobstore_core::{Db, LargeObject, Result};
use lobstore_simdisk::IoStats;

use crate::fill_bytes;

/// Outcome of a build run.
#[derive(Clone, Debug)]
pub struct BuildReport {
    /// Final object size in bytes.
    pub object_bytes: u64,
    /// Bytes appended per call.
    pub append_bytes: usize,
    /// Number of append calls issued.
    pub appends: usize,
    /// Total I/O of the build (including the final trim, if any).
    pub io: IoStats,
}

impl BuildReport {
    /// Build time in seconds — the Figure 5 metric.
    pub fn seconds(&self) -> f64 {
        self.io.time_s()
    }
}

/// Build `total_bytes` of object content by appending `append_bytes` at a
/// time ("the expected way of creating large objects", §1). The final
/// partial chunk (if any) is appended too, and the object is trimmed so
/// build-time over-allocation does not linger into later experiments.
pub fn build_by_appends(
    db: &mut Db,
    obj: &mut dyn LargeObject,
    total_bytes: u64,
    append_bytes: usize,
) -> Result<BuildReport> {
    assert!(append_bytes > 0, "zero-byte appends never finish");
    let before = db.io_stats();
    let mut chunk = vec![0u8; append_bytes];
    let mut written = 0u64;
    let mut appends = 0usize;
    while written < total_bytes {
        let n = ((total_bytes - written) as usize).min(append_bytes);
        fill_bytes(&mut chunk[..n], written ^ 0xB10B);
        obj.append(db, &chunk[..n])?;
        written += n as u64;
        appends += 1;
    }
    obj.trim(db)?;
    lobstore_obs::counter_add("workload.build.appends", appends as u64);
    lobstore_obs::counter_add("workload.build.bytes", total_bytes);
    Ok(BuildReport {
        object_bytes: total_bytes,
        append_bytes,
        appends,
        io: db.io_stats() - before,
    })
}

/// Convenience: create an object from a spec and build it in one call.
pub fn build_object(
    db: &mut Db,
    spec: &crate::ManagerSpec,
    total_bytes: u64,
    append_bytes: usize,
) -> Result<(Box<dyn LargeObject>, BuildReport)> {
    let mut obj = spec.create(db)?;
    let report = build_by_appends(db, obj.as_mut(), total_bytes, append_bytes)?;
    Ok((obj, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ManagerSpec;

    #[test]
    fn builds_exact_size_for_all_managers() {
        for spec in [
            ManagerSpec::esm(1),
            ManagerSpec::esm(4),
            ManagerSpec::starburst(),
            ManagerSpec::eos(4),
        ] {
            let mut db = Db::paper_default();
            let (obj, rep) = build_object(&mut db, &spec, 100_000, 3 * 1024).unwrap();
            assert_eq!(obj.size(&mut db), 100_000, "{}", spec.label());
            assert_eq!(rep.appends, 33); // ceil(100000 / 3072)
            assert!(rep.io.time_us > 0);
            obj.check_invariants(&db).unwrap();
        }
    }

    #[test]
    fn larger_appends_build_faster() {
        let run = |append: usize| {
            let mut db = Db::paper_default();
            let (_, rep) =
                build_object(&mut db, &ManagerSpec::starburst(), 1 << 20, append).unwrap();
            rep.seconds()
        };
        let small = run(3 * 1024);
        let large = run(64 * 1024);
        assert!(
            large < small,
            "64K appends ({large:.1}s) should beat 3K appends ({small:.1}s)"
        );
    }

    #[test]
    fn exact_fit_beats_mismatch_for_esm_one_page_leaves() {
        // The Figure 5 sawtooth: 4K appends into 1-page leaves are much
        // cheaper than 3K or 5K appends.
        let run = |append: usize| {
            let mut db = Db::paper_default();
            let (_, rep) = build_object(&mut db, &ManagerSpec::esm(1), 1 << 20, append).unwrap();
            rep.seconds()
        };
        let k3 = run(3 * 1024);
        let k4 = run(4 * 1024);
        let k5 = run(5 * 1024);
        assert!(k4 < k3, "4K ({k4:.2}s) must beat 3K ({k3:.2}s)");
        assert!(k4 < k5, "4K ({k4:.2}s) must beat 5K ({k5:.2}s)");
    }

    #[test]
    fn build_cost_is_linear_in_object_size() {
        let run = |bytes: u64| {
            let mut db = Db::paper_default();
            let (_, rep) = build_object(&mut db, &ManagerSpec::eos(4), bytes, 16 * 1024).unwrap();
            rep.seconds()
        };
        let one = run(1 << 20);
        let four = run(4 << 20);
        let ratio = four / one;
        assert!(
            (3.0..5.0).contains(&ratio),
            "4 MB / 1 MB build-time ratio {ratio:.2} should be ≈4"
        );
    }
}
