//! Workload generators and experiment drivers for the SIGMOD '92
//! evaluation (§4).
//!
//! Three drivers cover the paper's experiments:
//!
//! * [`build_by_appends`] — create an object by successive fixed-size
//!   appends (§4.2, Figure 5);
//! * [`sequential_scan`] — read the whole object front to back in
//!   fixed-size chunks (§4.3, Figure 6);
//! * [`MixedWorkload`] — the §4.4 update mix: 40 % reads, 30 % inserts,
//!   30 % deletes, sizes varied ±50 % about a mean, positions uniform
//!   over the object, each delete sized like the previous insert so the
//!   object size stays stable. Average per-operation I/O costs and the
//!   storage utilization are sampled at regular *marks* (every 2000
//!   operations in the paper's figures).
//!
//! All costs come from the simulated disk ([`lobstore_simdisk::IoStats`]
//! deltas), so runs are deterministic given a seed.

mod builder;
mod churn;
mod mixed;
mod scanner;

pub use builder::{build_by_appends, build_object, BuildReport};
pub use churn::{ChurnConfig, ChurnMark, ChurnReport, ChurnWorkload};
pub use lobstore_core::ManagerSpec;
pub use mixed::{Mark, MixedConfig, MixedReport, MixedWorkload, OpKind};
pub use scanner::{random_reads, sequential_scan, stream_scan, ScanReport};

/// Deterministic filler bytes for generated workloads: cheap to produce
/// and distinctive enough that content bugs surface in tests.
pub fn fill_bytes(buf: &mut [u8], seed: u64) {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for chunk in buf.chunks_mut(8) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let b = x.to_le_bytes();
        chunk.copy_from_slice(&b[..chunk.len()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_bytes_is_deterministic_and_varied() {
        let mut a = vec![0u8; 1000];
        let mut b = vec![0u8; 1000];
        fill_bytes(&mut a, 7);
        fill_bytes(&mut b, 7);
        assert_eq!(a, b);
        fill_bytes(&mut b, 8);
        assert_ne!(a, b);
        // Not constant.
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }
}
