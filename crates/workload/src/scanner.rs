//! Sequential scans (§4.3) and standalone random-read probes.

use lobstore_core::{Db, LargeObject, Result};
use lobstore_simdisk::IoStats;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of a scan or read-probe run.
#[derive(Clone, Debug)]
pub struct ScanReport {
    /// Bytes read in total.
    pub bytes: u64,
    /// Number of read calls issued.
    pub reads: usize,
    /// Total I/O cost.
    pub io: IoStats,
}

impl ScanReport {
    pub fn seconds(&self) -> f64 {
        self.io.time_s()
    }

    /// Average cost per read operation, in milliseconds.
    pub fn avg_read_ms(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.io.time_ms() / self.reads as f64
        }
    }
}

/// Read the entire object front to back in `chunk_bytes` pieces — the
/// Figure 6 experiment.
pub fn sequential_scan(
    db: &mut Db,
    obj: &dyn LargeObject,
    chunk_bytes: usize,
) -> Result<ScanReport> {
    assert!(chunk_bytes > 0);
    let size = {
        // Cheap: size read is part of normal operation.
        let u = obj.utilization(db);
        u.object_bytes
    };
    let before = db.io_stats();
    let mut buf = vec![0u8; chunk_bytes];
    let mut at = 0u64;
    let mut reads = 0usize;
    while at < size {
        let n = ((size - at) as usize).min(chunk_bytes);
        obj.read(db, at, &mut buf[..n])?;
        at += n as u64;
        reads += 1;
    }
    lobstore_obs::counter_add("workload.scan.reads", reads as u64);
    lobstore_obs::counter_add("workload.scan.bytes", size);
    Ok(ScanReport {
        bytes: size,
        reads,
        io: db.io_stats() - before,
    })
}

/// Read the entire object front to back in `chunk_bytes` pieces through
/// the streaming [`lobstore_core::ObjectReader`] — the "play the
/// recording" access pattern of §1, where a client consumes the object
/// like a file rather than issuing byte-range reads itself. Consumes
/// through the zero-copy `BufRead` surface: at most `chunk_bytes` per
/// iteration, borrowed straight from the reader's read-ahead buffer.
pub fn stream_scan(db: &mut Db, obj: &dyn LargeObject, chunk_bytes: usize) -> Result<ScanReport> {
    use std::io::BufRead as _;
    assert!(chunk_bytes > 0);
    let before = db.io_stats();
    let mut reader = lobstore_core::ObjectReader::new(db, obj);
    let mut bytes = 0u64;
    let mut reads = 0usize;
    loop {
        let avail = reader
            .fill_buf()
            .map_err(|e| lobstore_core::LobError::InvariantViolated(e.to_string()))?
            .len();
        if avail == 0 {
            break;
        }
        let n = avail.min(chunk_bytes);
        reader.consume(n);
        bytes += n as u64;
        reads += 1;
    }
    lobstore_obs::counter_add("workload.stream_scan.reads", reads as u64);
    lobstore_obs::counter_add("workload.stream_scan.bytes", bytes);
    Ok(ScanReport {
        bytes,
        reads,
        io: db.io_stats() - before,
    })
}

/// Issue `count` random reads whose sizes vary ±50 % about
/// `mean_bytes`, uniformly positioned — the standalone version of the
/// §4.4.2 read probe (used for Table 2, where the structure does not
/// degrade between reads).
pub fn random_reads(
    db: &mut Db,
    obj: &dyn LargeObject,
    count: usize,
    mean_bytes: u64,
    seed: u64,
) -> Result<ScanReport> {
    let size = obj.utilization(db).object_bytes;
    let mut rng = StdRng::seed_from_u64(seed);
    let before = db.io_stats();
    let mut buf = vec![0u8; (mean_bytes + mean_bytes / 2) as usize + 1];
    let mut bytes = 0u64;
    for _ in 0..count {
        let len = sample_op_size(&mut rng, mean_bytes).min(size.max(1));
        let max_start = size.saturating_sub(len);
        let off = if max_start == 0 {
            0
        } else {
            rng.gen_range(0..=max_start)
        };
        obj.read(db, off, &mut buf[..len as usize])?;
        bytes += len;
    }
    lobstore_obs::counter_add("workload.random.reads", count as u64);
    lobstore_obs::counter_add("workload.random.bytes", bytes);
    Ok(ScanReport {
        bytes,
        reads: count,
        io: db.io_stats() - before,
    })
}

/// The paper's operation-size distribution: uniform in
/// `[mean/2, 3·mean/2]` ("varied ±50 % about the mean", §4.4),
/// never zero.
pub(crate) fn sample_op_size(rng: &mut StdRng, mean: u64) -> u64 {
    let lo = (mean / 2).max(1);
    let hi = mean + mean / 2;
    rng.gen_range(lo..=hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_object, ManagerSpec};

    #[test]
    fn scan_reads_every_byte() {
        let mut db = Db::paper_default();
        let (obj, _) = build_object(&mut db, &ManagerSpec::eos(4), 300_000, 8 * 1024).unwrap();
        let rep = sequential_scan(&mut db, obj.as_ref(), 10_000).unwrap();
        assert_eq!(rep.bytes, 300_000);
        assert_eq!(rep.reads, 30);
        assert!(rep.io.pages_read >= 74, "at least ceil(300000/4096) pages");
    }

    #[test]
    fn bigger_chunks_scan_faster() {
        let run = |chunk: usize| {
            let mut db = Db::paper_default();
            let (obj, _) =
                build_object(&mut db, &ManagerSpec::starburst(), 1 << 20, chunk).unwrap();
            sequential_scan(&mut db, obj.as_ref(), chunk)
                .unwrap()
                .seconds()
        };
        assert!(run(128 * 1024) < run(4 * 1024));
    }

    #[test]
    fn scan_cost_approaches_transfer_rate() {
        // §4.3: with 1 KB/ms transfer, a 1 MB object takes ≥ ~1.0 s; big
        // scans should be within ~2× of that bound.
        let mut db = Db::paper_default();
        let (obj, _) =
            build_object(&mut db, &ManagerSpec::starburst(), 1 << 20, 512 * 1024).unwrap();
        let rep = sequential_scan(&mut db, obj.as_ref(), 512 * 1024).unwrap();
        let floor = 1.024; // 1 MB / (1 KB/ms)
        assert!(
            rep.seconds() < 2.0 * floor,
            "scan took {:.2}s",
            rep.seconds()
        );
        assert!(rep.seconds() >= floor);
    }

    #[test]
    fn random_reads_cost_matches_table_2_shape() {
        let mut db = Db::paper_default();
        let (mut obj, _) =
            build_object(&mut db, &ManagerSpec::starburst(), 1 << 20, 100 * 1024).unwrap();
        // Force the steady state: one update rewrites into max segments.
        obj.insert(&mut db, 500, b"!").unwrap();
        let small = random_reads(&mut db, obj.as_ref(), 200, 100, 1).unwrap();
        // 100-byte reads: almost always one page, one seek → ≈37 ms
        // (slightly less here: on a 1 MB object a few reads hit the pool).
        assert!(
            (33.0..43.0).contains(&small.avg_read_ms()),
            "100-byte read cost {:.1} ms",
            small.avg_read_ms()
        );
        let big = random_reads(&mut db, obj.as_ref(), 100, 100 * 1024, 2).unwrap();
        assert!(
            big.avg_read_ms() > 150.0,
            "100K read cost {:.1} ms",
            big.avg_read_ms()
        );
    }

    #[test]
    fn op_sizes_are_within_half_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let s = sample_op_size(&mut rng, 10_000);
            assert!((5_000..=15_000).contains(&s));
        }
        // Tiny means never produce zero.
        for _ in 0..100 {
            assert!(sample_op_size(&mut rng, 1) >= 1);
        }
    }
}
