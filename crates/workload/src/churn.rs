//! Long-horizon create/delete/append churn — the aging workload.
//!
//! The paper measures a 2 000-op mixed workload on one object; what it
//! cannot show is how the *store* degrades over months of object
//! turnover (Sears & van Ingen: fragmentation under churn, not
//! steady-state throughput, determines long-horizon performance). This
//! driver keeps a pool of live objects and continuously destroys,
//! recreates, appends to, deletes from, and reads them, so freed extents
//! interleave with new allocations and external fragmentation can
//! actually develop. At every mark it records allocator and object
//! health ([`Db::sample_health`], [`lobstore_core::object_health`]) —
//! the fragmentation-over-time curves of the `aging` bench.

use lobstore_core::{
    object_health, publish_object_health, Db, LargeObject, ManagerSpec, ObjectHealth, Result,
};
use lobstore_simdisk::IoStats;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fill_bytes;
use crate::scanner::sample_op_size;

/// Parameters of a churn run.
#[derive(Copy, Clone, Debug)]
pub struct ChurnConfig {
    /// Total churn operations.
    pub ops: usize,
    /// Record a health mark every this many operations.
    pub mark_every: usize,
    /// Mean append/delete size in bytes (varied ±50 %).
    pub mean_op_bytes: u64,
    /// Live-object pool size the run maintains.
    pub objects: usize,
    /// Initial size of each pooled object (recreations vary ±50 %).
    pub initial_object_bytes: u64,
    /// RNG seed; runs are deterministic given the seed.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            ops: 10_000,
            mark_every: 2_000,
            mean_op_bytes: 10_000,
            objects: 8,
            initial_object_bytes: 256 * 1024,
            seed: 0xA61_0B5,
        }
    }
}

/// One health mark: allocator fragmentation plus pooled-object health.
#[derive(Copy, Clone, Debug)]
pub struct ChurnMark {
    /// Churn operations completed at this mark.
    pub ops_done: usize,
    /// LEAF-area external fragmentation (`FragStats::frag_ratio`).
    pub frag_ratio: f64,
    /// Longest free LEAF run, in pages.
    pub largest_free_run: u32,
    /// Free LEAF pages.
    pub free_pages: u64,
    /// LEAF-area utilization (allocated / total).
    pub leaf_utilization: f64,
    /// Mean extent contiguity over the live objects.
    pub contiguity: f64,
    /// Mean object-level utilization over the live objects.
    pub object_utilization: f64,
    /// Live objects at the mark.
    pub live_objects: usize,
}

/// Full outcome of a churn run.
pub struct ChurnReport {
    pub marks: Vec<ChurnMark>,
    pub total_io: IoStats,
    pub creates: usize,
    pub destroys: usize,
    pub appends: usize,
    pub deletes: usize,
    pub reads: usize,
}

/// Driver state for one churn run.
pub struct ChurnWorkload {
    rng: StdRng,
    cfg: ChurnConfig,
}

impl ChurnWorkload {
    pub fn new(cfg: ChurnConfig) -> Self {
        assert!(cfg.ops > 0 && cfg.mark_every > 0 && cfg.objects > 0);
        ChurnWorkload {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
        }
    }

    /// Run the churn against a fresh pool of `spec` objects, returning
    /// the surviving pool (for post-aging scans) and the report.
    pub fn run(
        &mut self,
        db: &mut Db,
        spec: &ManagerSpec,
    ) -> Result<(Vec<Box<dyn LargeObject>>, ChurnReport)> {
        let run_start = db.io_stats();
        let mut pool: Vec<Box<dyn LargeObject>> = Vec::with_capacity(self.cfg.objects);
        let mut counts = ChurnReport {
            marks: Vec::with_capacity(self.cfg.ops / self.cfg.mark_every),
            total_io: IoStats::default(),
            creates: 0,
            destroys: 0,
            appends: 0,
            deletes: 0,
            reads: 0,
        };
        for i in 0..self.cfg.objects {
            let obj = self.build_one(db, spec, (i as u64) << 32)?;
            pool.push(obj);
            counts.creates += 1;
        }
        let mut buf = vec![0u8; (self.cfg.mean_op_bytes + self.cfg.mean_op_bytes / 2) as usize + 1];

        for op_no in 1..=self.cfg.ops {
            let victim = self.rng.gen_range(0..pool.len());
            let p: u8 = self.rng.gen_range(0..100);
            if p < 10 {
                // Object turnover: destroy one, create a fresh one. The
                // freed extents and the replacement's allocations
                // interleave — the aging mechanism under test.
                let mut old = pool.swap_remove(victim);
                old.destroy(db)?;
                counts.destroys += 1;
                let obj = self.build_one(db, spec, (op_no as u64) << 16)?;
                pool.push(obj);
                counts.creates += 1;
            } else if p < 45 {
                let len = sample_op_size(&mut self.rng, self.cfg.mean_op_bytes);
                fill_bytes(&mut buf[..len as usize], op_no as u64);
                pool[victim].append(db, &buf[..len as usize])?;
                counts.appends += 1;
            } else if p < 75 {
                let size = pool[victim].size(db);
                let len = sample_op_size(&mut self.rng, self.cfg.mean_op_bytes).min(size);
                if len > 0 {
                    let off = self.uniform_start(size, len);
                    pool[victim].delete(db, off, len)?;
                }
                counts.deletes += 1;
            } else {
                let size = pool[victim].size(db);
                let len = sample_op_size(&mut self.rng, self.cfg.mean_op_bytes).min(size);
                if len > 0 {
                    let off = self.uniform_start(size, len);
                    pool[victim].read(db, off, &mut buf[..len as usize])?;
                }
                counts.reads += 1;
            }

            if op_no % self.cfg.mark_every == 0 {
                counts.marks.push(Self::mark(db, &pool, op_no));
            }
        }
        counts.total_io = db.io_stats() - run_start;
        Ok((pool, counts))
    }

    /// Take one mark: publish a health sample (gauges + series, ticked
    /// by the database's observed-op count) and fold it into a
    /// [`ChurnMark`].
    fn mark(db: &mut Db, pool: &[Box<dyn LargeObject>], ops_done: usize) -> ChurnMark {
        let sample = db.sample_health();
        let objs: Vec<ObjectHealth> = pool.iter().map(|o| object_health(o.as_ref(), db)).collect();
        publish_object_health(&objs, Some(sample.tick));
        let n = objs.len().max(1) as f64;
        ChurnMark {
            ops_done,
            frag_ratio: sample.leaf.frag_ratio(),
            largest_free_run: sample.leaf.largest_free_run,
            free_pages: sample.leaf.free_pages,
            leaf_utilization: sample.leaf.utilization(),
            contiguity: objs.iter().map(ObjectHealth::contiguity).sum::<f64>() / n,
            object_utilization: objs.iter().map(ObjectHealth::utilization).sum::<f64>() / n,
            live_objects: pool.len(),
        }
    }

    /// Create one pooled object and grow it to ±50 % of the configured
    /// initial size with 64 KB appends.
    fn build_one(
        &mut self,
        db: &mut Db,
        spec: &ManagerSpec,
        salt: u64,
    ) -> Result<Box<dyn LargeObject>> {
        let mut obj = spec.create(db)?;
        let target = sample_op_size(&mut self.rng, self.cfg.initial_object_bytes);
        let mut chunk = vec![0u8; 64 * 1024];
        let mut written = 0u64;
        while written < target {
            let n = chunk.len().min((target - written) as usize);
            fill_bytes(&mut chunk[..n], salt.wrapping_add(written));
            obj.append(db, &chunk[..n])?;
            written += n as u64;
        }
        Ok(obj)
    }

    fn uniform_start(&mut self, size: u64, len: u64) -> u64 {
        let max_start = size - len;
        if max_start == 0 {
            0
        } else {
            self.rng.gen_range(0..=max_start)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ChurnConfig {
        ChurnConfig {
            ops: 120,
            mark_every: 40,
            mean_op_bytes: 8_000,
            objects: 4,
            initial_object_bytes: 64 * 1024,
            ..ChurnConfig::default()
        }
    }

    #[test]
    fn churn_survives_and_marks_all_three_schemes() {
        for spec in [
            ManagerSpec::esm(4),
            ManagerSpec::eos(16),
            ManagerSpec::starburst(),
        ] {
            lobstore_obs::reset();
            let mut db = Db::paper_default();
            let mut w = ChurnWorkload::new(tiny_cfg());
            let (pool, rep) = w.run(&mut db, &spec).unwrap();
            assert_eq!(pool.len(), 4, "{}", spec.label());
            assert_eq!(rep.marks.len(), 3);
            assert!(
                rep.destroys > 0,
                "{}: churn must turn objects over",
                spec.label()
            );
            assert_eq!(rep.creates, 4 + rep.destroys);
            for obj in &pool {
                obj.check_invariants(&db)
                    .unwrap_or_else(|e| panic!("{}: {e}", spec.label()));
            }
            for m in &rep.marks {
                assert!((0.0..=1.0).contains(&m.frag_ratio));
                assert!((0.0..=1.0).contains(&m.contiguity));
                assert!(m.free_pages + u64::from(m.largest_free_run) > 0);
                assert_eq!(m.live_objects, 4);
            }
            // The sampler published series points at every mark.
            let s = lobstore_obs::series_snapshot("health.leaf.frag_ratio")
                .expect("marks record health series");
            assert_eq!(s.points.len(), 3, "{}", spec.label());
            let c = lobstore_obs::series_snapshot("health.object.contiguity").unwrap();
            assert_eq!(c.points.len(), 3);
        }
    }

    #[test]
    fn churn_is_deterministic_given_seed() {
        let run = || {
            let mut db = Db::paper_default();
            let mut w = ChurnWorkload::new(tiny_cfg());
            let (pool, rep) = w.run(&mut db, &ManagerSpec::eos(16)).unwrap();
            (rep.total_io, db.leaf_pages_allocated(), pool.len())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn churn_ages_the_leaf_area() {
        // After sustained turnover the LEAF area must show at least some
        // allocator activity beyond the initial build: free space exists
        // (destroyed objects) and is reused.
        let mut db = Db::paper_default();
        let mut w = ChurnWorkload::new(ChurnConfig {
            ops: 400,
            mark_every: 100,
            ..tiny_cfg()
        });
        let (_pool, rep) = w.run(&mut db, &ManagerSpec::esm(4)).unwrap();
        let last = rep.marks.last().unwrap();
        assert!(last.free_pages > 0, "turnover must have freed pages");
        assert!(rep.total_io.calls() > 0);
    }
}
