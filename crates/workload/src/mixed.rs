//! The §4.4 mixed update workload: 40 % reads, 30 % inserts, 30 % deletes.

use lobstore_core::{Db, LargeObject, Result};
use lobstore_obs::json::Value;
use lobstore_simdisk::IoStats;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fill_bytes;
use crate::scanner::sample_op_size;

/// Kind of one workload operation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    Read,
    Insert,
    Delete,
}

/// Parameters of a mixed run. Defaults are the paper's (§4.4): 10 000
/// operations, marks every 2 000, a 40/30/30 read/insert/delete mix, and
/// sizes varied ±50 % about the mean.
#[derive(Copy, Clone, Debug)]
pub struct MixedConfig {
    pub ops: usize,
    pub mark_every: usize,
    /// Mean operation size in bytes (100, 10 K, or 100 K in the paper).
    pub mean_op_bytes: u64,
    pub read_pct: u8,
    pub insert_pct: u8,
    pub seed: u64,
}

impl Default for MixedConfig {
    fn default() -> Self {
        MixedConfig {
            ops: 10_000,
            mark_every: 2_000,
            mean_op_bytes: 10_000,
            read_pct: 40,
            insert_pct: 30,
            seed: 0x51_6D0D,
        }
    }
}

/// Averages over the operations *since the previous mark*, plus the
/// utilization at the mark — one point of the Figures 7–12 curves.
#[derive(Copy, Clone, Debug)]
pub struct Mark {
    pub ops_done: usize,
    /// Mean read I/O cost in ms over the window (None: no reads landed).
    pub read_ms: Option<f64>,
    pub insert_ms: Option<f64>,
    pub delete_ms: Option<f64>,
    /// Storage utilization (object bytes over allocated bytes) at the mark.
    pub utilization: f64,
}

/// Full outcome of a mixed run.
#[derive(Clone, Debug)]
pub struct MixedReport {
    pub marks: Vec<Mark>,
    pub total_io: IoStats,
    pub reads: usize,
    pub inserts: usize,
    pub deletes: usize,
}

impl MixedReport {
    /// Overall average cost of one kind across the whole run, in ms.
    pub fn avg_ms(&self, kind: OpKind, windows: &[Mark]) -> Option<f64> {
        let vals: Vec<f64> = windows
            .iter()
            .filter_map(|m| match kind {
                OpKind::Read => m.read_ms,
                OpKind::Insert => m.insert_ms,
                OpKind::Delete => m.delete_ms,
            })
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

/// Driver state for one mixed run.
pub struct MixedWorkload {
    rng: StdRng,
    cfg: MixedConfig,
    /// Size of the most recent insert — the next delete reuses it so the
    /// object size stays stable (§4.4).
    pending_delete: Option<u64>,
}

impl MixedWorkload {
    pub fn new(cfg: MixedConfig) -> Self {
        assert!(cfg.ops > 0 && cfg.mark_every > 0);
        assert!(cfg.read_pct as u32 + cfg.insert_pct as u32 <= 100);
        MixedWorkload {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            pending_delete: None,
        }
    }

    /// Run the workload against `obj`, collecting a mark every
    /// `mark_every` operations.
    pub fn run(&mut self, db: &mut Db, obj: &mut dyn LargeObject) -> Result<MixedReport> {
        let run_start = db.io_stats();
        let mut marks = Vec::with_capacity(self.cfg.ops / self.cfg.mark_every);
        let mut counts = [0usize; 3];
        // Per-window accumulators: (count, time_us) per kind.
        let mut win = [(0usize, 0u64); 3];
        let mut buf = vec![0u8; (self.cfg.mean_op_bytes + self.cfg.mean_op_bytes / 2) as usize + 1];

        for op_no in 1..=self.cfg.ops {
            let kind = self.pick_kind();
            let before = db.io_stats();
            match kind {
                OpKind::Read => {
                    let size = obj.size(db);
                    let len = sample_op_size(&mut self.rng, self.cfg.mean_op_bytes).min(size);
                    if len > 0 {
                        let off = self.uniform_start(size, len);
                        obj.read(db, off, &mut buf[..len as usize])?;
                    }
                }
                OpKind::Insert => {
                    let size = obj.size(db);
                    let len = sample_op_size(&mut self.rng, self.cfg.mean_op_bytes);
                    let off = if size == 0 {
                        0
                    } else {
                        self.rng.gen_range(0..=size)
                    };
                    fill_bytes(&mut buf[..len as usize], (op_no as u64) << 8);
                    obj.insert(db, off, &buf[..len as usize])?;
                    self.pending_delete = Some(len);
                }
                OpKind::Delete => {
                    let size = obj.size(db);
                    let len = self
                        .pending_delete
                        .take()
                        .unwrap_or_else(|| sample_op_size(&mut self.rng, self.cfg.mean_op_bytes))
                        .min(size);
                    if len > 0 {
                        let off = self.uniform_start(size, len);
                        obj.delete(db, off, len)?;
                    }
                }
            }
            let cost = db.io_stats() - before;
            let k = kind as usize;
            counts[k] += 1;
            win[k].0 += 1;
            win[k].1 += cost.time_us;
            lobstore_obs::counter_add(
                match kind {
                    OpKind::Read => "workload.op.read",
                    OpKind::Insert => "workload.op.insert",
                    OpKind::Delete => "workload.op.delete",
                },
                1,
            );

            if op_no % self.cfg.mark_every == 0 {
                let avg = |(n, us): (usize, u64)| (n > 0).then(|| us as f64 / 1_000.0 / n as f64);
                let mark = Mark {
                    ops_done: op_no,
                    read_ms: avg(win[OpKind::Read as usize]),
                    insert_ms: avg(win[OpKind::Insert as usize]),
                    delete_ms: avg(win[OpKind::Delete as usize]),
                    utilization: obj.utilization(db).ratio(),
                };
                let ms = |v: Option<f64>| v.map(Value::Num).unwrap_or(Value::Null);
                lobstore_obs::event(
                    "workload.mark",
                    &[
                        ("ops_done", Value::from(mark.ops_done as u64)),
                        ("read_ms", ms(mark.read_ms)),
                        ("insert_ms", ms(mark.insert_ms)),
                        ("delete_ms", ms(mark.delete_ms)),
                        ("utilization", Value::Num(mark.utilization)),
                    ],
                );
                marks.push(mark);
                win = [(0, 0); 3];
            }
        }
        Ok(MixedReport {
            marks,
            total_io: db.io_stats() - run_start,
            reads: counts[OpKind::Read as usize],
            inserts: counts[OpKind::Insert as usize],
            deletes: counts[OpKind::Delete as usize],
        })
    }

    fn pick_kind(&mut self) -> OpKind {
        let p: u8 = self.rng.gen_range(0..100);
        if p < self.cfg.read_pct {
            OpKind::Read
        } else if p < self.cfg.read_pct + self.cfg.insert_pct {
            OpKind::Insert
        } else {
            OpKind::Delete
        }
    }

    fn uniform_start(&mut self, size: u64, len: u64) -> u64 {
        let max_start = size - len;
        if max_start == 0 {
            0
        } else {
            self.rng.gen_range(0..=max_start)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_object, ManagerSpec};

    fn small_cfg(mean: u64) -> MixedConfig {
        MixedConfig {
            ops: 300,
            mark_every: 100,
            mean_op_bytes: mean,
            ..MixedConfig::default()
        }
    }

    #[test]
    fn object_size_stays_roughly_stable() {
        let mut db = Db::paper_default();
        let (mut obj, _) = build_object(&mut db, &ManagerSpec::eos(4), 1 << 20, 16 * 1024).unwrap();
        let mut w = MixedWorkload::new(small_cfg(10_000));
        let rep = w.run(&mut db, obj.as_mut()).unwrap();
        let size = obj.size(&mut db);
        assert!(
            (800_000..1_300_000).contains(&size),
            "size drifted to {size}"
        );
        assert_eq!(rep.reads + rep.inserts + rep.deletes, 300);
        assert_eq!(rep.marks.len(), 3);
        obj.check_invariants(&db).unwrap();
    }

    #[test]
    fn mix_ratios_are_respected() {
        let mut db = Db::paper_default();
        let (mut obj, _) = build_object(&mut db, &ManagerSpec::esm(4), 1 << 19, 16 * 1024).unwrap();
        let mut w = MixedWorkload::new(MixedConfig {
            ops: 2_000,
            mark_every: 500,
            mean_op_bytes: 1_000,
            ..MixedConfig::default()
        });
        let rep = w.run(&mut db, obj.as_mut()).unwrap();
        let frac = |n: usize| n as f64 / 2_000.0;
        assert!((0.35..0.45).contains(&frac(rep.reads)), "{}", rep.reads);
        assert!((0.25..0.35).contains(&frac(rep.inserts)), "{}", rep.inserts);
        assert!((0.25..0.35).contains(&frac(rep.deletes)), "{}", rep.deletes);
    }

    #[test]
    fn marks_report_costs_and_utilization() {
        let mut db = Db::paper_default();
        let (mut obj, _) = build_object(&mut db, &ManagerSpec::esm(1), 1 << 20, 64 * 1024).unwrap();
        let mut w = MixedWorkload::new(small_cfg(10_000));
        let rep = w.run(&mut db, obj.as_mut()).unwrap();
        for m in &rep.marks {
            assert!(m.utilization > 0.4 && m.utilization <= 1.0);
            if let Some(ms) = m.read_ms {
                assert!(ms >= 33.0, "a read costs at least one seek, got {ms}");
            }
            if let Some(ms) = m.insert_ms {
                assert!(ms > 0.0);
            }
        }
        obj.check_invariants(&db).unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut db = Db::paper_default();
            let (mut obj, _) =
                build_object(&mut db, &ManagerSpec::eos(16), 1 << 19, 16 * 1024).unwrap();
            let mut w = MixedWorkload::new(small_cfg(1_000));
            let rep = w.run(&mut db, obj.as_mut()).unwrap();
            (rep.total_io, obj.size(&mut db))
        };
        assert_eq!(run().0, run().0);
        assert_eq!(run().1, run().1);
    }

    #[test]
    fn ops_and_marks_reach_the_obs_registry() {
        lobstore_obs::reset();
        let sink = lobstore_obs::MemorySink::new();
        lobstore_obs::install_sink(Box::new(sink.clone()));
        let mut db = Db::paper_default();
        let (mut obj, _) = build_object(&mut db, &ManagerSpec::eos(4), 1 << 19, 16 * 1024).unwrap();
        let mut w = MixedWorkload::new(small_cfg(1_000));
        let rep = w.run(&mut db, obj.as_mut()).unwrap();
        let _ = lobstore_obs::take_sink();
        assert_eq!(
            lobstore_obs::counter_value("workload.op.read"),
            rep.reads as u64
        );
        assert_eq!(
            lobstore_obs::counter_value("workload.op.insert"),
            rep.inserts as u64
        );
        assert_eq!(
            lobstore_obs::counter_value("workload.op.delete"),
            rep.deletes as u64
        );
        assert_eq!(lobstore_obs::counter_value("workload.mark"), 3);
        let mark_lines: Vec<_> = sink
            .lines()
            .into_iter()
            .filter_map(|l| lobstore_obs::json::parse(&l).ok())
            .filter(|v| {
                v.get("name").and_then(lobstore_obs::json::Value::as_str) == Some("workload.mark")
            })
            .collect();
        assert_eq!(mark_lines.len(), 3);
        assert_eq!(
            mark_lines[2]
                .get("ops_done")
                .and_then(lobstore_obs::json::Value::as_u64),
            Some(300)
        );
        assert!(
            mark_lines[2]
                .get("utilization")
                .and_then(lobstore_obs::json::Value::as_num)
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn all_three_managers_survive_the_same_mix() {
        for spec in [
            ManagerSpec::esm(4),
            ManagerSpec::eos(4),
            ManagerSpec::starburst(),
        ] {
            let mut db = Db::paper_default();
            let (mut obj, _) = build_object(&mut db, &spec, 1 << 19, 16 * 1024).unwrap();
            let mut w = MixedWorkload::new(MixedConfig {
                ops: 60,
                mark_every: 20,
                mean_op_bytes: 10_000,
                ..MixedConfig::default()
            });
            let rep = w.run(&mut db, obj.as_mut()).unwrap();
            assert_eq!(rep.marks.len(), 3, "{}", spec.label());
            obj.check_invariants(&db)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.label()));
        }
    }
}
