//! Thread-local time series: fixed-capacity rings of `(tick, value)`
//! samples per named series, with quantile summaries and JSON export.
//!
//! The metrics registry answers "what is the value *now*"; this module
//! answers "how did it get there". The health sampler ([`Db` drives it
//! every N operations](../../core) — see DESIGN.md §14) records each
//! `health.*` gauge here as well, so an aging run can export
//! fragmentation-over-time without retaining every sample forever: each
//! series keeps the newest [`SERIES_CAPACITY`] points and counts what it
//! dropped.
//!
//! Ticks are caller-defined monotonic positions (the health sampler uses
//! the operation count), *not* wall-clock timestamps, so exported series
//! are deterministic under the simulated cost model.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};

use crate::json::Value;

/// Points retained per series; older points are dropped (and counted)
/// once a series grows past this.
pub const SERIES_CAPACITY: usize = 512;

/// One retained sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesPoint {
    /// Caller-defined monotonic position (e.g. operations completed).
    pub tick: u64,
    /// Sampled value.
    pub value: f64,
}

struct Series {
    points: VecDeque<SeriesPoint>,
    dropped: u64,
}

thread_local! {
    static SERIES: RefCell<BTreeMap<String, Series>> = const { RefCell::new(BTreeMap::new()) };
}

fn with_series<R>(f: impl FnOnce(&mut BTreeMap<String, Series>) -> R) -> R {
    SERIES.with(|s| f(&mut s.borrow_mut()))
}

/// Append one sample to the series `name`, creating it if needed. When
/// the ring is full the oldest point is dropped and counted.
pub fn series_record(name: &str, tick: u64, value: f64) {
    with_series(|map| {
        let series = map.entry(name.to_string()).or_insert_with(|| Series {
            points: VecDeque::with_capacity(16),
            dropped: 0,
        });
        if series.points.len() >= SERIES_CAPACITY {
            series.points.pop_front();
            series.dropped += 1;
        }
        series.points.push_back(SeriesPoint { tick, value });
    });
}

/// Wipe this thread's time-series store.
pub fn reset() {
    with_series(|map| map.clear());
}

/// Names of every series on this thread, sorted.
pub fn series_names() -> Vec<String> {
    with_series(|map| map.keys().cloned().collect())
}

/// Point-in-time copy of one series (`None` if it was never recorded).
pub fn series_snapshot(name: &str) -> Option<SeriesSnapshot> {
    with_series(|map| {
        map.get(name).map(|s| SeriesSnapshot {
            name: name.to_string(),
            dropped: s.dropped,
            points: s.points.iter().copied().collect(),
        })
    })
}

/// Point-in-time copy of every series on this thread, sorted by name.
pub fn series_snapshot_all() -> Vec<SeriesSnapshot> {
    with_series(|map| {
        map.iter()
            .map(|(n, s)| SeriesSnapshot {
                name: n.clone(),
                dropped: s.dropped,
                points: s.points.iter().copied().collect(),
            })
            .collect()
    })
}

/// Five-number summary of a series' retained points.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SeriesSummary {
    /// Median of retained values.
    pub p50: f64,
    /// 90th percentile of retained values.
    pub p90: f64,
    /// 99th percentile of retained values.
    pub p99: f64,
    /// Largest retained value.
    pub max: f64,
    /// Most recent value.
    pub last: f64,
}

/// A captured series: the retained ring plus how much history it shed.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesSnapshot {
    /// Series name (same namespace as gauges, e.g. `health.leaf.frag_ratio`).
    pub name: String,
    /// Points discarded because the ring was full.
    pub dropped: u64,
    /// Retained points, oldest first.
    pub points: Vec<SeriesPoint>,
}

impl SeriesSnapshot {
    /// Most recent value (`None` when empty).
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|p| p.value)
    }

    /// Exact nearest-rank `q`-quantile over the *retained* values.
    /// Unlike [`HistogramSnapshot::quantile`](crate::HistogramSnapshot),
    /// every point is kept verbatim, so no bucket interpolation is
    /// involved. `None` when empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.points.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let mut values: Vec<f64> = self.points.iter().map(|p| p.value).collect();
        values.sort_by(f64::total_cmp);
        let rank = ((q * values.len() as f64).ceil().max(1.0)) as usize;
        // rank is clamped to [1, len], so the index is in bounds.
        // loblint: allow(panic-path)
        Some(values[rank.min(values.len()) - 1])
    }

    /// The five-number summary ([`SeriesSummary`]); `None` when empty.
    pub fn summary(&self) -> Option<SeriesSummary> {
        let last = self.last()?;
        let max = self
            .points
            .iter()
            .map(|p| p.value)
            .fold(f64::NEG_INFINITY, f64::max);
        Some(SeriesSummary {
            p50: self.quantile(0.50)?,
            p90: self.quantile(0.90)?,
            p99: self.quantile(0.99)?,
            max,
            last,
        })
    }

    /// The series as a [`Value`] tree:
    /// `{"name": s, "dropped": n, "summary": {"p50": x, ...},
    ///   "points": [[tick, value], ...]}`.
    pub fn to_value(&self) -> Value {
        let points = Value::Arr(
            self.points
                .iter()
                .map(|p| Value::Arr(vec![Value::from(p.tick), Value::Num(p.value)]))
                .collect(),
        );
        let summary = self.summary().unwrap_or_default();
        Value::Obj(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("dropped".to_string(), Value::from(self.dropped)),
            (
                "summary".to_string(),
                Value::Obj(vec![
                    ("p50".to_string(), Value::Num(summary.p50)),
                    ("p90".to_string(), Value::Num(summary.p90)),
                    ("p99".to_string(), Value::Num(summary.p99)),
                    ("max".to_string(), Value::Num(summary.max)),
                    ("last".to_string(), Value::Num(summary.last)),
                ]),
            ),
            ("points".to_string(), points),
        ])
    }

    /// The series serialized as one JSON object.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn record_and_snapshot_round_trip() {
        reset();
        series_record("t.s", 10, 0.5);
        series_record("t.s", 20, 0.25);
        series_record("t.other", 1, 9.0);
        let snap = series_snapshot("t.s").unwrap();
        assert_eq!(snap.dropped, 0);
        assert_eq!(
            snap.points,
            vec![
                SeriesPoint {
                    tick: 10,
                    value: 0.5
                },
                SeriesPoint {
                    tick: 20,
                    value: 0.25
                }
            ]
        );
        assert_eq!(snap.last(), Some(0.25));
        assert_eq!(series_names(), vec!["t.other", "t.s"]);
        assert_eq!(series_snapshot("t.never"), None);
        let all = series_snapshot_all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].name, "t.other");
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        reset();
        for i in 0..(SERIES_CAPACITY as u64 + 7) {
            series_record("t.ring", i, i as f64);
        }
        let snap = series_snapshot("t.ring").unwrap();
        assert_eq!(snap.points.len(), SERIES_CAPACITY);
        assert_eq!(snap.dropped, 7);
        assert_eq!(snap.points[0].tick, 7, "oldest retained after 7 drops");
        assert_eq!(snap.last(), Some(SERIES_CAPACITY as f64 + 6.0));
    }

    #[test]
    fn summary_quantiles_are_exact_nearest_rank() {
        reset();
        for i in 1..=100_u64 {
            series_record("t.q", i, i as f64);
        }
        let snap = series_snapshot("t.q").unwrap();
        let s = snap.summary().unwrap();
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.last, 100.0);
        assert_eq!(snap.quantile(1.0), Some(100.0));
        assert_eq!(snap.quantile(0.0), Some(1.0));
        assert_eq!(snap.quantile(1.5), None);
    }

    #[test]
    fn empty_series_summary_is_none() {
        let snap = SeriesSnapshot {
            name: "t.e".to_string(),
            dropped: 0,
            points: Vec::new(),
        };
        assert_eq!(snap.summary(), None);
        assert_eq!(snap.last(), None);
        assert_eq!(snap.quantile(0.5), None);
    }

    #[test]
    fn json_export_parses_back() {
        reset();
        series_record("t.j", 100, 0.125);
        series_record("t.j", 200, 0.25);
        let snap = series_snapshot("t.j").unwrap();
        let v = json::parse(&snap.to_json()).unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("t.j"));
        assert_eq!(v.get("dropped").and_then(Value::as_u64), Some(0));
        let points = v.get("points").and_then(Value::as_arr).unwrap();
        assert_eq!(points.len(), 2);
        let p0 = points[0].as_arr().unwrap();
        assert_eq!(p0[0].as_u64(), Some(100));
        assert_eq!(p0[1].as_num(), Some(0.125));
        assert_eq!(
            v.get("summary")
                .and_then(|s| s.get("last"))
                .and_then(Value::as_num),
            Some(0.25)
        );
    }

    #[test]
    fn reset_clears_series() {
        series_record("t.r", 1, 1.0);
        reset();
        assert!(series_names().is_empty());
        assert_eq!(series_snapshot("t.r"), None);
    }
}
