//! Workspace-wide observability for `lobstore`, with zero dependencies.
//!
//! Three cooperating pieces:
//!
//! * **Metrics** ([`counter_add`], [`gauge_set`], [`histogram_record`]) —
//!   a thread-local registry of named counters, gauges, and log₂-bucketed
//!   histograms. Always on; each update is a map lookup plus an integer
//!   bump, cheap enough for the simulated disk's per-call hot path.
//! * **Spans and events** ([`Span`], [`event`]) — structured records of
//!   logical operations. Ending a span always bumps its name's counter;
//!   the full field set is serialized as one JSON line *only* when a sink
//!   is installed, so the default (no sink) costs no allocation.
//! * **Sinks** ([`EventSink`], [`JsonlSink`], [`install_sink`]) — where
//!   serialized span/event lines go. No-op by default; [`JsonlSink`]
//!   appends one JSON object per line to any `std::io::Write`.
//!
//! The registry and sink are thread-local on purpose: the engine is
//! single-client by design (§3 of the paper), and per-thread state keeps
//! parallel test binaries from polluting each other's measurements.
//!
//! The [`json`] module is the self-contained JSON reader/writer the rest
//! of the workspace shares: bench reports, `IoStats::to_json`, metric
//! snapshots, and the `xtask check-bench-json` validator all speak
//! through it.
//!
//! # Example
//!
//! ```
//! lobstore_obs::reset();
//! lobstore_obs::counter_add("demo.calls", 2);
//! lobstore_obs::histogram_record("demo.pages", 3);
//! let snap = lobstore_obs::snapshot();
//! assert_eq!(snap.counter("demo.calls"), 2);
//! let dump = snap.to_json();
//! assert!(dump.contains("demo.pages"));
//! ```
#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Minimal JSON value model, writer, and parser (no dependencies).
pub mod json;
mod metrics;
mod sink;
mod span;
mod timeseries;

pub use metrics::{
    counter_add, counter_value, gauge_set, gauge_value, histogram_record, merge_thread_registry,
    snapshot, HistogramSnapshot, MetricsSnapshot,
};
pub use sink::{install_sink, sink_installed, take_sink, EventSink, JsonlSink, MemorySink};
pub use span::{event, Span};
pub use timeseries::{
    series_names, series_record, series_snapshot, series_snapshot_all, SeriesPoint, SeriesSnapshot,
    SeriesSummary, SERIES_CAPACITY,
};

/// Wipe this thread's registry — every counter, gauge, histogram, and
/// time series. Tests and bench phases call this to measure from a
/// clean slate.
pub fn reset() {
    metrics::reset();
    timeseries::reset();
}

/// Version tag every machine-readable bench report carries in its
/// `schema` field; `xtask check-bench-json` validates against it.
pub const BENCH_REPORT_SCHEMA: &str = "lobstore-bench-report/v1";

/// Extended bench-report schema: everything in v1 plus a top-level
/// `series` array of sampled time series (see [`SeriesSnapshot::to_value`]).
/// Emitted by bins that sample health over time (`aging`); validated by
/// `xtask check-bench-json`, diffed by `xtask bench-compare`.
pub const BENCH_REPORT_SCHEMA_V2: &str = "lobstore-bench-report/v2";
