//! A minimal, dependency-free JSON value, writer, and parser.
//!
//! This is the one JSON implementation the workspace shares: metric
//! snapshots, span/event lines, `IoStats::to_json`, the bench-report
//! pipeline, and the CI-side `xtask check-bench-json` validator all use
//! it, so producer and consumer can never drift apart.
//!
//! Numbers are carried as `f64` (exact for integers up to 2⁵³, far above
//! any counter this workspace produces) and written back as integers
//! whenever they are whole. Object members preserve insertion order.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; members keep insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this value is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, if it is a whole non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.0e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, if this value is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this value is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if this value is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serialize into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_num(*n, out),
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize to a fresh string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Write `s` as a JSON string literal, escaping per RFC 8259.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte index of the error in the input.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(p.err("trailing content after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.at,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", char::from(b))))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.at;
            // Fast path: run of plain bytes.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.at += 1;
            }
            if self.at > start {
                match std::str::from_utf8(&self.bytes[start..self.at]) {
                    Ok(s) => out.push_str(s),
                    Err(_) => return Err(self.err("invalid UTF-8 in string")),
                }
            }
            match self.peek() {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        let b = self.peek().ok_or_else(|| self.err("dangling escape"))?;
        self.at += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require \uXXXX for the low half.
                    if self.peek() == Some(b'\\') {
                        self.at += 1;
                        self.eat(b'u')?;
                        let lo = self.hex4()?;
                        0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00) & 0x3FF)
                    } else {
                        hi
                    }
                } else {
                    hi
                };
                out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("short \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("bad hex digit in \\u escape")),
            };
            v = v * 16 + d;
            self.at += 1;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> Value {
        let v = parse(text).unwrap();
        let again = parse(&v.to_json()).unwrap();
        assert_eq!(v, again, "write/parse must round-trip for {text}");
        v
    }

    #[test]
    fn scalars() {
        assert_eq!(roundtrip("null"), Value::Null);
        assert_eq!(roundtrip("true"), Value::Bool(true));
        assert_eq!(roundtrip("false"), Value::Bool(false));
        assert_eq!(roundtrip("42"), Value::Num(42.0));
        assert_eq!(roundtrip("-7"), Value::Num(-7.0));
        assert_eq!(roundtrip("2.5"), Value::Num(2.5));
        assert_eq!(roundtrip("1e3"), Value::Num(1000.0));
        assert_eq!(roundtrip("\"hi\""), Value::Str("hi".to_string()));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::Num(3.0).to_json(), "3");
        assert_eq!(Value::Num(3.5).to_json(), "3.5");
        assert_eq!(Value::from(12_345_678_901u64).to_json(), "12345678901");
    }

    #[test]
    fn containers_and_order() {
        let v = roundtrip(r#"{"b": [1, 2, {"x": null}], "a": "z"}"#);
        assert_eq!(v.get("a").and_then(Value::as_str), Some("z"));
        let arr = v.get("b").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        // Insertion order is preserved: "b" first.
        assert_eq!(v.as_obj().unwrap()[0].0, "b");
    }

    #[test]
    fn string_escapes() {
        let v = roundtrip(r#""a\"b\\c\nd\teAé""#);
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\teAé"));
        // Control characters are escaped on the way out.
        let s = Value::Str("x\u{1}y".to_string()).to_json();
        assert_eq!(s, "\"x\\u0001y\"");
        // Surrogate pair.
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn unicode_passthrough() {
        let v = roundtrip("\"héllo wörld ★\"");
        assert_eq!(v.as_str(), Some("héllo wörld ★"));
    }

    #[test]
    fn errors_carry_position() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "tru", "12 34", "{,}"] {
            let e = parse(bad).unwrap_err();
            assert!(e.at <= bad.len(), "{bad}: {e}");
            assert!(!e.message.is_empty());
        }
    }

    #[test]
    fn numeric_accessors() {
        let v = parse("{\"n\": 12, \"f\": 1.5, \"neg\": -1}").unwrap();
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(12));
        assert_eq!(v.get("f").and_then(Value::as_u64), None);
        assert_eq!(v.get("neg").and_then(Value::as_u64), None);
        assert_eq!(v.get("f").and_then(Value::as_num), Some(1.5));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn nan_writes_as_null() {
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
    }
}
