//! The thread-local metrics registry: counters, gauges, and
//! log₂-bucketed histograms, addressed by name.
//!
//! Updates are a `BTreeMap` lookup plus an integer bump — cheap enough
//! for the simulated disk's per-I/O-call hot path, with no setup or
//! registration step. Names should be `dotted.lowercase` and stable;
//! the catalog lives in DESIGN.md ("Observability").

use std::cell::RefCell;
use std::collections::BTreeMap;

use crate::json::Value;

/// Number of log₂ buckets a histogram keeps: bucket 0 holds the value 0,
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Clone)]
struct Histo {
    buckets: Box<[u64; HISTOGRAM_BUCKETS]>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histo {
    fn new() -> Histo {
        Histo {
            buckets: Box::new([0; HISTOGRAM_BUCKETS]),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn record(&mut self, value: u64) {
        let b = bucket_of(value);
        self.buckets[b] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }
}

fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        usize::try_from(64 - value.leading_zeros()).unwrap_or(HISTOGRAM_BUCKETS - 1)
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histos: BTreeMap<String, Histo>,
}

thread_local! {
    static REGISTRY: RefCell<Registry> = RefCell::new(Registry::default());
}

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    REGISTRY.with(|r| f(&mut r.borrow_mut()))
}

/// Add `n` to the counter `name`, creating it at zero first if needed.
pub fn counter_add(name: &str, n: u64) {
    with_registry(|r| match r.counters.get_mut(name) {
        Some(v) => *v += n,
        None => {
            r.counters.insert(name.to_string(), n);
        }
    });
}

/// Current value of counter `name` (0 if it was never bumped).
pub fn counter_value(name: &str) -> u64 {
    with_registry(|r| r.counters.get(name).copied().unwrap_or(0))
}

/// Set the gauge `name` to `v`.
pub fn gauge_set(name: &str, v: f64) {
    with_registry(|r| match r.gauges.get_mut(name) {
        Some(g) => *g = v,
        None => {
            r.gauges.insert(name.to_string(), v);
        }
    });
}

/// Current value of gauge `name` (`None` if never set).
pub fn gauge_value(name: &str) -> Option<f64> {
    with_registry(|r| r.gauges.get(name).copied())
}

/// Record one observation of `value` in the histogram `name`.
pub fn histogram_record(name: &str, value: u64) {
    with_registry(|r| match r.histos.get_mut(name) {
        Some(h) => h.record(value),
        None => {
            let mut h = Histo::new();
            h.record(value);
            r.histos.insert(name.to_string(), h);
        }
    });
}

/// Wipe this thread's registry: every counter, gauge, and histogram.
/// Tests call this to measure from a clean slate.
pub fn reset() {
    with_registry(|r| *r = Registry::default());
}

/// One histogram, as captured by [`snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// `(bucket_index, count)` for every non-empty bucket, ascending.
    /// Bucket 0 holds the value 0; bucket `i ≥ 1` holds `[2^(i-1), 2^i)`.
    pub buckets: Vec<(usize, u64)>,
    /// Largest value ever recorded (0 when the histogram is empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Build a snapshot directly from raw values, without touching the
    /// registry. `lobctl stats` uses this to get quantile summaries of
    /// ad-hoc distributions (segment sizes, free-run lengths).
    pub fn from_values(name: &str, values: &[u64]) -> HistogramSnapshot {
        let mut h = Histo::new();
        for &v in values {
            h.record(v);
        }
        HistogramSnapshot {
            name: name.to_string(),
            count: h.count,
            sum: h.sum,
            buckets: h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (i, c))
                .collect(),
            max: h.max,
        }
    }

    /// Estimate the `q`-quantile (`0.0 ≤ q ≤ 1.0`) by linear
    /// interpolation inside the log₂ bucket that holds the target rank.
    /// Bucket `i ≥ 1` spans `[2^(i-1), 2^i)`; the estimate is clamped to
    /// the recorded [`max`](Self::max), so `quantile(1.0)` is exact.
    /// Returns `None` for an empty histogram or a `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // Nearest-rank target, 1-based: the k-th smallest observation.
        let count = self.count as f64;
        // f64 rank arithmetic; no integer overflow possible.
        // loblint: allow(arith-overflow)
        let target = (q * count).ceil().max(1.0);
        let mut seen = 0.0_f64;
        for &(i, c) in &self.buckets {
            let c = c as f64;
            if seen + c >= target {
                if i == 0 {
                    return Some(0.0);
                }
                let lo = 2.0_f64.powi(i as i32 - 1);
                let hi = 2.0_f64.powi(i as i32);
                // f64 division; `c > 0` for any present bucket.
                // loblint: allow(panic-path)
                let frac = (target - seen) / c;
                return Some((lo + frac * (hi - lo)).min(self.max as f64));
            }
            seen += c;
        }
        // All buckets exhausted (rounding): the largest observation.
        Some(self.max as f64)
    }

    /// Median estimate (see [`quantile`](Self::quantile)).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate (see [`quantile`](Self::quantile)).
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate (see [`quantile`](Self::quantile)).
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Mean of all recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            // f64 division behind a zero guard; cannot panic.
            // loblint: allow(panic-path)
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

/// A point-in-time copy of the whole registry, sorted by name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, f64)>,
    /// Every histogram.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value by name (0 if absent from the snapshot).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The snapshot as a [`Value`] tree:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name:
    /// {"count": n, "sum": n, "buckets": [[idx, n], ...]}}}`.
    pub fn to_value(&self) -> Value {
        let counters = Value::Obj(
            self.counters
                .iter()
                .map(|(n, v)| (n.clone(), Value::from(*v)))
                .collect(),
        );
        let gauges = Value::Obj(
            self.gauges
                .iter()
                .map(|(n, v)| (n.clone(), Value::Num(*v)))
                .collect(),
        );
        let histograms = Value::Obj(
            self.histograms
                .iter()
                .map(|h| {
                    let buckets = Value::Arr(
                        h.buckets
                            .iter()
                            .map(|&(i, c)| {
                                Value::Arr(vec![
                                    Value::from(u64::try_from(i).unwrap_or(0)),
                                    Value::from(c),
                                ])
                            })
                            .collect(),
                    );
                    (
                        h.name.clone(),
                        Value::Obj(vec![
                            ("count".to_string(), Value::from(h.count)),
                            ("sum".to_string(), Value::from(h.sum)),
                            ("max".to_string(), Value::from(h.max)),
                            ("buckets".to_string(), buckets),
                        ]),
                    )
                })
                .collect(),
        );
        Value::Obj(vec![
            ("counters".to_string(), counters),
            ("gauges".to_string(), gauges),
            ("histograms".to_string(), histograms),
        ])
    }

    /// The snapshot serialized as one JSON object.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }
}

/// Merge a snapshot captured on another thread into **this** thread's
/// registry: counters add, histograms add bucket-wise (count, sum
/// saturating, max by maximum), gauges overwrite (last merge wins —
/// they are point-in-time readings, not accumulators). Time series are
/// not part of [`MetricsSnapshot`] and are deliberately excluded.
///
/// The registry is thread-local by design (hot-path updates need no
/// synchronization); worker threads capture [`snapshot`] before exiting
/// and the coordinating thread folds them in with this function —
/// benches and the `shared_db` hammer use it to report fleet-wide
/// totals.
pub fn merge_thread_registry(other: &MetricsSnapshot) {
    with_registry(|r| {
        for (name, v) in &other.counters {
            match r.counters.get_mut(name) {
                Some(c) => *c = c.saturating_add(*v),
                None => {
                    r.counters.insert(name.clone(), *v);
                }
            }
        }
        for (name, v) in &other.gauges {
            r.gauges.insert(name.clone(), *v);
        }
        for hs in &other.histograms {
            let h = r.histos.entry(hs.name.clone()).or_insert_with(Histo::new);
            for &(i, c) in &hs.buckets {
                if let Some(b) = h.buckets.get_mut(i) {
                    *b = b.saturating_add(c);
                }
            }
            h.count = h.count.saturating_add(hs.count);
            h.sum = h.sum.saturating_add(hs.sum);
            h.max = h.max.max(hs.max);
        }
    });
}

/// Capture the current state of this thread's registry.
pub fn snapshot() -> MetricsSnapshot {
    with_registry(|r| MetricsSnapshot {
        counters: r.counters.iter().map(|(n, v)| (n.clone(), *v)).collect(),
        gauges: r.gauges.iter().map(|(n, v)| (n.clone(), *v)).collect(),
        histograms: r
            .histos
            .iter()
            .map(|(n, h)| HistogramSnapshot {
                name: n.clone(),
                count: h.count,
                sum: h.sum,
                buckets: h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| (i, c))
                    .collect(),
                max: h.max,
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn counters_accumulate() {
        reset();
        counter_add("t.a", 1);
        counter_add("t.a", 2);
        counter_add("t.b", 5);
        assert_eq!(counter_value("t.a"), 3);
        assert_eq!(counter_value("t.b"), 5);
        assert_eq!(counter_value("t.never"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        reset();
        assert_eq!(gauge_value("t.g"), None);
        gauge_set("t.g", 0.25);
        gauge_set("t.g", 0.75);
        assert_eq!(gauge_value("t.g"), Some(0.75));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_snapshot_counts_and_sums() {
        reset();
        for v in [0, 1, 1, 3, 4, 100] {
            histogram_record("t.h", v);
        }
        let snap = snapshot();
        let h = snap.histogram("t.h").unwrap();
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 109);
        // 0 → bucket 0; 1,1 → bucket 1; 3 → bucket 2; 4 → bucket 3;
        // 100 → bucket 7.
        assert_eq!(h.buckets, vec![(0, 1), (1, 2), (2, 1), (3, 1), (7, 1)]);
    }

    #[test]
    fn snapshot_is_sorted_and_json_parses() {
        reset();
        counter_add("z.last", 1);
        counter_add("a.first", 1);
        gauge_set("m.mid", 0.5);
        histogram_record("h.one", 7);
        let snap = snapshot();
        assert_eq!(snap.counters[0].0, "a.first");
        assert_eq!(snap.counters[1].0, "z.last");
        let v = json::parse(&snap.to_json()).unwrap();
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("a.first"))
                .and_then(json::Value::as_u64),
            Some(1)
        );
        assert_eq!(
            v.get("gauges")
                .and_then(|g| g.get("m.mid"))
                .and_then(json::Value::as_num),
            Some(0.5)
        );
        let h = v.get("histograms").and_then(|h| h.get("h.one")).unwrap();
        assert_eq!(h.get("count").and_then(json::Value::as_u64), Some(1));
        assert_eq!(h.get("sum").and_then(json::Value::as_u64), Some(7));
    }

    #[test]
    fn quantiles_interpolate_within_log2_buckets() {
        // 100 observations of 1..=100: p50 ≈ 50, p90 ≈ 90, p99 ≈ 99.
        let values: Vec<u64> = (1..=100).collect();
        let h = HistogramSnapshot::from_values("t.q", &values);
        assert_eq!(h.count, 100);
        assert_eq!(h.max, 100);
        let p50 = h.p50().unwrap();
        let p90 = h.p90().unwrap();
        let p99 = h.p99().unwrap();
        // Log₂ buckets are coarse; interpolation must land in the right
        // bucket and stay ordered.
        assert!((32.0..=64.0).contains(&p50), "p50 = {p50}");
        assert!((64.0..=100.0).contains(&p90), "p90 = {p90}");
        assert!((64.0..=100.0).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        // quantile(1.0) is exact: clamped to the recorded max.
        assert_eq!(h.quantile(1.0), Some(100.0));
        assert_eq!(h.mean(), Some(50.5));
    }

    #[test]
    fn quantiles_on_degenerate_histograms() {
        let empty = HistogramSnapshot::from_values("t.e", &[]);
        assert_eq!(empty.p50(), None);
        assert_eq!(empty.mean(), None);

        let zeros = HistogramSnapshot::from_values("t.z", &[0, 0, 0]);
        assert_eq!(zeros.p50(), Some(0.0));
        assert_eq!(zeros.p99(), Some(0.0));
        assert_eq!(zeros.max, 0);

        let one = HistogramSnapshot::from_values("t.o", &[7]);
        // A single value: every quantile is in its bucket, clamped ≤ max.
        for q in [0.01, 0.5, 0.99, 1.0] {
            let est = one.quantile(q).unwrap();
            assert!((4.0..=7.0).contains(&est), "q={q} est={est}");
        }
        assert_eq!(one.quantile(-0.1), None);
        assert_eq!(one.quantile(1.5), None);
    }

    #[test]
    fn registry_quantiles_match_from_values() {
        reset();
        let values = [3_u64, 9, 27, 81, 243, 729];
        for v in values {
            histogram_record("t.rq", v);
        }
        let snap = snapshot();
        let reg = snap.histogram("t.rq").unwrap();
        let direct = HistogramSnapshot::from_values("t.rq", &values);
        assert_eq!(reg, &direct);
        assert_eq!(reg.p50(), direct.p50());
        assert_eq!(reg.max, 729);
    }

    #[test]
    fn snapshot_after_reset_is_empty_even_under_thread_churn() {
        // The registry is thread-local: concurrent threads hammering
        // their own registries must never perturb this thread's
        // reset→snapshot window or panic.
        let hammers: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..1_000_u64 {
                        counter_add("t.race", 1);
                        gauge_set("t.race.g", i as f64);
                        histogram_record("t.race.h", i);
                        if i % 64 == 0 {
                            let s = snapshot();
                            assert_eq!(s.counter("t.race"), i + 1, "thread {t}");
                        }
                        if i % 257 == 0 {
                            reset();
                            assert!(snapshot().counters.is_empty(), "thread {t}");
                            // Re-seed so the closure check above keeps
                            // holding relative to the loop counter.
                            counter_add("t.race", i + 1);
                        }
                    }
                    snapshot().counter("t.race")
                })
            })
            .collect();
        counter_add("t.main", 5);
        reset();
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        for h in hammers {
            let c = h.join().expect("hammer thread must not panic");
            assert!(c > 0);
        }
    }

    #[test]
    fn merge_folds_worker_snapshots_into_this_thread() {
        reset();
        counter_add("t.m.ops", 10);
        histogram_record("t.m.lat", 4);
        gauge_set("t.m.depth", 1.0);
        let worker = std::thread::spawn(|| {
            counter_add("t.m.ops", 7);
            counter_add("t.m.worker_only", 3);
            histogram_record("t.m.lat", 100);
            histogram_record("t.m.lat", 0);
            gauge_set("t.m.depth", 9.0);
            snapshot()
        })
        .join()
        .unwrap();
        merge_thread_registry(&worker);
        assert_eq!(counter_value("t.m.ops"), 17);
        assert_eq!(counter_value("t.m.worker_only"), 3);
        // Gauges overwrite: the merged reading wins.
        assert_eq!(gauge_value("t.m.depth"), Some(9.0));
        let snap = snapshot();
        let h = snap.histogram("t.m.lat").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 104);
        assert_eq!(h.max, 100);
        // Buckets add position-wise: 0 → bucket 0, 4 → bucket 3,
        // 100 → bucket 7.
        assert_eq!(h.buckets, vec![(0, 1), (3, 1), (7, 1)]);
    }

    #[test]
    fn merge_is_associative_over_workers() {
        reset();
        let snaps: Vec<MetricsSnapshot> = (0..3u64)
            .map(|t| {
                std::thread::spawn(move || {
                    counter_add("t.ma.n", t + 1);
                    histogram_record("t.ma.h", t);
                    snapshot()
                })
                .join()
                .unwrap()
            })
            .collect();
        for s in &snaps {
            merge_thread_registry(s);
        }
        assert_eq!(counter_value("t.ma.n"), 6);
        let snap = snapshot();
        assert_eq!(snap.histogram("t.ma.h").unwrap().count, 3);
    }

    #[test]
    fn reset_clears_everything() {
        counter_add("t.x", 9);
        gauge_set("t.y", 1.0);
        histogram_record("t.z", 2);
        reset();
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }
}
