//! Spans and events: structured records of logical operations.
//!
//! A [`Span`] brackets one operation (e.g. `op.esm.insert`). Ending it
//! always bumps the counter named after the span, so operation counts
//! are available even with no sink; the annotated JSON line is built and
//! emitted only when a sink is installed. Callers that want to skip
//! collecting expensive field values entirely can guard on
//! [`crate::sink_installed`].
//!
//! An [`event`] is a span with no duration — one record, same pipeline.

use crate::json::Value;
use crate::metrics::counter_add;
use crate::sink::{sink_installed, with_sink};

/// An in-progress span. Create with [`Span::begin`], annotate with the
/// `field_*` methods, and finish with [`Span::end`] (dropping without
/// `end` still counts the span, but emits nothing).
pub struct Span {
    name: &'static str,
    fields: Vec<(String, Value)>,
    ended: bool,
}

impl Span {
    /// Open a span named `name`. Names are static and dotted
    /// (`op.<scheme>.<operation>`), so the per-span counter needs no
    /// allocation.
    pub fn begin(name: &'static str) -> Span {
        Span {
            name,
            fields: Vec::new(),
            ended: false,
        }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Attach an integer field. No-op when no sink is installed.
    pub fn field_u64(&mut self, key: &str, v: u64) -> &mut Span {
        self.field(key, Value::from(v))
    }

    /// Attach a float field. No-op when no sink is installed.
    pub fn field_f64(&mut self, key: &str, v: f64) -> &mut Span {
        self.field(key, Value::Num(v))
    }

    /// Attach a string field. No-op when no sink is installed.
    pub fn field_str(&mut self, key: &str, v: &str) -> &mut Span {
        self.field(key, Value::from(v))
    }

    /// Attach an arbitrary JSON field. No-op when no sink is installed.
    pub fn field(&mut self, key: &str, v: Value) -> &mut Span {
        if sink_installed() {
            self.fields.push((key.to_string(), v));
        }
        self
    }

    /// Close the span: bump the `name` counter and, if a sink is
    /// installed, emit `{"type": "span", "name": ..., <fields>}`.
    pub fn end(mut self) {
        self.finish(true);
    }

    fn finish(&mut self, emit_record: bool) {
        if self.ended {
            return;
        }
        self.ended = true;
        counter_add(self.name, 1);
        if emit_record && sink_installed() {
            let mut members = Vec::with_capacity(self.fields.len() + 2);
            members.push(("type".to_string(), Value::from("span")));
            members.push(("name".to_string(), Value::from(self.name)));
            members.append(&mut self.fields);
            let line = Value::Obj(members).to_json();
            with_sink(|s| s.emit(&line));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        // A dropped span (early return, error path) still counts, but
        // only an explicit `end` emits a record.
        self.finish(false);
    }
}

/// Emit a one-shot event: bump the `name` counter and, with a sink
/// installed, write `{"type": "event", "name": ..., <fields>}`.
/// `fields` is cloned only on the sink path.
pub fn event(name: &'static str, fields: &[(&str, Value)]) {
    counter_add(name, 1);
    if sink_installed() {
        let mut members = Vec::with_capacity(fields.len() + 2);
        members.push(("type".to_string(), Value::from("event")));
        members.push(("name".to_string(), Value::from(name)));
        for (k, v) in fields {
            members.push(((*k).to_string(), v.clone()));
        }
        let line = Value::Obj(members).to_json();
        with_sink(|s| s.emit(&line));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::metrics::{counter_value, reset};
    use crate::sink::{install_sink, take_sink, MemorySink};

    #[test]
    fn span_counts_without_sink() {
        reset();
        let _ = take_sink();
        let mut s = Span::begin("op.test.read");
        s.field_u64("ignored", 1);
        assert!(s.fields.is_empty(), "fields skipped with no sink");
        s.end();
        assert_eq!(counter_value("op.test.read"), 1);
    }

    #[test]
    fn span_emits_json_with_sink() {
        reset();
        let sink = MemorySink::new();
        install_sink(Box::new(sink.clone()));
        let mut s = Span::begin("op.test.insert");
        s.field_u64("bytes", 42).field_str("scheme", "EOS");
        s.end();
        let _ = take_sink();
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        let v = json::parse(&lines[0]).unwrap();
        assert_eq!(v.get("type").and_then(json::Value::as_str), Some("span"));
        assert_eq!(
            v.get("name").and_then(json::Value::as_str),
            Some("op.test.insert")
        );
        assert_eq!(v.get("bytes").and_then(json::Value::as_u64), Some(42));
        assert_eq!(v.get("scheme").and_then(json::Value::as_str), Some("EOS"));
        assert_eq!(counter_value("op.test.insert"), 1);
    }

    #[test]
    fn dropped_span_counts_but_does_not_emit() {
        reset();
        let sink = MemorySink::new();
        install_sink(Box::new(sink.clone()));
        {
            let _s = Span::begin("op.test.dropped");
        }
        let _ = take_sink();
        assert_eq!(counter_value("op.test.dropped"), 1);
        assert!(sink.lines().is_empty());
    }

    #[test]
    fn events_flow_through_the_same_pipeline() {
        reset();
        let sink = MemorySink::new();
        install_sink(Box::new(sink.clone()));
        event("workload.mark", &[("ops", Value::from(2000u64))]);
        let _ = take_sink();
        event("workload.mark", &[("ops", Value::from(4000u64))]);
        assert_eq!(counter_value("workload.mark"), 2);
        let lines = sink.lines();
        assert_eq!(lines.len(), 1, "second event had no sink");
        let v = json::parse(&lines[0]).unwrap();
        assert_eq!(v.get("type").and_then(json::Value::as_str), Some("event"));
        assert_eq!(v.get("ops").and_then(json::Value::as_u64), Some(2000));
    }
}
