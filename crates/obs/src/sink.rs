//! Pluggable destinations for serialized span/event lines.
//!
//! By default no sink is installed and emitting is a no-op that skips
//! even serialization. Installing a [`JsonlSink`] turns every span end
//! and event into one JSON object per line (JSONL) on the underlying
//! writer. The sink is thread-local, like the metrics registry.

use std::cell::RefCell;
use std::io::Write;
use std::rc::Rc;

/// Receives one serialized JSON line per span/event.
pub trait EventSink {
    /// Consume one JSON object, without its trailing newline.
    fn emit(&mut self, json_line: &str);

    /// Flush any buffered output (default: nothing to do).
    fn flush(&mut self) {}
}

/// An [`EventSink`] that appends one JSON object per line to a writer —
/// the JSONL event stream bench runs and experiments record.
pub struct JsonlSink<W: Write> {
    w: W,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap `w`; each emitted line is written followed by `\n`.
    pub fn new(w: W) -> Self {
        JsonlSink { w }
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn emit(&mut self, json_line: &str) {
        let _ = writeln!(self.w, "{json_line}");
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

/// An [`EventSink`] that collects lines in memory, for tests and for
/// programs that postprocess the stream themselves. Clones share the
/// same buffer, so a caller can keep one handle while the sink is
/// installed.
#[derive(Clone, Default)]
pub struct MemorySink {
    lines: Rc<RefCell<Vec<String>>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Copy of every line emitted so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.borrow().clone()
    }
}

impl EventSink for MemorySink {
    fn emit(&mut self, json_line: &str) {
        self.lines.borrow_mut().push(json_line.to_string());
    }
}

thread_local! {
    static SINK: RefCell<Option<Box<dyn EventSink>>> = const { RefCell::new(None) };
}

/// Install `sink` as this thread's event sink, replacing (and flushing)
/// any previous one.
pub fn install_sink(sink: Box<dyn EventSink>) {
    SINK.with(|s| {
        if let Some(old) = s.borrow_mut().replace(sink) {
            let mut old = old;
            old.flush();
        }
    });
}

/// Remove and return the installed sink, flushing it first. Returns
/// `None` when no sink was installed.
pub fn take_sink() -> Option<Box<dyn EventSink>> {
    SINK.with(|s| {
        let mut taken = s.borrow_mut().take();
        if let Some(sink) = taken.as_mut() {
            sink.flush();
        }
        taken
    })
}

/// Whether a sink is currently installed. Callers use this to skip
/// building expensive span annotations when nobody is listening.
pub fn sink_installed() -> bool {
    SINK.with(|s| s.borrow().is_some())
}

/// Hand the installed sink (if any) to `f`.
pub(crate) fn with_sink(f: impl FnOnce(&mut dyn EventSink)) {
    SINK.with(|s| {
        if let Some(sink) = s.borrow_mut().as_mut() {
            f(sink.as_mut());
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_sink_by_default() {
        let _ = take_sink();
        assert!(!sink_installed());
        with_sink(|_| panic!("must not run without a sink"));
    }

    #[test]
    fn memory_sink_collects_lines() {
        let sink = MemorySink::new();
        install_sink(Box::new(sink.clone()));
        assert!(sink_installed());
        with_sink(|s| s.emit("{\"a\": 1}"));
        with_sink(|s| s.emit("{\"b\": 2}"));
        assert_eq!(sink.lines(), vec!["{\"a\": 1}", "{\"b\": 2}"]);
        assert!(take_sink().is_some());
        assert!(!sink_installed());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_emit() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit("{\"x\": 1}");
        sink.emit("{\"y\": 2}");
        assert_eq!(
            String::from_utf8(sink.w).unwrap(),
            "{\"x\": 1}\n{\"y\": 2}\n"
        );
    }
}
