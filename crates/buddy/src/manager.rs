//! The buddy-space manager: spaces, directory pages, superdirectory.

use lobstore_bufpool::BufferPool;
use lobstore_simdisk::{bytes, AreaId, PageId};

use crate::bitmap::BuddyBitmap;
use crate::Extent;

/// Magic number identifying an initialized buddy-space directory page.
const DIR_MAGIC: u32 = 0xB0DD_11E5;
/// Byte offset of the free bitmap within the directory page.
const BITMAP_OFF: usize = 64;

/// Configuration of a [`BuddyManager`].
#[derive(Copy, Clone, Debug)]
pub struct BuddyConfig {
    /// The database area this manager owns.
    pub area: AreaId,
    /// Data pages per buddy space (a power of two ≥ 64). With 4 KB pages
    /// the default of 16384 gives 64 MB spaces, matching the paper's scale
    /// (§3.1: ≈ 63.5 MB spaces supporting segments up to 32 MB).
    pub space_pages: u32,
}

impl BuddyConfig {
    /// Validate and build a configuration.
    ///
    /// # Panics
    /// If `space_pages` is not a power of two ≥ 64.
    pub fn new(area: AreaId, space_pages: u32) -> Self {
        assert!(
            space_pages.is_power_of_two() && space_pages >= 64,
            "space_pages must be a power of two ≥ 64"
        );
        BuddyConfig { area, space_pages }
    }
}

impl Default for BuddyConfig {
    fn default() -> Self {
        BuddyConfig::new(AreaId::LEAF, 16 * 1024)
    }
}

/// Fragmentation summary of one area's buddy spaces, computed by
/// [`BuddyManager::frag_stats`] from *peeked* (cost-free) directory
/// pages — health sampling must not perturb the simulated I/O record.
///
/// Runs are maximal runs of free pages within one space, irrespective of
/// buddy alignment: they measure what a future contiguous allocation
/// could physically get, which is what fragmentation degrades. Runs never
/// cross a space boundary (the next space's directory page sits between).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FragStats {
    /// Buddy spaces that exist.
    pub spaces: u32,
    /// Data pages per space.
    pub space_pages: u32,
    /// Pages currently allocated, recounted from the directory bitmaps.
    pub allocated_pages: u64,
    /// Pages currently free, recounted from the directory bitmaps.
    pub free_pages: u64,
    /// Length of the longest free run (0 when no space has free pages).
    pub largest_free_run: u32,
    /// Length of every maximal free run, in on-disk order.
    pub free_runs: Vec<u32>,
}

impl FragStats {
    /// Total data pages across all spaces.
    pub fn total_pages(&self) -> u64 {
        u64::from(self.spaces) * u64::from(self.space_pages)
    }

    /// Fraction of data pages allocated (0 when no spaces exist).
    pub fn utilization(&self) -> f64 {
        if self.total_pages() == 0 {
            0.0
        } else {
            // f64 division behind a zero guard; cannot panic.
            // loblint: allow(panic-path)
            self.allocated_pages as f64 / self.total_pages() as f64
        }
    }

    /// External fragmentation in `[0, 1]`: `1 − largest_free_run /
    /// free_pages`. 0 means all free storage is one contiguous run (or
    /// there is none); values near 1 mean free storage is shattered into
    /// runs far smaller than their total.
    pub fn frag_ratio(&self) -> f64 {
        if self.free_pages == 0 {
            0.0
        } else {
            // f64 division behind a zero guard; cannot panic.
            // loblint: allow(panic-path)
            1.0 - f64::from(self.largest_free_run) / self.free_pages as f64
        }
    }
}

/// Disk-space manager for one database area.
///
/// All page numbers handed out are absolute page numbers in the area; the
/// manager interleaves a one-page directory before each space:
///
/// ```text
/// page 0: dir of space 0 | pages 1..=S: data | page S+1: dir of space 1 | ...
/// ```
pub struct BuddyManager {
    cfg: BuddyConfig,
    /// Number of spaces created so far. Spaces are created on demand.
    n_spaces: u32,
    /// Superdirectory (§3.1): per space, an *upper bound* on the largest
    /// free buddy order, or `None` if the space is known to be full.
    /// Corrected lazily when a guess proves wrong.
    superdir: Vec<Option<u32>>,
    /// Pages currently allocated (for utilization accounting).
    allocated: u64,
}

impl BuddyManager {
    /// A manager over a fresh area with no spaces yet.
    pub fn new(cfg: BuddyConfig) -> Self {
        BuddyManager {
            cfg,
            n_spaces: 0,
            superdir: Vec::new(),
            allocated: 0,
        }
    }

    /// Attach to an area that already contains buddy spaces (restart /
    /// recovery path). Directory pages are discovered by their magic at
    /// the fixed space positions and read once to recompute the allocated
    /// page count; the superdirectory starts out *optimistic* — §3.1:
    /// "Initially, it indicates that each buddy space contains a free
    /// segment of the maximum size possible. This information may be
    /// erroneous" — and corrects itself on first use.
    pub fn open(cfg: BuddyConfig, pool: &mut BufferPool) -> Self {
        let mut mgr = BuddyManager::new(cfg);
        loop {
            let dir = PageId::new(cfg.area, mgr.dir_page(mgr.n_spaces));
            // Probe cost-free first: a missing space reads as zeroes. A
            // directory whose magic or size field does not match is
            // treated as "no more spaces" rather than a panic, so opening
            // a damaged image stays total — the consistency checker then
            // reports every page beyond the truncation point as dangling.
            let mut probe = [0u8; lobstore_simdisk::PAGE_SIZE];
            pool.peek_page(dir, &mut probe);
            if dir_u32(&probe, 0) != DIR_MAGIC || dir_u32(&probe, 4) != cfg.space_pages {
                break;
            }
            // Real (costed) read of the directory, as a restart would do.
            let r = pool.fix(dir);
            let bm = pool.with_page(r, |page| mgr.parse_dir(page));
            pool.unfix(r);
            mgr.allocated += u64::from(cfg.space_pages.saturating_sub(bm.free_pages()));
            mgr.superdir.push(Some(bm.max_order()));
            mgr.n_spaces += 1;
        }
        mgr
    }

    /// The configuration this manager was built with.
    pub fn config(&self) -> BuddyConfig {
        self.cfg
    }

    /// Total pages currently allocated through this manager.
    pub fn allocated_pages(&self) -> u64 {
        self.allocated
    }

    /// Number of buddy spaces created so far.
    pub fn n_spaces(&self) -> u32 {
        self.n_spaces
    }

    /// The superdirectory's current hint for `space` (testing aid).
    /// Spaces that were never created read as `None` (no free block).
    pub fn superdir_hint(&self, space: u32) -> Option<u32> {
        self.superdir.get(space as usize).copied().flatten()
    }

    fn dir_page(&self, space: u32) -> u32 {
        // Space count x (space size + 1 directory page) fits the 32-bit
        // page-number space by construction (`BuddyConfig` validates).
        // loblint: allow(arith-overflow)
        space * (self.cfg.space_pages + 1)
    }

    fn data_base(&self, space: u32) -> u32 {
        self.dir_page(space) + 1
    }

    /// Which space an absolute page number belongs to.
    fn space_of(&self, abs_page: u32) -> u32 {
        // The stride `space_pages + 1` is at least 1, so the division
        // cannot trap; the sum fits u32 (config-validated).
        // loblint: allow(arith-overflow, panic-path)
        abs_page / (self.cfg.space_pages + 1)
    }

    /// Allocate `n_pages` physically contiguous pages.
    ///
    /// The covering power-of-two buddy block is located; only the first
    /// `n_pages` of it are marked used (the unused tail is trimmed back to
    /// free, "down to the precision of one block").
    ///
    /// # Panics
    /// If `n_pages` is 0 or exceeds the space size.
    pub fn allocate(&mut self, pool: &mut BufferPool, n_pages: u32) -> Extent {
        assert!(n_pages > 0, "zero-page allocation");
        assert!(
            n_pages <= self.cfg.space_pages,
            "segment of {n_pages} pages exceeds buddy space size {}",
            self.cfg.space_pages
        );
        let order = ceil_log2(n_pages);
        // Probe existing spaces whose superdirectory hint is promising.
        for s in 0..self.n_spaces {
            let Some(hint) = self.superdir.get(s as usize).copied().flatten() else {
                continue;
            };
            if hint < order {
                continue;
            }
            if let Some(ext) = self.try_alloc_in_space(pool, s, order, n_pages) {
                self.allocated += u64::from(n_pages);
                return ext;
            }
            // The hint was wrong; try_alloc_in_space corrected it (§3.1:
            // "the first wrong guess ... will correct the superdirectory").
        }
        // No existing space can satisfy the request: open a new one.
        let s = self.create_space(pool);
        let ext = match self.try_alloc_in_space(pool, s, order, n_pages) {
            Some(ext) => ext,
            None => unreachable!("fresh space must satisfy any in-range allocation"),
        };
        self.allocated += u64::from(n_pages);
        ext
    }

    /// Visit one space's directory and try to carve out the request.
    /// Updates the superdirectory with the space's true state either way.
    fn try_alloc_in_space(
        &mut self,
        pool: &mut BufferPool,
        space: u32,
        order: u32,
        n_pages: u32,
    ) -> Option<Extent> {
        let dir = PageId::new(self.cfg.area, self.dir_page(space));
        let r = pool.fix(dir);
        let mut bm = pool.with_page(r, |page| self.parse_dir(page));
        let found = bm.find_block(order);
        let result = found.map(|block| {
            bm.mark_used(block, n_pages);
            pool.with_page_mut(r, |page| {
                bm.write_bytes(page.get_mut(BITMAP_OFF..).unwrap_or_default());
            });
            Extent::new(self.cfg.area, self.data_base(space) + block, n_pages)
        });
        if let Some(hint) = self.superdir.get_mut(space as usize) {
            *hint = bm.max_free_order();
        }
        pool.unfix(r);
        result
    }

    /// Free every page of `ext`. Partial frees of a previous allocation
    /// are allowed; the extent must not cross a space boundary.
    ///
    /// # Panics
    /// If the extent spans spaces, covers a directory page, or (in debug
    /// builds) frees a page that is not allocated.
    pub fn free(&mut self, pool: &mut BufferPool, ext: Extent) {
        assert_eq!(ext.area, self.cfg.area, "extent from a different area");
        if ext.pages == 0 {
            return;
        }
        let space = self.space_of(ext.start);
        assert_eq!(
            space,
            self.space_of(ext.end() - 1),
            "extent crosses a buddy-space boundary"
        );
        assert!(space < self.n_spaces, "extent beyond allocated spaces");
        let base = self.data_base(space);
        assert!(ext.start >= base, "extent covers a directory page");
        let rel = ext.start - base;

        let dir = PageId::new(self.cfg.area, self.dir_page(space));
        let r = pool.fix(dir);
        let mut bm = pool.with_page(r, |page| self.parse_dir(page));
        bm.mark_free(rel, ext.pages);
        pool.with_page_mut(r, |page| {
            bm.write_bytes(page.get_mut(BITMAP_OFF..).unwrap_or_default());
        });
        if let Some(hint) = self.superdir.get_mut(space as usize) {
            *hint = bm.max_free_order();
        }
        pool.unfix(r);
        // Drop stale buffered copies of freed pages.
        pool.discard_range(self.cfg.area, ext.start, ext.pages);
        self.allocated -= u64::from(ext.pages);
    }

    /// Adopt `ext` as allocated at exactly its recorded position — the
    /// allocation-log **replay** path (core DESIGN.md §16). Recovery
    /// rebuilds a fresh manager purely from logged `alloc`/`free`
    /// records, so placement is dictated, not searched for: spaces up to
    /// the extent's space are created on demand (their directories are
    /// re-initialized, overwriting whatever a crash left on disk), and
    /// the extent's pages are marked used. Pages already marked used stay
    /// used, which makes replay idempotent per page; only pages actually
    /// flipped free → used are added to the allocated counter.
    ///
    /// # Panics
    /// If the extent is from another area, spans spaces, or covers a
    /// directory page.
    pub fn adopt(&mut self, pool: &mut BufferPool, ext: Extent) {
        assert_eq!(ext.area, self.cfg.area, "extent from a different area");
        if ext.pages == 0 {
            return;
        }
        let space = self.space_of(ext.start);
        assert_eq!(
            space,
            self.space_of(ext.end() - 1),
            "extent crosses a buddy-space boundary"
        );
        while self.n_spaces <= space {
            self.create_space(pool);
        }
        let base = self.data_base(space);
        assert!(ext.start >= base, "extent covers a directory page");
        let rel = ext.start - base;

        let dir = PageId::new(self.cfg.area, self.dir_page(space));
        let r = pool.fix(dir);
        let mut bm = pool.with_page(r, |page| self.parse_dir(page));
        let mut flipped = 0u64;
        for p in rel..rel.saturating_add(ext.pages) {
            if bm.is_free(p) {
                bm.mark_used(p, 1);
                flipped += 1;
            }
        }
        pool.with_page_mut(r, |page| {
            bm.write_bytes(page.get_mut(BITMAP_OFF..).unwrap_or_default());
        });
        if let Some(hint) = self.superdir.get_mut(space as usize) {
            *hint = bm.max_free_order();
        }
        pool.unfix(r);
        self.allocated += flipped;
    }

    /// Every currently allocated page range, as maximal extents in
    /// ascending order — the allocator's view for consistency checking.
    /// Reads each space's directory through the pool (costed, like any
    /// directory access).
    pub fn allocated_ranges(&self, pool: &mut BufferPool) -> Vec<Extent> {
        let mut out = Vec::new();
        for s in 0..self.n_spaces {
            let dir = PageId::new(self.cfg.area, self.dir_page(s));
            let r = pool.fix(dir);
            let bm = pool.with_page(r, |page| self.parse_dir(page));
            pool.unfix(r);
            let base = self.data_base(s);
            let mut run_start: Option<u32> = None;
            for p in 0..self.cfg.space_pages {
                let used = !bm.is_free(p);
                match (used, run_start) {
                    (true, None) => run_start = Some(p),
                    (false, Some(st)) => {
                        out.push(Extent::new(self.cfg.area, base + st, p - st));
                        run_start = None;
                    }
                    _ => {}
                }
            }
            if let Some(st) = run_start {
                out.push(Extent::new(
                    self.cfg.area,
                    base + st,
                    self.cfg.space_pages.saturating_sub(st),
                ));
            }
        }
        out
    }

    /// Deep self-check (the `paranoid` feature): re-read every space
    /// directory and verify that the on-disk bitmaps agree with the
    /// in-memory bookkeeping — the allocated-page counter must equal the
    /// total of used bits, and no superdirectory hint may *under*-report
    /// a space (hints are allowed to be optimistic, §3.1, but a hint
    /// below the true maximum free order would hide free storage
    /// forever).
    #[cfg(feature = "paranoid")]
    pub fn paranoid_verify(&self, pool: &mut BufferPool) -> Result<(), String> {
        let mut used_total = 0u64;
        for s in 0..self.n_spaces {
            let dir = PageId::new(self.cfg.area, self.dir_page(s));
            let r = pool.fix(dir);
            let check = pool.with_page(r, |page| {
                if dir_u32(page, 0) != DIR_MAGIC {
                    return Err(format!("space {s}: directory magic corrupted"));
                }
                if dir_u32(page, 4) != self.cfg.space_pages {
                    return Err(format!("space {s}: directory space-size field mismatch"));
                }
                Ok(BuddyBitmap::from_bytes(
                    page.get(BITMAP_OFF..).unwrap_or(&[]),
                    self.cfg.space_pages,
                ))
            });
            pool.unfix(r);
            let bm = check?;
            used_total += u64::from(self.cfg.space_pages.saturating_sub(bm.free_pages()));
            match (self.superdir_hint(s), bm.max_free_order()) {
                (None, Some(order)) => {
                    return Err(format!(
                        "space {s}: superdirectory says full but an order-{order} block is free"
                    ));
                }
                (Some(hint), Some(order)) if hint < order => {
                    return Err(format!(
                        "space {s}: superdirectory hint {hint} below actual max free order {order}"
                    ));
                }
                _ => {}
            }
        }
        if used_total != self.allocated {
            return Err(format!(
                "allocated counter {} disagrees with directory bitmaps ({used_total} pages used)",
                self.allocated
            ));
        }
        Ok(())
    }

    /// Fragmentation summary of every space, read *cost-free* through
    /// [`BufferPool::peek_page`] (newest resident copy, else disk). This
    /// is the health sampler's data source: calling it must leave
    /// `IoStats` untouched, so degradation can be measured without the
    /// measurement itself showing up in the cost model. loblint's
    /// io-accounting rule pins this as a registered meta-inspector.
    pub fn frag_stats(&self, pool: &BufferPool) -> FragStats {
        let mut st = FragStats {
            spaces: self.n_spaces,
            space_pages: self.cfg.space_pages,
            ..FragStats::default()
        };
        for s in 0..self.n_spaces {
            let dir = PageId::new(self.cfg.area, self.dir_page(s));
            let mut probe = [0u8; lobstore_simdisk::PAGE_SIZE];
            pool.peek_page(dir, &mut probe);
            let bm = self.parse_dir(&probe);
            st.free_pages = st.free_pages.saturating_add(u64::from(bm.free_pages()));
            let mut run = 0u32;
            for p in 0..self.cfg.space_pages {
                if bm.is_free(p) {
                    run += 1;
                } else if run > 0 {
                    st.free_runs.push(run);
                    run = 0;
                }
            }
            if run > 0 {
                st.free_runs.push(run);
            }
        }
        st.allocated_pages = st.total_pages().saturating_sub(st.free_pages);
        st.largest_free_run = st.free_runs.iter().copied().max().unwrap_or(0);
        st
    }

    fn create_space(&mut self, pool: &mut BufferPool) -> u32 {
        let s = self.n_spaces;
        self.n_spaces += 1;
        let dir = PageId::new(self.cfg.area, self.dir_page(s));
        let r = pool.fix_new(dir);
        let bm = BuddyBitmap::all_free(self.cfg.space_pages);
        pool.with_page_mut(r, |page| {
            put_u32(page, 0, DIR_MAGIC);
            put_u32(page, 4, self.cfg.space_pages);
            bm.write_bytes(page.get_mut(BITMAP_OFF..).unwrap_or_default());
        });
        pool.unfix(r);
        self.superdir.push(Some(bm.max_order()));
        s
    }

    fn parse_dir(&self, page: &[u8]) -> BuddyBitmap {
        let magic = dir_u32(page, 0);
        assert_eq!(magic, DIR_MAGIC, "corrupt buddy directory page");
        let pages = dir_u32(page, 4);
        assert_eq!(pages, self.cfg.space_pages, "directory/config mismatch");
        BuddyBitmap::from_bytes(page.get(BITMAP_OFF..).unwrap_or(&[]), pages)
    }
}

/// Smallest `k` with `2^k ≥ n` (n ≥ 1).
fn ceil_log2(n: u32) -> u32 {
    32 - (n - 1).leading_zeros()
}

/// Read the little-endian `u32` at byte `at`; a truncated page reads
/// as 0, which callers reject as a bad magic / size field.
fn dir_u32(page: &[u8], at: usize) -> u32 {
    bytes::le_u32(page.get(at..at + 4).unwrap_or(&[0u8; 4]))
}

/// Write `v` little-endian at byte `at`. Pages are always `PAGE_SIZE`,
/// so the write never truncates in practice.
fn put_u32(page: &mut [u8], at: usize, v: u32) {
    for (dst, src) in page.iter_mut().skip(at).zip(v.to_le_bytes()) {
        *dst = src;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobstore_bufpool::PoolConfig;
    use lobstore_simdisk::{CostModel, SimDisk};

    fn setup(space_pages: u32) -> (BuddyManager, BufferPool) {
        let pool = BufferPool::new(SimDisk::new(2, CostModel::default()), PoolConfig::default());
        let mgr = BuddyManager::new(BuddyConfig::new(AreaId::LEAF, space_pages));
        (mgr, pool)
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8192), 13);
    }

    #[test]
    fn first_allocation_creates_space_and_skips_directory() {
        let (mut m, mut pool) = setup(256);
        let e = m.allocate(&mut pool, 10);
        assert_eq!(e.start, 1, "page 0 is the directory");
        assert_eq!(e.pages, 10);
        assert_eq!(m.n_spaces(), 1);
        assert_eq!(m.allocated_pages(), 10);
    }

    #[test]
    fn trimmed_allocation_leaves_tail_allocable() {
        let (mut m, mut pool) = setup(256);
        let a = m.allocate(&mut pool, 3); // covering block is 4 pages
        let b = m.allocate(&mut pool, 1); // should reuse the trimmed page
        assert_eq!(a.start, 1);
        assert_eq!(b.start, 4, "trim remainder handed out");
    }

    #[test]
    fn free_and_reallocate() {
        let (mut m, mut pool) = setup(256);
        let a = m.allocate(&mut pool, 16);
        m.free(&mut pool, a);
        assert_eq!(m.allocated_pages(), 0);
        let b = m.allocate(&mut pool, 16);
        assert_eq!(b, a, "freed block is reused");
    }

    #[test]
    fn partial_free_of_a_segment() {
        let (mut m, mut pool) = setup(256);
        let a = m.allocate(&mut pool, 16);
        // Trim the last 5 pages, as Starburst does with its final segment.
        m.free(&mut pool, a.suffix(11));
        assert_eq!(m.allocated_pages(), 11);
        let b = m.allocate(&mut pool, 4);
        // The freed tail [12..16] contains an aligned 4-run at 13? No:
        // relative pages 11..16 are free; aligned 4-run at rel 12.
        assert_eq!(b.start, a.start + 11 + 1); // rel 12 → abs 13
    }

    #[test]
    fn second_space_created_when_first_full() {
        let (mut m, mut pool) = setup(64);
        let a = m.allocate(&mut pool, 64);
        let b = m.allocate(&mut pool, 64);
        assert_eq!(m.n_spaces(), 2);
        assert_eq!(a.start, 1);
        assert_eq!(b.start, 66, "dir(0)=0, data 1..=64, dir(1)=65");
    }

    #[test]
    fn superdirectory_avoids_probing_full_spaces() {
        let (mut m, mut pool) = setup(64);
        let _a = m.allocate(&mut pool, 64);
        assert_eq!(m.superdir_hint(0), None, "space 0 known full");
        let _b = m.allocate(&mut pool, 32);
        // Allocating again must not touch space 0's directory: its hint
        // is None so we go straight to space 1.
        let hits_before = pool.pool_stats().hits + pool.pool_stats().misses;
        let _c = m.allocate(&mut pool, 16);
        let probes = (pool.pool_stats().hits + pool.pool_stats().misses) - hits_before;
        assert_eq!(probes, 1, "exactly one directory fixed");
    }

    #[test]
    fn wrong_hint_corrected_on_first_miss() {
        let (mut m, mut pool) = setup(64);
        // Fill space 0 with 33 pages: max free order is 4 (16-page block),
        // but carve it so the largest aligned free block is smaller.
        let _a = m.allocate(&mut pool, 33);
        let hint = m.superdir_hint(0).unwrap();
        assert_eq!(hint, 4, "pages 33..64 contain an aligned 16-run");
        // Request 32 pages: hint (4) < order (5) so space 0 is skipped
        // without I/O and a new space is created.
        let b = m.allocate(&mut pool, 32);
        assert_eq!(m.space_of(b.start), 1);
    }

    #[test]
    fn steady_state_allocation_is_at_most_one_disk_access() {
        let (mut m, mut pool) = setup(256);
        let _ = m.allocate(&mut pool, 4); // warm: creates space, dir in pool
        let io_before = pool.io_stats();
        for _ in 0..10 {
            let e = m.allocate(&mut pool, 4);
            m.free(&mut pool, e);
        }
        let delta = pool.io_stats() - io_before;
        assert_eq!(
            delta.calls(),
            0,
            "hot directory page: allocation costs no I/O at all"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds buddy space size")]
    fn oversized_request_panics() {
        let (mut m, mut pool) = setup(64);
        m.allocate(&mut pool, 65);
    }

    #[test]
    fn directory_survives_eviction() {
        // A tiny pool forces the directory page out and back in.
        let pool = BufferPool::new(
            SimDisk::new(2, CostModel::default()),
            PoolConfig {
                frames: 2,
                max_buffered_seg: 4,
            },
        );
        let mut pool = pool;
        let mut m = BuddyManager::new(BuddyConfig::new(AreaId::LEAF, 64));
        let a = m.allocate(&mut pool, 7);
        // Thrash the pool so the directory page is evicted (it is dirty).
        for p in 1000..1004 {
            let r = pool.fix(PageId::new(AreaId::META, p));
            pool.unfix(r);
        }
        let b = m.allocate(&mut pool, 7);
        assert_ne!(a.start, b.start);
        m.free(&mut pool, a);
        m.free(&mut pool, b);
        assert_eq!(m.allocated_pages(), 0);
    }

    #[test]
    fn allocated_ranges_reflect_state() {
        let (mut m, mut pool) = setup(256);
        assert!(m.allocated_ranges(&mut pool).is_empty());
        let a = m.allocate(&mut pool, 5);
        let b = m.allocate(&mut pool, 8);
        let ranges = m.allocated_ranges(&mut pool);
        let total: u32 = ranges.iter().map(|e| e.pages).sum();
        assert_eq!(total, 13);
        // Every held extent is covered by some range.
        for held in [a, b] {
            assert!(
                ranges
                    .iter()
                    .any(|r| r.start <= held.start && held.end() <= r.end()),
                "{held} not covered by {ranges:?}"
            );
        }
        m.free(&mut pool, a);
        let total: u32 = m.allocated_ranges(&mut pool).iter().map(|e| e.pages).sum();
        assert_eq!(total, 8);
    }

    #[cfg(feature = "paranoid")]
    mod paranoid {
        use super::*;

        #[test]
        fn healthy_manager_verifies() {
            let (mut m, mut pool) = setup(256);
            assert!(m.paranoid_verify(&mut pool).is_ok(), "no spaces yet");
            let a = m.allocate(&mut pool, 8);
            let _b = m.allocate(&mut pool, 3);
            m.free(&mut pool, a);
            m.paranoid_verify(&mut pool).unwrap();
        }

        #[test]
        fn bitmap_tampering_is_detected() {
            let (mut m, mut pool) = setup(256);
            let e = m.allocate(&mut pool, 8);
            m.paranoid_verify(&mut pool).unwrap();
            // Flip an allocated page back to free behind the manager's
            // back, as a lost directory write would.
            let dir = PageId::new(AreaId::LEAF, 0);
            let r = pool.fix(dir);
            let mut bm =
                pool.with_page(r, |page| BuddyBitmap::from_bytes(&page[BITMAP_OFF..], 256));
            bm.mark_free(e.start - 1, 1);
            pool.with_page_mut(r, |page| {
                bm.write_bytes(&mut page[BITMAP_OFF..BITMAP_OFF + bm.byte_len()]);
            });
            pool.unfix(r);
            let err = m.paranoid_verify(&mut pool).unwrap_err();
            assert!(err.contains("allocated counter"), "{err}");
        }

        #[test]
        fn corrupt_directory_magic_is_detected() {
            let (mut m, mut pool) = setup(256);
            let _e = m.allocate(&mut pool, 4);
            let dir = PageId::new(AreaId::LEAF, 0);
            let r = pool.fix(dir);
            pool.with_page_mut(r, |page| page[0..4].copy_from_slice(b"XXXX"));
            pool.unfix(r);
            let err = m.paranoid_verify(&mut pool).unwrap_err();
            assert!(err.contains("magic"), "{err}");
        }
    }

    #[test]
    fn frag_stats_empty_manager() {
        let (m, pool) = setup(256);
        let st = m.frag_stats(&pool);
        assert_eq!(
            st,
            FragStats {
                space_pages: 256,
                ..FragStats::default()
            }
        );
        assert_eq!(st.utilization(), 0.0);
        assert_eq!(st.frag_ratio(), 0.0);
    }

    #[test]
    fn frag_stats_tracks_runs_and_ratio() {
        let (mut m, mut pool) = setup(256);
        // Allocate three 8-page blocks, free the middle one: free space
        // is the 8-page hole plus the 232-page tail.
        let a = m.allocate(&mut pool, 8);
        let b = m.allocate(&mut pool, 8);
        let c = m.allocate(&mut pool, 8);
        assert_eq!((a.start, b.start, c.start), (1, 9, 17));
        m.free(&mut pool, b);
        let st = m.frag_stats(&pool);
        assert_eq!(st.spaces, 1);
        assert_eq!(st.allocated_pages, 16);
        assert_eq!(st.free_pages, 256 - 16);
        assert_eq!(st.free_runs, vec![8, 256 - 24]);
        assert_eq!(st.largest_free_run, 232);
        let want = 1.0 - 232.0 / 240.0;
        assert!((st.frag_ratio() - want).abs() < 1e-12);
        assert!((st.utilization() - 16.0 / 256.0).abs() < 1e-12);
        // Bitmap recount agrees with the manager's own counter.
        assert_eq!(st.allocated_pages, m.allocated_pages());
    }

    #[test]
    fn frag_stats_spans_spaces_without_joining_runs() {
        let (mut m, mut pool) = setup(64);
        let a = m.allocate(&mut pool, 64); // fills space 0
        let _b = m.allocate(&mut pool, 8); // opens space 1
        m.free(&mut pool, a.prefix(4)); // free run at the start of space 0
        let st = m.frag_stats(&pool);
        assert_eq!(st.spaces, 2);
        // Space 0: one 4-page run. Space 1: one 56-page tail. The runs
        // are separated by space 1's directory page, never merged.
        assert_eq!(st.free_runs, vec![4, 56]);
        assert_eq!(st.largest_free_run, 56);
        assert_eq!(st.free_pages, 60);
        assert_eq!(st.allocated_pages, 68);
    }

    #[test]
    fn frag_stats_is_simulated_io_free() {
        let (mut m, mut pool) = setup(256);
        let a = m.allocate(&mut pool, 16);
        m.free(&mut pool, a.suffix(9));
        pool.flush_all();
        let before = pool.io_stats();
        let st = m.frag_stats(&pool);
        assert_eq!(
            pool.io_stats() - before,
            Default::default(),
            "health inspection must not perturb the cost record"
        );
        assert_eq!(st.allocated_pages, 9);
    }

    #[test]
    fn frag_stats_sees_unflushed_directory_state() {
        // The directory page is dirty in the pool; peek must read the
        // resident copy, not the stale on-disk one.
        let (mut m, mut pool) = setup(256);
        let _a = m.allocate(&mut pool, 32);
        let st = m.frag_stats(&pool);
        assert_eq!(st.allocated_pages, 32);
        assert_eq!(st.free_pages, 224);
    }

    #[test]
    fn many_allocations_never_overlap() {
        let (mut m, mut pool) = setup(256);
        let mut held: Vec<Extent> = Vec::new();
        for n in [1u32, 3, 8, 5, 2, 17, 64, 1, 9, 30] {
            let e = m.allocate(&mut pool, n);
            for h in &held {
                assert!(
                    e.end() <= h.start || h.end() <= e.start,
                    "overlap: {e} vs {h}"
                );
            }
            held.push(e);
        }
        let total: u32 = held.iter().map(|e| e.pages).sum();
        assert_eq!(m.allocated_pages(), u64::from(total));
    }
}
